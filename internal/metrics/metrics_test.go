package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Scheduler: "test",
		Jobs: []JobResult{
			{ID: 0, Arrival: 0, Start: 10, Finish: 100, IsolatedDuration: 50},
			{ID: 1, Arrival: 20, Start: 30, Finish: 80, IsolatedDuration: 60},
			{ID: 2, Arrival: 40, Start: 90, Finish: 240, IsolatedDuration: 100},
		},
		Makespan:         240,
		BusyGPUSeconds:   480,
		HeldGPUSeconds:   600,
		TotalGPUs:        4,
		Rounds:           10,
		JobRoundAllocs:   10,
		JobRoundReallocs: 3,
		DecisionTime:     100 * time.Millisecond,
		Decisions:        10,
	}
}

func TestJCTAndQueueDelay(t *testing.T) {
	j := JobResult{Arrival: 10, Start: 25, Finish: 110}
	if j.JCT() != 100 {
		t.Errorf("JCT = %v", j.JCT())
	}
	if j.QueueDelay() != 15 {
		t.Errorf("QueueDelay = %v", j.QueueDelay())
	}
}

func TestReportJCTStats(t *testing.T) {
	r := sampleReport()
	// JCTs: 100, 60, 200.
	if got := r.AvgJCT(); math.Abs(got-120) > 1e-9 {
		t.Errorf("AvgJCT = %v, want 120", got)
	}
	if got := r.MedianJCT(); got != 100 {
		t.Errorf("MedianJCT = %v, want 100", got)
	}
	if r.MinJCT() != 60 || r.MaxJCT() != 200 {
		t.Errorf("Min/Max JCT = %v/%v", r.MinJCT(), r.MaxJCT())
	}
	if s := r.JCTSummary(); s.Count != 3 {
		t.Errorf("summary count = %d", s.Count)
	}
}

func TestAvgQueueDelay(t *testing.T) {
	r := sampleReport()
	// Delays: 10, 10, 50.
	if got := r.AvgQueueDelay(); math.Abs(got-70.0/3) > 1e-9 {
		t.Errorf("AvgQueueDelay = %v", got)
	}
}

func TestUtilizationAndOccupancy(t *testing.T) {
	r := sampleReport()
	if got, want := r.Utilization(), 480.0/600; math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
	if got, want := r.Occupancy(), 480.0/(4*240); math.Abs(got-want) > 1e-12 {
		t.Errorf("Occupancy = %v, want %v", got, want)
	}
	empty := &Report{}
	if empty.Utilization() != 0 || empty.Occupancy() != 0 {
		t.Error("empty report utilization nonzero")
	}
}

func TestFTF(t *testing.T) {
	r := sampleReport()
	// FTFs: 100/50=2, 60/60=1, 200/100=2.
	if got := r.AvgFTF(); math.Abs(got-5.0/3) > 1e-9 {
		t.Errorf("AvgFTF = %v", got)
	}
	if got := r.MaxFTF(); got != 2 {
		t.Errorf("MaxFTF = %v", got)
	}
}

func TestFTFInfiniteOnZeroIsolated(t *testing.T) {
	j := JobResult{Arrival: 0, Finish: 10, IsolatedDuration: 0}
	if !math.IsInf(j.FTF(), 1) {
		t.Error("FTF with zero isolated duration should be +Inf")
	}
}

func TestIsolatedDuration(t *testing.T) {
	// 1000 iters, 4 workers at 10 iters/s each -> 25s base. 10 jobs on
	// 20 GPUs: share = 2 GPUs < 4 workers -> stretch = 4*10/20 = 2.
	got := IsolatedDuration(1000, 4, 10, 10, 20)
	if math.Abs(got-50) > 1e-9 {
		t.Errorf("IsolatedDuration = %v, want 50", got)
	}
	// Within share: 1 worker, 10 jobs, 20 GPUs -> stretch 1.
	got = IsolatedDuration(1000, 1, 10, 10, 20)
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("IsolatedDuration = %v, want 100", got)
	}
}

func TestIsolatedDurationDegenerate(t *testing.T) {
	if !math.IsInf(IsolatedDuration(100, 0, 10, 1, 1), 1) {
		t.Error("zero workers should yield +Inf")
	}
	if !math.IsInf(IsolatedDuration(100, 1, 0, 1, 1), 1) {
		t.Error("zero throughput should yield +Inf")
	}
}

func TestReallocationFraction(t *testing.T) {
	r := sampleReport()
	if got := r.ReallocationFraction(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ReallocationFraction = %v, want 0.3", got)
	}
	if (&Report{}).ReallocationFraction() != 0 {
		t.Error("empty report realloc fraction nonzero")
	}
}

func TestAvgDecisionTime(t *testing.T) {
	r := sampleReport()
	if got := r.AvgDecisionTime(); got != 10*time.Millisecond {
		t.Errorf("AvgDecisionTime = %v", got)
	}
	if (&Report{}).AvgDecisionTime() != 0 {
		t.Error("empty report decision time nonzero")
	}
}

func TestCompletionCDF(t *testing.T) {
	r := sampleReport()
	cdf := r.CompletionCDF()
	if len(cdf) != 3 {
		t.Fatalf("CDF = %v", cdf)
	}
	if cdf[0].X != 80 || math.Abs(cdf[0].Fraction-1.0/3) > 1e-12 {
		t.Errorf("first CDF point = %+v", cdf[0])
	}
	if cdf[2].X != 240 || cdf[2].Fraction != 1 {
		t.Errorf("last CDF point = %+v", cdf[2])
	}
}

func TestCompletionAt(t *testing.T) {
	r := sampleReport()
	cases := []struct{ t, want float64 }{
		{0, 0}, {80, 1.0 / 3}, {100, 2.0 / 3}, {1000, 1},
	}
	for _, c := range cases {
		if got := r.CompletionAt(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CompletionAt(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if (&Report{}).CompletionAt(10) != 0 {
		t.Error("empty report completion nonzero")
	}
}

func TestSortJobsByID(t *testing.T) {
	r := &Report{Jobs: []JobResult{{ID: 2}, {ID: 0}, {ID: 1}}}
	r.SortJobsByID()
	for i, j := range r.Jobs {
		if j.ID != i {
			t.Fatalf("jobs not sorted: %v", r.Jobs)
		}
	}
}

func TestStringMentionsScheduler(t *testing.T) {
	s := sampleReport().String()
	if len(s) == 0 || s[:4] != "test" {
		t.Errorf("String() = %q", s)
	}
}

// Property: IsolatedDuration is monotonically non-increasing in cluster
// size (more GPUs per job can only help) and scales linearly with work.
func TestIsolatedDurationMonotoneProperty(t *testing.T) {
	prop := func(itersRaw uint16, w, n uint8, g1, g2 uint8) bool {
		iters := float64(itersRaw) + 1
		workers := int(w%8) + 1
		jobs := int(n%32) + 1
		small := int(g1%32) + 1
		big := small + int(g2%32) + 1
		dSmall := IsolatedDuration(iters, workers, 10, jobs, small)
		dBig := IsolatedDuration(iters, workers, 10, jobs, big)
		if dBig > dSmall+1e-9 {
			return false
		}
		double := IsolatedDuration(2*iters, workers, 10, jobs, small)
		return math.Abs(double-2*dSmall) < 1e-6*dSmall
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOccupancyUntil(t *testing.T) {
	r := &Report{
		TotalGPUs:   4,
		RoundHeld:   []int{4, 2, 0},
		RoundStarts: []float64{0, 100, 200},
	}
	// Until t=150: rounds at 0 and 100 -> (4+2)/(2*4) = 0.75.
	if got := r.OccupancyUntil(150); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("OccupancyUntil(150) = %v, want 0.75", got)
	}
	// Until t=1000: all rounds -> 6/12 = 0.5.
	if got := r.OccupancyUntil(1000); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OccupancyUntil(1000) = %v, want 0.5", got)
	}
	if got := r.OccupancyUntil(0); got != 0 {
		t.Errorf("OccupancyUntil(0) = %v, want 0 (no rounds started)", got)
	}
	if (&Report{}).OccupancyUntil(10) != 0 {
		t.Error("empty report occupancy nonzero")
	}
}

func TestJCTSummaryPercentiles(t *testing.T) {
	r := sampleReport()
	s := r.JCTSummary()
	if s.Min != r.MinJCT() || s.Max != r.MaxJCT() {
		t.Errorf("summary bounds mismatch: %+v", s)
	}
	if s.P90 < s.Median || s.P99 < s.P90 {
		t.Errorf("percentiles unordered: %+v", s)
	}
}
