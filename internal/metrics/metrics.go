// Package metrics computes the evaluation metrics reported in the Hadar
// paper: average/median/min/max job completion time (JCT), makespan,
// queuing delay, cluster-wide GPU utilization, and finish-time fairness
// (FTF, from Themis).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/stats"
)

// JobResult records one completed job's timeline.
type JobResult struct {
	ID      int
	Model   string
	Workers int
	// Arrival, Start and Finish are seconds from trace start. Start is
	// the time of the first allocation.
	Arrival float64
	Start   float64
	Finish  float64
	// TotalIters is the work completed (E_j * N_j).
	TotalIters float64
	// IsolatedDuration is the analytic runtime the job would need with a
	// 1/n share of the cluster on its best accelerator type (see
	// IsolatedDuration); the FTF denominator.
	IsolatedDuration float64
	// Reallocations counts rounds in which the job's allocation changed
	// while it kept running (checkpoint-restart events).
	Reallocations int
}

// JCT returns the job completion time f_j - a_j.
func (r JobResult) JCT() float64 { return r.Finish - r.Arrival }

// QueueDelay returns the time the job waited before its first
// allocation.
func (r JobResult) QueueDelay() float64 { return r.Start - r.Arrival }

// FTF returns the finish-time fairness ratio: JCT divided by the
// isolated (1/n cluster share) duration. Values near or below 1 are
// fair; large values indicate the job was starved relative to an equal
// share.
func (r JobResult) FTF() float64 {
	if r.IsolatedDuration <= 0 {
		return math.Inf(1)
	}
	return r.JCT() / r.IsolatedDuration
}

// IsolatedDuration computes the FTF denominator for a job: the runtime
// on its best accelerator type if the cluster were statically divided
// among n jobs. A job whose gang W exceeds its 1/n GPU share is assumed
// to time-slice, stretching its runtime by W*n/totalGPUs; a job within
// its share runs unimpeded.
func IsolatedDuration(totalIters float64, workers int, bestThroughput float64, n, totalGPUs int) float64 {
	if bestThroughput <= 0 || workers <= 0 || totalGPUs <= 0 || n <= 0 {
		return math.Inf(1)
	}
	base := totalIters / (float64(workers) * bestThroughput)
	stretch := float64(workers) * float64(n) / float64(totalGPUs)
	if stretch < 1 {
		stretch = 1
	}
	return base * stretch
}

// FaultStats counts fault-tolerance events observed during a run. The
// simulator fills in the outage-level counters (node transitions, lost
// work, recoveries); the live control plane (rpccluster) additionally
// populates the RPC-level ones. All counters stay zero on a fault-free
// run, so reports from healthy runs are unchanged by their presence.
type FaultStats struct {
	// RPCRetries counts transient call failures that were retried.
	RPCRetries int
	// RPCTimeouts counts calls abandoned at the per-call deadline.
	RPCTimeouts int
	// NodeDown and NodeUp count node outage begin/end transitions as
	// observed by the control plane (heartbeat probes) or simulator.
	NodeDown int
	NodeUp   int
	// Recoveries counts job-rounds rolled back because a worker holding
	// part of the job's gang failed mid-round.
	Recoveries int
	// LostIterations sums training iterations discarded by failures:
	// progress past the last checkpoint (live cluster) or the killed
	// round's forgone work (simulator).
	LostIterations float64
}

// Any reports whether any fault counter is non-zero.
func (f FaultStats) Any() bool {
	return f.RPCRetries != 0 || f.RPCTimeouts != 0 || f.NodeDown != 0 ||
		f.NodeUp != 0 || f.Recoveries != 0 || f.LostIterations > 0
}

// String renders the counters in one line.
func (f FaultStats) String() string {
	return fmt.Sprintf("retries=%d timeouts=%d down=%d up=%d recoveries=%d lostIters=%.0f",
		f.RPCRetries, f.RPCTimeouts, f.NodeDown, f.NodeUp, f.Recoveries, f.LostIterations)
}

// Report aggregates one simulation run.
type Report struct {
	// Scheduler is the policy name.
	Scheduler string
	// Jobs holds one result per completed job.
	Jobs []JobResult
	// Makespan is the latest finish time (max_j f_j).
	Makespan float64
	// BusyGPUSeconds accumulates workers x active seconds across all
	// jobs (checkpoint stalls and post-completion round tails excluded).
	BusyGPUSeconds float64
	// HeldGPUSeconds accumulates workers x round length for every
	// allocated job-round: the GPU time reserved by jobs, including
	// checkpoint stalls and the idle tail of a job's final round.
	HeldGPUSeconds float64
	// TotalGPUs is the cluster size.
	TotalGPUs int
	// Rounds is the number of scheduling rounds executed.
	Rounds int
	// JobRoundAllocs counts (job, round) pairs with an allocation;
	// JobRoundReallocs counts those whose allocation changed from the
	// previous round. Their ratio is the paper's "30% of scheduling
	// rounds require a change in allocation for an average job".
	JobRoundAllocs   int
	JobRoundReallocs int
	// DecisionTime is the cumulative wall time spent inside
	// Scheduler.Schedule, over Decisions calls (Fig. 7).
	DecisionTime time.Duration
	Decisions    int
	// Faults counts failure-handling events (retries, outages,
	// recoveries, lost work); all zero on a fault-free run.
	Faults FaultStats
	// RoundHeld records, per executed round, how many workers held
	// devices — the cluster occupancy time series.
	RoundHeld []int
	// RoundStarts records each round's start time, aligned with
	// RoundHeld (rounds may be skipped while the cluster idles between
	// arrivals).
	RoundStarts []float64
}

// OccupancyUntil returns average held-GPU occupancy over rounds starting
// before time t.
func (r *Report) OccupancyUntil(t float64) float64 {
	if r.TotalGPUs == 0 {
		return 0
	}
	sum, n := 0.0, 0
	for i, held := range r.RoundHeld {
		if i < len(r.RoundStarts) && r.RoundStarts[i] >= t {
			break
		}
		sum += float64(held)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / (float64(n) * float64(r.TotalGPUs))
}

// jcts returns all completion times.
func (r *Report) jcts() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.JCT()
	}
	return out
}

// AvgJCT returns the mean job completion time in seconds.
func (r *Report) AvgJCT() float64 { return stats.Mean(r.jcts()) }

// MedianJCT returns the median job completion time in seconds.
func (r *Report) MedianJCT() float64 { return stats.Median(r.jcts()) }

// MinJCT and MaxJCT bound the completion times (Fig. 8's shaded range).
func (r *Report) MinJCT() float64 { return stats.Min(r.jcts()) }

// MaxJCT returns the largest completion time.
func (r *Report) MaxJCT() float64 { return stats.Max(r.jcts()) }

// JCTSummary returns the full descriptive summary of completion times.
func (r *Report) JCTSummary() stats.Summary { return stats.Summarize(r.jcts()) }

// AvgQueueDelay returns the mean wait before first allocation.
func (r *Report) AvgQueueDelay() float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.QueueDelay()
	}
	return stats.Mean(out)
}

// Occupancy returns busy GPU-seconds over total GPU-seconds until the
// makespan: how much of the whole cluster-time did useful work.
func (r *Report) Occupancy() float64 {
	if r.Makespan <= 0 || r.TotalGPUs == 0 {
		return 0
	}
	return r.BusyGPUSeconds / (float64(r.TotalGPUs) * r.Makespan)
}

// Utilization returns busy GPU-seconds over held GPU-seconds: the
// fraction of job run-time during which the GPUs actually computed
// (the paper's Fig. 4/Fig. 10 metric). Non-preemptive schedulers score
// highest here because they never pay checkpoint-restart stalls.
func (r *Report) Utilization() float64 {
	if r.HeldGPUSeconds <= 0 {
		return 0
	}
	return r.BusyGPUSeconds / r.HeldGPUSeconds
}

// FTFs returns the finish-time fairness ratio of every job.
func (r *Report) FTFs() []float64 {
	out := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		out[i] = j.FTF()
	}
	return out
}

// AvgFTF returns the mean finish-time fairness (Fig. 5).
func (r *Report) AvgFTF() float64 { return stats.Mean(r.FTFs()) }

// MaxFTF returns the worst-case fairness ratio.
func (r *Report) MaxFTF() float64 { return stats.Max(r.FTFs()) }

// ReallocationFraction returns the fraction of allocated job-rounds in
// which the allocation changed (the paper reports ~30% for Hadar).
func (r *Report) ReallocationFraction() float64 {
	if r.JobRoundAllocs == 0 {
		return 0
	}
	return float64(r.JobRoundReallocs) / float64(r.JobRoundAllocs)
}

// AvgDecisionTime returns the mean wall time per Schedule call (Fig. 7).
func (r *Report) AvgDecisionTime() time.Duration {
	if r.Decisions == 0 {
		return 0
	}
	return r.DecisionTime / time.Duration(r.Decisions)
}

// CompletionCDF returns the cumulative fraction of jobs finished by each
// completion instant (the Fig. 3 curves), in ascending time order.
func (r *Report) CompletionCDF() []stats.CDFPoint {
	finishes := make([]float64, len(r.Jobs))
	for i, j := range r.Jobs {
		finishes[i] = j.Finish
	}
	return stats.CDF(finishes)
}

// CompletionAt returns the fraction of jobs finished by time t.
func (r *Report) CompletionAt(t float64) float64 {
	n := 0
	for _, j := range r.Jobs {
		if j.Finish <= t {
			n++
		}
	}
	if len(r.Jobs) == 0 {
		return 0
	}
	return float64(n) / float64(len(r.Jobs))
}

// SortJobsByID orders the results deterministically.
func (r *Report) SortJobsByID() {
	sort.Slice(r.Jobs, func(a, b int) bool { return r.Jobs[a].ID < r.Jobs[b].ID })
}

// Clone returns a deep copy: the copy shares no slices with the
// original, so a snapshot of an in-progress run stays valid while the
// simulation keeps appending. JobResult and FaultStats are flat value
// types, so element copies are deep.
func (r *Report) Clone() *Report {
	c := *r
	c.Jobs = append([]JobResult(nil), r.Jobs...)
	c.RoundHeld = append([]int(nil), r.RoundHeld...)
	c.RoundStarts = append([]float64(nil), r.RoundStarts...)
	return &c
}

// String renders the headline numbers in one line.
func (r *Report) String() string {
	return fmt.Sprintf("%s: %d jobs, avgJCT=%.2fh medJCT=%.2fh makespan=%.2fh util=%.1f%% FTF=%.2f",
		r.Scheduler, len(r.Jobs), r.AvgJCT()/3600, r.MedianJCT()/3600,
		r.Makespan/3600, 100*r.Utilization(), r.AvgFTF())
}
