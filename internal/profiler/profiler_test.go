package profiler

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func testJob(id int) *job.Job {
	return &job.Job{
		ID: id, Model: "LSTM", Workers: 2, Epochs: 1000, ItersPerEpoch: 100,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.P100: 6, gpu.K80: 2},
	}
}

func TestPriorSeeding(t *testing.T) {
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	j := testJob(0)
	// The best type's rate is the user hint; others start at Prior x best.
	if got := e.Estimate(j, gpu.V100); got != 10 {
		t.Errorf("best-type prior = %v, want 10", got)
	}
	if got := e.Estimate(j, gpu.P100); got != 5 {
		t.Errorf("P100 prior = %v, want 5 (0.5 x best)", got)
	}
	if got := e.Estimate(j, gpu.T4); got != 0 {
		t.Errorf("unusable type estimate = %v, want 0", got)
	}
}

func TestObserveUpdatesBelief(t *testing.T) {
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	j := testJob(0)
	alloc := cluster.Alloc{{Node: 0, Type: gpu.P100, Count: 2}}
	// 2 workers on P100 at a true 6 it/s each: 12 it/s for 100 s.
	e.Observe(j, 10000, 10000-1200, 100, alloc)
	if got := e.Estimate(j, gpu.P100); math.Abs(got-6) > 1e-9 {
		t.Errorf("P100 estimate after observation = %v, want 6", got)
	}
	if un := e.Unprofiled(j); len(un) != 2 { // V100 and K80 unobserved
		t.Errorf("Unprofiled = %v, want V100+K80", un)
	}
}

func TestObserveAttributesToBottleneck(t *testing.T) {
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	j := testJob(0)
	mixed := cluster.Alloc{
		{Node: 0, Type: gpu.V100, Count: 1},
		{Node: 1, Type: gpu.K80, Count: 1},
	}
	// Bottleneck K80 at 2 it/s per worker, 2 workers: 4 it/s for 50s.
	e.Observe(j, 1000, 800, 50, mixed)
	if got := e.Estimate(j, gpu.K80); math.Abs(got-2) > 1e-9 {
		t.Errorf("K80 estimate = %v, want 2", got)
	}
	// V100 belief untouched by the mixed observation.
	if got := e.Estimate(j, gpu.V100); got != 10 {
		t.Errorf("V100 estimate = %v, want untouched 10", got)
	}
}

func TestObserveIgnoresDegenerate(t *testing.T) {
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	j := testJob(0)
	alloc := cluster.Alloc{{Node: 0, Type: gpu.P100, Count: 2}}
	e.Observe(j, 100, 100, 50, alloc) // no progress
	e.Observe(j, 100, 90, 0, alloc)   // zero window
	e.Observe(j, 100, 90, 50, nil)    // no allocation
	if got := e.Estimate(j, gpu.P100); got != 5 {
		t.Errorf("estimate moved on degenerate observations: %v", got)
	}
}

func TestEMABlending(t *testing.T) {
	opts := DefaultOptions()
	opts.EMA = 0.5
	e := New(core.New(core.DefaultOptions()), opts)
	j := testJob(0)
	alloc := cluster.Alloc{{Node: 0, Type: gpu.P100, Count: 2}}
	// Prior 5; observe true 6 -> 5.5 with EMA 0.5.
	e.Observe(j, 10000, 10000-1200, 100, alloc)
	if got := e.Estimate(j, gpu.P100); math.Abs(got-5.5) > 1e-9 {
		t.Errorf("EMA estimate = %v, want 5.5", got)
	}
}

func TestNameSuffix(t *testing.T) {
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	if e.Name() != "hadar+profiler" {
		t.Errorf("Name = %q", e.Name())
	}
}

// TestEndToEndWithoutOracle runs the estimator-wrapped Hadar on a trace
// through the simulator and checks that it completes everything with a
// JCT within a reasonable factor of oracle Hadar.
func TestEndToEndWithoutOracle(t *testing.T) {
	c := cluster.New(
		gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.P100: 4}, gpu.Fleet{gpu.K80: 4},
	)
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 24
	cfg.WorkerChoices = []int{1, 2}
	cfg.WorkerWeights = []float64{0.6, 0.4}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := sim.Run(c, jobs, core.New(core.DefaultOptions()), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	est, err := sim.Run(c, jobs, New(core.New(core.DefaultOptions()), DefaultOptions()), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Jobs) != len(jobs) {
		t.Fatalf("estimator run completed %d of %d jobs", len(est.Jobs), len(jobs))
	}
	ratio := est.AvgJCT() / oracle.AvgJCT()
	if ratio > 2.0 {
		t.Errorf("estimator avg JCT %.0fs is %.2fx oracle %.0fs, want <= 2x",
			est.AvgJCT(), ratio, oracle.AvgJCT())
	}
	t.Logf("oracle avgJCT=%.1fh estimator avgJCT=%.1fh (%.2fx)",
		oracle.AvgJCT()/3600, est.AvgJCT()/3600, ratio)
}

// TestExplorationVisitsTypes checks that a job gets steered across
// accelerator types during its first rounds.
func TestExplorationVisitsTypes(t *testing.T) {
	c := cluster.New(
		gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.P100: 2}, gpu.Fleet{gpu.K80: 2},
	)
	j := testJob(0)
	st := &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
	e := New(core.New(core.DefaultOptions()), DefaultOptions())
	seen := map[gpu.Type]bool{}
	for round := 0; round < 6; round++ {
		ctx := &sched.Context{
			Now: float64(round) * 360, Round: round, RoundLength: 360,
			Horizon: 1e7, Cluster: c,
			Jobs: []*sched.JobState{st},
		}
		out := e.Schedule(ctx)
		alloc := out[0].Canonical()
		if alloc.Workers() == 0 {
			t.Fatalf("round %d: job unscheduled on an empty cluster", round)
		}
		for _, typ := range alloc.Types() {
			seen[typ] = true
		}
		// Simulate the round's progress honestly.
		rate := sched.Rate(j, c, alloc)
		st.Remaining -= rate * 360
		st.Alloc = alloc
		st.Rounds++
	}
	if len(seen) < 3 {
		t.Errorf("exploration visited %d types (%v), want all 3", len(seen), seen)
	}
}
