// Package profiler implements the throughput estimator of the paper's
// Fig. 2: "the throughput estimator in Hadar obtains performance
// measurements for each runnable job on each available accelerator type
// either from user input or by profiling during the first few rounds of
// execution."
//
// The Estimator wraps any scheduler. While a job still has unprofiled
// accelerator types, the wrapper steers the job onto one of them
// (exploration); once a (job, type) pair has been observed for a round,
// the measured per-worker rate — including any straggler effects —
// replaces the prior. Scheduling decisions are then made against the
// estimated throughput profile instead of ground truth, so the wrapped
// policy never needs oracle knowledge of X_j^r.
package profiler

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

// Options configures the estimator.
type Options struct {
	// Prior is the initial throughput guess for an unobserved (job,
	// type) pair, as a fraction of the job's best known prior. 0 means
	// a conservative 0.5.
	Prior float64
	// EMA is the exponential-moving-average weight of new measurements
	// in (0, 1]; 1 replaces the estimate outright.
	EMA float64
	// ProfileRounds is how many observations a (job, type) pair needs
	// before it counts as profiled.
	ProfileRounds int
}

// DefaultOptions returns the configuration used by the examples.
func DefaultOptions() Options {
	return Options{Prior: 0.5, EMA: 1, ProfileRounds: 1}
}

type estimate struct {
	rate float64 // per-worker iterations/second
	obs  int
}

// Estimator wraps an inner scheduler and supplies it with estimated
// throughput profiles. It implements sched.Scheduler and additionally
// consumes per-round progress observations via Observe.
type Estimator struct {
	opts  Options
	inner sched.Scheduler
	// est[jobID][type] is the current belief.
	est map[int]map[gpu.Type]*estimate
	// trueSpeed remembers each job's real profile for prior scaling
	// (only the max is used, mimicking the user-supplied "it runs at
	// roughly N iters/s on its best GPU" hint).
	prevRemaining map[int]float64
	prevAlloc     map[int]cluster.Alloc
}

// New wraps inner with a throughput estimator.
func New(inner sched.Scheduler, opts Options) *Estimator {
	if opts.Prior <= 0 {
		opts.Prior = 0.5
	}
	if opts.EMA <= 0 || opts.EMA > 1 {
		opts.EMA = 1
	}
	if opts.ProfileRounds <= 0 {
		opts.ProfileRounds = 1
	}
	return &Estimator{
		opts:          opts,
		inner:         inner,
		est:           make(map[int]map[gpu.Type]*estimate),
		prevRemaining: make(map[int]float64),
		prevAlloc:     make(map[int]cluster.Alloc),
	}
}

// Name implements sched.Scheduler.
func (e *Estimator) Name() string { return e.inner.Name() + "+profiler" }

// beliefs returns (creating if needed) the estimate map for a job,
// seeded with priors scaled from the job's best-type hint.
func (e *Estimator) beliefs(j *job.Job) map[gpu.Type]*estimate {
	if m, ok := e.est[j.ID]; ok {
		return m
	}
	m := make(map[gpu.Type]*estimate)
	_, best, _ := j.BestType()
	// Iterate the type enum, not the throughput map: the belief map's
	// pointer identities seed estimator state, so its construction
	// order must be replay-identical.
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		x := j.Speed(t)
		if x <= 0 {
			continue
		}
		prior := best * e.opts.Prior
		if t == bestType(j) {
			// The user-supplied hint: the best type's rate is known.
			prior = best
		}
		m[t] = &estimate{rate: prior}
	}
	e.est[j.ID] = m
	return m
}

func bestType(j *job.Job) gpu.Type {
	t, _, _ := j.BestType()
	return t
}

// Observe ingests one round of ground truth: how many iterations the job
// completed under its previous allocation. The simulator's effective
// rate divided by the worker count updates the estimate of the
// allocation's bottleneck type.
func (e *Estimator) Observe(j *job.Job, remainingBefore, remainingAfter, seconds float64, alloc cluster.Alloc) {
	w := alloc.Workers()
	if w == 0 || seconds <= 0 || remainingBefore <= remainingAfter {
		return
	}
	perWorker := (remainingBefore - remainingAfter) / seconds / float64(w)
	// The observation reflects the slowest type in the allocation (the
	// synchronization bottleneck), so attribute it there.
	beliefs := e.beliefs(j)
	slowest, ok := slowestType(j, alloc)
	if !ok {
		return
	}
	b := beliefs[slowest]
	if b == nil {
		b = &estimate{rate: perWorker}
		beliefs[slowest] = b
	}
	b.rate = b.rate*(1-e.opts.EMA) + perWorker*e.opts.EMA
	b.obs++
}

// slowestType finds the allocation's bottleneck type under the job's
// true profile ordering. Since relative order is what profiling aims to
// learn, we attribute by the current belief order instead when the true
// order is unavailable; here beliefs suffice.
func slowestType(j *job.Job, alloc cluster.Alloc) (gpu.Type, bool) {
	slowest := gpu.NumTypes
	best := math.Inf(1)
	for _, p := range alloc.Canonical() {
		if x := j.Speed(p.Type); x > 0 && x < best {
			best = x
			slowest = p.Type
		}
	}
	return slowest, slowest != gpu.NumTypes
}

// Unprofiled returns the job's usable types with fewer than
// ProfileRounds observations, in ascending observation count.
func (e *Estimator) Unprofiled(j *job.Job) []gpu.Type {
	beliefs := e.beliefs(j)
	var out []gpu.Type
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if b, ok := beliefs[t]; ok && b.obs < e.opts.ProfileRounds {
			out = append(out, t)
		}
	}
	return out
}

// Estimate returns the believed per-worker rate for (job, type).
func (e *Estimator) Estimate(j *job.Job, t gpu.Type) float64 {
	if b, ok := e.beliefs(j)[t]; ok {
		return b.rate
	}
	return 0
}

// Schedule implements sched.Scheduler: it substitutes believed
// throughput profiles into shadow jobs, consults the inner policy, and
// — for jobs with unprofiled types — steers the decision toward an
// unprofiled type when one is free (round-robin exploration during "the
// first few rounds of execution").
func (e *Estimator) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	// Ingest observations from the previous round.
	for _, st := range ctx.Jobs {
		if prev, ok := e.prevAlloc[st.Job.ID]; ok && prev.Workers() > 0 {
			e.Observe(st.Job, e.prevRemaining[st.Job.ID], st.Remaining,
				ctx.RoundLength, prev)
		}
	}

	// Build shadow contexts with estimated profiles.
	shadow := &sched.Context{
		Now: ctx.Now, Round: ctx.Round, RoundLength: ctx.RoundLength,
		Horizon: ctx.Horizon, Cluster: ctx.Cluster,
	}
	shadowJobs := make([]*sched.JobState, len(ctx.Jobs))
	realByID := make(map[int]*sched.JobState, len(ctx.Jobs))
	for i, st := range ctx.Jobs {
		realByID[st.Job.ID] = st
		beliefs := e.beliefs(st.Job)
		tp := make(map[gpu.Type]float64, len(beliefs))
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			if b, ok := beliefs[t]; ok {
				tp[t] = b.rate
			}
		}
		shadowJob := *st.Job
		shadowJob.Throughput = tp
		shadowState := *st
		shadowState.Job = &shadowJob
		shadowJobs[i] = &shadowState
	}
	shadow.Jobs = shadowJobs

	decisions := e.inner.Schedule(shadow)

	// Exploration: a running job with unprofiled types is redirected to
	// one of them when the devices are free under the chosen decision.
	free := cluster.NewState(ctx.Cluster)
	consistent := true
	// Replay the decisions in submission order, not map order: the
	// allocator mutates shared free-node state, and the exploration
	// pass below reads it.
	for _, st := range ctx.Jobs {
		a, ok := decisions[st.Job.ID]
		if !ok || a.Workers() == 0 {
			continue
		}
		if err := free.Allocate(a); err != nil {
			// Inner scheduler over-allocated; pass the decision
			// through unmodified and let the simulator reject it.
			consistent = false
			break
		}
	}
	if !consistent {
		e.remember(ctx, decisions)
		return decisions
	}
	for _, st := range ctx.Jobs {
		alloc, ok := decisions[st.Job.ID]
		if !ok || alloc.Workers() == 0 {
			continue
		}
		for _, t := range e.Unprofiled(st.Job) {
			if free.FreeOfType(t) < st.Job.Workers {
				continue
			}
			if probe, okP := sched.PlaceSingleType(free, t, st.Job.Workers); okP {
				if err := free.Allocate(probe); err == nil {
					if err := free.Release(alloc); err != nil {
						// Shouldn't happen; keep the original decision.
						break
					}
					decisions[st.Job.ID] = probe
				}
				break
			}
		}
	}

	e.remember(ctx, decisions)
	return decisions
}

// remember stores this round's decisions and remaining work so the next
// round's progress can be attributed.
func (e *Estimator) remember(ctx *sched.Context, decisions map[int]cluster.Alloc) {
	e.prevAlloc = make(map[int]cluster.Alloc, len(ctx.Jobs))
	e.prevRemaining = make(map[int]float64, len(ctx.Jobs))
	for _, st := range ctx.Jobs {
		e.prevAlloc[st.Job.ID] = decisions[st.Job.ID].Canonical()
		e.prevRemaining[st.Job.ID] = st.Remaining
	}
}
