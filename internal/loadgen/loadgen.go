// Package loadgen synthesizes online job-arrival workloads and drives
// a scheduler service with them in closed loop.
//
// Generation is fully seeded: the same Config always yields the same
// jobs with the same virtual arrival times, so load experiments replay
// bit-identically. Three arrival models cover the regimes a cluster
// scheduler meets in production: Poisson (memoryless steady state),
// Diurnal (day/night rate swing, Lewis-Shedler thinning), and Bursty
// (synchronized batch submissions separated by quiet gaps — the
// "Monday 9am" pattern that exercises admission control hardest).
//
// The driver half (Drive) feeds the generated jobs to a service as
// fast as the service admits them, honoring backpressure: a *BusyError
// from the bounded admission queue is retried after the suggested
// delay rather than dropped, so the measured sustained rate reflects
// what the engine actually absorbed.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/job"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Model selects the arrival process.
type Model int

const (
	// Poisson draws exponential interarrival gaps at Rate.
	Poisson Model = iota
	// Diurnal modulates a Poisson process with a 24h sinusoid of
	// relative swing Amplitude (Lewis-Shedler thinning).
	Diurnal
	// Bursty releases BurstSize simultaneous jobs every BurstGap
	// seconds.
	Bursty
)

// String names the model.
func (m Model) String() string {
	switch m {
	case Poisson:
		return "poisson"
	case Diurnal:
		return "diurnal"
	case Bursty:
		return "bursty"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Config parameterizes workload synthesis.
type Config struct {
	// Model is the arrival process.
	Model Model
	// Jobs is how many jobs to generate.
	Jobs int
	// Seed drives all sampling; identical configs generate identical
	// workloads.
	Seed int64
	// FirstID numbers the jobs FirstID, FirstID+1, ...
	FirstID int
	// Rate is the mean arrival rate in jobs per virtual second
	// (Poisson and Diurnal).
	Rate float64
	// Amplitude is the Diurnal day/night swing in [0, 1).
	Amplitude float64
	// BurstSize and BurstGap shape Bursty arrivals: BurstSize jobs at
	// t=0, BurstGap, 2*BurstGap, ...
	BurstSize int
	BurstGap  float64
	// MinGPUHours and MaxGPUHours bound the per-job demand sampled
	// uniformly between them. Defaults: [0.5, 8].
	MinGPUHours float64
	MaxGPUHours float64
	// WorkerChoices and WorkerWeights define the gang-size
	// distribution. Defaults mirror the trace package's Philly-style
	// skew, truncated to small gangs so a load test saturates the
	// queue, not the gang constraint: 1 GPU 50%, 2 GPUs 30%, 4 GPUs
	// 20%.
	WorkerChoices []int
	WorkerWeights []float64
}

func (c *Config) workerDistribution() ([]int, []float64) {
	if len(c.WorkerChoices) > 0 {
		return c.WorkerChoices, c.WorkerWeights
	}
	return []int{1, 2, 4}, []float64{0.5, 0.3, 0.2}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("loadgen: Jobs must be positive, got %d", c.Jobs)
	}
	if (c.Model == Poisson || c.Model == Diurnal) && c.Rate <= 0 {
		return fmt.Errorf("loadgen: %v model requires positive Rate, got %v", c.Model, c.Rate)
	}
	if c.Model == Diurnal && (c.Amplitude < 0 || c.Amplitude >= 1) {
		return fmt.Errorf("loadgen: Diurnal amplitude %v outside [0, 1)", c.Amplitude)
	}
	if c.Model == Bursty && (c.BurstSize <= 0 || c.BurstGap <= 0) {
		return fmt.Errorf("loadgen: Bursty model requires positive BurstSize and BurstGap, got %d/%v",
			c.BurstSize, c.BurstGap)
	}
	if c.MinGPUHours < 0 || c.MaxGPUHours < c.MinGPUHours {
		return fmt.Errorf("loadgen: bad GPU-hour range [%v, %v]", c.MinGPUHours, c.MaxGPUHours)
	}
	choices, weights := c.workerDistribution()
	if len(choices) != len(weights) {
		return fmt.Errorf("loadgen: %d worker choices but %d weights", len(choices), len(weights))
	}
	for _, w := range choices {
		if w <= 0 {
			return fmt.Errorf("loadgen: non-positive worker choice %d", w)
		}
	}
	return nil
}

// nextDiurnal samples the next arrival of a non-homogeneous Poisson
// process with rate(t) = rate x (1 + amplitude x sin(2 pi t / day)) by
// Lewis-Shedler thinning against the peak rate.
func nextDiurnal(rng *stats.Rand, now, rate, amplitude float64) float64 {
	const day = 86400.0
	peak := rate * (1 + amplitude)
	t := now
	for {
		t += rng.Exponential(peak)
		lambda := rate * (1 + amplitude*math.Sin(2*math.Pi*t/day))
		if rng.Float64() <= lambda/peak {
			return t
		}
	}
}

// Generate synthesizes the workload: arrival times from the configured
// model, job bodies sampled from the Table II catalog (uniform model
// choice, weighted gang size, uniform GPU-hour demand). Arrivals are
// nondecreasing and IDs sequential from FirstID.
func Generate(cfg Config) ([]*job.Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxGPUHours <= 0 {
		cfg.MinGPUHours, cfg.MaxGPUHours = 0.5, 8
	}
	rng := stats.NewRand(cfg.Seed)
	catalog := trace.Catalog()
	choices, weights := cfg.workerDistribution()

	jobs := make([]*job.Job, 0, cfg.Jobs)
	now := 0.0
	for i := 0; i < cfg.Jobs; i++ {
		switch cfg.Model {
		case Poisson:
			now += rng.Exponential(cfg.Rate)
		case Diurnal:
			now = nextDiurnal(rng, now, cfg.Rate, cfg.Amplitude)
		case Bursty:
			now = float64(i/cfg.BurstSize) * cfg.BurstGap
		}
		spec := catalog[rng.Intn(len(catalog))]
		workers := choices[rng.Choice(weights)]
		demand := rng.Uniform(cfg.MinGPUHours, cfg.MaxGPUHours)
		j, err := trace.FromDemand(cfg.FirstID+i, spec, workers, demand, now)
		if err != nil {
			return nil, fmt.Errorf("loadgen: job %d: %w", cfg.FirstID+i, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// Target is the submission surface Drive exercises; *service.Service
// satisfies it.
type Target interface {
	Submit(j *job.Job) error
}

// KeyedTarget is the idempotent submission surface: resubmitting the
// same key must return the original admission instead of a duplicate.
// *service.Service satisfies it; so does an HTTP client posting the
// key with the job spec.
type KeyedTarget interface {
	SubmitKeyed(key string, j *job.Job) (id int, deduped bool, err error)
}

// DriveOptions bounds a closed-loop run.
type DriveOptions struct {
	// MaxDuration stops the driver after this much wall time even if
	// jobs remain unsubmitted (0 = no limit).
	MaxDuration time.Duration
	// MaxRetries caps back-to-back busy retries for one job before the
	// driver gives up on the run (a stuck service). Default 1000.
	MaxRetries int
	// KeyFunc derives an idempotency key per job. When set and the
	// target implements KeyedTarget, Drive submits keyed and safely
	// retries ambiguous failures (verdict timeouts) as well as
	// backpressure: the key guarantees a retry after a lost ack cannot
	// double-admit.
	KeyFunc func(j *job.Job) string
}

// Result reports what a closed-loop drive sustained.
type Result struct {
	// Submitted counts jobs the service accepted.
	Submitted int `json:"submitted"`
	// Deduped counts keyed submissions answered from the service's
	// idempotency ledger — retries whose first attempt had actually
	// landed.
	Deduped int `json:"deduped"`
	// BusyRetries counts backpressure rejections that were retried.
	BusyRetries int `json:"busy_retries"`
	// DeadRetries counts verdict-timeout retries (keyed drives only).
	DeadRetries int `json:"dead_retries"`
	// Elapsed is the wall time the drive took.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// PerSecond is the sustained accepted-submission rate over the drive.
func (r Result) PerSecond() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Submitted) / r.Elapsed.Seconds()
}

// Drive submits the jobs to the target in order, as fast as the target
// admits them: each *BusyError backoff sleeps the suggested RetryAfter
// and resubmits the same job, so admission control is exercised without
// losing work. With DriveOptions.KeyFunc and a KeyedTarget, verdict
// timeouts (*service.DeadError) are retried too — the idempotency key
// makes the ambiguous retry safe. Any other error aborts the drive.
func Drive(t Target, jobs []*job.Job, opts DriveOptions) (res Result, err error) {
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = 1000
	}
	keyed, _ := t.(KeyedTarget)
	start := time.Now()
	defer func() { res.Elapsed = time.Since(start) }()
	for _, j := range jobs {
		retries := 0
		for {
			if opts.MaxDuration > 0 && time.Since(start) >= opts.MaxDuration {
				return res, nil
			}
			var deduped bool
			var err error
			if keyed != nil && opts.KeyFunc != nil {
				_, deduped, err = keyed.SubmitKeyed(opts.KeyFunc(j), j)
			} else {
				err = t.Submit(j)
			}
			if err == nil {
				if deduped {
					res.Deduped++
				} else {
					res.Submitted++
				}
				break
			}
			retries++
			if retries > opts.MaxRetries {
				return res, fmt.Errorf("loadgen: job %d failed %d times in a row: %w", j.ID, retries, err)
			}
			var busy *service.BusyError
			var dead *service.DeadError
			switch {
			case errors.As(err, &busy):
				res.BusyRetries++
				time.Sleep(busy.RetryAfter)
			case errors.As(err, &dead) && keyed != nil && opts.KeyFunc != nil:
				// Ambiguous: the mutation may have landed without its
				// verdict. The key dedups the resubmission either way.
				res.DeadRetries++
			default:
				return res, fmt.Errorf("loadgen: submit %v: %w", j, err)
			}
		}
	}
	return res, nil
}
