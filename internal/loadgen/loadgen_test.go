package loadgen

import (
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Model: Poisson, Jobs: 50, Seed: 7, Rate: 0.01}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 {
		t.Fatalf("generated %d jobs, want 50", len(a))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Arrival != b[i].Arrival ||
			a[i].Workers != b[i].Workers || a[i].Epochs != b[i].Epochs {
			t.Fatalf("job %d differs between identical configs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c, err := Generate(Config{Model: Poisson, Jobs: 50, Seed: 8, Rate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Arrival == c[i].Arrival {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical arrival sequences")
	}
}

func TestGenerateArrivalShapes(t *testing.T) {
	poisson, err := Generate(Config{Model: Poisson, Jobs: 200, Seed: 1, Rate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(poisson); i++ {
		if poisson[i].Arrival < poisson[i-1].Arrival {
			t.Fatalf("poisson arrivals not nondecreasing at %d", i)
		}
	}

	bursty, err := Generate(Config{Model: Bursty, Jobs: 64, Seed: 1, BurstSize: 16, BurstGap: 3600})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range bursty {
		want := float64(i/16) * 3600
		if j.Arrival != want {
			t.Fatalf("bursty job %d arrives at %v, want %v", i, j.Arrival, want)
		}
	}

	diurnal, err := Generate(Config{Model: Diurnal, Jobs: 100, Seed: 1, Rate: 0.02, Amplitude: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diurnal); i++ {
		if diurnal[i].Arrival < diurnal[i-1].Arrival {
			t.Fatalf("diurnal arrivals not nondecreasing at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{Model: Poisson, Jobs: 0, Rate: 1},
		{Model: Poisson, Jobs: 5},
		{Model: Diurnal, Jobs: 5, Rate: 1, Amplitude: 1},
		{Model: Bursty, Jobs: 5},
		{Model: Poisson, Jobs: 5, Rate: 1, MinGPUHours: 4, MaxGPUHours: 2},
		{Model: Poisson, Jobs: 5, Rate: 1, WorkerChoices: []int{1, 2}, WorkerWeights: []float64{1}},
		{Model: Poisson, Jobs: 5, Rate: 1, WorkerChoices: []int{0}, WorkerWeights: []float64{1}},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

func TestGenerateFirstID(t *testing.T) {
	jobs, err := Generate(Config{Model: Poisson, Jobs: 3, Seed: 1, Rate: 1, FirstID: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if j.ID != 100+i {
			t.Errorf("job %d has ID %d, want %d", i, j.ID, 100+i)
		}
	}
}

// stubTarget scripts Submit outcomes for driver tests.
type stubTarget struct {
	errs []error
	got  []int
}

func (s *stubTarget) Submit(j *job.Job) error {
	if len(s.errs) > 0 {
		err := s.errs[0]
		s.errs = s.errs[1:]
		if err != nil {
			return err
		}
	}
	s.got = append(s.got, j.ID)
	return nil
}

func TestDriveRetriesBusyThenSubmits(t *testing.T) {
	busy := &service.BusyError{RetryAfter: time.Microsecond}
	target := &stubTarget{errs: []error{busy, busy, nil}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 2, Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(target, jobs, DriveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 2 || res.BusyRetries != 2 {
		t.Errorf("result = %+v, want 2 submitted with 2 retries", res)
	}
	if len(target.got) != 2 {
		t.Errorf("target saw %d submissions, want 2", len(target.got))
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed not recorded")
	}
}

func TestDriveAbortsOnHardError(t *testing.T) {
	boom := errors.New("validation failed")
	target := &stubTarget{errs: []error{nil, boom}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 3, Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(target, jobs, DriveOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("Drive error = %v, want wrapped %v", err, boom)
	}
	if res.Submitted != 1 {
		t.Errorf("submitted %d before abort, want 1", res.Submitted)
	}
}

func TestDriveGivesUpOnStuckService(t *testing.T) {
	busy := &service.BusyError{RetryAfter: time.Microsecond}
	target := &stubTarget{errs: []error{busy, busy, busy, busy}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 1, Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(target, jobs, DriveOptions{MaxRetries: 3}); err == nil {
		t.Fatal("driver did not give up on a permanently busy target")
	}
}

// TestDriveAgainstLiveService is the in-repo version of the CI smoke:
// a closed-loop drive against a real service with the invariant oracle
// checking every round, sized to stay fast under -race.
func TestDriveAgainstLiveService(t *testing.T) {
	simOpts := sim.ValidatedOptions()
	svc, err := service.New(experiments.SimCluster(), policy.New(policy.SRTF, true), service.Options{
		Sim:        simOpts,
		QueueDepth: 8,
		RetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	jobs, err := Generate(Config{
		Model: Bursty, Jobs: 48, Seed: 3, BurstSize: 24, BurstGap: 7200,
		MinGPUHours: 0.2, MaxGPUHours: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(svc, jobs, DriveOptions{MaxDuration: 30 * time.Second})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if res.Submitted != len(jobs) {
		t.Fatalf("submitted %d of %d jobs", res.Submitted, len(jobs))
	}

	deadline := time.Now().Add(30 * time.Second)
	for svc.Snapshot().Completed < res.Submitted {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs completed in time", svc.Snapshot().Completed, res.Submitted)
		}
		time.Sleep(time.Millisecond)
	}
	report, err := svc.Stop()
	if err != nil {
		t.Fatalf("oracle or engine failure: %v", err)
	}
	if len(report.Jobs) != res.Submitted {
		t.Errorf("final report has %d jobs, want %d", len(report.Jobs), res.Submitted)
	}
	if rate := res.PerSecond(); rate <= 0 {
		t.Errorf("sustained rate = %v, want > 0", rate)
	}
}

// TestDriveAgainstFederatedService drives the same closed loop against
// the federated front door: the driver needs no changes (FedService
// satisfies Target and KeyedTarget), the router spreads the burst
// across members, and every accepted job completes on its owning
// member with per-member completions summing to the total.
func TestDriveAgainstFederatedService(t *testing.T) {
	members := make([]federation.MemberConfig, 2)
	for i := range members {
		members[i] = federation.MemberConfig{
			Name:      fmt.Sprintf("region%d", i),
			Cluster:   experiments.SimCluster(),
			Scheduler: policy.New(policy.SRTF, true),
			Sim:       sim.ValidatedOptions(),
		}
	}
	router, err := federation.NewRouter("least-queue")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.NewFed(members, router, service.FedOptions{
		Federation: federation.Options{Validate: true},
		QueueDepth: 8,
		RetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	jobs, err := Generate(Config{
		Model: Bursty, Jobs: 48, Seed: 3, BurstSize: 24, BurstGap: 7200,
		MinGPUHours: 0.2, MaxGPUHours: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(svc, jobs, DriveOptions{MaxDuration: 30 * time.Second})
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	if res.Submitted != len(jobs) {
		t.Fatalf("submitted %d of %d jobs", res.Submitted, len(jobs))
	}

	deadline := time.Now().Add(30 * time.Second)
	for svc.Snapshot().Completed < res.Submitted {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d jobs completed in time", svc.Snapshot().Completed, res.Submitted)
		}
		time.Sleep(time.Millisecond)
	}
	report, err := svc.Stop()
	if err != nil {
		t.Fatalf("oracle or federation failure: %v", err)
	}
	if len(report.Merged.Jobs) != res.Submitted {
		t.Errorf("merged report has %d jobs, want %d", len(report.Merged.Jobs), res.Submitted)
	}
	snap := svc.Snapshot()
	perMember := 0
	for i := range snap.Members {
		perMember += snap.Members[i].Snap.Completed
	}
	if perMember != snap.Completed {
		t.Errorf("member completions sum to %d, federation says %d", perMember, snap.Completed)
	}
}

// keyedStub scripts SubmitKeyed outcomes and records the keys it saw,
// replying deduped for any key it has already accepted.
type keyedStub struct {
	stubTarget
	accepted map[string]int
	keys     []string
}

func (s *keyedStub) SubmitKeyed(key string, j *job.Job) (int, bool, error) {
	s.keys = append(s.keys, key)
	if len(s.errs) > 0 {
		err := s.errs[0]
		s.errs = s.errs[1:]
		if err != nil {
			return 0, false, err
		}
	}
	if s.accepted == nil {
		s.accepted = make(map[string]int)
	}
	if id, ok := s.accepted[key]; ok {
		return id, true, nil
	}
	s.accepted[key] = j.ID
	s.got = append(s.got, j.ID)
	return j.ID, false, nil
}

// TestDriveKeyedRetriesDeadError: with an idempotency key a verdict
// timeout is retried instead of aborting the drive, and a retry whose
// first attempt landed counts as deduped rather than submitted.
func TestDriveKeyedRetriesDeadError(t *testing.T) {
	dead := &service.DeadError{Waited: time.Millisecond}
	target := &keyedStub{stubTarget: stubTarget{errs: []error{dead, nil, nil}}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 2, Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(target, jobs, DriveOptions{
		KeyFunc: func(j *job.Job) string { return "job-" + itoa(j.ID) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 2 || res.DeadRetries != 1 {
		t.Errorf("result = %+v, want 2 submitted with 1 dead retry", res)
	}
	if len(target.keys) != 3 {
		t.Errorf("target saw keys %v, want 3 attempts", target.keys)
	}
	if target.keys[0] != target.keys[1] {
		t.Errorf("retry changed the key: %q then %q", target.keys[0], target.keys[1])
	}
}

// TestDriveKeyedCountsDeduped: a key the service already accepted (the
// ack was lost, the work was not) lands in Deduped, not Submitted.
func TestDriveKeyedCountsDeduped(t *testing.T) {
	target := &keyedStub{accepted: map[string]int{"job-0": 100}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 2, Seed: 1, Rate: 1, FirstID: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Drive(target, jobs, DriveOptions{
		KeyFunc: func(j *job.Job) string { return "job-" + itoa(j.ID) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 1 || res.Deduped != 1 {
		t.Errorf("result = %+v, want 1 submitted + 1 deduped", res)
	}
}

// TestDriveUnkeyedDeadErrorAborts: without a key the ambiguous timeout
// must abort rather than risk double-admission.
func TestDriveUnkeyedDeadErrorAborts(t *testing.T) {
	dead := &service.DeadError{Waited: time.Millisecond}
	target := &stubTarget{errs: []error{dead}}
	jobs, err := Generate(Config{Model: Poisson, Jobs: 1, Seed: 1, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(target, jobs, DriveOptions{}); err == nil {
		t.Fatal("unkeyed drive swallowed a verdict timeout")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
