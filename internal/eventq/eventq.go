// Package eventq implements the priority queues used by the simulator
// and the schedulers: a time-ordered event queue for discrete-event
// processing and a generic indexed min-heap that supports updating an
// element's priority in place (needed for Tiresias' attained-service
// queues and Gavel's priority rounds).
package eventq

import (
	"container/heap"
	"sort"

	"repro/internal/bug"
)

// Event is a timestamped payload in an EventQueue. Ties on Time are
// broken by ascending Seq (FIFO among simultaneous events) so the
// simulation is deterministic.
type Event struct {
	Time    float64
	Seq     int
	Payload interface{}
}

// EventQueue is a min-heap of Events ordered by (Time, Seq). The zero
// value is ready to use.
type EventQueue struct {
	h   eventHeap
	seq int
}

type eventHeap []Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time < h[j].Time {
		return true
	}
	if h[i].Time > h[j].Time {
		return false
	}
	return h[i].Seq < h[j].Seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Push schedules payload at the given time.
func (q *EventQueue) Push(time float64, payload interface{}) {
	q.seq++
	heap.Push(&q.h, Event{Time: time, Seq: q.seq, Payload: payload})
}

// Pop removes and returns the earliest event. It panics on an empty
// queue; check Len first.
func (q *EventQueue) Pop() Event {
	if len(q.h) == 0 {
		bug.Failf("eventq: Pop on empty EventQueue")
	}
	return heap.Pop(&q.h).(Event)
}

// Peek returns the earliest event without removing it. It panics on an
// empty queue.
func (q *EventQueue) Peek() Event {
	if len(q.h) == 0 {
		bug.Failf("eventq: Peek on empty EventQueue")
	}
	return q.h[0]
}

// Len reports the number of pending events.
func (q *EventQueue) Len() int { return len(q.h) }

// Snapshot returns a copy of every pending event in pop order — (Time,
// Seq) ascending — without disturbing the queue. Checkpointing uses it
// to serialize the queue; re-pushing the events in this order onto a
// fresh queue reproduces the original pop order (fresh sequence numbers
// are assigned in the same relative order).
func (q *EventQueue) Snapshot() []Event {
	out := append([]Event(nil), q.h...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time < out[j].Time {
			return true
		}
		if out[i].Time > out[j].Time {
			return false
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Indexed is a min-heap of integer IDs keyed by a float64 priority,
// supporting O(log n) priority updates and removals by ID. Lower
// priority values pop first; ties break by ascending ID.
type Indexed struct {
	ids  []int
	prio map[int]float64
	pos  map[int]int
}

// NewIndexed returns an empty indexed heap.
func NewIndexed() *Indexed {
	return &Indexed{prio: make(map[int]float64), pos: make(map[int]int)}
}

// Len reports the number of elements.
func (x *Indexed) Len() int { return len(x.ids) }

func (x *Indexed) less(i, j int) bool {
	pi, pj := x.prio[x.ids[i]], x.prio[x.ids[j]]
	if pi < pj {
		return true
	}
	if pi > pj {
		return false
	}
	return x.ids[i] < x.ids[j]
}

func (x *Indexed) swap(i, j int) {
	x.ids[i], x.ids[j] = x.ids[j], x.ids[i]
	x.pos[x.ids[i]] = i
	x.pos[x.ids[j]] = j
}

func (x *Indexed) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !x.less(i, parent) {
			break
		}
		x.swap(i, parent)
		i = parent
	}
}

func (x *Indexed) down(i int) {
	n := len(x.ids)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && x.less(l, smallest) {
			smallest = l
		}
		if r < n && x.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		x.swap(i, smallest)
		i = smallest
	}
}

// Push inserts id with the given priority. It panics if id is already
// present; use Update instead.
func (x *Indexed) Push(id int, priority float64) {
	if _, ok := x.pos[id]; ok {
		bug.Failf("eventq: duplicate id %d", id)
	}
	x.ids = append(x.ids, id)
	x.prio[id] = priority
	x.pos[id] = len(x.ids) - 1
	x.up(len(x.ids) - 1)
}

// Pop removes and returns the id with the smallest priority, and that
// priority. It panics on an empty heap.
func (x *Indexed) Pop() (int, float64) {
	if len(x.ids) == 0 {
		bug.Failf("eventq: Pop on empty Indexed heap")
	}
	id := x.ids[0]
	p := x.prio[id]
	x.Remove(id)
	return id, p
}

// Peek returns the minimum id and priority without removing it. It
// panics on an empty heap.
func (x *Indexed) Peek() (int, float64) {
	if len(x.ids) == 0 {
		bug.Failf("eventq: Peek on empty Indexed heap")
	}
	return x.ids[0], x.prio[x.ids[0]]
}

// Contains reports whether id is in the heap.
func (x *Indexed) Contains(id int) bool {
	_, ok := x.pos[id]
	return ok
}

// Priority returns the priority of id and whether it is present.
func (x *Indexed) Priority(id int) (float64, bool) {
	p, ok := x.prio[id]
	return p, ok
}

// Update changes id's priority, restoring heap order. It panics if id is
// absent.
func (x *Indexed) Update(id int, priority float64) {
	i, ok := x.pos[id]
	if !ok {
		bug.Failf("eventq: Update of absent id %d", id)
	}
	x.prio[id] = priority
	x.up(i)
	x.down(x.pos[id])
}

// Remove deletes id from the heap. It panics if id is absent.
func (x *Indexed) Remove(id int) {
	i, ok := x.pos[id]
	if !ok {
		bug.Failf("eventq: Remove of absent id %d", id)
	}
	last := len(x.ids) - 1
	x.swap(i, last)
	x.ids = x.ids[:last]
	delete(x.pos, id)
	delete(x.prio, id)
	if i < last {
		x.up(i)
		x.down(x.pos[x.ids[i]])
	}
}
