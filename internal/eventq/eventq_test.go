package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventQueueOrdersByTime(t *testing.T) {
	var q EventQueue
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for q.Len() > 0 {
		got = append(got, q.Pop().Payload.(string))
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	var q EventQueue
	for i := 0; i < 5; i++ {
		q.Push(1.0, i)
	}
	for i := 0; i < 5; i++ {
		if got := q.Pop().Payload.(int); got != i {
			t.Fatalf("tie-break order: got %d at position %d", got, i)
		}
	}
}

func TestEventQueuePeek(t *testing.T) {
	var q EventQueue
	q.Push(5, "x")
	q.Push(2, "y")
	if q.Peek().Payload.(string) != "y" {
		t.Error("Peek did not return earliest")
	}
	if q.Len() != 2 {
		t.Error("Peek consumed an event")
	}
}

func TestEventQueuePopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue did not panic")
		}
	}()
	var q EventQueue
	q.Pop()
}

func TestEventQueuePeekEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Peek on empty queue did not panic")
		}
	}()
	var q EventQueue
	q.Peek()
}

func TestEventQueueSortedProperty(t *testing.T) {
	prop := func(times []float64) bool {
		var q EventQueue
		for _, tm := range times {
			q.Push(tm, nil)
		}
		prev := math.Inf(-1)
		for q.Len() > 0 {
			e := q.Pop()
			if e.Time < prev {
				return false
			}
			prev = e.Time
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexedBasicOrder(t *testing.T) {
	h := NewIndexed()
	h.Push(10, 3)
	h.Push(20, 1)
	h.Push(30, 2)
	id, p := h.Pop()
	if id != 20 || p != 1 {
		t.Fatalf("Pop = (%d,%v), want (20,1)", id, p)
	}
	id, _ = h.Pop()
	if id != 30 {
		t.Fatalf("second Pop = %d, want 30", id)
	}
}

func TestIndexedTieBreakByID(t *testing.T) {
	h := NewIndexed()
	h.Push(7, 1)
	h.Push(3, 1)
	h.Push(5, 1)
	want := []int{3, 5, 7}
	for _, w := range want {
		id, _ := h.Pop()
		if id != w {
			t.Fatalf("tie break: got %d, want %d", id, w)
		}
	}
}

func TestIndexedUpdate(t *testing.T) {
	h := NewIndexed()
	h.Push(1, 10)
	h.Push(2, 20)
	h.Update(2, 5)
	id, _ := h.Peek()
	if id != 2 {
		t.Errorf("after Update, min = %d, want 2", id)
	}
	h.Update(2, 50)
	id, _ = h.Peek()
	if id != 1 {
		t.Errorf("after second Update, min = %d, want 1", id)
	}
}

func TestIndexedRemove(t *testing.T) {
	h := NewIndexed()
	for i := 0; i < 10; i++ {
		h.Push(i, float64(i))
	}
	h.Remove(0)
	h.Remove(5)
	if h.Contains(0) || h.Contains(5) {
		t.Error("removed ids still present")
	}
	var got []int
	for h.Len() > 0 {
		id, _ := h.Pop()
		got = append(got, id)
	}
	want := []int{1, 2, 3, 4, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIndexedDuplicatePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Push did not panic")
		}
	}()
	h := NewIndexed()
	h.Push(1, 1)
	h.Push(1, 2)
}

func TestIndexedAbsentUpdatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Update of absent id did not panic")
		}
	}()
	NewIndexed().Update(9, 1)
}

func TestIndexedAbsentRemovePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Remove of absent id did not panic")
		}
	}()
	NewIndexed().Remove(9)
}

func TestIndexedPriorityLookup(t *testing.T) {
	h := NewIndexed()
	h.Push(4, 2.5)
	if p, ok := h.Priority(4); !ok || p != 2.5 {
		t.Errorf("Priority(4) = %v,%v", p, ok)
	}
	if _, ok := h.Priority(5); ok {
		t.Error("Priority of absent id reported present")
	}
}

func TestIndexedRandomizedHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	h := NewIndexed()
	ref := map[int]float64{}
	for op := 0; op < 5000; op++ {
		switch {
		case len(ref) == 0 || rng.Float64() < 0.5:
			id := rng.Intn(1000)
			if _, ok := ref[id]; ok {
				h.Update(id, rng.Float64())
				ref[id] = 0 // placeholder; fixed below
				p, _ := h.Priority(id)
				ref[id] = p
			} else {
				p := rng.Float64()
				h.Push(id, p)
				ref[id] = p
			}
		case rng.Float64() < 0.5:
			// remove random existing
			for id := range ref {
				h.Remove(id)
				delete(ref, id)
				break
			}
		default:
			id, p := h.Pop()
			want, ok := ref[id]
			if !ok {
				t.Fatal("popped unknown id")
			}
			if p != want {
				t.Fatalf("popped priority %v, want %v", p, want)
			}
			for other, po := range ref {
				if po < p || (po == p && other < id) {
					t.Fatalf("pop violated min property: popped (%d,%v) but (%d,%v) present", id, p, other, po)
				}
			}
			delete(ref, id)
		}
	}
	// drain and check global order
	var popped []float64
	for h.Len() > 0 {
		_, p := h.Pop()
		popped = append(popped, p)
	}
	if !sort.Float64sAreSorted(popped) {
		t.Error("drained priorities not sorted")
	}
}
