package checkpoint

import (
	"math"
	"testing"
)

// TestTableIVExact verifies the calibration reproduces the paper's
// Table IV percentages at a 6-minute round.
func TestTableIVExact(t *testing.T) {
	cases := []struct {
		model         string
		with, without float64
	}{
		{"ResNet-50", 0.0210, 0.0033},
		{"ResNet-18", 0.0129, 0.0021},
		{"LSTM", 0.0201, 0.0087},
		{"CycleGAN", 0.0068, 0.0013},
		{"Transformer", 0.0071, 0.0017},
	}
	for _, c := range cases {
		if got := Overhead(c.model, RoundSeconds, true); math.Abs(got-c.with) > 1e-9 {
			t.Errorf("%s with realloc: %v, want %v", c.model, got, c.with)
		}
		if got := Overhead(c.model, RoundSeconds, false); math.Abs(got-c.without) > 1e-9 {
			t.Errorf("%s without realloc: %v, want %v", c.model, got, c.without)
		}
	}
}

func TestUnknownModelFallsBackToFlatDelay(t *testing.T) {
	c := Lookup("GPT-7")
	if c.Save != 0 || c.Restore != DefaultDelay {
		t.Errorf("unknown model cost = %+v", c)
	}
	if got := Delay("GPT-7", true); got != DefaultDelay {
		t.Errorf("Delay unknown with realloc = %v", got)
	}
	if got := Delay("GPT-7", false); got != 0 {
		t.Errorf("Delay unknown without realloc = %v", got)
	}
}

func TestDelayComposition(t *testing.T) {
	for _, m := range Models() {
		c := Lookup(m)
		if got := Delay(m, true); math.Abs(got-(c.Save+c.Restore)) > 1e-12 {
			t.Errorf("%s Delay(realloc) = %v", m, got)
		}
		if got := Delay(m, false); got != c.Save {
			t.Errorf("%s Delay(!realloc) = %v", m, got)
		}
	}
}

func TestOverheadScalesInverselyWithRound(t *testing.T) {
	short := Overhead("ResNet-50", 180, true)
	long := Overhead("ResNet-50", 720, true)
	if math.Abs(short/long-4) > 1e-9 {
		t.Errorf("overhead ratio = %v, want 4", short/long)
	}
}

func TestOverheadPanicsOnBadRound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Overhead(0) did not panic")
		}
	}()
	Overhead("LSTM", 0, true)
}

func TestReallocAlwaysCostsMore(t *testing.T) {
	for _, m := range Models() {
		if Delay(m, true) <= Delay(m, false) {
			t.Errorf("%s: realloc delay not greater than save-only delay", m)
		}
	}
}

func TestAllCostsPositive(t *testing.T) {
	for _, m := range Models() {
		c := Lookup(m)
		if c.Save <= 0 || c.Restore <= 0 {
			t.Errorf("%s has non-positive cost %+v", m, c)
		}
	}
}

func TestModelsListMatchesTable(t *testing.T) {
	if len(Models()) != 5 {
		t.Errorf("Models() = %v, want 5 entries", Models())
	}
	for _, m := range Models() {
		if _, ok := table[m]; !ok {
			t.Errorf("model %s missing from table", m)
		}
	}
}
