// Package checkpoint models the cost of Hadar's preemptive
// checkpoint-restart mechanism. When a job's allocation changes at a
// round boundary, its latest model parameters are saved to stable
// storage and reloaded on the new workers; when the allocation is
// unchanged, only the periodic safety checkpoint (a save) is taken.
//
// The per-model constants are calibrated so that, with the paper's
// 6-minute round, the overhead percentages match Table IV exactly:
//
//	Model         w/ realloc   w/o realloc
//	ResNet-50     2.10%        0.33%
//	ResNet-18     1.29%        0.21%
//	LSTM          2.01%        0.87%
//	CycleGAN      0.68%        0.13%
//	Transformer   0.71%        0.17%
//
// The overhead is dominated by serializing the model to the ~1000 MiB/s
// SSD described in the paper's prototype section, so it scales with
// model size, not with cluster size.
package checkpoint

import "repro/internal/bug"

// Cost holds the time (seconds) a model spends on checkpoint traffic.
type Cost struct {
	// Save is the time to serialize parameters to stable storage. Paid
	// every round (the periodic safety checkpoint).
	Save float64
	// Restore is the additional time to load parameters and warm up on
	// the new workers. Paid only when the allocation changed.
	Restore float64
}

// RoundSeconds is the paper's default scheduling round (6 minutes).
const RoundSeconds = 360.0

// DefaultDelay is the flat checkpoint-restart penalty the paper's
// simulator applies to every job that received a new allocation
// ("a 10-second delay for each job that has received a new allocation").
const DefaultDelay = 10.0

// table is derived from Table IV at a 360 s round:
// Save = without% x 360; Restore = (with% - without%) x 360.
var table = map[string]Cost{
	"ResNet-50":   {Save: 0.0033 * RoundSeconds, Restore: (0.0210 - 0.0033) * RoundSeconds},
	"ResNet-18":   {Save: 0.0021 * RoundSeconds, Restore: (0.0129 - 0.0021) * RoundSeconds},
	"LSTM":        {Save: 0.0087 * RoundSeconds, Restore: (0.0201 - 0.0087) * RoundSeconds},
	"CycleGAN":    {Save: 0.0013 * RoundSeconds, Restore: (0.0068 - 0.0013) * RoundSeconds},
	"Transformer": {Save: 0.0017 * RoundSeconds, Restore: (0.0071 - 0.0017) * RoundSeconds},
}

// Lookup returns the checkpoint cost for a model name. Unknown models
// fall back to a flat DefaultDelay restore with no periodic save, which
// matches the simulator default in the paper.
func Lookup(model string) Cost {
	if c, ok := table[model]; ok {
		return c
	}
	return Cost{Save: 0, Restore: DefaultDelay}
}

// Models returns the model names with calibrated costs.
func Models() []string {
	return []string{"ResNet-50", "ResNet-18", "LSTM", "CycleGAN", "Transformer"}
}

// Overhead returns the fraction of a round of the given length lost to
// checkpointing, with or without a reallocation. This is the quantity
// Table IV reports (at roundSeconds = 360).
func Overhead(model string, roundSeconds float64, realloc bool) float64 {
	if roundSeconds <= 0 {
		bug.Failf("checkpoint: non-positive round length %v", roundSeconds)
	}
	c := Lookup(model)
	t := c.Save
	if realloc {
		t += c.Restore
	}
	return t / roundSeconds
}

// Delay returns the stall (seconds) a job experiences at a round
// boundary: save + restore when the allocation changed, save only
// otherwise.
func Delay(model string, realloc bool) float64 {
	c := Lookup(model)
	if realloc {
		return c.Save + c.Restore
	}
	return c.Save
}
