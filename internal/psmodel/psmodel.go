// Package psmodel implements the data-parallel parameter-server
// training model of the paper's Section II: each worker holds a model
// replica, computes gradients over mini-batches, and synchronizes with
// parameter servers every iteration. The package derives a job's
// per-accelerator throughput X_j^r — the scheduler input the paper
// takes from measurements — from first principles:
//
//	iterationTime(r) = computeTime(r) + (1 - overlap) x syncTime
//	computeTime(r)   = batch FLOPs / accelerator throughput(r)
//	syncTime         = 2 x modelBytes / min(workerBW, psAggregateBW/W)
//
// so the heterogeneity ratios in the workload catalog
// (internal/trace) can be validated against a physical explanation, and
// what-if analyses (faster networks, bigger batches) become possible.
package psmodel

import (
	"fmt"
	"math"

	"repro/internal/gpu"
)

// Accelerator describes a device type's sustained training throughput.
type Accelerator struct {
	Type gpu.Type
	// TFLOPS is the sustained mixed-precision training throughput in
	// teraFLOP/s. Values approximate public benchmark results.
	TFLOPS float64
	// MemGB bounds the per-device batch size (not enforced here but
	// reported by Fits).
	MemGB float64
}

// DefaultAccelerators returns sustained-throughput estimates for the
// five device types in the evaluation. Absolute values matter less than
// ratios; these track public per-device training benchmarks.
func DefaultAccelerators() map[gpu.Type]Accelerator {
	return map[gpu.Type]Accelerator{
		gpu.V100: {Type: gpu.V100, TFLOPS: 112, MemGB: 32},
		gpu.P100: {Type: gpu.P100, TFLOPS: 19, MemGB: 16},
		gpu.K80:  {Type: gpu.K80, TFLOPS: 4.1, MemGB: 12},
		gpu.T4:   {Type: gpu.T4, TFLOPS: 40, MemGB: 16},
		gpu.K520: {Type: gpu.K520, TFLOPS: 2.4, MemGB: 4},
	}
}

// Model describes a DNN's per-iteration work.
type Model struct {
	Name string
	// ParamBytes is the model size pushed/pulled per synchronization.
	ParamBytes float64
	// FLOPsPerSample is the forward+backward cost of one training
	// sample.
	FLOPsPerSample float64
	// BatchPerWorker is the per-worker mini-batch size.
	BatchPerWorker int
	// ComputeEfficiency scales the accelerator's peak to this model's
	// achieved fraction (kernel mix, memory-bound phases).
	ComputeEfficiency float64
	// Overlap is the fraction of synchronization traffic hidden under
	// backpropagation (wait-free pipelining); only (1-Overlap) of the
	// sync time is exposed in the iteration latency.
	Overlap float64
}

// DefaultModels returns per-iteration cost models for the Table II
// workloads, calibrated so that the derived throughput ratios track the
// catalog in internal/trace (e.g. ResNet-50's ~10x V100:K80 gap, the
// smaller gaps of communication-bound models).
func DefaultModels() []Model {
	return []Model{
		{Name: "ResNet-50", ParamBytes: 102e6, FLOPsPerSample: 8.2e9,
			BatchPerWorker: 64, ComputeEfficiency: 0.55, Overlap: 0.91},
		{Name: "ResNet-18", ParamBytes: 45e6, FLOPsPerSample: 1.8e9,
			BatchPerWorker: 128, ComputeEfficiency: 0.50, Overlap: 0.75},
		{Name: "LSTM", ParamBytes: 120e6, FLOPsPerSample: 2.6e9,
			BatchPerWorker: 80, ComputeEfficiency: 0.30, Overlap: 0.80},
		{Name: "CycleGAN", ParamBytes: 45e6, FLOPsPerSample: 55e9,
			BatchPerWorker: 4, ComputeEfficiency: 0.45, Overlap: 0.60},
		{Name: "Transformer", ParamBytes: 65e6, FLOPsPerSample: 2.2e9,
			BatchPerWorker: 96, ComputeEfficiency: 0.40, Overlap: 0.80},
	}
}

// ModelByName finds a default model.
func ModelByName(name string) (Model, bool) {
	for _, m := range DefaultModels() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Network describes the synchronization fabric between workers and
// parameter servers.
type Network struct {
	// WorkerGbps is each worker's NIC bandwidth in gigabits/second.
	WorkerGbps float64
	// PSAggregateGbps is the total parameter-server ingest bandwidth.
	PSAggregateGbps float64
	// LatencySeconds is the fixed per-synchronization round-trip.
	LatencySeconds float64
}

// DefaultNetwork approximates the paper's AWS prototype fabric (10-25
// GbE instances, a handful of parameter servers).
func DefaultNetwork() Network {
	return Network{WorkerGbps: 10, PSAggregateGbps: 40, LatencySeconds: 0.002}
}

// Config bundles the pieces of the training model.
type Config struct {
	Accelerators map[gpu.Type]Accelerator
	Network      Network
	// Workers is the gang size W_j (sync cost grows with it).
	Workers int
}

// DefaultConfig returns the calibrated defaults for a gang of the given
// size.
func DefaultConfig(workers int) Config {
	return Config{
		Accelerators: DefaultAccelerators(),
		Network:      DefaultNetwork(),
		Workers:      workers,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("psmodel: non-positive gang size %d", c.Workers)
	}
	if len(c.Accelerators) == 0 {
		return fmt.Errorf("psmodel: no accelerators")
	}
	if c.Network.WorkerGbps <= 0 || c.Network.PSAggregateGbps <= 0 {
		return fmt.Errorf("psmodel: non-positive network bandwidth")
	}
	return nil
}

// ComputeTime returns one iteration's gradient computation time for the
// model on the accelerator, in seconds.
func ComputeTime(m Model, a Accelerator) float64 {
	if a.TFLOPS <= 0 || m.ComputeEfficiency <= 0 {
		return math.Inf(1)
	}
	flops := m.FLOPsPerSample * float64(m.BatchPerWorker)
	return flops / (a.TFLOPS * 1e12 * m.ComputeEfficiency)
}

// SyncTime returns one iteration's parameter synchronization time: each
// worker pushes gradients and pulls fresh parameters (2 x ParamBytes),
// bottlenecked by either its own NIC or its share of the PS ingest
// bandwidth when the whole gang synchronizes at once.
func SyncTime(m Model, net Network, workers int) float64 {
	perWorkerBps := net.WorkerGbps * 1e9 / 8
	psShareBps := net.PSAggregateGbps * 1e9 / 8 / float64(workers)
	bw := math.Min(perWorkerBps, psShareBps)
	if bw <= 0 {
		return math.Inf(1)
	}
	return 2*m.ParamBytes/bw + net.LatencySeconds
}

// IterationTime returns the full per-iteration latency on the given
// accelerator type under the config.
func (c Config) IterationTime(m Model, t gpu.Type) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	a, ok := c.Accelerators[t]
	if !ok {
		return 0, fmt.Errorf("psmodel: no accelerator profile for %v", t)
	}
	exposed := SyncTime(m, c.Network, c.Workers) * (1 - m.Overlap)
	return ComputeTime(m, a) + exposed, nil
}

// Throughput returns X_j^r: iterations per second per worker for the
// model on accelerator type t.
func (c Config) Throughput(m Model, t gpu.Type) (float64, error) {
	it, err := c.IterationTime(m, t)
	if err != nil {
		return 0, err
	}
	if it <= 0 || math.IsInf(it, 1) {
		return 0, nil
	}
	return 1 / it, nil
}

// ThroughputMatrix derives the full X_j^r profile for a model across
// every configured accelerator type, the scheduler input of Table I.
func (c Config) ThroughputMatrix(m Model) (map[gpu.Type]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	out := make(map[gpu.Type]float64, len(c.Accelerators))
	for t := range c.Accelerators {
		x, err := c.Throughput(m, t)
		if err != nil {
			return nil, err
		}
		out[t] = x
	}
	return out, nil
}

// SpeedupRatio returns throughput(fast)/throughput(slow), the
// heterogeneity factor the paper motivates with (ResNet-50 at ~10x for
// V100:K80 while communication-bound models see much less).
func (c Config) SpeedupRatio(m Model, fast, slow gpu.Type) (float64, error) {
	xf, err := c.Throughput(m, fast)
	if err != nil {
		return 0, err
	}
	xs, err := c.Throughput(m, slow)
	if err != nil {
		return 0, err
	}
	if xs <= 0 {
		return math.Inf(1), nil
	}
	return xf / xs, nil
}

// CommunicationFraction returns the share of an iteration spent in
// synchronization on the given type — the quantity that explains why
// fast accelerators help some models less (Amdahl on the sync barrier).
func (c Config) CommunicationFraction(m Model, t gpu.Type) (float64, error) {
	it, err := c.IterationTime(m, t)
	if err != nil {
		return 0, err
	}
	if it <= 0 {
		return 0, nil
	}
	return SyncTime(m, c.Network, c.Workers) * (1 - m.Overlap) / it, nil
}
