package psmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func TestDefaultsValid(t *testing.T) {
	cfg := DefaultConfig(2)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(DefaultModels()) != 5 {
		t.Errorf("DefaultModels = %d entries, want 5", len(DefaultModels()))
	}
	for _, m := range DefaultModels() {
		if m.ParamBytes <= 0 || m.FLOPsPerSample <= 0 || m.BatchPerWorker <= 0 ||
			m.ComputeEfficiency <= 0 || m.ComputeEfficiency > 1 ||
			m.Overlap < 0 || m.Overlap >= 1 {
			t.Errorf("model %s has invalid parameters: %+v", m.Name, m)
		}
	}
}

func TestModelByName(t *testing.T) {
	if _, ok := ModelByName("ResNet-50"); !ok {
		t.Error("ResNet-50 missing")
	}
	if _, ok := ModelByName("GPT-5"); ok {
		t.Error("unknown model found")
	}
}

func TestComputeTimeOrdering(t *testing.T) {
	acc := DefaultAccelerators()
	m, _ := ModelByName("ResNet-50")
	v := ComputeTime(m, acc[gpu.V100])
	p := ComputeTime(m, acc[gpu.P100])
	k := ComputeTime(m, acc[gpu.K80])
	if !(v < p && p < k) {
		t.Errorf("compute times not ordered: V100=%v P100=%v K80=%v", v, p, k)
	}
}

func TestSyncTimeIndependentOfAccelerator(t *testing.T) {
	m, _ := ModelByName("LSTM")
	net := DefaultNetwork()
	if SyncTime(m, net, 2) != SyncTime(m, net, 2) {
		t.Error("sync time not deterministic")
	}
	// Larger gangs contend on PS bandwidth: sync never gets faster.
	if SyncTime(m, net, 8) < SyncTime(m, net, 2) {
		t.Error("sync time decreased with gang size")
	}
}

func TestResNet50HeterogeneityDerivation(t *testing.T) {
	// The derived V100:K80 speedup for ResNet-50 should land near the
	// ~10x the paper quotes from measurements.
	cfg := DefaultConfig(1)
	m, _ := ModelByName("ResNet-50")
	ratio, err := cfg.SpeedupRatio(m, gpu.V100, gpu.K80)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 6 || ratio > 14 {
		t.Errorf("ResNet-50 derived V100:K80 speedup = %.1f, want ~10", ratio)
	}
}

func TestCommunicationBoundModelsSeeSmallerSpeedups(t *testing.T) {
	// LSTM's sync-heavy iterations should yield a smaller V100:K80
	// speedup than compute-bound ResNet-50 — the heterogeneity spread
	// the paper's motivation relies on.
	cfg := DefaultConfig(4)
	resnet, _ := ModelByName("ResNet-50")
	lstm, _ := ModelByName("LSTM")
	rRatio, err := cfg.SpeedupRatio(resnet, gpu.V100, gpu.K80)
	if err != nil {
		t.Fatal(err)
	}
	lRatio, err := cfg.SpeedupRatio(lstm, gpu.V100, gpu.K80)
	if err != nil {
		t.Fatal(err)
	}
	if lRatio >= rRatio {
		t.Errorf("LSTM speedup %.1f not smaller than ResNet-50's %.1f", lRatio, rRatio)
	}
}

func TestCommunicationFractionGrowsWithGang(t *testing.T) {
	m, _ := ModelByName("Transformer")
	small := DefaultConfig(1)
	big := DefaultConfig(16)
	fs, err := small.CommunicationFraction(m, gpu.V100)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := big.CommunicationFraction(m, gpu.V100)
	if err != nil {
		t.Fatal(err)
	}
	if !(fb > fs) {
		t.Errorf("comm fraction did not grow with gang: 1 worker %.3f vs 16 workers %.3f", fs, fb)
	}
	if fs <= 0 || fb >= 1 {
		t.Errorf("comm fractions out of (0,1): %v %v", fs, fb)
	}
}

func TestThroughputMatrixCompleteAndPositive(t *testing.T) {
	cfg := DefaultConfig(2)
	for _, m := range DefaultModels() {
		matrix, err := cfg.ThroughputMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(matrix) != len(cfg.Accelerators) {
			t.Errorf("%s matrix has %d types", m.Name, len(matrix))
		}
		for typ, x := range matrix {
			if x <= 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				t.Errorf("%s on %v: invalid throughput %v", m.Name, typ, x)
			}
		}
		if matrix[gpu.V100] <= matrix[gpu.K80] {
			t.Errorf("%s: V100 not faster than K80", m.Name)
		}
	}
}

func TestDerivedRatiosTrackCatalogDirection(t *testing.T) {
	// For each model, the derived V100:P100 and V100:K80 ratios should
	// exceed 1 and the K80 gap should exceed the P100 gap, matching the
	// workload catalog's ordering.
	cfg := DefaultConfig(2)
	for _, m := range DefaultModels() {
		p, err := cfg.SpeedupRatio(m, gpu.V100, gpu.P100)
		if err != nil {
			t.Fatal(err)
		}
		k, err := cfg.SpeedupRatio(m, gpu.V100, gpu.K80)
		if err != nil {
			t.Fatal(err)
		}
		if !(k > p && p > 1) {
			t.Errorf("%s ratios unordered: V100:P100=%.2f V100:K80=%.2f", m.Name, p, k)
		}
	}
}

func TestIterationTimeErrors(t *testing.T) {
	cfg := DefaultConfig(0)
	m, _ := ModelByName("LSTM")
	if _, err := cfg.IterationTime(m, gpu.V100); err == nil {
		t.Error("zero gang accepted")
	}
	cfg = DefaultConfig(1)
	cfg.Accelerators = map[gpu.Type]Accelerator{gpu.V100: {Type: gpu.V100, TFLOPS: 100}}
	if _, err := cfg.IterationTime(m, gpu.K80); err == nil {
		t.Error("missing accelerator profile accepted")
	}
}

func TestValidateRejectsBadNetwork(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Network.WorkerGbps = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero worker bandwidth accepted")
	}
}

// Property: throughput decreases (or stays equal) as gang size grows,
// because the synchronization barrier never gets cheaper.
func TestThroughputMonotoneInGangProperty(t *testing.T) {
	m, _ := ModelByName("CycleGAN")
	prop := func(a, b uint8) bool {
		w1 := int(a%16) + 1
		w2 := w1 + int(b%16) + 1
		x1, err1 := DefaultConfig(w1).Throughput(m, gpu.P100)
		x2, err2 := DefaultConfig(w2).Throughput(m, gpu.P100)
		if err1 != nil || err2 != nil {
			return false
		}
		return x2 <= x1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: a faster network never lowers throughput.
func TestThroughputMonotoneInBandwidthProperty(t *testing.T) {
	m, _ := ModelByName("Transformer")
	prop := func(g uint8) bool {
		base := DefaultConfig(4)
		fast := DefaultConfig(4)
		fast.Network.WorkerGbps = base.Network.WorkerGbps * (1 + float64(g%10))
		fast.Network.PSAggregateGbps = base.Network.PSAggregateGbps * (1 + float64(g%10))
		xb, err1 := base.Throughput(m, gpu.V100)
		xf, err2 := fast.Throughput(m, gpu.V100)
		return err1 == nil && err2 == nil && xf >= xb-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
