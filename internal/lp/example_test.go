package lp_test

import (
	"fmt"

	"repro/internal/lp"
)

// Example solves a two-variable production problem:
// maximize 5x + 4y subject to 6x + 4y <= 24 and x + 2y <= 6.
func Example() {
	sol, err := lp.Solve(lp.Problem{
		C: []float64{5, 4},
		A: [][]float64{{6, 4}, {1, 2}},
		B: []float64{24, 6},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%v x=%.1f y=%.1f objective=%.0f\n",
		sol.Status, sol.X[0], sol.X[1], sol.Objective)
	// Output: optimal x=3.0 y=1.5 objective=21
}
