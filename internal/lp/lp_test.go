package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func mustSolve(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSimple2D(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
	s := mustSolve(t, Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approxEq(s.Objective, 12, 1e-9) {
		t.Errorf("objective = %v, want 12", s.Objective)
	}
}

func TestClassicProductionProblem(t *testing.T) {
	// maximize 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6.
	// Optimum at x=3, y=1.5, obj=21.
	s := mustSolve(t, Problem{
		C: []float64{5, 4},
		A: [][]float64{{6, 4}, {1, 2}},
		B: []float64{24, 6},
	})
	if !approxEq(s.Objective, 21, 1e-9) {
		t.Errorf("objective = %v, want 21", s.Objective)
	}
	if !approxEq(s.X[0], 3, 1e-9) || !approxEq(s.X[1], 1.5, 1e-9) {
		t.Errorf("x = %v, want [3 1.5]", s.X)
	}
}

func TestUnbounded(t *testing.T) {
	// maximize x with only y constrained.
	s := mustSolve(t, Problem{
		C: []float64{1, 0},
		A: [][]float64{{0, 1}},
		B: []float64{5},
	})
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (i.e. x >= 3): empty.
	s := mustSolve(t, Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestGreaterEqualViaNegation(t *testing.T) {
	// maximize -x s.t. x >= 2 (written -x <= -2), x <= 10 -> x=2, obj=-2.
	s := mustSolve(t, Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-2, 10},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approxEq(s.X[0], 2, 1e-9) {
		t.Errorf("x = %v, want 2", s.X[0])
	}
}

func TestPhase1WithMultipleNegativeRows(t *testing.T) {
	// x + y >= 2, x >= 0.5, x + y <= 5, maximize x + 2y.
	// Optimum: x=0.5 is not binding upward; best is x=0, y=5? But x>=0.5,
	// so x=0.5, y=4.5, obj = 9.5.
	s := mustSolve(t, Problem{
		C: []float64{1, 2},
		A: [][]float64{{-1, -1}, {-1, 0}, {1, 1}},
		B: []float64{-2, -0.5, 5},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approxEq(s.Objective, 9.5, 1e-9) {
		t.Errorf("objective = %v, want 9.5", s.Objective)
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classic degenerate instance (Beale-like). The solver must
	// terminate with the correct optimum 0.05 at x4 = 1... Beale's example:
	// max 0.75x1 - 150x2 + 0.02x3 - 6x4
	// s.t. 0.25x1 - 60x2 - 0.04x3 + 9x4 <= 0
	//      0.5x1 - 90x2 - 0.02x3 + 3x4 <= 0
	//      x3 <= 1
	// Optimum objective = 0.05 (x3 = 1, x1 = x2 = x4 = 0 feasible? check:
	// row1: -0.04 <= 0 ok; row2: -0.02 <= 0 ok; obj = 0.02). Known optimum
	// is 1/20 = 0.05 with x1 = 1/25... we just require termination and a
	// feasible optimal solution with objective >= 0.02.
	s := mustSolve(t, Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective < 0.02-1e-9 {
		t.Errorf("objective = %v, want >= 0.02", s.Objective)
	}
	checkFeasible(t, Problem{
		C: []float64{0.75, -150, 0.02, -6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	}, s)
}

func TestEmptyObjective(t *testing.T) {
	s := mustSolve(t, Problem{
		C: []float64{0, 0},
		A: [][]float64{{1, 1}},
		B: []float64{3},
	})
	if s.Status != Optimal || !approxEq(s.Objective, 0, 1e-12) {
		t.Errorf("zero objective: %+v", s)
	}
}

func TestNoConstraintsBoundedByZero(t *testing.T) {
	// maximize -x - y with no constraints: optimum at origin.
	s := mustSolve(t, Problem{C: []float64{-1, -1}})
	if s.Status != Optimal || !approxEq(s.Objective, 0, 1e-12) {
		t.Errorf("got %+v, want objective 0", s)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("mismatched row width accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}}); err == nil {
		t.Error("mismatched B length accepted")
	}
	if _, err := Solve(Problem{C: []float64{math.NaN()}}); err == nil {
		t.Error("NaN objective accepted")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{math.Inf(1)}}); err == nil {
		t.Error("infinite RHS accepted")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" {
		t.Error("unexpected status strings")
	}
	if Status(9).String() == "" {
		t.Error("unknown status stringer empty")
	}
}

// checkFeasible asserts the solution satisfies all constraints and
// non-negativity.
func checkFeasible(t *testing.T, p Problem, s Solution) {
	t.Helper()
	for j, x := range s.X {
		if x < -1e-7 {
			t.Errorf("x[%d] = %v < 0", j, x)
		}
	}
	for i, row := range p.A {
		lhs := 0.0
		for j, a := range row {
			lhs += a * s.X[j]
		}
		if lhs > p.B[i]+1e-6*(1+math.Abs(p.B[i])) {
			t.Errorf("constraint %d violated: %v > %v", i, lhs, p.B[i])
		}
	}
}

// TestAgainstBruteForce compares the simplex optimum with a dense grid /
// vertex enumeration on random small LPs.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2
		m := 2 + rng.Intn(3)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.Float64()*4 - 2
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = rng.Float64()*2 - 0.5
			}
			p.B[i] = rng.Float64() * 4 // non-negative: origin feasible
		}
		// Add box constraints so the LP is bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 10)
		}
		s, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if s.Status != Optimal {
			t.Fatalf("trial %d: status %v (origin is feasible, box-bounded)", trial, s.Status)
		}
		checkFeasible(t, p, s)

		// Grid search over [0,10]^2.
		best := math.Inf(-1)
		const steps = 100
		for a := 0; a <= steps; a++ {
			for b := 0; b <= steps; b++ {
				x := []float64{10 * float64(a) / steps, 10 * float64(b) / steps}
				ok := true
				for i, row := range p.A {
					if row[0]*x[0]+row[1]*x[1] > p.B[i]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					v := p.C[0]*x[0] + p.C[1]*x[1]
					if v > best {
						best = v
					}
				}
			}
		}
		if s.Objective < best-0.15 { // grid resolution slack
			t.Errorf("trial %d: simplex %v below grid best %v", trial, s.Objective, best)
		}
	}
}

// TestFeasibilityProperty checks, via testing/quick, that whenever Solve
// reports Optimal the returned point is primal feasible.
func TestFeasibilityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.NormFloat64()
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.NormFloat64()
			}
			p.B[i] = rng.NormFloat64() * 3
		}
		for j := 0; j < n; j++ { // bound the problem
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 50)
		}
		s, err := Solve(p)
		if err != nil {
			return false
		}
		if s.Status != Optimal {
			return true // infeasible/unbounded are acceptable outcomes
		}
		for j, x := range s.X {
			_ = j
			if x < -1e-6 {
				return false
			}
		}
		for i, row := range p.A {
			lhs := 0.0
			for j, a := range row {
				lhs += a * s.X[j]
			}
			if lhs > p.B[i]+1e-5*(1+math.Abs(p.B[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinSchedulingShape(t *testing.T) {
	// The Gavel-style LP: two job classes, two GPU types.
	// Variables: Y11 Y12 Y21 Y22 lambda.
	// maximize lambda
	// s.t. lambda - (X11 Y11 + X12 Y12) <= 0
	//      lambda - (X21 Y21 + X22 Y22) <= 0
	//      Y11 + Y12 <= 1, Y21 + Y22 <= 1
	//      Y11 + Y21 <= 1 (capacity type 1: 1 GPU, 1 worker each)
	//      Y12 + Y22 <= 1
	X := [2][2]float64{{10, 5}, {4, 4}}
	p := Problem{
		C: []float64{0, 0, 0, 0, 1},
		A: [][]float64{
			{-X[0][0], -X[0][1], 0, 0, 1},
			{0, 0, -X[1][0], -X[1][1], 1},
			{1, 1, 0, 0, 0},
			{0, 0, 1, 1, 0},
			{1, 0, 1, 0, 0},
			{0, 1, 0, 1, 0},
		},
		B: []float64{0, 0, 1, 1, 1, 1},
	}
	s := mustSolve(t, p)
	if s.Status != Optimal {
		t.Fatalf("status %v", s.Status)
	}
	// Both jobs can achieve at least 4 iter/s (job 2 saturates at 4 with a
	// full GPU of either type; job 1 easily exceeds with type 1).
	if s.Objective < 4-1e-6 {
		t.Errorf("max-min throughput = %v, want >= 4", s.Objective)
	}
	checkFeasible(t, p, s)
}
