// Package lp implements a dense two-phase simplex solver for linear
// programs in the inequality form
//
//	maximize    c·x
//	subject to  A x <= b,  x >= 0.
//
// It is the optimization substrate for the Gavel baseline (whose
// heterogeneity-aware max-min policy is a small LP; the original system
// uses cvxpy) and for the offline bound computations in the experiment
// harness. Rows with negative right-hand sides are handled through a
// phase-1 artificial-variable pass, so >= constraints can be expressed by
// negating a row.
//
// The solver uses Dantzig pricing with a Bland's-rule fallback for
// anti-cycling, so it terminates on every input.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status describes the outcome of Solve.
type Status int

const (
	// Optimal means an optimal feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective can grow without bound.
	Unbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Problem is a linear program: maximize C·x subject to A x <= B, x >= 0.
// Every row of A must have len(C) entries.
type Problem struct {
	C []float64
	A [][]float64
	B []float64
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64 // primal solution (valid when Status == Optimal)
	Objective float64   // C·X (valid when Status == Optimal)
}

const (
	eps = 1e-9
	// blandAfter switches from Dantzig pricing to Bland's rule after this
	// many pivots, guaranteeing termination on degenerate problems.
	blandAfter = 5000
	maxPivots  = 200000
)

// ErrTooManyPivots is returned if the solver exceeds its pivot budget,
// which indicates a numerically pathological input.
var ErrTooManyPivots = errors.New("lp: pivot budget exceeded")

// Validate checks dimensional consistency of the problem.
func (p Problem) Validate() error {
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d right-hand sides", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != len(p.C) {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), len(p.C))
		}
	}
	for i, b := range p.B {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("lp: non-finite right-hand side in row %d", i)
		}
	}
	for j, c := range p.C {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("lp: non-finite objective coefficient %d", j)
		}
	}
	return nil
}

// tableau holds the simplex working state. Columns are laid out as
// [original variables | slacks | artificials]; rows[i][cols] is the RHS.
type tableau struct {
	rows   [][]float64 // m x (cols+1)
	obj    []float64   // reduced-cost row, length cols+1 (last = -objective value)
	basis  []int       // basic variable per row
	cols   int         // total variable count
	n      int         // original variable count
	pivots int
}

// Solve optimizes the problem. The returned error is non-nil only for
// malformed input or pivot-budget exhaustion; infeasibility and
// unboundedness are reported through Solution.Status.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	m, n := len(p.A), len(p.C)

	// Count artificials: one per row with negative RHS.
	numArt := 0
	for _, b := range p.B {
		if b < 0 {
			numArt++
		}
	}
	cols := n + m + numArt
	t := &tableau{
		rows:  make([][]float64, m),
		obj:   make([]float64, cols+1),
		basis: make([]int, m),
		cols:  cols,
		n:     n,
	}
	art := n + m // next artificial column index
	artCols := make([]int, 0, numArt)
	for i := 0; i < m; i++ {
		row := make([]float64, cols+1)
		sign := 1.0
		if p.B[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack (negated when the row was flipped)
		row[cols] = sign * p.B[i]
		if sign < 0 {
			row[art] = 1
			t.basis[i] = art
			artCols = append(artCols, art)
			art++
		} else {
			t.basis[i] = n + i
		}
		t.rows[i] = row
	}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificials, i.e. maximize -sum.
		for _, c := range artCols {
			t.obj[c] = 1
		}
		// Price out the basic artificials so reduced costs are consistent.
		for i, b := range t.basis {
			if b >= n+m {
				addScaled(t.obj, t.rows[i], -1)
			}
		}
		if err := t.iterate(); err != nil {
			return Solution{}, err
		}
		if t.obj[cols] < -eps {
			// Residual artificial infeasibility.
			return Solution{Status: Infeasible}, nil
		}
		// Pivot any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if t.basis[i] < n+m {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real variables: redundant
				// constraint; leave the artificial basic at value 0.
				t.rows[i][cols] = 0
			}
		}
		// Freeze artificial columns at zero for phase 2.
		for _, c := range artCols {
			for i := 0; i < m; i++ {
				t.rows[i][c] = 0
			}
		}
	}

	// Phase 2: restore the real objective. Reduced-cost row starts as -C
	// for original variables, then price out basic variables.
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := 0; j < n; j++ {
		t.obj[j] = -p.C[j]
	}
	for i, b := range t.basis {
		//lint:ignore floateq exact-zero skip: C[b] is user input copied verbatim; skipping only zero coefficients is exact
		if b < n && p.C[b] != 0 {
			addScaled(t.obj, t.rows[i], p.C[b])
		}
	}
	t.pivots = 0
	if err := t.iterate(); err != nil {
		if errors.Is(err, errUnbounded) {
			return Solution{Status: Unbounded}, nil
		}
		return Solution{}, err
	}

	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			x[b] = t.rows[i][cols]
		}
	}
	objective := 0.0
	for j := 0; j < n; j++ {
		objective += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: objective}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// iterate runs simplex pivots until optimality, unboundedness or budget
// exhaustion.
func (t *tableau) iterate() error {
	for {
		col := t.chooseEntering()
		if col < 0 {
			return nil // optimal
		}
		row := t.chooseLeaving(col)
		if row < 0 {
			return errUnbounded
		}
		t.pivot(row, col)
		t.pivots++
		if t.pivots > maxPivots {
			return ErrTooManyPivots
		}
	}
}

// chooseEntering returns the entering column, or -1 at optimality.
// Artificial columns (>= n+m in phase 2) are never re-entered because
// phase 2 zeroes them.
func (t *tableau) chooseEntering() int {
	if t.pivots < blandAfter {
		best, bestVal := -1, -eps
		for j := 0; j < t.cols; j++ {
			if t.obj[j] < bestVal {
				bestVal = t.obj[j]
				best = j
			}
		}
		return best
	}
	// Bland's rule: smallest index with negative reduced cost.
	for j := 0; j < t.cols; j++ {
		if t.obj[j] < -eps {
			return j
		}
	}
	return -1
}

// chooseLeaving runs the minimum-ratio test on column col, returning the
// leaving row or -1 if the column is unbounded. Ties break by smallest
// basis variable index (Bland) to prevent cycling.
func (t *tableau) chooseLeaving(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := range t.rows {
		a := t.rows[i][col]
		if a <= eps {
			continue
		}
		ratio := t.rows[i][t.cols] / a
		if ratio < bestRatio-eps ||
			(ratio < bestRatio+eps && (bestRow < 0 || t.basis[i] < t.basis[bestRow])) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// pivot makes (row, col) the new basic position.
func (t *tableau) pivot(row, col int) {
	pr := t.rows[row]
	inv := 1 / pr[col]
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1 // avoid residual rounding on the pivot element
	for i := range t.rows {
		if i == row {
			continue
		}
		//lint:ignore floateq exact-zero skip in Gaussian elimination: adding a zero-scaled row is a no-op, any non-zero must be eliminated
		if f := t.rows[i][col]; f != 0 {
			addScaled(t.rows[i], pr, -f)
			t.rows[i][col] = 0
		}
	}
	//lint:ignore floateq exact-zero skip, same as the row loop above
	if f := t.obj[col]; f != 0 {
		addScaled(t.obj, pr, -f)
		t.obj[col] = 0
	}
	t.basis[row] = col
}

// addScaled computes dst += scale * src element-wise.
func addScaled(dst, src []float64, scale float64) {
	for j := range dst {
		dst[j] += scale * src[j]
	}
}
