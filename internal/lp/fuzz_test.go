package lp

import (
	"math"
	"testing"
)

// FuzzSolve feeds randomized 2-variable LPs to the solver and checks
// that any Optimal result is primal feasible and that the solver never
// panics or loops. Run with `go test -fuzz=FuzzSolve ./internal/lp`.
func FuzzSolve(f *testing.F) {
	f.Add(1.0, 1.0, 1.0, 1.0, 4.0, 1.0, 3.0, 6.0)
	f.Add(3.0, 2.0, 1.0, 1.0, 4.0, 1.0, 3.0, 6.0)
	f.Add(-1.0, 0.5, -2.0, 1.0, -1.0, 0.0, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, c1, c2, a11, a12, b1, a21, a22, b2 float64) {
		for _, v := range []float64{c1, c2, a11, a12, b1, a21, a22, b2} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				t.Skip("out of supported range")
			}
		}
		p := Problem{
			C: []float64{c1, c2},
			A: [][]float64{{a11, a12}, {a21, a22}, {1, 0}, {0, 1}},
			B: []float64{b1, b2, 100, 100}, // box keeps it bounded above
		}
		s, err := Solve(p)
		if err != nil {
			// Pivot-budget exhaustion on adversarial numerics is
			// acceptable; crashes are not.
			return
		}
		if s.Status != Optimal {
			return
		}
		for j, x := range s.X {
			if x < -1e-6 {
				t.Fatalf("negative solution x[%d]=%v", j, x)
			}
		}
		for i, row := range p.A {
			lhs := row[0]*s.X[0] + row[1]*s.X[1]
			if lhs > p.B[i]+1e-4*(1+math.Abs(p.B[i])) {
				t.Fatalf("constraint %d violated: %v > %v (x=%v)", i, lhs, p.B[i], s.X)
			}
		}
	})
}
