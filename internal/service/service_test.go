package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// fifo is a minimal gang scheduler for driving the service in tests:
// keep running jobs where they are, then place queued jobs first-fit.
type fifo struct{}

func (fifo) Name() string { return "test-fifo" }

func (fifo) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	free := cluster.NewState(ctx.Cluster)
	for _, st := range ctx.Jobs {
		if st.Running() && free.Allocate(st.Alloc) == nil {
			out[st.Job.ID] = st.Alloc
		}
	}
	for _, st := range ctx.Jobs {
		if _, ok := out[st.Job.ID]; ok {
			continue
		}
		if a, ok := sched.PlaceAnyType(free, sched.UsableTypes(st.Job), st.Job.Workers); ok {
			if err := free.Allocate(a); err == nil {
				out[st.Job.ID] = a
			}
		}
	}
	return out
}

func simpleJob(id, workers int, iters float64) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Model: "unit-test", Workers: workers,
		Epochs: int(iters), ItersPerEpoch: 1,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.K80: 2},
	}
}

func twoNodeCluster() *cluster.Cluster {
	return cluster.New(gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.V100: 4, gpu.K80: 2})
}

func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	if !opts.Sim.Validate {
		opts.Sim = sim.ValidatedOptions()
	}
	svc, err := New(twoNodeCluster(), fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// waitFor polls the snapshot until cond holds or the deadline passes.
func waitFor(t *testing.T, svc *Service, what string, cond func(*sim.Snapshot) bool) *sim.Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := svc.Snapshot()
		if cond(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; snapshot: now=%v round=%d pending=%d active=%d completed=%d",
				what, snap.Now, snap.Round, snap.Pending, len(snap.Active), snap.Completed)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServiceRunsJobsToCompletion(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	for i := 0; i < 5; i++ {
		if err := svc.Submit(simpleJob(i, 1+i%2, 5000)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitFor(t, svc, "5 completions", func(s *sim.Snapshot) bool { return s.Completed == 5 })
	report, err := svc.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if len(report.Jobs) != 5 {
		t.Errorf("report has %d jobs, want 5", len(report.Jobs))
	}
	st := svc.Stats()
	if st.Accepted != 5 || st.RejectedInvalid != 0 || st.Rounds == 0 {
		t.Errorf("stats = %+v, want 5 accepted, 0 invalid, >0 rounds", st)
	}
}

func TestServiceValidationErrorsReachCaller(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	defer svc.Stop()

	if err := svc.Submit(simpleJob(0, 1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(simpleJob(0, 1, 100)); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := svc.Submit(simpleJob(1, 99, 100)); err == nil {
		t.Error("unplaceable gang accepted")
	}
	if err := svc.Cancel(42); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	if st := svc.Stats(); st.Accepted != 1 || st.RejectedInvalid != 2 {
		t.Errorf("stats = %+v, want 1 accepted, 2 invalid", st)
	}
}

func TestServiceCancelReflectedInSnapshot(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	// A job far too long to complete within the test: the virtual
	// clock burns rounds in microseconds, so anything finite enough to
	// finish can race past the poller's "active" observation window.
	if err := svc.Submit(simpleJob(0, 2, 1e12)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, svc, "job 0 active", func(s *sim.Snapshot) bool { return s.Phases[0] == "active" })
	if err := svc.Cancel(0); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	snap := waitFor(t, svc, "job 0 cancelled", func(s *sim.Snapshot) bool { return s.Phases[0] == "cancelled" })
	if snap.Cancelled != 1 || snap.Completed != 0 {
		t.Errorf("snapshot counts = %d cancelled %d completed, want 1/0", snap.Cancelled, snap.Completed)
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop after cancel: %v", err)
	}
	if st := svc.Stats(); st.Cancelled != 1 {
		t.Errorf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestServiceBackpressure fills the admission queue of an unstarted
// service (requests park in the channel awaiting the loop) and checks
// the overflow call bounces with a retry hint instead of blocking.
func TestServiceBackpressure(t *testing.T) {
	svc := newTestService(t, Options{QueueDepth: 2, RetryAfter: 7 * time.Millisecond})
	replies := make(chan error, 2)
	go func() { replies <- svc.Submit(simpleJob(0, 1, 100)) }()
	go func() { replies <- svc.Submit(simpleJob(1, 1, 100)) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(svc.reqs) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	err := svc.Submit(simpleJob(2, 1, 100))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("overflow submit returned %v, want *BusyError", err)
	}
	if busy.RetryAfter != 7*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 7ms", busy.RetryAfter)
	}
	if st := svc.Stats(); st.RejectedBusy != 1 {
		t.Errorf("RejectedBusy = %d, want 1", st.RejectedBusy)
	}

	// Starting the loop drains the parked requests successfully.
	svc.Start()
	for i := 0; i < 2; i++ {
		if err := <-replies; err != nil {
			t.Errorf("parked submit %d failed: %v", i, err)
		}
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceStoppedRejectsRequests(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	if _, err := svc.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Submit(simpleJob(0, 1, 100)); !errors.Is(err, ErrStopped) {
		t.Errorf("submit after stop = %v, want ErrStopped", err)
	}
	if err := svc.Cancel(0); !errors.Is(err, ErrStopped) {
		t.Errorf("cancel after stop = %v, want ErrStopped", err)
	}
	// Stop is idempotent.
	if _, err := svc.Stop(); err != nil {
		t.Errorf("second stop: %v", err)
	}
}

func TestServiceWallClock(t *testing.T) {
	svc := newTestService(t, Options{Clock: WallClock, RoundInterval: time.Millisecond})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 2, 5000)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, svc, "wall-clock completion", func(s *sim.Snapshot) bool { return s.Completed == 1 })
	report, err := svc.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Jobs) != 1 {
		t.Errorf("report has %d jobs, want 1", len(report.Jobs))
	}
}

// TestServiceProvider checks the web dashboard Provider view of a live
// service.
func TestServiceProvider(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 1, 1000)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, svc, "completion", func(s *sim.Snapshot) bool { return s.Completed == 1 })
	order := svc.Order()
	if len(order) != 1 || order[0] != "test-fifo" {
		t.Fatalf("Order() = %v", order)
	}
	rep, ok := svc.Report("test-fifo")
	if !ok || len(rep.Jobs) != 1 {
		t.Errorf("Report = %v jobs, ok=%v; want 1 job", len(rep.Jobs), ok)
	}
	if _, ok := svc.Report("nonexistent"); ok {
		t.Error("Report accepted an unknown scheduler name")
	}
	svc.Stop()
}

func TestServiceNextIDFresh(t *testing.T) {
	svc := newTestService(t, Options{})
	a, b := svc.NextID(), svc.NextID()
	if a == b || a < 1<<20 || b < 1<<20 {
		t.Errorf("NextID() = %d, %d; want distinct IDs in the service range", a, b)
	}
}
