package service

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wal"
)

func walOptions(dir string, cfg WALConfig) Options {
	cfg.Dir = dir
	return Options{Sim: sim.ValidatedOptions(), WAL: &cfg}
}

func newWALService(t *testing.T, dir string, cfg WALConfig) *Service {
	t.Helper()
	svc, err := New(twoNodeCluster(), fifo{}, walOptions(dir, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestServiceWALKillAndRecover is the core durability contract: every
// submission acknowledged before a crash survives recovery, the
// recovered engine's schedule digest matches an uninterrupted replay of
// the journal, and the idempotency ledger still answers retried keys.
func TestServiceWALKillAndRecover(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncOff})
	svc.Start()

	acked := make(map[string]int)
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("key-%d", i)
		id, deduped, err := svc.SubmitKeyed(key, simpleJob(i, 1+i%2, 1e8))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if deduped {
			t.Fatalf("fresh key %q reported deduped", key)
		}
		acked[key] = id
	}
	if err := svc.Cancel(acked["key-3"]); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	waitFor(t, svc, "some rounds", func(s *sim.Snapshot) bool { return s.Round >= 3 })

	svc.Kill()
	if _, err := svc.Stop(); !errors.Is(err, ErrKilled) {
		t.Fatalf("Stop after Kill = %v, want ErrKilled", err)
	}

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncOff, Recover: true})
	info := rec.Recovery()
	if info == nil {
		t.Fatal("recovered service has no Recovery info")
	}
	if info.Replayed == 0 && info.CheckpointSeq == 0 {
		t.Errorf("recovery info %+v shows nothing restored; journal should not be empty", info)
	}
	snap := rec.Snapshot()
	for key, id := range acked {
		if _, ok := snap.Phases[id]; !ok {
			t.Errorf("acked job %d (%s) lost by recovery", id, key)
		}
	}
	if phase := snap.Phases[acked["key-3"]]; phase != "cancelled" {
		t.Errorf("cancelled job recovered in phase %q", phase)
	}

	// Retrying an acked key after the crash must dedup, not duplicate.
	rec.Start()
	id, deduped, err := rec.SubmitKeyed("key-0", simpleJob(0, 1, 1e8))
	if err != nil || !deduped || id != acked["key-0"] {
		t.Errorf("retried key-0 = (%d, %v, %v), want (%d, true, nil)", id, deduped, err, acked["key-0"])
	}
	if st := rec.Stats(); st.Deduped != 1 {
		t.Errorf("Stats.Deduped = %d, want 1", st.Deduped)
	}

	// Withdraw the (effectively immortal) jobs so the recovered run
	// drains quickly; the cancels are journaled ops like any other.
	for key, jobID := range acked {
		if key == "key-3" {
			continue // already cancelled before the crash
		}
		if err := rec.Cancel(jobID); err != nil {
			t.Fatalf("cancel %s after recovery: %v", key, err)
		}
	}
	waitFor(t, rec, "recovered run drains", func(s *sim.Snapshot) bool {
		return s.Pending == 0 && len(s.Active) == 0
	})
	if _, err := rec.Stop(); err != nil {
		t.Fatalf("stop recovered service: %v", err)
	}

	// The journal is the canonical operation sequence; replaying it on
	// a fresh engine is the uninterrupted run. Its digest must equal
	// the crashed-and-recovered service's final digest.
	res, err := VerifyWAL(twoNodeCluster(), fifo{}, sim.ValidatedOptions(), dir)
	if err != nil {
		t.Fatalf("VerifyWAL: %v", err)
	}
	if got := rec.Snapshot().Digest; res.Digest != got {
		t.Errorf("uninterrupted replay digest %#x, recovered service %#x", res.Digest, got)
	}
	if res.Submitted != len(acked) {
		t.Errorf("journal has %d submissions, want %d", res.Submitted, len(acked))
	}
	for key, id := range acked {
		if res.Jobs[key] != id {
			t.Errorf("journal ledger %q = %d, want %d", key, res.Jobs[key], id)
		}
	}
}

// TestServiceWALCheckpointBoundsReplay forces a checkpoint after every
// record and checks recovery starts from it instead of replaying the
// whole journal.
func TestServiceWALCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, CheckpointEvery: 1})
	svc.Start()
	for i := 0; i < 4; i++ {
		if err := svc.Submit(simpleJob(i, 1, 20000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, svc, "rounds with checkpoints", func(s *sim.Snapshot) bool { return s.Round >= 5 })
	svc.Kill()
	svc.Stop()

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, Recover: true})
	info := rec.Recovery()
	if info.CheckpointSeq == 0 {
		t.Error("recovery did not use the checkpoint")
	}
	snap := rec.Snapshot()
	for i := 0; i < 4; i++ {
		if _, ok := snap.Phases[i]; !ok {
			t.Errorf("job %d lost across checkpointed recovery", i)
		}
	}
	rec.Start()
	waitFor(t, rec, "drain", func(s *sim.Snapshot) bool { return s.Pending == 0 && len(s.Active) == 0 })
	if _, err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyWAL(twoNodeCluster(), fifo{}, sim.ValidatedOptions(), dir)
	if err != nil {
		t.Fatalf("VerifyWAL: %v", err)
	}
	if got := rec.Snapshot().Digest; res.Digest != got {
		t.Errorf("replay digest %#x != recovered digest %#x", res.Digest, got)
	}
}

// TestServiceWALTornTailRecovery damages the journal tail the way a
// kill mid-write would and checks recovery truncates and resumes.
func TestServiceWALTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncOff})
	svc.Start()
	for i := 0; i < 3; i++ {
		if err := svc.Submit(simpleJob(i, 1, 5000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, svc, "work", func(s *sim.Snapshot) bool { return s.Round >= 2 })
	svc.Kill()
	svc.Stop()

	// Simulate a torn final frame: half a frame header plus garbage.
	f, err := os.OpenFile(journalPath(dir), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{42, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncOff, Recover: true})
	if rec.Recovery().TruncatedBytes == 0 {
		t.Error("recovery did not report the torn tail")
	}
	snap := rec.Snapshot()
	for i := 0; i < 3; i++ {
		if _, ok := snap.Phases[i]; !ok {
			t.Errorf("job %d lost to the torn tail", i)
		}
	}
	rec.Start()
	waitFor(t, rec, "drain", func(s *sim.Snapshot) bool { return s.Pending == 0 && len(s.Active) == 0 })
	if _, err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceWALCorruptCheckpointFallsBack flips a checkpoint byte and
// checks recovery falls back to a full-journal replay.
func TestServiceWALCorruptCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, CheckpointEvery: 1})
	svc.Start()
	for i := 0; i < 3; i++ {
		if err := svc.Submit(simpleJob(i, 1, 20000)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, svc, "checkpointed rounds", func(s *sim.Snapshot) bool { return s.Round >= 3 })
	svc.Kill()
	svc.Stop()

	data, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(checkpointPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, Recover: true})
	info := rec.Recovery()
	if !info.CheckpointCorrupt {
		t.Error("recovery did not flag the corrupt checkpoint")
	}
	if info.CheckpointSeq != 0 {
		t.Errorf("CheckpointSeq = %d after corrupt checkpoint, want 0", info.CheckpointSeq)
	}
	snap := rec.Snapshot()
	for i := 0; i < 3; i++ {
		if _, ok := snap.Phases[i]; !ok {
			t.Errorf("job %d lost despite full replay", i)
		}
	}
	rec.Stop()
}

// TestServiceWALFailPointCrash injects a crash mid-append: the caller
// whose record tore gets an error (never a false ack), the loop dies
// like a crashed process, and recovery preserves every acked job.
func TestServiceWALFailPointCrash(t *testing.T) {
	dir := t.TempDir()
	var appends int
	fp := func(offset int64, frame []byte) int {
		// Tear the frame once the journal has a few records; count
		// only mutation-sized frames so the test stays robust.
		appends++
		if appends == 4 {
			return len(frame) / 3
		}
		return -1
	}
	svc, err := New(twoNodeCluster(), fifo{}, walOptions(dir, WALConfig{Policy: wal.SyncOff, FailPoint: fp}))
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()

	var acked []int
	var crashed bool
	for i := 0; i < 10; i++ {
		err := svc.Submit(simpleJob(i, 1, 50000))
		if err == nil {
			acked = append(acked, i)
			continue
		}
		if errors.Is(err, wal.ErrCrashInjected) || strings.Contains(err.Error(), "journal") || errors.Is(err, ErrStopped) {
			crashed = true
			break
		}
		t.Fatalf("submit %d: unexpected error %v", i, err)
	}
	if !crashed {
		t.Fatal("fail point never fired")
	}
	if _, err := svc.Stop(); err == nil {
		t.Error("Stop after an injected crash reported success")
	}

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncOff, Recover: true})
	if rec.Recovery().TruncatedBytes == 0 {
		t.Error("torn frame left no truncated tail")
	}
	snap := rec.Snapshot()
	for _, id := range acked {
		if _, ok := snap.Phases[id]; !ok {
			t.Errorf("acked job %d lost after injected crash", id)
		}
	}
	rec.Stop()
}

// TestServiceWALGroupCommit exercises the deferred-verdict path: under
// SyncGroup every verdict waits for a batch fsync but still arrives.
func TestServiceWALGroupCommit(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncGroup, GroupInterval: time.Millisecond})
	svc.Start()
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() { errs <- svc.Submit(simpleJob(i, 1, 5000)) }()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("group-commit submit: %v", err)
		}
	}
	waitFor(t, svc, "completion", func(s *sim.Snapshot) bool { return s.Completed == 8 })
	if _, err := svc.Stop(); err != nil {
		t.Fatal(err)
	}
	res, err := VerifyWAL(twoNodeCluster(), fifo{}, sim.ValidatedOptions(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 8 {
		t.Errorf("journal has %d submissions, want 8", res.Submitted)
	}
}

// TestServiceWALRefusesExistingJournal: without Recover, New must not
// silently clobber a journal left by a previous run.
func TestServiceWALRefusesExistingJournal(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncOff})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 1, 100)); err != nil {
		t.Fatal(err)
	}
	svc.Stop()
	if _, err := New(twoNodeCluster(), fifo{}, walOptions(dir, WALConfig{Policy: wal.SyncOff})); err == nil {
		t.Fatal("New overwrote an existing journal without Recover")
	}
}

// TestServiceWALRecoverFreshDir: Recover on an empty directory is a
// fresh start, so operators can always pass -recover.
func TestServiceWALRecoverFreshDir(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, Recover: true})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 1, 1000)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, svc, "completion", func(s *sim.Snapshot) bool { return s.Completed == 1 })
	if _, err := svc.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestServiceWALCleanShutdownResume: a graceful Stop checkpoints, and a
// later Recover resumes without replaying anything.
func TestServiceWALCleanShutdownResume(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 2, 1e7)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, svc, "progress", func(s *sim.Snapshot) bool { return s.Round >= 2 })
	if _, err := svc.Stop(); err != nil {
		t.Fatal(err)
	}

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, Recover: true})
	if got := rec.Recovery().Replayed; got != 0 {
		t.Errorf("clean shutdown still replayed %d records", got)
	}
	if _, ok := rec.Snapshot().Phases[0]; !ok {
		t.Error("job 0 lost across clean shutdown")
	}
	rec.Start()
	if err := rec.Cancel(0); err != nil {
		t.Fatalf("cancel after resume: %v", err)
	}
	waitFor(t, rec, "cancelled", func(s *sim.Snapshot) bool { return s.Phases[0] == "cancelled" })
	if _, err := rec.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceStopBeforeStart(t *testing.T) {
	svc := newTestService(t, Options{})
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop before start: %v", err)
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}

// TestServiceDeadError: a wedged engine loop (here: never started)
// must not hang callers past RequestTimeout.
func TestServiceDeadError(t *testing.T) {
	svc := newTestService(t, Options{RequestTimeout: 20 * time.Millisecond})
	err := svc.Submit(simpleJob(0, 1, 100))
	var dead *DeadError
	if !errors.As(err, &dead) {
		t.Fatalf("submit on a wedged service = %v, want *DeadError", err)
	}
	if dead.Waited != 20*time.Millisecond {
		t.Errorf("DeadError.Waited = %v, want 20ms", dead.Waited)
	}
	svc.Stop()
}

func TestServiceSubmitKeyedDedupInMemory(t *testing.T) {
	svc := newTestService(t, Options{})
	svc.Start()
	defer svc.Stop()
	id1, deduped, err := svc.SubmitKeyed("job-a", simpleJob(1, 1, 1e6))
	if err != nil || deduped {
		t.Fatalf("first keyed submit = (%d, %v, %v)", id1, deduped, err)
	}
	id2, deduped, err := svc.SubmitKeyed("job-a", simpleJob(2, 1, 1e6))
	if err != nil || !deduped || id2 != id1 {
		t.Fatalf("second keyed submit = (%d, %v, %v), want (%d, true, nil)", id2, deduped, err, id1)
	}
	// The duplicate's job was never admitted.
	if _, ok := svc.Snapshot().Phases[2]; ok {
		t.Error("deduped submission still admitted job 2")
	}
}

// TestServiceNextIDClearsRecoveredIDs: after recovery NextID must not
// collide with journaled IDs from the service range.
func TestServiceNextIDClearsRecoveredIDs(t *testing.T) {
	dir := t.TempDir()
	svc := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways})
	svc.Start()
	id := svc.NextID()
	j := simpleJob(id, 1, 1e7)
	if err := svc.Submit(j); err != nil {
		t.Fatal(err)
	}
	svc.Kill()
	svc.Stop()

	rec := newWALService(t, dir, WALConfig{Policy: wal.SyncAlways, Recover: true})
	if next := rec.NextID(); next <= id {
		t.Errorf("NextID after recovery = %d, collides with journaled %d", next, id)
	}
	rec.Stop()
}
