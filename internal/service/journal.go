package service

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/job"
	"repro/internal/wal"
)

// WALConfig enables the write-ahead journal: every accepted mutation
// (submission, cancellation, round boundary) is appended to a
// CRC-framed journal before the verdict returns to the caller, and the
// engine state is checkpointed periodically so recovery replays a
// bounded tail.
type WALConfig struct {
	// Dir holds the journal (journal.wal) and checkpoint
	// (checkpoint.ckpt) files. It must exist.
	Dir string
	// Policy selects durability: SyncAlways fsyncs before every verdict
	// (survives machine crashes), SyncGroup batches fsyncs across
	// concurrent requests and defers their verdicts until the batch is
	// on disk, SyncOff never fsyncs (survives process kills via the
	// page cache, not machine crashes).
	Policy wal.SyncPolicy
	// GroupInterval bounds how long a SyncGroup verdict may wait for
	// its batch fsync. Default 2ms.
	GroupInterval time.Duration
	// CheckpointEvery is the number of journal records between engine
	// checkpoints. Default 256.
	CheckpointEvery int
	// Recover resumes from existing state in Dir — latest valid
	// checkpoint plus journal tail — and starts fresh when Dir is
	// empty. Without Recover, New refuses a Dir that already has a
	// journal rather than silently overwriting it.
	Recover bool
	// FailPoint, when non-nil, is passed to the journal writer for
	// crash-injection tests (see wal.FailPoint).
	FailPoint wal.FailPoint
}

func (c *WALConfig) normalize() {
	if c.GroupInterval <= 0 {
		c.GroupInterval = 2 * time.Millisecond
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 256
	}
}

func journalPath(dir string) string    { return filepath.Join(dir, "journal.wal") }
func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint.ckpt") }

// Journal record types. Submission and cancellation records are
// appended after the engine accepts the mutation and before the caller
// sees the verdict; round records are appended after every processed
// boundary and carry the engine's chained digest so recovery can prove
// the replayed schedule is byte-identical to the original.
const (
	recSubmit = "submit"
	recCancel = "cancel"
	recRound  = "round"
)

// walRecord is the JSON payload of one journal frame.
type walRecord struct {
	Type string `json:"type"`
	// Key is the submission's idempotency key, if any.
	Key string   `json:"key,omitempty"`
	Job *job.Job `json:"job,omitempty"`
	// ID is the cancellation target.
	ID int `json:"id,omitempty"`
	// Round/Now/Digest describe the engine immediately after a
	// processed boundary.
	Round  int     `json:"round,omitempty"`
	Now    float64 `json:"now_s,omitempty"`
	Digest uint64  `json:"digest,omitempty"`
}

// checkpointDoc is the payload of the checkpoint file: the serialized
// engine plus the service-level state that must survive with it.
type checkpointDoc struct {
	// Seq is the number of journal records the checkpointed state
	// embodies; recovery replays the journal from this index.
	Seq int `json:"seq"`
	// Keys is the idempotent-submission ledger (key -> job ID).
	Keys map[string]int `json:"keys,omitempty"`
	// Engine is sim.Engine.MarshalState output.
	Engine json.RawMessage `json:"engine"`
}

// pendingVerdict is a group-commit deferral: the mutation is applied
// and journaled but not yet fsynced, so the caller's verdict waits for
// the batch sync.
type pendingVerdict struct {
	reply chan verdict
	v     verdict
}

// commit makes one accepted mutation durable per the sync policy and
// delivers its verdict. The record is already applied to the engine;
// commit appends it to the journal and either replies immediately
// (SyncAlways fsyncs inside Append; SyncOff trades durability for
// latency) or defers the reply until the next group sync.
func (s *Service) commit(rec walRecord, reply chan verdict, v verdict) {
	if s.journal == nil {
		reply <- v
		return
	}
	if err := s.appendRecord(rec); err != nil {
		reply <- verdict{err: fmt.Errorf("service: journal append: %w", err)}
		return
	}
	if s.journal.Policy() == wal.SyncGroup {
		if len(s.pending) == 0 {
			s.groupDeadline = time.Now().Add(s.walCfg.GroupInterval)
		}
		s.pending = append(s.pending, pendingVerdict{reply: reply, v: v})
		return
	}
	reply <- v
}

// appendRecord marshals and appends one journal frame, tracking the
// absolute record count for checkpoint addressing. A failed append
// poisons the journal path: walErr sticks and the run loop exits.
func (s *Service) appendRecord(rec walRecord) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		s.walErr = err
		return err
	}
	if err := s.journal.Append(payload); err != nil {
		s.walErr = err
		return err
	}
	s.applied++
	s.sinceCkpt++
	return nil
}

// groupTimer returns a channel that fires when the oldest deferred
// verdict's group-commit deadline expires, or nil (blocks forever)
// when nothing is deferred.
func (s *Service) groupTimer() <-chan time.Time {
	if len(s.pending) == 0 {
		return nil
	}
	d := time.Until(s.groupDeadline)
	if d < 0 {
		d = 0
	}
	return time.After(d)
}

// flushGroup syncs the journal and releases every deferred verdict.
// With force false it only acts once the group deadline has passed.
func (s *Service) flushGroup(force bool) {
	if len(s.pending) == 0 {
		return
	}
	if !force && time.Now().Before(s.groupDeadline) {
		return
	}
	err := s.journal.Sync()
	if err != nil {
		s.walErr = err
		err = fmt.Errorf("service: journal sync: %w", err)
	}
	for _, p := range s.pending {
		if err != nil {
			p.reply <- verdict{err: err}
		} else {
			p.reply <- p.v
		}
	}
	s.pending = s.pending[:0]
}

// maybeCheckpoint writes an engine checkpoint once enough journal
// records have accumulated since the last one. Checkpoint failures are
// not fatal: the journal remains the source of truth and recovery
// simply replays a longer tail.
func (s *Service) maybeCheckpoint() {
	if s.journal == nil || s.sinceCkpt < s.walCfg.CheckpointEvery {
		return
	}
	s.writeCheckpoint()
}

// writeCheckpoint persists the engine and key ledger at the current
// journal position.
func (s *Service) writeCheckpoint() {
	state, err := s.eng.MarshalState()
	if err != nil {
		return // a poisoned engine has nothing worth persisting
	}
	doc := checkpointDoc{Seq: s.applied, Keys: s.keys, Engine: state}
	payload, err := json.Marshal(&doc)
	if err != nil {
		return
	}
	if wal.WriteCheckpoint(checkpointPath(s.walCfg.Dir), payload) == nil {
		s.sinceCkpt = 0
	}
}
