package service

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/sim"
)

// newTestFedService builds a federated service over n two-node test
// clusters, each with its own fifo scheduler and validated engine.
func newTestFedService(t *testing.T, n int, opts FedOptions) *FedService {
	t.Helper()
	opts.Federation.Validate = true
	members := make([]federation.MemberConfig, n)
	for i := range members {
		members[i] = federation.MemberConfig{
			Name:      fmt.Sprintf("region%d", i),
			Cluster:   twoNodeCluster(),
			Scheduler: fifo{},
			Sim:       sim.ValidatedOptions(),
		}
	}
	router, err := federation.NewRouter("least-queue")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewFed(members, router, opts)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// waitForFed polls the federation snapshot until cond holds or the
// deadline passes.
func waitForFed(t *testing.T, svc *FedService, what string, cond func(*federation.FedSnapshot) bool) *federation.FedSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := svc.Snapshot()
		if cond(snap) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; snapshot: now=%v pending=%d active=%d completed=%d",
				what, snap.Now, snap.Pending, snap.Active, snap.Completed)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFedServiceRunsJobsToCompletion(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{})
	svc.Start()
	for i := 0; i < 6; i++ {
		if err := svc.Submit(simpleJob(i, 1+i%2, 5000)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitForFed(t, svc, "6 completions", func(s *federation.FedSnapshot) bool { return s.Completed == 6 })
	report, err := svc.Stop()
	if err != nil {
		t.Fatalf("stop: %v", err)
	}
	if got := len(report.Merged.Jobs); got != 6 {
		t.Errorf("merged report has %d jobs, want 6", got)
	}
	if len(report.Members) != 2 {
		t.Errorf("report has %d members, want 2", len(report.Members))
	}
	st := svc.Stats()
	if st.Accepted != 6 || st.RejectedInvalid != 0 || st.Rounds == 0 {
		t.Errorf("stats = %+v, want 6 accepted, 0 invalid, >0 rounds", st)
	}
	// A second Stop returns the same result.
	again, err2 := svc.Stop()
	if err2 != nil || again != report {
		t.Errorf("second Stop = (%p, %v), want same report", again, err2)
	}
}

func TestFedServiceValidationAndLifecycleErrors(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{})
	svc.Start()
	if err := svc.Submit(simpleJob(0, 1, 100)); err != nil {
		t.Fatalf("valid submit: %v", err)
	}
	if err := svc.Submit(simpleJob(0, 1, 100)); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := svc.Submit(simpleJob(1, 100, 100)); err == nil {
		t.Error("unplaceable job accepted")
	}
	if err := svc.Cancel(12345); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := svc.Submit(simpleJob(9, 1, 100)); !errors.Is(err, ErrStopped) {
		t.Errorf("submit after stop = %v, want ErrStopped", err)
	}
}

func TestFedServiceIdempotencyLedger(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{})
	svc.Start()
	defer svc.Stop()
	id1, dedup1, err := svc.SubmitKeyed("key-a", simpleJob(10, 1, 1000))
	if err != nil || dedup1 {
		t.Fatalf("first keyed submit = (%d, %v, %v)", id1, dedup1, err)
	}
	id2, dedup2, err := svc.SubmitKeyed("key-a", simpleJob(11, 1, 1000))
	if err != nil || !dedup2 || id2 != id1 {
		t.Fatalf("retried keyed submit = (%d, %v, %v), want (%d, true, nil)", id2, dedup2, err, id1)
	}
	if svc.Stats().Deduped != 1 {
		t.Errorf("deduped counter %d, want 1", svc.Stats().Deduped)
	}
}

// TestFedServiceConcurrentClients is the shared-clock/snapshot race
// test: submitters, cancellers, and snapshot readers hammer the
// federated service from many goroutines while the event loop
// advances members. Run under -race (make race-short / make race) it
// proves the copy-on-publish FedSnapshot path and the single-owner
// federation loop share no unsynchronized state.
func TestFedServiceConcurrentClients(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{QueueDepth: 256})
	svc.Start()
	const (
		writers    = 4
		perWriter  = 10
		readers    = 3
		cancellers = 2
	)
	var wg sync.WaitGroup
	// Submitters: disjoint ID ranges, half keyed.
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				var err error
				if i%2 == 0 {
					_, _, err = svc.SubmitKeyed(fmt.Sprintf("w%d-%d", w, i), simpleJob(id, 1, 2000))
				} else {
					err = svc.Submit(simpleJob(id, 1, 2000))
				}
				var busy *BusyError
				if errors.As(err, &busy) {
					time.Sleep(busy.RetryAfter)
					i-- // retry the same submission
					continue
				}
				if err != nil {
					t.Errorf("submit %d: %v", id, err)
					return
				}
			}
		}()
	}
	// Cancellers: best-effort cancels racing the submitters; every
	// verdict (accepted, unknown, already finished) is legal.
	stop := make(chan struct{})
	for c := 0; c < cancellers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := c; ; i += 7 {
				select {
				case <-stop:
					return
				default:
				}
				_ = svc.Cancel(i % (writers * perWriter))
				time.Sleep(time.Millisecond)
			}
		}()
	}
	// Readers: walk every published snapshot's members and owners.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := svc.Snapshot()
				total := 0
				for i := range snap.Members {
					total += snap.Members[i].Snap.Completed + len(snap.Members[i].Snap.Active)
				}
				if total < 0 {
					t.Error("impossible snapshot")
					return
				}
				for id := range snap.Owners {
					if _, _, _, _, ok := snap.FindJob(id); !ok {
						t.Errorf("owned job %d not resolvable in its own snapshot", id)
						return
					}
				}
				_ = svc.Stats()
			}
		}()
	}
	waitForFed(t, svc, "all terminal", func(s *federation.FedSnapshot) bool {
		return s.Completed+s.Cancelled >= writers*perWriter
	})
	close(stop)
	wg.Wait()
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestFedServiceBackpressure fills the admission queue of a wall-paced
// federation and checks overflow fails fast with the retry hint.
func TestFedServiceBackpressure(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{
		QueueDepth:    1,
		Clock:         WallClock,
		RoundInterval: time.Hour, // the loop never drains in this test
		RetryAfter:    123 * time.Millisecond,
	})
	// Not started: requests pile into the queue.
	done := make(chan error, 1)
	go func() {
		done <- svc.Submit(simpleJob(0, 1, 100))
	}()
	time.Sleep(20 * time.Millisecond) // let the first request occupy the queue
	sawBusy := false
	for i := 1; i < 10; i++ {
		err := svc.Submit(simpleJob(i, 1, 100))
		var busy *BusyError
		if errors.As(err, &busy) {
			if busy.RetryAfter != 123*time.Millisecond {
				t.Errorf("retry hint %v, want 123ms", busy.RetryAfter)
			}
			sawBusy = true
			break
		}
	}
	if !sawBusy {
		t.Error("no BusyError from an overfull queue")
	}
	svc.Start()
	if err := <-done; err != nil {
		t.Errorf("queued submit: %v", err)
	}
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestFedServiceWallClock checks the wall-paced loop advances members
// at the configured cadence.
func TestFedServiceWallClock(t *testing.T) {
	svc := newTestFedService(t, 2, FedOptions{
		Clock:         WallClock,
		RoundInterval: time.Millisecond,
	})
	svc.Start()
	for i := 0; i < 4; i++ {
		if err := svc.Submit(simpleJob(i, 1, 2000)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitForFed(t, svc, "4 completions", func(s *federation.FedSnapshot) bool { return s.Completed == 4 })
	if _, err := svc.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

// TestFedServiceProvider checks the dashboard Provider view: one entry
// per member, resolvable to that member's snapshot-backed report.
func TestFedServiceProvider(t *testing.T) {
	svc := newTestFedService(t, 3, FedOptions{})
	svc.Start()
	defer svc.Stop()
	order := svc.Order()
	if len(order) != 3 {
		t.Fatalf("Order has %d entries, want 3", len(order))
	}
	for _, name := range order {
		rep, ok := svc.Report(name)
		if !ok || rep == nil {
			t.Errorf("Report(%q) = (%v, %v)", name, rep, ok)
		}
	}
	if _, ok := svc.Report("not-a-member"); ok {
		t.Error("Report resolved an unknown member")
	}
}
