// Package service runs a sim.Engine as a long-lived online scheduler.
//
// The batch simulator answers "what would this trace have cost"; the
// service answers "what is the cluster doing right now". A single
// goroutine owns the engine and is the only code that ever touches it:
// it drains a bounded admission queue, processes one round boundary at
// a time, and publishes an immutable sim.Snapshot through an atomic
// pointer after every boundary. Readers (HTTP handlers, dashboards,
// load drivers) only ever see published snapshots, so they never
// contend with the scheduler.
//
// Admission control is explicit: Submit and Cancel enqueue requests on
// a channel of configurable depth. When the queue is full the call
// fails fast with a *BusyError carrying a retry hint instead of
// blocking the caller — backpressure propagates to the client, the
// engine is never swamped.
//
// The engine's virtual clock is decoupled from the wall clock by
// Options.Clock: VirtualClock processes boundaries as fast as the CPU
// allows (simulation as a service), WallClock paces one boundary per
// RoundInterval of real time (a control plane bound to external time).
package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// ClockMode selects how simulated round boundaries map to real time.
type ClockMode int

const (
	// VirtualClock processes round boundaries as fast as possible; the
	// simulated clock races ahead of the wall clock. This is the mode
	// for capacity studies and load testing.
	VirtualClock ClockMode = iota
	// WallClock processes at most one round boundary per RoundInterval
	// of real time, so the service behaves like a live control plane
	// with a compressed round length.
	WallClock
)

// String names the mode.
func (m ClockMode) String() string {
	switch m {
	case VirtualClock:
		return "virtual"
	case WallClock:
		return "wall"
	}
	return fmt.Sprintf("ClockMode(%d)", int(m))
}

// Options configures the service.
type Options struct {
	// Sim configures the underlying engine. Enable Sim.Validate to run
	// the invariant oracle on every round (sim.ValidatedOptions).
	Sim sim.Options
	// QueueDepth bounds the admission queue: at most this many
	// submit/cancel requests may be waiting for the engine goroutine
	// before further calls fail with *BusyError. Default 64.
	QueueDepth int
	// RetryAfter is the backpressure hint attached to BusyError.
	// Default: RoundInterval in WallClock mode, 10ms in VirtualClock.
	RetryAfter time.Duration
	// Clock selects virtual (as-fast-as-possible) or wall-paced rounds.
	Clock ClockMode
	// RoundInterval is the real time per round boundary in WallClock
	// mode. Default 50ms.
	RoundInterval time.Duration
}

func (o *Options) normalize() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RoundInterval <= 0 {
		o.RoundInterval = 50 * time.Millisecond
	}
	if o.RetryAfter <= 0 {
		if o.Clock == WallClock {
			o.RetryAfter = o.RoundInterval
		} else {
			o.RetryAfter = 10 * time.Millisecond
		}
	}
}

// ErrStopped is returned by Submit/Cancel once the service has shut
// down (or its engine hit a sticky error and the loop exited).
var ErrStopped = errors.New("service: scheduler service stopped")

// BusyError reports a full admission queue: the caller should back off
// for RetryAfter and resubmit. It maps to HTTP 429 + Retry-After.
type BusyError struct{ RetryAfter time.Duration }

// Error describes the backpressure signal.
func (e *BusyError) Error() string {
	return fmt.Sprintf("service: admission queue full, retry after %v", e.RetryAfter)
}

// Stats counts the service's admission-control outcomes. All counters
// are cumulative since Start.
type Stats struct {
	// Accepted counts submissions the engine admitted.
	Accepted int64 `json:"accepted"`
	// RejectedBusy counts submissions bounced by the full queue.
	RejectedBusy int64 `json:"rejected_busy"`
	// RejectedInvalid counts submissions the engine refused
	// (validation failure, impossible placement, duplicate ID).
	RejectedInvalid int64 `json:"rejected_invalid"`
	// Cancelled counts cancellations the engine accepted.
	Cancelled int64 `json:"cancelled"`
	// Rounds counts processed round boundaries (including idle
	// fast-forwards).
	Rounds int64 `json:"rounds"`
}

type reqKind int

const (
	submitReq reqKind = iota
	cancelReq
)

// request is one admission-queue entry; reply carries the engine's
// verdict back to the caller (buffered so the loop never blocks).
type request struct {
	kind  reqKind
	job   *job.Job
	id    int
	reply chan error
}

// Service fronts one sim.Engine with a goroutine-owned event loop,
// bounded admission, and lock-free snapshot reads. Create with New,
// then Start; all exported methods are safe for concurrent use.
type Service struct {
	opts Options
	name string

	eng  *sim.Engine // owned by the run goroutine after Start
	reqs chan request

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	stopped   chan struct{}

	snap atomic.Pointer[sim.Snapshot]

	accepted        atomic.Int64
	rejectedBusy    atomic.Int64
	rejectedInvalid atomic.Int64
	cancelled       atomic.Int64
	rounds          atomic.Int64
	nextID          atomic.Int64

	// finalReport/finalErr are written by the run goroutine before it
	// closes stopped and read only after <-stopped.
	finalReport *metrics.Report
	finalErr    error
}

// New builds a service over a fresh engine. The service is inert until
// Start; requests submitted before Start wait in the admission queue.
func New(c *cluster.Cluster, s sched.Scheduler, opts Options) (*Service, error) {
	opts.normalize()
	eng, err := sim.NewEngine(c, s, opts.Sim)
	if err != nil {
		return nil, err
	}
	svc := &Service{
		opts:    opts,
		name:    s.Name(),
		eng:     eng,
		reqs:    make(chan request, opts.QueueDepth),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	// Auto-assigned IDs (NextID) start high so they stay clear of
	// trace-style sequential IDs chosen by clients.
	svc.nextID.Store(1 << 20)
	svc.snap.Store(eng.Snapshot())
	return svc, nil
}

// Start launches the engine goroutine. Safe to call once; later calls
// are no-ops.
func (s *Service) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop shuts the loop down, drains the admission queue with ErrStopped
// replies, finalizes the engine, and returns its report. Safe to call
// multiple times and after an engine failure; every call returns the
// same result.
func (s *Service) Stop() (*metrics.Report, error) {
	s.Start() // a never-started service still terminates cleanly
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.stopped
	return s.finalReport, s.finalErr
}

// Submit asks the engine to admit the job at the next round boundary.
// It fails fast with *BusyError when the admission queue is full and
// with ErrStopped after shutdown; any other error is the engine's
// validation verdict (bad job, impossible placement, duplicate ID).
func (s *Service) Submit(j *job.Job) error {
	return s.send(request{kind: submitReq, job: j, reply: make(chan error, 1)})
}

// Cancel withdraws a submitted job (pending or running) at the next
// boundary. Backpressure and shutdown behave exactly as in Submit.
func (s *Service) Cancel(id int) error {
	return s.send(request{kind: cancelReq, id: id, reply: make(chan error, 1)})
}

func (s *Service) send(r request) error {
	select {
	case <-s.stopped:
		return ErrStopped
	default:
	}
	select {
	case s.reqs <- r:
	default:
		s.rejectedBusy.Add(1)
		return &BusyError{RetryAfter: s.opts.RetryAfter}
	}
	select {
	case err := <-r.reply:
		return err
	case <-s.stopped:
		// The loop drains the queue before closing stopped, so a reply
		// may already be waiting; prefer it over the shutdown signal.
		select {
		case err := <-r.reply:
			return err
		default:
			return ErrStopped
		}
	}
}

// NextID returns a fresh job ID from the service's own range, for
// clients that do not pick their own.
func (s *Service) NextID() int { return int(s.nextID.Add(1)) }

// Snapshot returns the most recently published immutable view. It
// never blocks and never observes a half-updated engine.
func (s *Service) Snapshot() *sim.Snapshot { return s.snap.Load() }

// Stats returns the cumulative admission-control counters.
func (s *Service) Stats() Stats {
	return Stats{
		Accepted:        s.accepted.Load(),
		RejectedBusy:    s.rejectedBusy.Load(),
		RejectedInvalid: s.rejectedInvalid.Load(),
		Cancelled:       s.cancelled.Load(),
		Rounds:          s.rounds.Load(),
	}
}

// Order implements the web dashboard's Provider interface: a live
// service exposes exactly one scheduler.
func (s *Service) Order() []string { return []string{s.name} }

// Report implements the Provider interface against the latest
// snapshot's deep-copied report.
func (s *Service) Report(name string) (*metrics.Report, bool) {
	if name != s.name {
		return nil, false
	}
	return s.snap.Load().Report, true
}

// run is the engine goroutine: the sole owner of s.eng from Start to
// stopped.
func (s *Service) run() {
	defer close(s.stopped)
	switch s.opts.Clock {
	case WallClock:
		s.runWall()
	default:
		s.runVirtual()
	}
	s.shutdown()
}

// runVirtual drains requests and processes boundaries as fast as
// possible, blocking only when the engine is idle and the queue empty.
func (s *Service) runVirtual() {
	for {
		// Batch every waiting request into this boundary.
		for {
			select {
			case r := <-s.reqs:
				s.handle(r)
				continue
			case <-s.stop:
				return
			default:
			}
			break
		}
		if !s.eng.HasPendingEvents() {
			// Idle: nothing to schedule until a request or stop.
			select {
			case r := <-s.reqs:
				s.handle(r)
			case <-s.stop:
				return
			}
			continue
		}
		if !s.processBoundary() {
			return
		}
	}
}

// runWall paces one boundary per RoundInterval tick, handling requests
// between ticks.
func (s *Service) runWall() {
	tick := time.NewTicker(s.opts.RoundInterval)
	defer tick.Stop()
	for {
		select {
		case r := <-s.reqs:
			s.handle(r)
		case <-tick.C:
			if s.eng.HasPendingEvents() && !s.processBoundary() {
				return
			}
		case <-s.stop:
			return
		}
	}
}

// processBoundary advances the engine one boundary and publishes a
// fresh snapshot; false means the engine hit a sticky error and the
// loop must exit.
func (s *Service) processBoundary() bool {
	if err := s.eng.ProcessNextEvent(); err != nil {
		return false
	}
	s.rounds.Add(1)
	s.snap.Store(s.eng.Snapshot())
	return true
}

// handle applies one admission-queue request to the engine.
func (s *Service) handle(r request) {
	var err error
	switch r.kind {
	case submitReq:
		err = s.eng.SubmitJob(r.job)
		if err == nil {
			s.accepted.Add(1)
		} else {
			s.rejectedInvalid.Add(1)
		}
	case cancelReq:
		err = s.eng.CancelJob(r.id)
		if err == nil {
			s.cancelled.Add(1)
		}
	}
	// Publish the queue/phase change immediately so status reads see
	// accepted-but-not-yet-admitted jobs.
	if err == nil {
		s.snap.Store(s.eng.Snapshot())
	}
	r.reply <- err
}

// shutdown rejects everything still queued, finalizes the engine, and
// records the result for Stop.
func (s *Service) shutdown() {
	for {
		select {
		case r := <-s.reqs:
			r.reply <- ErrStopped
			continue
		default:
		}
		break
	}
	// Finish returns the engine's sticky error, if any, so a crashed
	// loop and a clean shutdown take the same path.
	s.finalReport, s.finalErr = s.eng.Finish()
	s.snap.Store(s.eng.Snapshot())
}
