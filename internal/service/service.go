// Package service runs a sim.Engine as a long-lived online scheduler.
//
// The batch simulator answers "what would this trace have cost"; the
// service answers "what is the cluster doing right now". A single
// goroutine owns the engine and is the only code that ever touches it:
// it drains a bounded admission queue, processes one round boundary at
// a time, and publishes an immutable sim.Snapshot through an atomic
// pointer after every boundary. Readers (HTTP handlers, dashboards,
// load drivers) only ever see published snapshots, so they never
// contend with the scheduler.
//
// Admission control is explicit: Submit and Cancel enqueue requests on
// a channel of configurable depth. When the queue is full the call
// fails fast with a *BusyError carrying a retry hint instead of
// blocking the caller — backpressure propagates to the client, the
// engine is never swamped.
//
// The engine's virtual clock is decoupled from the wall clock by
// Options.Clock: VirtualClock processes boundaries as fast as the CPU
// allows (simulation as a service), WallClock paces one boundary per
// RoundInterval of real time (a control plane bound to external time).
package service

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wal"
)

// ClockMode selects how simulated round boundaries map to real time.
type ClockMode int

const (
	// VirtualClock processes round boundaries as fast as possible; the
	// simulated clock races ahead of the wall clock. This is the mode
	// for capacity studies and load testing.
	VirtualClock ClockMode = iota
	// WallClock processes at most one round boundary per RoundInterval
	// of real time, so the service behaves like a live control plane
	// with a compressed round length.
	WallClock
)

// String names the mode.
func (m ClockMode) String() string {
	switch m {
	case VirtualClock:
		return "virtual"
	case WallClock:
		return "wall"
	}
	return fmt.Sprintf("ClockMode(%d)", int(m))
}

// Options configures the service.
type Options struct {
	// Sim configures the underlying engine. Enable Sim.Validate to run
	// the invariant oracle on every round (sim.ValidatedOptions).
	Sim sim.Options
	// QueueDepth bounds the admission queue: at most this many
	// submit/cancel requests may be waiting for the engine goroutine
	// before further calls fail with *BusyError. Default 64.
	QueueDepth int
	// RetryAfter is the backpressure hint attached to BusyError.
	// Default: RoundInterval in WallClock mode, 10ms in VirtualClock.
	RetryAfter time.Duration
	// Clock selects virtual (as-fast-as-possible) or wall-paced rounds.
	Clock ClockMode
	// RoundInterval is the real time per round boundary in WallClock
	// mode. Default 50ms.
	RoundInterval time.Duration
	// RequestTimeout bounds how long Submit/Cancel wait for the engine
	// goroutine's verdict after enqueueing; expiry returns *DeadError
	// instead of blocking forever on a wedged loop. Default 30s;
	// negative disables the deadline.
	RequestTimeout time.Duration
	// WAL, when non-nil, enables the write-ahead journal: accepted
	// mutations are made durable before their verdicts return, and the
	// service can recover its exact state after a crash.
	WAL *WALConfig
}

func (o *Options) normalize() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RoundInterval <= 0 {
		o.RoundInterval = 50 * time.Millisecond
	}
	if o.RetryAfter <= 0 {
		if o.Clock == WallClock {
			o.RetryAfter = o.RoundInterval
		} else {
			o.RetryAfter = 10 * time.Millisecond
		}
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
}

// ErrStopped is returned by Submit/Cancel once the service has shut
// down (or its engine hit a sticky error and the loop exited).
var ErrStopped = errors.New("service: scheduler service stopped")

// ErrKilled is the final error of a service terminated by Kill: a
// simulated crash that skips every graceful-shutdown step.
var ErrKilled = errors.New("service: killed")

// DeadError reports that the engine goroutine did not deliver a
// verdict within Options.RequestTimeout. The request may or may not
// have been applied; an idempotency key makes the retry safe.
type DeadError struct{ Waited time.Duration }

// Error describes the expired deadline.
func (e *DeadError) Error() string {
	return fmt.Sprintf("service: no verdict within %v", e.Waited)
}

// BusyError reports a full admission queue: the caller should back off
// for RetryAfter and resubmit. It maps to HTTP 429 + Retry-After.
type BusyError struct{ RetryAfter time.Duration }

// Error describes the backpressure signal.
func (e *BusyError) Error() string {
	return fmt.Sprintf("service: admission queue full, retry after %v", e.RetryAfter)
}

// Stats counts the service's admission-control outcomes. All counters
// are cumulative since Start.
type Stats struct {
	// Accepted counts submissions the engine admitted.
	Accepted int64 `json:"accepted"`
	// RejectedBusy counts submissions bounced by the full queue.
	RejectedBusy int64 `json:"rejected_busy"`
	// RejectedInvalid counts submissions the engine refused
	// (validation failure, impossible placement, duplicate ID).
	RejectedInvalid int64 `json:"rejected_invalid"`
	// Cancelled counts cancellations the engine accepted.
	Cancelled int64 `json:"cancelled"`
	// Deduped counts keyed submissions answered from the idempotency
	// ledger without touching the engine.
	Deduped int64 `json:"deduped"`
	// Rounds counts processed round boundaries (including idle
	// fast-forwards).
	Rounds int64 `json:"rounds"`
}

type reqKind int

const (
	submitReq reqKind = iota
	cancelReq
)

// request is one admission-queue entry; reply carries the engine's
// verdict back to the caller (buffered so the loop never blocks).
type request struct {
	kind reqKind
	job  *job.Job
	id   int
	// key is the submission's idempotency ledger key ("" for unkeyed).
	key   string
	reply chan verdict
}

// verdict is the engine goroutine's answer to one request.
type verdict struct {
	// id is the accepted job's ID (submissions) or the cancelled
	// job's (cancellations).
	id int
	// deduped marks a keyed submission answered from the ledger.
	deduped bool
	err     error
}

// Service fronts one sim.Engine with a goroutine-owned event loop,
// bounded admission, and lock-free snapshot reads. Create with New,
// then Start; all exported methods are safe for concurrent use.
type Service struct {
	opts Options
	name string

	eng  *sim.Engine // owned by the run goroutine after Start
	reqs chan request

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	stopped   chan struct{}

	snap atomic.Pointer[sim.Snapshot]

	accepted        atomic.Int64
	rejectedBusy    atomic.Int64
	rejectedInvalid atomic.Int64
	cancelled       atomic.Int64
	deduped         atomic.Int64
	rounds          atomic.Int64
	nextID          atomic.Int64

	// killed marks a simulated crash: shutdown aborts the journal and
	// skips the final checkpoint.
	killed atomic.Bool

	// The fields below are owned by the engine goroutine (or set once
	// in New before Start).
	walCfg  WALConfig
	journal *wal.Writer
	// keys is the idempotency ledger: submission key -> accepted job
	// ID. It is journaled with submissions and checkpointed.
	keys map[string]int
	// applied counts journal records ever appended or replayed; it is
	// the checkpoint's replay cursor.
	applied   int
	sinceCkpt int
	// pending holds group-commit verdicts awaiting the batch fsync.
	pending       []pendingVerdict
	groupDeadline time.Time
	// walErr is the sticky journal failure; once set the loop exits
	// and every later request is refused with it.
	walErr error
	// recovery describes what startup recovery did (nil without WAL
	// recovery).
	recovery *Recovery

	// finalReport/finalErr are written by the run goroutine before it
	// closes stopped and read only after <-stopped.
	finalReport *metrics.Report
	finalErr    error
}

// New builds a service over a fresh engine — or, with Options.WAL in
// Recover mode, over the engine reconstructed from the journal and
// checkpoint in WAL.Dir. The service is inert until Start; requests
// submitted before Start wait in the admission queue.
func New(c *cluster.Cluster, s sched.Scheduler, opts Options) (*Service, error) {
	opts.normalize()
	svc := &Service{
		opts:    opts,
		name:    s.Name(),
		keys:    make(map[string]int),
		reqs:    make(chan request, opts.QueueDepth),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if opts.WAL != nil {
		if err := svc.initWAL(c, s, opts); err != nil {
			return nil, err
		}
	} else {
		eng, err := sim.NewEngine(c, s, opts.Sim)
		if err != nil {
			return nil, err
		}
		svc.eng = eng
	}
	// Auto-assigned IDs (NextID) start high so they stay clear of
	// trace-style sequential IDs chosen by clients; after recovery they
	// additionally stay clear of every ID already journaled.
	next := int64(1 << 20)
	//lint:ignore maprange max over keys; commutative, order cannot be observed
	for id := range svc.eng.Snapshot().Phases {
		if int64(id) > next {
			next = int64(id)
		}
	}
	svc.nextID.Store(next)
	svc.snap.Store(svc.eng.Snapshot())
	return svc, nil
}

// initWAL opens (or recovers) the durability state in opts.WAL.Dir and
// installs the journal writer.
func (s *Service) initWAL(c *cluster.Cluster, sch sched.Scheduler, opts Options) error {
	cfg := *opts.WAL
	cfg.normalize()
	s.walCfg = cfg
	if !cfg.Recover {
		if _, err := os.Stat(journalPath(cfg.Dir)); err == nil {
			return fmt.Errorf("service: %s already has a journal; pass Recover to resume it or remove it first",
				cfg.Dir)
		}
		eng, err := sim.NewEngine(c, sch, opts.Sim)
		if err != nil {
			return err
		}
		w, err := wal.Create(journalPath(cfg.Dir), cfg.Policy, cfg.FailPoint)
		if err != nil {
			return fmt.Errorf("service: create journal: %w", err)
		}
		s.eng = eng
		s.journal = w
		return nil
	}
	st, err := recoverState(c, sch, opts.Sim, cfg)
	if err != nil {
		return err
	}
	w, err := wal.OpenAppend(journalPath(cfg.Dir), st.validSize, cfg.Policy, cfg.FailPoint)
	if err != nil {
		return fmt.Errorf("service: reopen journal: %w", err)
	}
	s.eng = st.eng
	s.journal = w
	s.keys = st.keys
	s.applied = st.applied
	s.recovery = st.info
	// Re-anchor the checkpoint at the recovered position: this bounds
	// the next crash's replay and, after a checkpoint-ahead-of-journal
	// recovery, realigns the checkpoint sequence with the (restarted)
	// journal frame count.
	if st.applied > 0 || st.info.CheckpointSeq > 0 {
		s.writeCheckpoint()
	}
	return nil
}

// Recovery reports what startup recovery did, or nil when the service
// did not recover from a journal.
func (s *Service) Recovery() *Recovery { return s.recovery }

// Kill simulates a crash: the engine loop exits without draining the
// admission queue, flushing the journal, or writing a final
// checkpoint, exactly as if the process had died. Stop afterwards
// returns ErrKilled. The journal is left as a real crash would leave
// it, so a new service can Recover from it.
func (s *Service) Kill() {
	s.killed.Store(true)
	s.Start() // an unstarted service can still be killed
	s.stopOnce.Do(func() { close(s.stop) })
}

// Start launches the engine goroutine. Safe to call once; later calls
// are no-ops.
func (s *Service) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop shuts the loop down, drains the admission queue with ErrStopped
// replies, finalizes the engine, and returns its report. Safe to call
// multiple times and after an engine failure; every call returns the
// same result.
func (s *Service) Stop() (*metrics.Report, error) {
	s.Start() // a never-started service still terminates cleanly
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.stopped
	return s.finalReport, s.finalErr
}

// Submit asks the engine to admit the job at the next round boundary.
// It fails fast with *BusyError when the admission queue is full and
// with ErrStopped after shutdown; any other error is the engine's
// validation verdict (bad job, impossible placement, duplicate ID).
// With a journal enabled the verdict is durable before it returns.
func (s *Service) Submit(j *job.Job) error {
	return s.send(request{kind: submitReq, job: j, reply: make(chan verdict, 1)}).err
}

// SubmitKeyed is Submit with an idempotency key: resubmitting the same
// key — after a timeout, a crash, or a retried HTTP request — returns
// the originally accepted job's ID with deduped true instead of
// admitting a duplicate. The key ledger is journaled and survives
// recovery.
func (s *Service) SubmitKeyed(key string, j *job.Job) (id int, deduped bool, err error) {
	v := s.send(request{kind: submitReq, job: j, key: key, reply: make(chan verdict, 1)})
	return v.id, v.deduped, v.err
}

// Cancel withdraws a submitted job (pending or running) at the next
// boundary. Backpressure and shutdown behave exactly as in Submit.
func (s *Service) Cancel(id int) error {
	return s.send(request{kind: cancelReq, id: id, reply: make(chan verdict, 1)}).err
}

func (s *Service) send(r request) verdict {
	select {
	case <-s.stopped:
		return verdict{err: ErrStopped}
	default:
	}
	select {
	case s.reqs <- r:
	default:
		s.rejectedBusy.Add(1)
		return verdict{err: &BusyError{RetryAfter: s.opts.RetryAfter}}
	}
	var deadline <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		t := time.NewTimer(s.opts.RequestTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case v := <-r.reply:
		return v
	case <-s.stopped:
		// The loop drains the queue before closing stopped, so a reply
		// may already be waiting; prefer it over the shutdown signal.
		select {
		case v := <-r.reply:
			return v
		default:
			return verdict{err: ErrStopped}
		}
	case <-deadline:
		return verdict{err: &DeadError{Waited: s.opts.RequestTimeout}}
	}
}

// NextID returns a fresh job ID from the service's own range, for
// clients that do not pick their own.
func (s *Service) NextID() int { return int(s.nextID.Add(1)) }

// Snapshot returns the most recently published immutable view. It
// never blocks and never observes a half-updated engine.
func (s *Service) Snapshot() *sim.Snapshot { return s.snap.Load() }

// Stats returns the cumulative admission-control counters.
func (s *Service) Stats() Stats {
	return Stats{
		Accepted:        s.accepted.Load(),
		RejectedBusy:    s.rejectedBusy.Load(),
		RejectedInvalid: s.rejectedInvalid.Load(),
		Cancelled:       s.cancelled.Load(),
		Deduped:         s.deduped.Load(),
		Rounds:          s.rounds.Load(),
	}
}

// Order implements the web dashboard's Provider interface: a live
// service exposes exactly one scheduler.
func (s *Service) Order() []string { return []string{s.name} }

// Report implements the Provider interface against the latest
// snapshot's deep-copied report.
func (s *Service) Report(name string) (*metrics.Report, bool) {
	if name != s.name {
		return nil, false
	}
	return s.snap.Load().Report, true
}

// run is the engine goroutine: the sole owner of s.eng from Start to
// stopped.
func (s *Service) run() {
	defer close(s.stopped)
	switch s.opts.Clock {
	case WallClock:
		s.runWall()
	default:
		s.runVirtual()
	}
	s.shutdown()
}

// runVirtual drains requests and processes boundaries as fast as
// possible, blocking only when the engine is idle and the queue empty.
func (s *Service) runVirtual() {
	for {
		// Batch every waiting request into this boundary.
		for {
			select {
			case r := <-s.reqs:
				s.handle(r)
				continue
			case <-s.stop:
				return
			default:
			}
			break
		}
		if s.walErr != nil {
			return
		}
		s.flushGroup(false)
		if !s.eng.HasPendingEvents() {
			// Idle: nothing to schedule until a request, a pending
			// group commit, or stop.
			select {
			case r := <-s.reqs:
				s.handle(r)
			case <-s.groupTimer():
				s.flushGroup(true)
			case <-s.stop:
				return
			}
			continue
		}
		if !s.processBoundary() {
			return
		}
		s.maybeCheckpoint()
	}
}

// runWall paces one boundary per RoundInterval tick, handling requests
// between ticks.
func (s *Service) runWall() {
	tick := time.NewTicker(s.opts.RoundInterval)
	defer tick.Stop()
	for {
		if s.walErr != nil {
			return
		}
		select {
		case r := <-s.reqs:
			s.handle(r)
		case <-s.groupTimer():
			s.flushGroup(true)
		case <-tick.C:
			if s.eng.HasPendingEvents() && !s.processBoundary() {
				return
			}
			s.maybeCheckpoint()
		case <-s.stop:
			return
		}
	}
}

// processBoundary advances the engine one boundary, journals it, and
// publishes a fresh snapshot; false means the engine or journal hit a
// sticky error and the loop must exit.
func (s *Service) processBoundary() bool {
	if err := s.eng.ProcessNextEvent(); err != nil {
		return false
	}
	s.rounds.Add(1)
	s.snap.Store(s.eng.Snapshot())
	if s.journal != nil {
		// Round records need no eager fsync: no caller is waiting on
		// them, and any later synced record makes them durable first
		// (the journal is strictly sequential). Recovery uses the
		// recorded digest to prove the replayed schedule identical.
		rec := walRecord{Type: recRound, Round: s.eng.Round(), Now: s.eng.Now(), Digest: s.eng.Digest()}
		if s.appendRecord(rec) != nil {
			return false
		}
	}
	return true
}

// handle applies one admission-queue request to the engine and commits
// it to the journal before the verdict is released.
func (s *Service) handle(r request) {
	if s.walErr != nil {
		r.reply <- verdict{err: fmt.Errorf("service: journal failed: %w", s.walErr)}
		return
	}
	switch r.kind {
	case submitReq:
		if r.key != "" {
			if id, ok := s.keys[r.key]; ok {
				s.deduped.Add(1)
				r.reply <- verdict{id: id, deduped: true}
				return
			}
		}
		if err := s.eng.SubmitJob(r.job); err != nil {
			s.rejectedInvalid.Add(1)
			r.reply <- verdict{err: err}
			return
		}
		s.accepted.Add(1)
		if r.key != "" {
			s.keys[r.key] = r.job.ID
		}
		// Publish the queue/phase change immediately so status reads
		// see accepted-but-not-yet-admitted jobs.
		s.snap.Store(s.eng.Snapshot())
		s.commit(walRecord{Type: recSubmit, Key: r.key, Job: r.job}, r.reply, verdict{id: r.job.ID})
	case cancelReq:
		if err := s.eng.CancelJob(r.id); err != nil {
			r.reply <- verdict{err: err}
			return
		}
		s.cancelled.Add(1)
		s.snap.Store(s.eng.Snapshot())
		s.commit(walRecord{Type: recCancel, ID: r.id}, r.reply, verdict{id: r.id})
	}
}

// shutdown finalizes the loop. A clean stop drains the queue, flushes
// deferred group commits, checkpoints, and closes the journal; a Kill
// or journal failure abandons the journal exactly as a crash would.
func (s *Service) shutdown() {
	if s.killed.Load() {
		// Simulated crash: no drain, no sync, no checkpoint. Waiters
		// unblock via the stopped channel with ErrStopped.
		if s.journal != nil {
			s.journal.Abort()
		}
		s.finalErr = ErrKilled
		return
	}
	for {
		select {
		case r := <-s.reqs:
			r.reply <- verdict{err: ErrStopped}
			continue
		default:
		}
		break
	}
	if s.walErr != nil {
		s.flushGroup(true) // delivers the journal error to deferred verdicts
		s.journal.Abort()
		s.finalErr = fmt.Errorf("service: journal failed: %w", s.walErr)
		return
	}
	s.flushGroup(true)
	if s.journal != nil && s.walErr == nil {
		// Checkpoint before Finish: Finish finalizes the report for
		// consumption and the engine must be persisted resumable.
		s.writeCheckpoint()
	}
	// Finish returns the engine's sticky error, if any, so a crashed
	// loop and a clean shutdown take the same path.
	s.finalReport, s.finalErr = s.eng.Finish()
	s.snap.Store(s.eng.Snapshot())
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && s.finalErr == nil {
			s.finalErr = fmt.Errorf("service: close journal: %w", err)
		}
	}
}
