package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/wal"
)

// Recovery describes what a WAL recovery did; Service.Recovery exposes
// it for logging and for the chaos harness's assertions.
type Recovery struct {
	// CheckpointSeq is the journal index the loaded checkpoint
	// embodied (0 when recovery started from a fresh engine).
	CheckpointSeq int `json:"checkpoint_seq"`
	// CheckpointCorrupt reports that a checkpoint file existed but
	// failed its integrity check, forcing a full-journal replay.
	CheckpointCorrupt bool `json:"checkpoint_corrupt,omitempty"`
	// Replayed is the number of journal records applied on top of the
	// checkpoint.
	Replayed int `json:"replayed"`
	// RoundsVerified counts replayed round records whose recorded
	// digest matched the engine's — the proof that the recovered
	// schedule is byte-identical to the pre-crash one.
	RoundsVerified int `json:"rounds_verified"`
	// TruncatedBytes is the size of the torn or corrupt journal tail
	// discarded before replay (0 on a clean shutdown).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// recoveredState is what initWAL hands back to New.
type recoveredState struct {
	eng       *sim.Engine
	keys      map[string]int
	applied   int
	validSize int64
	info      *Recovery
}

// recoverState rebuilds the engine from the latest valid checkpoint
// plus the journal tail. Damage tolerated: missing checkpoint (full
// replay), corrupt checkpoint (full replay), torn or corrupt final
// journal record (truncated at the last valid frame), missing journal
// (fresh start). Damage refused: a journal whose valid prefix
// contradicts the recorded round digests, which means the replayed
// schedule would not match what clients observed.
func recoverState(c *cluster.Cluster, s sched.Scheduler, simOpts sim.Options, cfg WALConfig) (*recoveredState, error) {
	scan, err := wal.Scan(journalPath(cfg.Dir))
	if err != nil {
		return nil, fmt.Errorf("service: recover: %w", err)
	}
	info := &Recovery{TruncatedBytes: scan.TruncatedBytes}

	var doc checkpointDoc
	haveCkpt := false
	raw, err := wal.ReadCheckpoint(checkpointPath(cfg.Dir))
	switch {
	case err == nil:
		if err := json.Unmarshal(raw, &doc); err != nil {
			info.CheckpointCorrupt = true
		} else {
			haveCkpt = true
		}
	case errors.Is(err, os.ErrNotExist):
		// First boot or checkpoint never written: full replay.
	case errors.Is(err, wal.ErrCorrupt):
		info.CheckpointCorrupt = true
	default:
		return nil, fmt.Errorf("service: recover: %w", err)
	}

	st := &recoveredState{keys: make(map[string]int), validSize: scan.ValidSize, info: info}
	records := scan.Records
	if haveCkpt {
		eng, err := sim.RestoreEngine(c, s, simOpts, doc.Engine)
		if err != nil {
			return nil, fmt.Errorf("service: recover: %w", err)
		}
		st.eng = eng
		//lint:ignore maprange map-to-map copy; no output depends on visit order
		for k, id := range doc.Keys {
			st.keys[k] = id
		}
		info.CheckpointSeq = doc.Seq
		if doc.Seq > len(records) {
			// The checkpoint is ahead of the surviving journal: a
			// machine crash under a lax sync policy lost journaled
			// records that the fsynced checkpoint embodies. Restart
			// journal addressing from zero so frame indices and
			// checkpoint sequence numbers stay aligned. (A restarted
			// journal no longer supports VerifyWAL's full replay.)
			records = nil
			st.validSize = 0
			st.applied = 0
		} else {
			records = records[doc.Seq:]
			st.applied = doc.Seq
		}
	} else {
		eng, err := sim.NewEngine(c, s, simOpts)
		if err != nil {
			return nil, err
		}
		st.eng = eng
	}

	rounds, err := replayRecords(st.eng, st.keys, records)
	if err != nil {
		return nil, fmt.Errorf("service: recover: %w", err)
	}
	st.applied += len(records)
	info.Replayed = len(records)
	info.RoundsVerified = rounds
	return st, nil
}

// replayRecords applies journal records to an engine in order. Every
// record was journaled only after the live engine accepted the same
// mutation against the same state, so replay must accept them too;
// round records additionally carry the digest the live engine computed,
// and a mismatch aborts the replay.
func replayRecords(eng *sim.Engine, keys map[string]int, records [][]byte) (roundsVerified int, err error) {
	for i, payload := range records {
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return roundsVerified, fmt.Errorf("record %d: %w", i, err)
		}
		switch rec.Type {
		case recSubmit:
			if rec.Job == nil {
				return roundsVerified, fmt.Errorf("record %d: submit without job", i)
			}
			if err := eng.SubmitJob(rec.Job); err != nil {
				return roundsVerified, fmt.Errorf("record %d: replay submit %d: %w", i, rec.Job.ID, err)
			}
			if rec.Key != "" {
				keys[rec.Key] = rec.Job.ID
			}
		case recCancel:
			if err := eng.CancelJob(rec.ID); err != nil {
				return roundsVerified, fmt.Errorf("record %d: replay cancel %d: %w", i, rec.ID, err)
			}
		case recRound:
			if err := eng.ProcessNextEvent(); err != nil {
				return roundsVerified, fmt.Errorf("record %d: replay round %d: %w", i, rec.Round, err)
			}
			if eng.Round() != rec.Round {
				return roundsVerified, fmt.Errorf("record %d: replay reached round %d, journal recorded %d", i, eng.Round(), rec.Round)
			}
			if eng.Digest() != rec.Digest {
				return roundsVerified, fmt.Errorf("record %d: round %d digest %#x diverges from journal %#x",
					i, rec.Round, eng.Digest(), rec.Digest)
			}
			roundsVerified++
		default:
			return roundsVerified, fmt.Errorf("record %d: unknown type %q", i, rec.Type)
		}
	}
	return roundsVerified, nil
}

// VerifyResult is VerifyWAL's summary of a full-journal replay.
type VerifyResult struct {
	// Records is the total number of valid journal records.
	Records int `json:"records"`
	// Rounds counts round records, every one digest-verified.
	Rounds int `json:"rounds"`
	// Submitted and Cancelled count mutation records.
	Submitted int `json:"submitted"`
	Cancelled int `json:"cancelled"`
	// Digest is the engine's chained digest after replaying the whole
	// journal — the schedule an uninterrupted run would have produced.
	Digest uint64 `json:"digest"`
	// Jobs maps idempotency keys to job IDs, for cross-checking a
	// client-side ledger.
	Jobs map[string]int `json:"jobs,omitempty"`
	// TruncatedBytes is the discarded torn tail, if any.
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// VerifyWAL replays the entire journal in dir from a fresh engine —
// ignoring any checkpoint — and digest-verifies every round record.
// The journal is the canonical operation sequence, so this replay IS
// the uninterrupted run; the chaos harness compares its digest against
// the recovered service's to prove crash-and-recover changed nothing.
func VerifyWAL(c *cluster.Cluster, s sched.Scheduler, simOpts sim.Options, dir string) (*VerifyResult, error) {
	scan, err := wal.Scan(journalPath(dir))
	if err != nil {
		return nil, fmt.Errorf("service: verify: %w", err)
	}
	eng, err := sim.NewEngine(c, s, simOpts)
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{
		Records:        len(scan.Records),
		Jobs:           make(map[string]int),
		TruncatedBytes: scan.TruncatedBytes,
	}
	rounds, err := replayRecords(eng, res.Jobs, scan.Records)
	if err != nil {
		return nil, fmt.Errorf("service: verify: %w", err)
	}
	res.Rounds = rounds
	for _, payload := range scan.Records {
		var rec walRecord
		if json.Unmarshal(payload, &rec) == nil {
			switch rec.Type {
			case recSubmit:
				res.Submitted++
			case recCancel:
				res.Cancelled++
			}
		}
	}
	res.Digest = eng.Digest()
	return res, nil
}
