package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/metrics"
)

// FedOptions configures a federated service: the same admission-queue
// and clock knobs as Options, applied to a federation.Federation
// instead of a single engine. There is no WAL mode — durability for
// federated deployments is per-member state reconstruction, a separate
// concern from the front door.
type FedOptions struct {
	// Federation configures federation-level validation.
	Federation federation.Options
	// QueueDepth bounds the admission queue (default 64).
	QueueDepth int
	// RetryAfter is the backpressure hint attached to BusyError.
	RetryAfter time.Duration
	// Clock selects virtual (as-fast-as-possible) or wall-paced rounds.
	Clock ClockMode
	// RoundInterval is the real time per round boundary in WallClock
	// mode (default 50ms).
	RoundInterval time.Duration
	// RequestTimeout bounds how long Submit/Cancel wait for a verdict
	// (default 30s; negative disables).
	RequestTimeout time.Duration
}

func (o *FedOptions) normalize() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RoundInterval <= 0 {
		o.RoundInterval = 50 * time.Millisecond
	}
	if o.RetryAfter <= 0 {
		if o.Clock == WallClock {
			o.RetryAfter = o.RoundInterval
		} else {
			o.RetryAfter = 10 * time.Millisecond
		}
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
}

// FedService fronts a federation.Federation with the same contract as
// Service: one goroutine owns the federation and is the only code that
// touches it; Submit/Cancel enqueue on a bounded channel and fail fast
// with *BusyError under load; readers get immutable FedSnapshots from
// an atomic pointer and never contend with the scheduler loop. Create
// with NewFed, then Start; all exported methods are safe for
// concurrent use.
type FedService struct {
	opts FedOptions

	fed  *federation.Federation // owned by the run goroutine after Start
	reqs chan request

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	stopped   chan struct{}

	snap atomic.Pointer[federation.FedSnapshot]

	accepted        atomic.Int64
	rejectedBusy    atomic.Int64
	rejectedInvalid atomic.Int64
	cancelled       atomic.Int64
	deduped         atomic.Int64
	rounds          atomic.Int64
	nextID          atomic.Int64

	// keys is the in-memory idempotency ledger (owned by the run
	// goroutine): submission key -> accepted job ID.
	keys map[string]int

	// finalReport/finalErr are written by the run goroutine before it
	// closes stopped and read only after <-stopped.
	finalReport *federation.Report
	finalErr    error
}

// NewFed builds a federated service over fresh member engines. The
// service is inert until Start; requests submitted before Start wait
// in the admission queue.
func NewFed(members []federation.MemberConfig, router federation.Router, opts FedOptions) (*FedService, error) {
	opts.normalize()
	fed, err := federation.New(members, router, opts.Federation)
	if err != nil {
		return nil, err
	}
	s := &FedService{
		opts:    opts,
		fed:     fed,
		keys:    make(map[string]int),
		reqs:    make(chan request, opts.QueueDepth),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	s.nextID.Store(1 << 20)
	s.snap.Store(fed.Snapshot())
	return s, nil
}

// Start launches the federation goroutine. Safe to call once; later
// calls are no-ops.
func (s *FedService) Start() {
	s.startOnce.Do(func() { go s.run() })
}

// Stop shuts the loop down, drains the admission queue with ErrStopped
// replies, finalizes every member, and returns the federation report.
// Safe to call multiple times; every call returns the same result.
func (s *FedService) Stop() (*federation.Report, error) {
	s.Start()
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.stopped
	return s.finalReport, s.finalErr
}

// Submit routes the job through the federation's front door at the
// next opportunity. Backpressure and shutdown behave exactly as in
// Service.Submit.
func (s *FedService) Submit(j *job.Job) error {
	return s.send(request{kind: submitReq, job: j, reply: make(chan verdict, 1)}).err
}

// SubmitKeyed is Submit with an idempotency key: resubmitting the same
// key returns the originally accepted job's ID with deduped true. The
// ledger is in-memory (federation mode has no WAL).
func (s *FedService) SubmitKeyed(key string, j *job.Job) (id int, deduped bool, err error) {
	v := s.send(request{kind: submitReq, job: j, key: key, reply: make(chan verdict, 1)})
	return v.id, v.deduped, v.err
}

// Cancel withdraws a submitted job; the federation forwards it to the
// owning member.
func (s *FedService) Cancel(id int) error {
	return s.send(request{kind: cancelReq, id: id, reply: make(chan verdict, 1)}).err
}

func (s *FedService) send(r request) verdict {
	select {
	case <-s.stopped:
		return verdict{err: ErrStopped}
	default:
	}
	select {
	case s.reqs <- r:
	default:
		s.rejectedBusy.Add(1)
		return verdict{err: &BusyError{RetryAfter: s.opts.RetryAfter}}
	}
	var deadline <-chan time.Time
	if s.opts.RequestTimeout > 0 {
		t := time.NewTimer(s.opts.RequestTimeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case v := <-r.reply:
		return v
	case <-s.stopped:
		select {
		case v := <-r.reply:
			return v
		default:
			return verdict{err: ErrStopped}
		}
	case <-deadline:
		return verdict{err: &DeadError{Waited: s.opts.RequestTimeout}}
	}
}

// NextID returns a fresh job ID from the service's own range.
func (s *FedService) NextID() int { return int(s.nextID.Add(1)) }

// Snapshot returns the most recently published immutable federation
// view. It never blocks and never observes a half-updated member.
func (s *FedService) Snapshot() *federation.FedSnapshot { return s.snap.Load() }

// Stats returns the cumulative admission-control counters.
func (s *FedService) Stats() Stats {
	return Stats{
		Accepted:        s.accepted.Load(),
		RejectedBusy:    s.rejectedBusy.Load(),
		RejectedInvalid: s.rejectedInvalid.Load(),
		Cancelled:       s.cancelled.Load(),
		Deduped:         s.deduped.Load(),
		Rounds:          s.rounds.Load(),
	}
}

// Order implements the web dashboard's Provider interface: one entry
// per member, in member order.
func (s *FedService) Order() []string {
	snap := s.snap.Load()
	names := make([]string, 0, len(snap.Members))
	for i := range snap.Members {
		names = append(names, snap.Members[i].Name)
	}
	return names
}

// Report implements the Provider interface: the named member's
// in-progress report from the latest snapshot.
func (s *FedService) Report(name string) (*metrics.Report, bool) {
	m := s.snap.Load().Member(name)
	if m == nil {
		return nil, false
	}
	return m.Report, true
}

// run is the federation goroutine: the sole owner of s.fed from Start
// to stopped.
func (s *FedService) run() {
	defer close(s.stopped)
	switch s.opts.Clock {
	case WallClock:
		s.runWall()
	default:
		s.runVirtual()
	}
	s.shutdown()
}

// runVirtual drains requests and processes member boundaries as fast
// as possible, blocking only when every member is idle and the queue
// is empty.
func (s *FedService) runVirtual() {
	for {
		for {
			select {
			case r := <-s.reqs:
				s.handle(r)
				continue
			case <-s.stop:
				return
			default:
			}
			break
		}
		if !s.fed.HasPendingEvents() {
			select {
			case r := <-s.reqs:
				s.handle(r)
			case <-s.stop:
				return
			}
			continue
		}
		if !s.processBoundary() {
			return
		}
	}
}

// runWall paces one member boundary per RoundInterval tick, handling
// requests between ticks.
func (s *FedService) runWall() {
	tick := time.NewTicker(s.opts.RoundInterval)
	defer tick.Stop()
	for {
		select {
		case r := <-s.reqs:
			s.handle(r)
		case <-tick.C:
			if s.fed.HasPendingEvents() && !s.processBoundary() {
				return
			}
		case <-s.stop:
			return
		}
	}
}

// processBoundary advances the earliest member one boundary and
// publishes a fresh snapshot; false means the federation hit a sticky
// error and the loop must exit.
func (s *FedService) processBoundary() bool {
	if err := s.fed.ProcessNextEvent(); err != nil {
		return false
	}
	s.rounds.Add(1)
	s.snap.Store(s.fed.Snapshot())
	return true
}

// handle applies one admission-queue request to the federation.
func (s *FedService) handle(r request) {
	switch r.kind {
	case submitReq:
		if r.key != "" {
			if id, ok := s.keys[r.key]; ok {
				s.deduped.Add(1)
				r.reply <- verdict{id: id, deduped: true}
				return
			}
		}
		if err := s.fed.SubmitJob(r.job); err != nil {
			s.rejectedInvalid.Add(1)
			r.reply <- verdict{err: err}
			return
		}
		s.accepted.Add(1)
		if r.key != "" {
			s.keys[r.key] = r.job.ID
		}
		s.snap.Store(s.fed.Snapshot())
		r.reply <- verdict{id: r.job.ID}
	case cancelReq:
		if err := s.fed.CancelJob(r.id); err != nil {
			r.reply <- verdict{err: err}
			return
		}
		s.cancelled.Add(1)
		s.snap.Store(s.fed.Snapshot())
		r.reply <- verdict{id: r.id}
	}
}

// shutdown drains the queue and finalizes the federation.
func (s *FedService) shutdown() {
	for {
		select {
		case r := <-s.reqs:
			r.reply <- verdict{err: ErrStopped}
			continue
		default:
		}
		break
	}
	// Finish returns the federation's sticky error, if any, so a
	// poisoned loop and a clean shutdown take the same path.
	s.finalReport, s.finalErr = s.fed.Finish()
	s.snap.Store(s.fed.Snapshot())
}
