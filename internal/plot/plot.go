// Package plot renders simple ASCII line and bar charts for the
// terminal, so `cmd/experiments -plot` can draw the paper's figures
// without any external plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// markers are assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart plots one or more series on shared axes.
type LineChart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area in character cells; zero
	// selects 64x16.
	Width  int
	Height int
	Series []Series
}

func (c *LineChart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	if w < 8 {
		w = 8
	}
	if h < 4 {
		h = 4
	}
	return w, h
}

// bounds returns the data range across all series, widening degenerate
// ranges so scaling never divides by zero.
func (c *LineChart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
			ok = true
		}
	}
	if !ok {
		return 0, 1, 0, 1, false
	}
	//lint:ignore floateq degenerate-range guard: only bitwise equality makes the axis span zero
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lint:ignore floateq degenerate-range guard, as above
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, true
}

// Render draws the chart.
func (c *LineChart) Render() string {
	w, h := c.dims()
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var sb strings.Builder
	if c.Title != "" {
		sb.WriteString(c.Title)
		sb.WriteByte('\n')
	}
	if !ok {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}
	yLo, yHi := formatTick(ymin), formatTick(ymax)
	labelW := len(yLo)
	if len(yHi) > labelW {
		labelW = len(yHi)
	}
	for r := 0; r < h; r++ {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = pad(yHi, labelW)
		} else if r == h-1 {
			label = pad(yLo, labelW)
		}
		sb.WriteString(label)
		sb.WriteString(" |")
		sb.Write(grid[r])
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", labelW))
	sb.WriteString(" +")
	sb.WriteString(strings.Repeat("-", w))
	sb.WriteByte('\n')
	xLo, xHi := formatTick(xmin), formatTick(xmax)
	gap := w - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	sb.WriteString(strings.Repeat(" ", labelW+2))
	sb.WriteString(xLo)
	sb.WriteString(strings.Repeat(" ", gap))
	sb.WriteString(xHi)
	sb.WriteByte('\n')
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%s x: %s, y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "%s  %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

// BarChart draws labeled horizontal bars.
type BarChart struct {
	Title string
	// Unit is appended to the printed values, e.g. "%" or "h".
	Unit   string
	Labels []string
	Values []float64
	// Width is the maximum bar length in cells; zero selects 48.
	Width int
}

// Render draws the chart.
func (b *BarChart) Render() string {
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	n := len(b.Labels)
	if len(b.Values) < n {
		n = len(b.Values)
	}
	if n == 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	width := b.Width
	if width <= 0 {
		width = 48
	}
	maxVal := 0.0
	labelW := 0
	for i := 0; i < n; i++ {
		if b.Values[i] > maxVal {
			maxVal = b.Values[i]
		}
		if len(b.Labels[i]) > labelW {
			labelW = len(b.Labels[i])
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	for i := 0; i < n; i++ {
		v := b.Values[i]
		cells := int(math.Round(v / maxVal * float64(width)))
		if cells < 0 {
			cells = 0
		}
		fmt.Fprintf(&sb, "%s |%s %s%s\n",
			pad(b.Labels[i], labelW),
			strings.Repeat("=", cells),
			formatTick(v), b.Unit)
	}
	return sb.String()
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6, (a < 1e-3 && a > 0):
		return fmt.Sprintf("%.2g", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	case a >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
