package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasic(t *testing.T) {
	c := &LineChart{
		Title:  "test chart",
		XLabel: "time",
		YLabel: "value",
		Series: []Series{
			{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
			{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		},
	}
	out := c.Render()
	for _, frag := range []string{"test chart", "up", "down", "x: time, y: value", "*", "+"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestLineChartOrientation(t *testing.T) {
	// A strictly increasing series must place its marker for the max X
	// on the top row and the min X on the bottom row.
	c := &LineChart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "s", X: []float64{0, 10}, Y: []float64{0, 100}}},
	}
	lines := strings.Split(c.Render(), "\n")
	top := lines[0]
	if !strings.Contains(top, "*") {
		t.Errorf("max value not on top row:\n%s", c.Render())
	}
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Errorf("max value not at right edge:\n%s", c.Render())
	}
	bottomPlot := lines[4]
	idx := strings.Index(bottomPlot, "*")
	if idx < 0 {
		t.Fatalf("min value missing from bottom row:\n%s", c.Render())
	}
}

func TestLineChartAxisLabels(t *testing.T) {
	c := &LineChart{
		Width: 30, Height: 6,
		Series: []Series{{Name: "s", X: []float64{5, 25}, Y: []float64{10, 90}}},
	}
	out := c.Render()
	for _, frag := range []string{"5.0", "25.0", "10.0", "90.0"} {
		if !strings.Contains(out, frag) {
			t.Errorf("axis tick %q missing:\n%s", frag, out)
		}
	}
}

func TestLineChartEmpty(t *testing.T) {
	c := &LineChart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart render = %q", out)
	}
}

func TestLineChartSkipsNonFinite(t *testing.T) {
	c := &LineChart{
		Series: []Series{{
			Name: "s",
			X:    []float64{0, 1, 2},
			Y:    []float64{1, math.NaN(), math.Inf(1)},
		}},
	}
	out := c.Render()
	if strings.Contains(out, "NaN") {
		t.Errorf("non-finite values leaked: %s", out)
	}
}

func TestLineChartConstantSeries(t *testing.T) {
	c := &LineChart{
		Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}},
	}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not drawn:\n%s", out)
	}
}

func TestLineChartMismatchedLengths(t *testing.T) {
	c := &LineChart{
		Series: []Series{{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1}}},
	}
	out := c.Render() // must not panic
	if !strings.Contains(out, "*") {
		t.Errorf("short series dropped entirely:\n%s", out)
	}
}

func TestBarChartBasic(t *testing.T) {
	b := &BarChart{
		Title:  "utilization",
		Unit:   "%",
		Labels: []string{"hadar", "gavel"},
		Values: []float64{99.2, 98.1},
		Width:  20,
	}
	out := b.Render()
	for _, frag := range []string{"utilization", "hadar", "gavel", "=", "99.2%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("bar render missing %q:\n%s", frag, out)
		}
	}
	// The larger value must have the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") < strings.Count(lines[2], "=") {
		t.Errorf("bar lengths unordered:\n%s", out)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := (&BarChart{}).Render(); !strings.Contains(out, "(no data)") {
		t.Error("empty bar chart did not say (no data)")
	}
	out := (&BarChart{Labels: []string{"a"}, Values: []float64{0}}).Render()
	if !strings.Contains(out, "a |") {
		t.Errorf("zero-value bar malformed: %q", out)
	}
}

func TestBarChartMismatchedLengths(t *testing.T) {
	out := (&BarChart{Labels: []string{"a", "b"}, Values: []float64{1}}).Render()
	if strings.Contains(out, "b") {
		t.Errorf("unmatched label rendered: %q", out)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0.00",
		0.5:     "0.50",
		3.25:    "3.2",
		150:     "150",
		2500000: "2.5e+06",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
}
