// Package policy provides simple reference scheduling policies —
// preemptive FIFO, shortest-remaining-time-first (SRTF), and best-type
// greedy — used to sandwich the evaluated schedulers in tests and
// ablations. They are heterogeneity-aware in placement (they prefer a
// job's fastest type) but use no optimization framework, so they bound
// what placement alone, without Hadar's pricing and task-level search,
// can achieve.
package policy

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/sched"
)

// Order decides queue priority for the generic preemptive scheduler.
type Order int

const (
	// FIFO orders by arrival time.
	FIFO Order = iota
	// SRTF orders by estimated remaining runtime on the best type.
	SRTF
	// LRTF orders by longest estimated remaining runtime (LPT-flavored,
	// a makespan heuristic).
	LRTF
)

// String names the order.
func (o Order) String() string {
	switch o {
	case FIFO:
		return "fifo"
	case SRTF:
		return "srtf"
	case LRTF:
		return "lrtf"
	}
	return "order?"
}

// Scheduler is a preemptive list scheduler: each round it sorts the
// queue by the configured order and places gangs greedily on each job's
// fastest available types (task-level mixing allowed, like Hadar, so
// differences against Hadar isolate the primal-dual framework rather
// than placement feasibility).
type Scheduler struct {
	order  Order
	sticky bool
}

// New builds a reference scheduler. sticky keeps a running job's
// placement when it still fits (reduces checkpoint churn).
func New(order Order, sticky bool) *Scheduler {
	return &Scheduler{order: order, sticky: sticky}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string {
	n := "ref-" + s.order.String()
	if s.sticky {
		n += "-sticky"
	}
	return n
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	queue := append([]*sched.JobState(nil), ctx.Jobs...)
	key := func(st *sched.JobState) float64 {
		switch s.order {
		case FIFO:
			return st.Job.Arrival
		case SRTF:
			_, best, ok := st.Job.BestType()
			if !ok || best <= 0 {
				return 1e300
			}
			return st.Remaining / (float64(st.Job.Workers) * best)
		case LRTF:
			_, best, ok := st.Job.BestType()
			if !ok || best <= 0 {
				return 0
			}
			return -st.Remaining / (float64(st.Job.Workers) * best)
		}
		return 0
	}
	sort.SliceStable(queue, func(a, b int) bool {
		ka, kb := key(queue[a]), key(queue[b])
		if ka < kb {
			return true
		}
		if ka > kb {
			return false
		}
		return queue[a].Job.ID < queue[b].Job.ID
	})

	free := cluster.NewState(ctx.Cluster)
	for _, st := range queue {
		if st.Remaining <= 0 {
			continue
		}
		if s.sticky && st.Running() {
			if err := free.Allocate(st.Alloc); err == nil {
				out[st.Job.ID] = st.Alloc
				continue
			}
		}
		if a, ok := sched.AllocAnyType(free, sched.UsableTypes(st.Job), st.Job.Workers); ok {
			out[st.Job.ID] = a
		}
	}
	return out
}
