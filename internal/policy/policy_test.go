package policy

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mkJob(id, workers int, iters, arrival float64) *job.Job {
	return &job.Job{
		ID: id, Model: "m", Workers: workers, Epochs: int(iters), ItersPerEpoch: 1,
		Arrival:    arrival,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.K80: 2},
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	return &sched.Context{Now: 0, RoundLength: 360, Horizon: 1e7, Cluster: c, Jobs: states}
}

func TestNames(t *testing.T) {
	if New(FIFO, false).Name() != "ref-fifo" {
		t.Error(New(FIFO, false).Name())
	}
	if New(SRTF, true).Name() != "ref-srtf-sticky" {
		t.Error(New(SRTF, true).Name())
	}
	if New(LRTF, false).Name() != "ref-lrtf" {
		t.Error(New(LRTF, false).Name())
	}
}

func TestFIFOOrder(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	early := newState(mkJob(0, 2, 100, 0))
	late := newState(mkJob(1, 2, 100, 10))
	out := New(FIFO, false).Schedule(mkCtx(c, late, early))
	if out[0].Workers() != 2 {
		t.Errorf("FIFO did not favor earlier job: %v", out)
	}
}

func TestSRTFOrder(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	long := newState(mkJob(0, 2, 100000, 0))
	short := newState(mkJob(1, 2, 100, 10))
	out := New(SRTF, false).Schedule(mkCtx(c, long, short))
	if out[1].Workers() != 2 {
		t.Errorf("SRTF did not favor short job: %v", out)
	}
}

func TestLRTFOrder(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	long := newState(mkJob(0, 2, 100000, 0))
	short := newState(mkJob(1, 2, 100, 10))
	out := New(LRTF, false).Schedule(mkCtx(c, long, short))
	if out[0].Workers() != 2 {
		t.Errorf("LRTF did not favor long job: %v", out)
	}
}

func TestStickyKeepsPlacement(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.V100: 2})
	st := newState(mkJob(0, 2, 1e6, 0))
	st.Alloc = cluster.Alloc{{Node: 1, Type: gpu.V100, Count: 2}}
	out := New(SRTF, true).Schedule(mkCtx(c, st))
	if !out[0].Equal(st.Alloc) {
		t.Errorf("sticky scheduler moved the job: %v", out[0])
	}
}

func TestCapacityRespected(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 3})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 1000, 0)),
		newState(mkJob(1, 2, 1000, 1)),
	}
	out := New(FIFO, false).Schedule(mkCtx(c, states...))
	free := cluster.NewState(c)
	for id, a := range out {
		if err := sched.Validate(states[id].Job, a); err != nil {
			t.Fatal(err)
		}
		if a.Workers() > 0 {
			if err := free.Allocate(a); err != nil {
				t.Fatalf("capacity violation: %v", err)
			}
		}
	}
}

// TestHadarBeatsReferencePolicies sandwiches Hadar: on a contended
// heterogeneous workload, Hadar's average JCT should beat plain FIFO
// and be at least competitive with SRTF (which shares its ordering but
// lacks pricing and type economics).
func TestHadarBeatsReferencePolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	c := cluster.New(
		gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.P100: 4}, gpu.Fleet{gpu.K80: 4},
	)
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 32
	cfg.WorkerChoices = []int{1, 2, 4}
	cfg.WorkerWeights = []float64{0.5, 0.3, 0.2}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s sched.Scheduler) float64 {
		r, err := sim.Run(c, jobs, s, sim.ValidatedOptions())
		if err != nil {
			t.Fatal(err)
		}
		return r.AvgJCT()
	}
	hadar := run(core.New(core.DefaultOptions()))
	fifo := run(New(FIFO, true))
	srtf := run(New(SRTF, true))
	if hadar >= fifo {
		t.Errorf("Hadar avgJCT %.0fs not better than FIFO %.0fs", hadar, fifo)
	}
	// SRTF with sticky placement is a strong avg-JCT heuristic; Hadar
	// should stay within 15% of it (and usually win via type economics).
	if hadar > srtf*1.15 {
		t.Errorf("Hadar avgJCT %.0fs more than 15%% worse than SRTF %.0fs", hadar, srtf)
	}
	t.Logf("avgJCT: hadar=%.1fh srtf=%.1fh fifo=%.1fh", hadar/3600, srtf/3600, fifo/3600)
}
