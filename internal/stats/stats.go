// Package stats provides deterministic random sampling helpers and the
// small statistical summaries (means, percentiles, CDFs) used by the
// trace generator and the experiment harness.
//
// All randomness flows through a seeded *rand.Rand so every simulation in
// this repository is reproducible from its seed.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/bug"
)

// Rand wraps math/rand with the distributions the workload model needs.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (r *Rand) Float64() float64 { return r.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0, matching
// math/rand.
func (r *Rand) Intn(n int) int { return r.r.Intn(n) }

// Uniform returns a uniform sample in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.r.Float64()
}

// Exponential returns a sample from an exponential distribution with the
// given rate (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		bug.Failf("stats: Exponential rate must be positive, got %v", rate)
	}
	return r.r.ExpFloat64() / rate
}

// Choice returns a uniformly random index in [0, n), weighted by the
// non-negative weights. It panics if weights is empty or sums to zero.
func (r *Rand) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			bug.Failf("stats: negative weight %v", w)
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		bug.Failf("stats: Choice requires positive total weight")
	}
	x := r.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the n-element collection using the supplied swap
// function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) { r.r.Shuffle(n, swap) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks. It returns 0 for an empty
// slice and panics if p is outside [0, 100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		bug.Failf("stats: percentile %v outside [0, 100]", p)
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics reported in the paper's
// evaluation (Figs. 3, 5, 6, 8).
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	Min    float64
	Max    float64
	P90    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P90:    Percentile(xs, 90),
		P99:    Percentile(xs, 99),
	}
}

// CDFPoint is one point of an empirical cumulative distribution:
// Fraction of samples are <= X.
type CDFPoint struct {
	X        float64
	Fraction float64
}

// CDF returns the empirical CDF of xs as a step function sampled at each
// distinct data point, in ascending X order. An empty input yields nil.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	out := make([]CDFPoint, 0, len(sorted))
	for i, x := range sorted {
		//lint:ignore floateq deduplicating bitwise-identical values of a sorted sample; no arithmetic precedes the comparison
		if len(out) > 0 && out[len(out)-1].X == x {
			out[len(out)-1].Fraction = float64(i+1) / n
			continue
		}
		out = append(out, CDFPoint{X: x, Fraction: float64(i+1) / n})
	}
	return out
}

// SampleCDF evaluates the empirical CDF of xs at the given query points,
// returning the fraction of samples <= q for each q.
func SampleCDF(xs []float64, queries []float64) []CDFPoint {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(queries))
	for i, q := range queries {
		k := sort.SearchFloat64s(sorted, q)
		// SearchFloat64s finds the first index >= q; advance over equal
		// values so the CDF is right-continuous (counts samples <= q).
		//lint:ignore floateq SearchFloat64s boundary walk: counts samples bitwise-equal to the query point
		for k < len(sorted) && sorted[k] == q {
			k++
		}
		frac := 0.0
		if len(sorted) > 0 {
			frac = float64(k) / float64(len(sorted))
		}
		out[i] = CDFPoint{X: q, Fraction: frac}
	}
	return out
}

// BootstrapCI returns a percentile-bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using the
// given number of resamples and a deterministic seed. Degenerate inputs
// (fewer than 2 samples) return the sample mean for both bounds.
func BootstrapCI(xs []float64, confidence float64, resamples int, seed int64) (lo, hi float64) {
	if confidence <= 0 || confidence >= 1 {
		bug.Failf("stats: confidence %v outside (0, 1)", confidence)
	}
	if resamples <= 0 {
		bug.Failf("stats: resamples must be positive, got %d", resamples)
	}
	if len(xs) < 2 {
		m := Mean(xs)
		return m, m
	}
	r := NewRand(seed)
	means := make([]float64, resamples)
	for b := 0; b < resamples; b++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	tail := (1 - confidence) / 2 * 100
	return Percentile(means, tail), Percentile(means, 100-tail)
}
