package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		x := r.Uniform(3, 7)
		if x < 3 || x >= 7 {
			t.Fatalf("Uniform(3,7) = %v out of range", x)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRand(7)
	const rate = 0.5
	n := 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exponential(rate)
		if x < 0 {
			t.Fatalf("negative exponential sample %v", x)
		}
		sum += x
	}
	mean := sum / float64(n)
	if math.Abs(mean-1/rate) > 0.1 {
		t.Errorf("exponential mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exponential(0) did not panic")
		}
	}()
	NewRand(1).Exponential(0)
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := NewRand(3)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Choice([]float64{1, 2, 1})]++
	}
	// Index 1 should be picked roughly twice as often as 0 or 2.
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Errorf("weighted choice counts %v do not favor middle", counts)
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("weight ratio = %v, want ~2", ratio)
	}
}

func TestChoicePanicsOnZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice with zero weights did not panic")
		}
	}()
	NewRand(1).Choice([]float64{0, 0})
}

func TestChoicePanicsOnNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Choice with negative weight did not panic")
		}
	}()
	NewRand(1).Choice([]float64{1, -1})
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 4, 6}
	if Mean(xs) != 4 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 2 || Max(xs) != 6 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slice not infinite")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) of {0,10} = %v, want 5", got)
	}
}

func TestPercentileSingleElement(t *testing.T) {
	if got := Percentile([]float64{7}, 90); got != 7 {
		t.Errorf("Percentile of singleton = %v, want 7", got)
	}
}

func TestPercentileEmptyAndRange(t *testing.T) {
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("unexpected summary %+v", s)
	}
	if (Summarize(nil) != Summary{}) {
		t.Error("Summarize(nil) not zero")
	}
}

func TestCDFMonotoneAndComplete(t *testing.T) {
	xs := []float64{5, 1, 3, 3, 2}
	cdf := CDF(xs)
	if len(cdf) != 4 { // distinct values 1,2,3,5
		t.Fatalf("CDF has %d points, want 4: %v", len(cdf), cdf)
	}
	prev := 0.0
	for _, p := range cdf {
		if p.Fraction < prev {
			t.Errorf("CDF not monotone at %v", p)
		}
		prev = p.Fraction
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Errorf("CDF does not reach 1: %v", cdf)
	}
	// The duplicate value 3 should account for 2 samples: F(3) = 4/5.
	for _, p := range cdf {
		if p.X == 3 && math.Abs(p.Fraction-0.8) > 1e-12 {
			t.Errorf("F(3) = %v, want 0.8", p.Fraction)
		}
	}
}

func TestSampleCDF(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	pts := SampleCDF(xs, []float64{0, 2, 2.5, 10})
	want := []float64{0, 0.5, 0.5, 1}
	for i, p := range pts {
		if math.Abs(p.Fraction-want[i]) > 1e-12 {
			t.Errorf("SampleCDF at %v = %v, want %v", p.X, p.Fraction, want[i])
		}
	}
}

func TestSampleCDFEmpty(t *testing.T) {
	pts := SampleCDF(nil, []float64{1})
	if pts[0].Fraction != 0 {
		t.Error("empty sample CDF nonzero")
	}
}

func TestCDFPropertyBounds(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		cdf := CDF(xs)
		for _, p := range cdf {
			if p.Fraction <= 0 || p.Fraction > 1 {
				return false
			}
		}
		return sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X })
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileBetweenMinMaxProperty(t *testing.T) {
	prop := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	xs := []float64{8, 9, 10, 11, 12, 10, 9, 11}
	lo, hi := BootstrapCI(xs, 0.95, 2000, 1)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Errorf("CI [%v, %v] does not bracket mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Errorf("degenerate CI [%v, %v]", lo, hi)
	}
	if lo < Min(xs) || hi > Max(xs) {
		t.Errorf("CI [%v, %v] outside data range", lo, hi)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	lo1, hi1 := BootstrapCI(xs, 0.9, 500, 7)
	lo2, hi2 := BootstrapCI(xs, 0.9, 500, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("bootstrap not deterministic for fixed seed")
	}
}

func TestBootstrapCIWiderAtHigherConfidence(t *testing.T) {
	xs := []float64{3, 7, 2, 9, 4, 6, 5, 8, 1, 10}
	lo90, hi90 := BootstrapCI(xs, 0.90, 2000, 3)
	lo99, hi99 := BootstrapCI(xs, 0.99, 2000, 3)
	if (hi99 - lo99) < (hi90 - lo90) {
		t.Errorf("99%% CI [%v,%v] narrower than 90%% CI [%v,%v]", lo99, hi99, lo90, hi90)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	lo, hi := BootstrapCI([]float64{5}, 0.95, 100, 1)
	if lo != 5 || hi != 5 {
		t.Errorf("singleton CI = [%v, %v]", lo, hi)
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid confidence accepted")
		}
	}()
	BootstrapCI([]float64{1, 2}, 1.5, 100, 1)
}
