package bug

import "testing"

// TestFailfPanicsWithError pins the hook's contract: it always panics,
// and the panic value is an error carrying the formatted message, so a
// recover() at a process boundary handles it like any other error.
func TestFailfPanicsWithError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Failf did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T is not an error", r)
		}
		if want := "pkg: broken invariant 42"; err.Error() != want {
			t.Fatalf("panic message %q, want %q", err.Error(), want)
		}
	}()
	Failf("pkg: broken invariant %d", 42)
}
