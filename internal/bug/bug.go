// Package bug is the designated invariant-violation hook: the single
// place outside test files where the repository is allowed to panic.
//
// A call to Failf asserts an *internal* invariant — a programmer error
// that no input can legitimately produce (a heap popped while empty, a
// savepoint committed twice, an allocation the scheduler itself priced
// but that no longer fits). Input errors must be returned as errors;
// they never go through this package.
//
// Funneling every panic through one hook keeps the policy enforceable:
// repolint's `panicrule` analyzer forbids the panic builtin in library
// code everywhere except here, so a stray panic in the scheduler path
// fails `make lint` instead of surfacing as a crashed run.
package bug

import "fmt"

// Failf reports a violated internal invariant and panics with the
// formatted message as an error value, so a recover() at a process
// boundary can treat it uniformly with other errors. It never returns.
func Failf(format string, args ...any) {
	panic(fmt.Errorf(format, args...))
}
