package invariant

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

func testCluster() *cluster.Cluster {
	return cluster.New(gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.V100: 2, gpu.K80: 2})
}

func testJob(id, workers int) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Model: "unit-test", Workers: workers,
		Epochs: 100, ItersPerEpoch: 10,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.K80: 2},
	}
}

// rate adapts sched.Rate to the checker's model hook.
func rateOn(c *cluster.Cluster) func(j *job.Job, a cluster.Alloc) float64 {
	return func(j *job.Job, a cluster.Alloc) float64 { return sched.Rate(j, c, a) }
}

// round wraps one observation list into a checkable Round.
func round(c *cluster.Cluster, jobs ...JobRound) Round {
	return Round{Index: 0, Now: 0, Length: 360, Jobs: jobs, Rate: rateOn(c)}
}

func wantViolation(t *testing.T, k *Checker, rule string) {
	t.Helper()
	for _, v := range k.Violations() {
		if v.Rule == rule {
			if k.Err() == nil {
				t.Error("violations recorded but Err() is nil")
			}
			return
		}
	}
	t.Errorf("no %q violation; got %v", rule, k.Violations())
}

func wantClean(t *testing.T, k *Checker) {
	t.Helper()
	if err := k.Err(); err != nil {
		t.Errorf("unexpected violations: %v", err)
	}
}

func TestCleanRoundPasses(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	j := testJob(0, 2)
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	// 2 workers x 10 it/s x 350s window = 7000 iterations.
	k.CheckRound(round(c, JobRound{
		Job: j, Alloc: a, RemainingBefore: 10000, RemainingAfter: 3000, Window: 350,
	}))
	wantClean(t, k)
}

func TestPausedJobMustNotProgress(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job: testJob(0, 2), RemainingBefore: 1000, RemainingAfter: 900, Window: 0,
	}))
	wantViolation(t, k, "conservation")
}

func TestKilledRoundMustNotProgress(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	k.CheckRound(round(c, JobRound{
		Job: testJob(0, 2), Alloc: a, Killed: true,
		RemainingBefore: 1000, RemainingAfter: 500, Window: 350,
	}))
	wantViolation(t, k, "conservation")
}

func TestAllocatedJobMustProgressExactly(t *testing.T) {
	c := testCluster()
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	// Too little progress (throttled below the bottleneck model).
	k := NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job: testJob(0, 2), Alloc: a, RemainingBefore: 10000, RemainingAfter: 9000, Window: 350,
	}))
	wantViolation(t, k, "conservation")
	// Too much progress (faster than the bottleneck allows).
	k = NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job: testJob(0, 2), Alloc: a, RemainingBefore: 10000, RemainingAfter: 100, Window: 350,
	}))
	wantViolation(t, k, "conservation")
}

func TestRemainingMustNotGrow(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job: testJob(0, 2), RemainingBefore: 100, RemainingAfter: 200, Window: 0,
	}))
	wantViolation(t, k, "conservation")
}

func TestGangViolation(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job:             testJob(0, 4),
		Alloc:           cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 3}},
		RemainingBefore: 1000, RemainingAfter: 1000, Window: 350,
	}))
	wantViolation(t, k, "gang")
}

func TestJointCapacityViolation(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	// Two jobs individually fit node 0's 4 V100s but jointly need 6.
	mk := func(id int) JobRound {
		j := testJob(id, 3)
		return JobRound{
			Job:             j,
			Alloc:           cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 3}},
			RemainingBefore: 10000, RemainingAfter: 10000 - 3*10*350, Window: 350,
		}
	}
	k.CheckRound(round(c, mk(0), mk(1)))
	wantViolation(t, k, "capacity")
}

func TestInvalidPlacementViolations(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job:             testJob(0, 2),
		Alloc:           cluster.Alloc{{Node: 99, Type: gpu.V100, Count: 2}},
		RemainingBefore: 100, RemainingAfter: 100, Window: 350,
	}))
	wantViolation(t, k, "capacity")

	k = NewChecker(c)
	k.CheckRound(round(c, JobRound{
		Job:             testJob(0, 2),
		Alloc:           cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 3}, {Node: 0, Type: gpu.V100, Count: -1}},
		RemainingBefore: 100, RemainingAfter: 100, Window: 350,
	}))
	wantViolation(t, k, "capacity")
}

func TestUnusableTypeViolation(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2, gpu.P100: 2})
	k := NewChecker(c)
	j := testJob(0, 2) // cannot use P100
	k.CheckRound(round(c, JobRound{
		Job:             j,
		Alloc:           cluster.Alloc{{Node: 0, Type: gpu.P100, Count: 2}},
		RemainingBefore: 100, RemainingAfter: 100, Window: 350,
	}))
	wantViolation(t, k, "usable-type")
}

func TestDownNodeViolation(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	r := round(c, JobRound{
		Job:             testJob(0, 2),
		Alloc:           cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}},
		RemainingBefore: 10000, RemainingAfter: 3000, Window: 350,
	})
	r.Down = map[int]bool{0: true}
	k.CheckRound(r)
	wantViolation(t, k, "down-node")
}

// fakePrices implements PriceReporter with a configurable curve.
type fakePrices struct {
	umin, umax []float64
	at         func(t gpu.Type, frac float64) float64
}

func (f fakePrices) PriceBounds() (umin, umax []float64)      { return f.umin, f.umax }
func (f fakePrices) PriceAt(t gpu.Type, frac float64) float64 { return f.at(t, frac) }

func TestPriceMonotonicityEnforced(t *testing.T) {
	c := testCluster()
	bounds := make([]float64, gpu.NumTypes)
	umax := make([]float64, gpu.NumTypes)
	for i := range bounds {
		bounds[i] = 1
		umax[i] = 10
	}
	// Decreasing curve: must be flagged.
	k := NewChecker(c)
	r := round(c)
	r.Scheduler = fakePrices{umin: bounds, umax: umax,
		at: func(_ gpu.Type, frac float64) float64 { return 10 - 9*frac }}
	k.CheckRound(r)
	wantViolation(t, k, "price")
	// Increasing curve within bounds: clean.
	k = NewChecker(c)
	r.Scheduler = fakePrices{umin: bounds, umax: umax,
		at: func(_ gpu.Type, frac float64) float64 { return 1 + 9*frac }}
	k.CheckRound(r)
	wantClean(t, k)
	// Curve escaping the reported bounds: flagged.
	k = NewChecker(c)
	r.Scheduler = fakePrices{umin: bounds, umax: umax,
		at: func(_ gpu.Type, frac float64) float64 { return 1 + 20*frac }}
	k.CheckRound(r)
	wantViolation(t, k, "price")
	// Inverted bounds: flagged.
	k = NewChecker(c)
	inv := make([]float64, gpu.NumTypes)
	for i := range inv {
		inv[i] = 100
	}
	r.Scheduler = fakePrices{umin: inv, umax: umax,
		at: func(_ gpu.Type, frac float64) float64 { return 1 }}
	k.CheckRound(r)
	wantViolation(t, k, "price")
}

// fakeCounter implements InconsistencyCounter.
type fakeCounter struct{ n int }

func (f fakeCounter) Inconsistencies() int { return f.n }

func TestInconsistencyGrowthFlagged(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	r := round(c)
	r.Scheduler = fakeCounter{n: 0}
	k.CheckRound(r)
	wantClean(t, k)
	r.Scheduler = fakeCounter{n: 2}
	k.CheckRound(r)
	wantViolation(t, k, "inconsistency")
}

func cleanReport(c *cluster.Cluster, jobs []*job.Job) *metrics.Report {
	rep := &metrics.Report{Scheduler: "test", TotalGPUs: c.TotalGPUs()}
	for _, j := range jobs {
		// 1000 iters on 2 V100 at 10 it/s = 50s of work.
		rep.Jobs = append(rep.Jobs, metrics.JobResult{
			ID: j.ID, Workers: j.Workers, Arrival: 0, Start: 10, Finish: 70,
			TotalIters: j.TotalIters(),
		})
		if 70 > rep.Makespan {
			rep.Makespan = 70
		}
	}
	rep.BusyGPUSeconds = 100
	rep.HeldGPUSeconds = 720
	rep.RoundHeld = []int{2}
	rep.RoundStarts = []float64{0}
	return rep
}

func TestCleanReportPasses(t *testing.T) {
	c := testCluster()
	j := testJob(0, 2)
	j.Epochs, j.ItersPerEpoch = 100, 10 // 1000 iters: floor 50s < 60s span
	k := NewChecker(c)
	k.CheckReport(cleanReport(c, []*job.Job{j}), []*job.Job{j})
	wantClean(t, k)
}

func TestReportTimelineViolations(t *testing.T) {
	c := testCluster()
	j := testJob(0, 2)
	j.Epochs = 1 // tiny work so the physical floor never interferes

	rep := cleanReport(c, []*job.Job{j})
	rep.Jobs[0].Start = -5 // start before arrival
	k := NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")

	rep = cleanReport(c, []*job.Job{j})
	rep.Jobs[0].Finish = rep.Jobs[0].Start - 1
	k = NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")
}

func TestReportPhysicalFloorViolation(t *testing.T) {
	c := testCluster()
	j := testJob(0, 2) // 1000 iters, best 2x10 it/s: floor 50s
	rep := cleanReport(c, []*job.Job{j})
	rep.Jobs[0].Finish = rep.Jobs[0].Start + 10 // faster than physics
	k := NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")
}

func TestReportFloorRespectsStragglerSpeedups(t *testing.T) {
	// A node running at 2x nominal legitimately beats the nominal floor.
	c := testCluster()
	c.SetSpeed(0, 2.0)
	j := testJob(0, 2) // nominal floor 50s; with the 2x node, 25s
	rep := cleanReport(c, []*job.Job{j})
	rep.Jobs[0].Finish = rep.Jobs[0].Start + 30
	k := NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantClean(t, k)
}

func TestReportAggregateViolations(t *testing.T) {
	c := testCluster()
	j := testJob(0, 2)

	rep := cleanReport(c, []*job.Job{j})
	rep.BusyGPUSeconds = rep.HeldGPUSeconds + 100 // util > 1
	k := NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")

	rep = cleanReport(c, []*job.Job{j})
	rep.RoundHeld = []int{c.TotalGPUs() + 1}
	k = NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")

	rep = cleanReport(c, []*job.Job{j})
	rep.Makespan = 1 // below the job's finish at 70
	k = NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")

	rep = cleanReport(c, []*job.Job{j})
	rep.Jobs = append(rep.Jobs, rep.Jobs[0]) // duplicate result
	k = NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")

	rep = cleanReport(c, []*job.Job{j})
	rep.Jobs[0].ID = 42 // unknown job
	k = NewChecker(c)
	k.CheckReport(rep, []*job.Job{j})
	wantViolation(t, k, "report")
}

func TestViolationCapAndErrSummary(t *testing.T) {
	c := testCluster()
	k := NewChecker(c)
	bad := JobRound{
		Job:             testJob(0, 4),
		Alloc:           cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 3}},
		RemainingBefore: 100, RemainingAfter: 100, Window: 350,
	}
	for i := 0; i < maxViolations+10; i++ {
		k.CheckRound(round(c, bad))
	}
	if len(k.Violations()) != maxViolations {
		t.Errorf("stored %d violations, cap is %d", len(k.Violations()), maxViolations)
	}
	err := k.Err()
	if err == nil || !strings.Contains(err.Error(), "violations") {
		t.Errorf("Err() = %v, want a multi-violation summary", err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Round: 3, Rule: "gang", Detail: "x"}
	if !strings.Contains(v.String(), "round 3") {
		t.Errorf("round-level violation string %q lacks round", v)
	}
	v.Round = -1
	if !strings.Contains(v.String(), "report") {
		t.Errorf("report-level violation string %q lacks report marker", v)
	}
}
