// Package invariant is the scheduler correctness oracle: it validates
// every simulation round and the final report against the paper's model
// P1, independently of the bookkeeping the simulator and the schedulers
// do for themselves.
//
// The checked properties are exactly the constraints the paper's
// guarantees rest on:
//
//   - capacity (1c/1d): the round's joint allocation never exceeds any
//     (node, accelerator type) capacity, never names an invalid node or
//     type, and never lands on a node the schedulers saw as down;
//   - gang all-or-nothing (1e): a job holds exactly Workers devices or
//     none, and only devices of types it can use (task counts can thus
//     never exceed the request);
//   - iteration conservation (1b): a job's remaining work only ever
//     decreases, and per round it decreases by exactly the bottleneck
//     throughput of its allocation times the progress window (zero for
//     unallocated or failure-killed rounds);
//   - dual price sanity: a scheduler exposing its price function (Hadar,
//     via PriceReporter) must keep 0 < Umin <= Umax per type and the
//     marginal price k_h^r monotone non-decreasing in utilization
//     (Eq. 5-7 — the property Theorem 2's charging argument needs);
//   - internal consistency: a scheduler exposing an inconsistency
//     counter (Scheduler.Inconsistencies) must keep it at zero;
//   - report consistency: finish >= start >= arrival, completion times
//     above the physical speed-of-light floor (all workers on the
//     fastest type on the fastest node), occupancy and utilization
//     within [0, 1], busy time bounded by held time, and per-round held
//     device counts within the cluster size.
//
// The checker is pure observation: it never mutates scheduler or
// simulator state. sim.Run drives it when Options.Validate is set;
// tests enable that via sim.ValidatedOptions so every simulated round
// in the suite is checked, while benchmarks keep it off (the checker
// costs nothing when disabled).
package invariant

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
)

// Tol is the repository's shared floating-point tolerance: the relative
// epsilon for conservation and bound checks here, and the comparison
// epsilon anywhere price or utility values computed along different
// paths must be deemed equal. Exact ==/!= on such values is forbidden
// by repolint's floateq rule.
const Tol = 1e-6

// tol aliases Tol for the package-internal checks below.
const tol = Tol

// maxViolations caps how many violations a checker stores; further ones
// are counted but dropped, so a badly broken scheduler cannot flood
// memory.
const maxViolations = 64

// Violation is one broken invariant.
type Violation struct {
	// Round is the 0-based round index, or -1 for report-level checks.
	Round int
	// Rule names the invariant, e.g. "capacity", "gang", "conservation".
	Rule string
	// Detail is a human-readable description of the specific breakage.
	Detail string
}

// String renders the violation in one line.
func (v Violation) String() string {
	if v.Round < 0 {
		return fmt.Sprintf("report: %s: %s", v.Rule, v.Detail)
	}
	return fmt.Sprintf("round %d: %s: %s", v.Round, v.Rule, v.Detail)
}

// PriceReporter is implemented by schedulers that expose their
// per-round dual price function (Hadar). The checker uses it to verify
// the price bounds and the monotonicity Theorem 2 depends on.
type PriceReporter interface {
	// PriceBounds returns the most recent round's per-type utility
	// bounds U_min^r / U_max^r (Eq. 6-7), indexed by gpu.Type. Types no
	// active job can use report U_max = 0 and are skipped.
	PriceBounds() (umin, umax []float64)
	// PriceAt evaluates the most recent round's marginal price function
	// k^r (Eq. 5) for type t at the given utilization fraction in
	// [0, 1].
	PriceAt(t gpu.Type, utilization float64) float64
}

// InconsistencyCounter is implemented by schedulers that count internal
// allocation inconsistencies (core.Scheduler.Inconsistencies). The
// checker flags any growth: a correct scheduler never produces a
// decision that does not fit the free state it priced the decision
// against.
type InconsistencyCounter interface {
	Inconsistencies() int
}

// JobRound is one job's observed state across a single round.
type JobRound struct {
	// Job is the immutable description.
	Job *job.Job
	// Alloc is the allocation the scheduler granted this round (nil or
	// empty when paused).
	Alloc cluster.Alloc
	// RemainingBefore and RemainingAfter bracket the round's progress
	// accounting (training iterations outstanding).
	RemainingBefore float64
	RemainingAfter  float64
	// Window is the portion of the round (seconds) in which the job
	// could make progress: round length minus its checkpoint stall.
	Window float64
	// Killed marks a round whose progress a mid-round node failure
	// wiped out: the job held devices but conserved no iterations.
	Killed bool
}

// Round is everything the checker observes about one scheduling round.
type Round struct {
	// Index is the 0-based round number.
	Index int
	// Now is the round's start time in seconds.
	Now float64
	// Length is the round length in seconds.
	Length float64
	// Down is the set of node IDs the schedulers saw with zero
	// capacity this round (may be nil).
	Down map[int]bool
	// Jobs holds one observation per active job.
	Jobs []JobRound
	// Scheduler is the policy under test; when it additionally
	// implements PriceReporter or InconsistencyCounter those checks
	// run too. May be nil.
	Scheduler any
	// Rate returns the progress rate (iterations/second) of a job
	// under an allocation — the simulator's own bottleneck model
	// (sched.Rate against the full cluster). Must be non-nil when
	// Jobs is non-empty.
	Rate func(j *job.Job, a cluster.Alloc) float64
}

// Checker accumulates violations across the rounds and final report of
// one simulation run. It is not safe for concurrent use.
type Checker struct {
	c        *cluster.Cluster
	maxSpeed float64

	lastInconsistencies int
	violations          []Violation
	dropped             int

	used []int // per-(node, type) scratch for the joint capacity check
}

// NewChecker builds a checker for one run over the given cluster (the
// full cluster: failure handling is expressed through Round.Down, not
// by shrinking capacities).
func NewChecker(c *cluster.Cluster) *Checker {
	k := &Checker{c: c, maxSpeed: 1}
	for _, n := range c.Nodes() {
		if n.Speed > k.maxSpeed {
			k.maxSpeed = n.Speed
		}
	}
	k.used = make([]int, c.NumNodes()*int(gpu.NumTypes))
	return k
}

// violate records one violation, dropping beyond the cap.
func (k *Checker) violate(round int, rule, format string, args ...any) {
	if len(k.violations) >= maxViolations {
		k.dropped++
		return
	}
	k.violations = append(k.violations, Violation{
		Round: round, Rule: rule, Detail: fmt.Sprintf(format, args...),
	})
}

// Violations returns every recorded violation in detection order.
func (k *Checker) Violations() []Violation { return k.violations }

// Err returns nil when no invariant was violated, otherwise an error
// describing the first violation and the total count.
func (k *Checker) Err() error {
	if len(k.violations) == 0 {
		return nil
	}
	n := len(k.violations) + k.dropped
	if n == 1 {
		return fmt.Errorf("invariant: %s", k.violations[0])
	}
	return fmt.Errorf("invariant: %d violations, first: %s", n, k.violations[0])
}

// CheckRound validates one round's joint decision and progress
// accounting. Violations accumulate; read them with Err or Violations.
func (k *Checker) CheckRound(r Round) {
	for i := range k.used {
		k.used[i] = 0
	}
	stride := int(gpu.NumTypes)
	for _, jr := range r.Jobs {
		w := jr.Alloc.Workers()
		structurallyValid := true
		// Gang all-or-nothing (1e); w > Workers also violates the
		// task-count bound of the request.
		if w != 0 && w != jr.Job.Workers {
			k.violate(r.Index, "gang", "%v holds %d of %d workers", jr.Job, w, jr.Job.Workers)
		}
		for _, p := range jr.Alloc {
			if p.Count == 0 {
				continue
			}
			if p.Count < 0 {
				k.violate(r.Index, "capacity", "%v holds negative count %d on node %d", jr.Job, p.Count, p.Node)
				structurallyValid = false
				continue
			}
			if p.Node < 0 || p.Node >= k.c.NumNodes() || !p.Type.Valid() {
				k.violate(r.Index, "capacity", "%v placed on invalid (node %d, type %v)", jr.Job, p.Node, p.Type)
				structurallyValid = false
				continue
			}
			if jr.Job.Speed(p.Type) <= 0 {
				k.violate(r.Index, "usable-type", "%v placed on unusable type %v", jr.Job, p.Type)
			}
			if r.Down[p.Node] {
				k.violate(r.Index, "down-node", "%v placed on down node %d", jr.Job, p.Node)
			}
			k.used[p.Node*stride+int(p.Type)] += p.Count
		}
		// The rate model cannot be evaluated on a structurally invalid
		// placement (already flagged above); skip the exact-progress check.
		if structurallyValid {
			k.checkConservation(r, jr, w)
		}
	}
	// Joint capacity (1c/1d) across all jobs of the round.
	for cell, used := range k.used {
		node, t := cell/stride, gpu.Type(cell%stride)
		if cap := k.c.Capacity(node, t); used > cap {
			k.violate(r.Index, "capacity", "node %d %v: %d allocated of %d", node, t, used, cap)
		}
	}
	if pr, ok := r.Scheduler.(PriceReporter); ok {
		k.checkPrices(r.Index, pr)
	}
	if ic, ok := r.Scheduler.(InconsistencyCounter); ok {
		if n := ic.Inconsistencies(); n > k.lastInconsistencies {
			k.violate(r.Index, "inconsistency",
				"scheduler swallowed %d internal allocation failures", n-k.lastInconsistencies)
			k.lastInconsistencies = n
		}
	}
}

// checkConservation verifies iteration conservation: remaining work
// never grows, and shrinks by exactly min(remaining, bottleneck rate x
// window) — zero when the job held nothing or a failure killed the
// round.
func (k *Checker) checkConservation(r Round, jr JobRound, w int) {
	progressed := jr.RemainingBefore - jr.RemainingAfter
	scale := tol * (1 + math.Abs(jr.RemainingBefore))
	if jr.RemainingAfter < -scale {
		k.violate(r.Index, "conservation", "%v remaining went negative: %v", jr.Job, jr.RemainingAfter)
		return
	}
	if progressed < -scale {
		k.violate(r.Index, "conservation", "%v remaining grew from %v to %v",
			jr.Job, jr.RemainingBefore, jr.RemainingAfter)
		return
	}
	want := 0.0
	if w > 0 && !jr.Killed {
		if r.Rate == nil {
			k.violate(r.Index, "conservation", "no rate model provided for %v", jr.Job)
			return
		}
		want = r.Rate(jr.Job, jr.Alloc) * jr.Window
		if want > jr.RemainingBefore {
			want = jr.RemainingBefore
		}
	}
	if math.Abs(progressed-want) > tol*(1+want) {
		k.violate(r.Index, "conservation",
			"%v progressed %v iterations, bottleneck model allows exactly %v (window %vs)",
			jr.Job, progressed, want, jr.Window)
	}
}

// checkPrices verifies the reported dual price function: positive
// ordered bounds and monotone non-decreasing prices in utilization,
// sampled across [0, 1].
func (k *Checker) checkPrices(round int, pr PriceReporter) {
	umin, umax := pr.PriceBounds()
	if len(umin) != len(umax) {
		k.violate(round, "price", "bounds length mismatch: %d vs %d", len(umin), len(umax))
		return
	}
	for ti := range umax {
		t := gpu.Type(ti)
		if umax[ti] <= 0 {
			continue // no active job can use this type this round
		}
		if umin[ti] <= 0 || math.IsInf(umin[ti], 0) || math.IsNaN(umin[ti]) {
			k.violate(round, "price", "%v: Umin %v not positive finite", t, umin[ti])
			continue
		}
		if umin[ti] > umax[ti]*(1+tol) {
			k.violate(round, "price", "%v: Umin %v above Umax %v", t, umin[ti], umax[ti])
			continue
		}
		prev := math.Inf(-1)
		for s := 0; s <= 10; s++ {
			frac := float64(s) / 10
			p := pr.PriceAt(t, frac)
			if math.IsNaN(p) || p < 0 {
				k.violate(round, "price", "%v: price %v at utilization %v", t, p, frac)
				break
			}
			if p < prev*(1-tol) {
				k.violate(round, "price", "%v: price fell from %v to %v at utilization %v",
					t, prev, p, frac)
				break
			}
			if p < umin[ti]*(1-tol) || p > umax[ti]*(1+tol) {
				k.violate(round, "price", "%v: price %v at utilization %v outside [%v, %v]",
					t, p, frac, umin[ti], umax[ti])
				break
			}
			prev = p
		}
	}
}

// CheckReport validates the final metrics report: per-job timeline
// ordering, the physical completion-time floor, and the aggregate
// occupancy/utilization bounds. jobs is the trace the run consumed (by
// ID), used to bound each result against its job's fastest
// configuration.
func (k *Checker) CheckReport(rep *metrics.Report, jobs []*job.Job) {
	byID := make(map[int]*job.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if len(rep.Jobs) > len(jobs) {
		k.violate(-1, "report", "%d results for %d jobs", len(rep.Jobs), len(jobs))
	}
	seen := make(map[int]bool, len(rep.Jobs))
	maxFinish := 0.0
	for _, jr := range rep.Jobs {
		j, ok := byID[jr.ID]
		if !ok {
			k.violate(-1, "report", "result for unknown job %d", jr.ID)
			continue
		}
		if seen[jr.ID] {
			k.violate(-1, "report", "duplicate result for job %d", jr.ID)
			continue
		}
		seen[jr.ID] = true
		if jr.Start < jr.Arrival-tol || jr.Finish < jr.Start-tol {
			k.violate(-1, "report", "job %d timeline broken: arrival %v, start %v, finish %v",
				jr.ID, jr.Arrival, jr.Start, jr.Finish)
			continue
		}
		// Physical floor: the run span cannot beat every worker on the
		// job's fastest type on the cluster's fastest node (checkpoint
		// stalls only add to it). The 1/n-share IsolatedDuration is NOT
		// a valid floor — an uncontended job legitimately beats its
		// fair-share runtime (FTF < 1) — so the oracle uses the
		// speed-of-light bound instead.
		if _, best, ok := j.BestType(); ok && best > 0 {
			floor := j.TotalIters() / (float64(j.Workers) * best * k.maxSpeed)
			if span := jr.Finish - jr.Start; span < floor*(1-tol) {
				k.violate(-1, "report", "job %d ran %v iterations in %vs, physical floor %vs",
					jr.ID, j.TotalIters(), span, floor)
			}
		}
		if jr.Finish > maxFinish {
			maxFinish = jr.Finish
		}
	}
	if rep.Makespan < maxFinish*(1-tol) {
		k.violate(-1, "report", "makespan %v below latest finish %v", rep.Makespan, maxFinish)
	}
	if occ := rep.Occupancy(); occ < 0 || occ > 1+tol {
		k.violate(-1, "report", "occupancy %v outside [0, 1]", occ)
	}
	if u := rep.Utilization(); u < 0 || u > 1+tol {
		k.violate(-1, "report", "utilization %v outside [0, 1]", u)
	}
	if rep.BusyGPUSeconds > rep.HeldGPUSeconds*(1+tol) {
		k.violate(-1, "report", "busy GPU-seconds %v exceed held %v",
			rep.BusyGPUSeconds, rep.HeldGPUSeconds)
	}
	for i, held := range rep.RoundHeld {
		if held < 0 || held > rep.TotalGPUs {
			k.violate(-1, "report", "round %d held %d devices of %d", i, held, rep.TotalGPUs)
		}
	}
}
