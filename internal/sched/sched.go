// Package sched defines the contract between the round-based cluster
// simulator and the scheduling policies (Hadar and the baselines): the
// per-job scheduling state, the per-round context, the Scheduler
// interface, and shared placement helpers.
package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
)

// JobState is the simulator-maintained mutable state of one job.
// Schedulers read it to make decisions; only the simulator writes it.
type JobState struct {
	// Job is the immutable description.
	Job *job.Job
	// Remaining is the number of training iterations left.
	Remaining float64
	// Alloc is the allocation the job held during the previous round
	// (nil if it was not running). Schedulers use it for stickiness and
	// non-preemptive policies; the simulator uses it to detect
	// reallocation (checkpoint-restart cost).
	Alloc cluster.Alloc
	// Attained is the accumulated GPU-seconds of service (Tiresias'
	// attained-service metric).
	Attained float64
	// Rounds is the number of rounds in which the job held any
	// allocation.
	Rounds int
	// RoundsByType counts rounds per accelerator type (Gavel's priority
	// denominator). A mixed-type round increments every type used.
	RoundsByType map[gpu.Type]float64
	// Started reports whether the job has ever been allocated;
	// StartTime is the time of its first allocation.
	Started   bool
	StartTime float64
	// Reallocations counts rounds in which the job kept running but its
	// allocation changed (checkpoint-restart events).
	Reallocations int
}

// Done reports whether the job has completed all its iterations.
func (s *JobState) Done() bool { return s.Remaining <= 1e-9 }

// Running reports whether the job held an allocation last round.
func (s *JobState) Running() bool { return s.Alloc.Workers() > 0 }

// Context is the information a scheduler receives at each round
// boundary.
type Context struct {
	// Now is the current simulation time in seconds.
	Now float64
	// Round is the 0-based round index.
	Round int
	// RoundLength is the scheduling interval in seconds.
	RoundLength float64
	// Horizon is the estimated end of the scheduling window T used by
	// Hadar's price bounds; the simulator grows it as needed.
	Horizon float64
	// Cluster describes the machines.
	Cluster *cluster.Cluster
	// Jobs lists every arrived, unfinished job in arrival order.
	Jobs []*JobState
}

// Scheduler is a round-based scheduling policy. Schedule returns the
// desired allocation for the next round keyed by job ID; omitted jobs
// (or zero-worker allocations) are paused. Each returned allocation must
// respect gang scheduling (exactly Job.Workers workers) and, jointly,
// the cluster capacity; the simulator validates both.
type Scheduler interface {
	Name() string
	Schedule(ctx *Context) map[int]cluster.Alloc
}

// Rate returns the job's progress rate (iterations/second) under the
// given allocation: the bottleneck per-worker throughput across the
// allocation's device types and node speeds, multiplied by the worker
// count (constraints 1a/1b of the paper, extended with straggler
// factors).
func Rate(j *job.Job, c *cluster.Cluster, a cluster.Alloc) float64 {
	w := a.Workers()
	if w == 0 {
		return 0
	}
	slowest := math.Inf(1)
	for _, p := range a {
		if p.Count == 0 {
			continue
		}
		x := j.Speed(p.Type) * c.Speed(p.Node)
		if x < slowest {
			slowest = x
		}
	}
	if math.IsInf(slowest, 1) {
		return 0
	}
	return slowest * float64(w)
}

// Validate checks one job's allocation against the gang constraint and
// usable-type requirement. Capacity is checked jointly by the simulator.
func Validate(j *job.Job, a cluster.Alloc) error {
	w := a.Workers()
	if w == 0 {
		return nil
	}
	if w != j.Workers {
		return fmt.Errorf("sched: job %d allocated %d workers, gang requires %d", j.ID, w, j.Workers)
	}
	for _, p := range a {
		if p.Count > 0 && j.Speed(p.Type) <= 0 {
			return fmt.Errorf("sched: job %d allocated unusable type %v", j.ID, p.Type)
		}
	}
	return nil
}

// PlaceSingleType places w workers of type t, consolidating onto as few
// nodes as possible (nodes with more free devices of t first; ties by
// lower node ID). It reports ok=false without mutating state if the
// cluster-wide free count of t is insufficient.
func PlaceSingleType(st *cluster.State, t gpu.Type, w int) (cluster.Alloc, bool) {
	if st.FreeOfType(t) < w {
		return nil, false
	}
	type nodeFree struct{ id, free int }
	nodes := make([]nodeFree, 0, st.Cluster().NumNodes())
	for id := 0; id < st.Cluster().NumNodes(); id++ {
		if f := st.Free(id, t); f > 0 {
			nodes = append(nodes, nodeFree{id, f})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].free != nodes[j].free {
			return nodes[i].free > nodes[j].free
		}
		return nodes[i].id < nodes[j].id
	})
	var out cluster.Alloc
	need := w
	for _, n := range nodes {
		take := n.free
		if take > need {
			take = need
		}
		out = append(out, cluster.Placement{Node: n.id, Type: t, Count: take})
		need -= take
		if need == 0 {
			return out, true
		}
	}
	return nil, false
}

// PlaceAnyType fills w workers from the free pool following the given
// type preference order (earlier types first), spreading across nodes as
// needed. It reports ok=false if fewer than w devices of the preferred
// types are free. Types the job cannot use must be excluded by the
// caller.
func PlaceAnyType(st *cluster.State, prefer []gpu.Type, w int) (cluster.Alloc, bool) {
	var out cluster.Alloc
	need := w
	for _, t := range prefer {
		if need == 0 {
			break
		}
		for id := 0; id < st.Cluster().NumNodes() && need > 0; id++ {
			if f := st.Free(id, t); f > 0 {
				take := f
				if take > need {
					take = need
				}
				out = append(out, cluster.Placement{Node: id, Type: t, Count: take})
				need -= take
			}
		}
	}
	if need > 0 {
		return nil, false
	}
	return out, true
}

// UsableTypes returns the job's usable accelerator types sorted by
// descending throughput (ties by ascending type).
func UsableTypes(j *job.Job) []gpu.Type {
	var out []gpu.Type
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if j.Speed(t) > 0 {
			out = append(out, t)
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return j.Speed(out[a]) > j.Speed(out[b])
	})
	return out
}
