// Package sched defines the contract between the round-based cluster
// simulator and the scheduling policies (Hadar and the baselines): the
// per-job scheduling state, the per-round context, the Scheduler
// interface, and shared placement helpers.
package sched

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
)

// JobState is the simulator-maintained mutable state of one job.
// Schedulers read it to make decisions; only the simulator writes it.
type JobState struct {
	// Job is the immutable description.
	Job *job.Job
	// Remaining is the number of training iterations left.
	Remaining float64
	// Alloc is the allocation the job held during the previous round
	// (nil if it was not running). Schedulers use it for stickiness and
	// non-preemptive policies; the simulator uses it to detect
	// reallocation (checkpoint-restart cost).
	Alloc cluster.Alloc
	// Attained is the accumulated GPU-seconds of service (Tiresias'
	// attained-service metric).
	Attained float64
	// Rounds is the number of rounds in which the job held any
	// allocation.
	Rounds int
	// RoundsByType counts rounds per accelerator type (Gavel's priority
	// denominator). A mixed-type round increments every type used.
	RoundsByType map[gpu.Type]float64
	// Started reports whether the job has ever been allocated;
	// StartTime is the time of its first allocation.
	Started   bool
	StartTime float64
	// Reallocations counts rounds in which the job kept running but its
	// allocation changed (checkpoint-restart events).
	Reallocations int
}

// Done reports whether the job has completed all its iterations.
func (s *JobState) Done() bool { return s.Remaining <= 1e-9 }

// Running reports whether the job held an allocation last round.
func (s *JobState) Running() bool { return s.Alloc.Workers() > 0 }

// Context is the information a scheduler receives at each round
// boundary.
type Context struct {
	// Now is the current simulation time in seconds.
	Now float64
	// Round is the 0-based round index.
	Round int
	// RoundLength is the scheduling interval in seconds.
	RoundLength float64
	// Horizon is the estimated end of the scheduling window T used by
	// Hadar's price bounds; the simulator grows it as needed.
	Horizon float64
	// Cluster describes the machines.
	Cluster *cluster.Cluster
	// Jobs lists every arrived, unfinished job in arrival order.
	Jobs []*JobState
}

// Scheduler is a round-based scheduling policy. Schedule returns the
// desired allocation for the next round keyed by job ID; omitted jobs
// (or zero-worker allocations) are paused. Each returned allocation must
// respect gang scheduling (exactly Job.Workers workers) and, jointly,
// the cluster capacity; the simulator validates both.
type Scheduler interface {
	Name() string
	Schedule(ctx *Context) map[int]cluster.Alloc
}

// Rate returns the job's progress rate (iterations/second) under the
// given allocation: the bottleneck per-worker throughput across the
// allocation's device types and node speeds, multiplied by the worker
// count (constraints 1a/1b of the paper, extended with straggler
// factors).
func Rate(j *job.Job, c *cluster.Cluster, a cluster.Alloc) float64 {
	w := a.Workers()
	if w == 0 {
		return 0
	}
	slowest := math.Inf(1)
	for _, p := range a {
		if p.Count == 0 {
			continue
		}
		x := j.Speed(p.Type) * c.Speed(p.Node)
		if x < slowest {
			slowest = x
		}
	}
	if math.IsInf(slowest, 1) {
		return 0
	}
	return slowest * float64(w)
}

// Validate checks one job's allocation against the gang constraint and
// usable-type requirement. Capacity is checked jointly by the simulator.
func Validate(j *job.Job, a cluster.Alloc) error {
	w := a.Workers()
	if w == 0 {
		return nil
	}
	if w != j.Workers {
		return fmt.Errorf("sched: job %d allocated %d workers, gang requires %d", j.ID, w, j.Workers)
	}
	for _, p := range a {
		if p.Count > 0 && j.Speed(p.Type) <= 0 {
			return fmt.Errorf("sched: job %d allocated unusable type %v", j.ID, p.Type)
		}
	}
	return nil
}

// consolidate appends placements for up to need devices of type t onto
// out in consolidation order — most free devices first, ties by lower
// node ID — and returns the extended allocation plus the unmet need.
// The state's bucket index already maintains that order, so the scan
// needs no sort and touches at most need nodes (every listed node
// contributes at least one device). It runs through the state's shared
// scratch buffer, so a round's placements do one buffer allocation
// total.
func consolidate(st *cluster.State, t gpu.Type, need int, out cluster.Alloc) (cluster.Alloc, int) {
	if need == 0 {
		return out, 0
	}
	nodes := st.AppendFreeNodesByFreeDesc(t, need, st.Scratch())
	for _, n := range nodes {
		take := n.Free
		if take > need {
			take = need
		}
		out = append(out, cluster.Placement{Node: n.Node, Type: t, Count: take})
		if need -= take; need == 0 {
			break
		}
	}
	return out, need
}

// PlaceSingleType places w workers of type t, consolidating onto as few
// nodes as possible (nodes with more free devices of t first; ties by
// lower node ID). It reports ok=false without mutating state if the
// cluster-wide free count of t is insufficient.
func PlaceSingleType(st *cluster.State, t gpu.Type, w int) (cluster.Alloc, bool) {
	if st.FreeOfType(t) < w {
		return nil, false
	}
	out, need := consolidate(st, t, w, nil)
	if need > 0 {
		return nil, false
	}
	return out, true
}

// PlaceAnyType fills w workers from the free pool following the given
// type preference order (earlier types first), consolidating within
// each type exactly like PlaceSingleType (most-free node first), so
// gangs fragment across as few machines as each type pool allows. It
// reports ok=false if fewer than w devices of the preferred types are
// free. Types the job cannot use must be excluded by the caller.
func PlaceAnyType(st *cluster.State, prefer []gpu.Type, w int) (cluster.Alloc, bool) {
	var out cluster.Alloc
	need := w
	for _, t := range prefer {
		if need == 0 {
			break
		}
		out, need = consolidate(st, t, need, out)
	}
	if need > 0 {
		return nil, false
	}
	return out, true
}

// AllocSingleType is PlaceSingleType followed by Allocate as one step:
// either the gang is placed and the state debited, or ok is false and
// the state is untouched. Baselines use it so a placement can never
// silently diverge from the booked state.
func AllocSingleType(st *cluster.State, t gpu.Type, w int) (cluster.Alloc, bool) {
	a, ok := PlaceSingleType(st, t, w)
	if !ok {
		return nil, false
	}
	if err := st.Allocate(a); err != nil {
		return nil, false
	}
	return a, true
}

// AllocAnyType is PlaceAnyType followed by Allocate as one step.
func AllocAnyType(st *cluster.State, prefer []gpu.Type, w int) (cluster.Alloc, bool) {
	a, ok := PlaceAnyType(st, prefer, w)
	if !ok {
		return nil, false
	}
	if err := st.Allocate(a); err != nil {
		return nil, false
	}
	return a, true
}

// UsableTypes returns the job's usable accelerator types sorted by
// descending throughput (ties by ascending type).
func UsableTypes(j *job.Job) []gpu.Type {
	return AppendUsableTypes(nil, j)
}

// AppendUsableTypes appends j's usable accelerator types in descending
// throughput order (ties by ascending type) onto buf and returns the
// extended slice: UsableTypes without the per-call allocation, for
// callers carving per-job type lists out of one reused arena. The
// insertion sort swaps only on strictly greater speed, so equal-speed
// types keep their ascending-type scan order.
func AppendUsableTypes(buf []gpu.Type, j *job.Job) []gpu.Type {
	mark := len(buf)
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if j.Speed(t) > 0 {
			buf = append(buf, t)
		}
	}
	out := buf[mark:]
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && j.Speed(out[k]) > j.Speed(out[k-1]); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return buf
}
