package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
)

func testJob() *job.Job {
	return &job.Job{
		ID: 1, Model: "LSTM", Workers: 3, Epochs: 10, ItersPerEpoch: 10,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.P100: 6, gpu.K80: 2},
	}
}

func testCluster() *cluster.Cluster {
	return cluster.New(
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.P100: 2},
		gpu.Fleet{gpu.K80: 2},
	)
}

func TestRateBottleneck(t *testing.T) {
	j := testJob()
	c := testCluster()
	a := cluster.Alloc{
		{Node: 0, Type: gpu.V100, Count: 2},
		{Node: 2, Type: gpu.K80, Count: 1},
	}
	// Bottleneck is K80 at 2 iters/s; 3 workers -> 6 iters/s.
	if got := Rate(j, c, a); got != 6 {
		t.Errorf("Rate = %v, want 6", got)
	}
}

func TestRateEmptyAlloc(t *testing.T) {
	if got := Rate(testJob(), testCluster(), nil); got != 0 {
		t.Errorf("Rate(nil) = %v", got)
	}
}

func TestRateAppliesNodeSpeed(t *testing.T) {
	j := testJob()
	c := testCluster()
	c.SetSpeed(0, 0.5) // straggler node
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}, {Node: 1, Type: gpu.P100, Count: 1}}
	// V100 on straggler: 10*0.5=5 < P100 6 -> bottleneck 5, x3 workers.
	if got := Rate(j, c, a); got != 15 {
		t.Errorf("Rate with straggler = %v, want 15", got)
	}
}

func TestRateUnusableTypeIsZero(t *testing.T) {
	j := testJob()
	j.Throughput = map[gpu.Type]float64{gpu.V100: 10}
	c := testCluster()
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}, {Node: 2, Type: gpu.K80, Count: 1}}
	if got := Rate(j, c, a); got != 0 {
		t.Errorf("Rate with unusable type = %v, want 0", got)
	}
}

func TestValidateGang(t *testing.T) {
	j := testJob()
	if err := Validate(j, nil); err != nil {
		t.Errorf("empty alloc rejected: %v", err)
	}
	good := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}, {Node: 1, Type: gpu.P100, Count: 1}}
	if err := Validate(j, good); err != nil {
		t.Errorf("gang-sized alloc rejected: %v", err)
	}
	bad := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	if err := Validate(j, bad); err == nil {
		t.Error("partial gang accepted")
	}
}

func TestValidateUnusableType(t *testing.T) {
	j := testJob()
	j.Throughput = map[gpu.Type]float64{gpu.V100: 10}
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}, {Node: 2, Type: gpu.K80, Count: 1}}
	if err := Validate(j, a); err == nil {
		t.Error("unusable type accepted")
	}
}

func TestPlaceSingleTypeConsolidates(t *testing.T) {
	c := cluster.New(
		gpu.Fleet{gpu.V100: 1},
		gpu.Fleet{gpu.V100: 4},
		gpu.Fleet{gpu.V100: 2},
	)
	st := cluster.NewState(c)
	a, ok := PlaceSingleType(st, gpu.V100, 4)
	if !ok {
		t.Fatal("placement failed")
	}
	if a.NumNodes() != 1 {
		t.Errorf("4 workers should consolidate on node 1: %v", a)
	}
	if a.Workers() != 4 {
		t.Errorf("Workers = %d", a.Workers())
	}
}

func TestPlaceSingleTypeSpills(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.V100: 2})
	st := cluster.NewState(c)
	a, ok := PlaceSingleType(st, gpu.V100, 3)
	if !ok {
		t.Fatal("placement failed")
	}
	if a.Workers() != 3 || a.NumNodes() != 2 {
		t.Errorf("spill placement wrong: %v", a)
	}
}

func TestPlaceSingleTypeInsufficient(t *testing.T) {
	st := cluster.NewState(cluster.New(gpu.Fleet{gpu.V100: 2}))
	if _, ok := PlaceSingleType(st, gpu.V100, 3); ok {
		t.Error("placement succeeded beyond capacity")
	}
	if _, ok := PlaceSingleType(st, gpu.K80, 1); ok {
		t.Error("placement succeeded for absent type")
	}
}

func TestPlaceSingleTypeDoesNotMutate(t *testing.T) {
	st := cluster.NewState(cluster.New(gpu.Fleet{gpu.V100: 2}))
	PlaceSingleType(st, gpu.V100, 2)
	if st.FreeOfType(gpu.V100) != 2 {
		t.Error("PlaceSingleType mutated state")
	}
}

func TestPlaceAnyTypePrefersOrder(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.P100: 2}, gpu.Fleet{gpu.K80: 2})
	st := cluster.NewState(c)
	a, ok := PlaceAnyType(st, []gpu.Type{gpu.V100, gpu.P100, gpu.K80}, 3)
	if !ok {
		t.Fatal("placement failed")
	}
	f := gpu.Fleet{}
	for _, p := range a {
		f[p.Type] += p.Count
	}
	if f[gpu.V100] != 2 || f[gpu.P100] != 1 || f[gpu.K80] != 0 {
		t.Errorf("preference order ignored: %v", f)
	}
}

func TestPlaceAnyTypeInsufficient(t *testing.T) {
	st := cluster.NewState(cluster.New(gpu.Fleet{gpu.V100: 1}))
	if _, ok := PlaceAnyType(st, []gpu.Type{gpu.V100}, 2); ok {
		t.Error("placement succeeded beyond capacity")
	}
}

func TestUsableTypesSortedByThroughput(t *testing.T) {
	types := UsableTypes(testJob())
	want := []gpu.Type{gpu.V100, gpu.P100, gpu.K80}
	if len(types) != 3 {
		t.Fatalf("UsableTypes = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("UsableTypes = %v, want %v", types, want)
		}
	}
}

func TestJobStateDoneAndRunning(t *testing.T) {
	s := &JobState{Job: testJob(), Remaining: 100}
	if s.Done() || s.Running() {
		t.Error("fresh state reported done or running")
	}
	s.Remaining = 0
	s.Alloc = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 3}}
	if !s.Done() || !s.Running() {
		t.Error("state transitions wrong")
	}
}

// Property: any successful PlaceSingleType allocation is gang-complete,
// fits within free capacity, and only uses the requested type.
func TestPlaceSingleTypeSoundProperty(t *testing.T) {
	c := cluster.New(
		gpu.Fleet{gpu.V100: 3, gpu.K80: 1},
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.K80: 4},
	)
	prop := func(w uint8, typRaw uint8) bool {
		st := cluster.NewState(c)
		typ := []gpu.Type{gpu.V100, gpu.K80}[typRaw%2]
		want := int(w%8) + 1
		a, ok := PlaceSingleType(st, typ, want)
		if !ok {
			return st.FreeOfType(typ) < want
		}
		if a.Workers() != want {
			return false
		}
		for _, p := range a {
			if p.Type != typ {
				return false
			}
		}
		return st.Clone().Allocate(a) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: PlaceAnyType allocations are valid against the state.
func TestPlaceAnyTypeSoundProperty(t *testing.T) {
	c := cluster.New(
		gpu.Fleet{gpu.V100: 2, gpu.P100: 1},
		gpu.Fleet{gpu.K80: 3},
	)
	prop := func(w uint8) bool {
		st := cluster.NewState(c)
		want := int(w%10) + 1
		a, ok := PlaceAnyType(st, []gpu.Type{gpu.V100, gpu.P100, gpu.K80}, want)
		if !ok {
			return want > st.TotalFree()
		}
		return a.Workers() == want && st.Clone().Allocate(a) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
