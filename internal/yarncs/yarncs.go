// Package yarncs implements the Apache YARN capacity-scheduler baseline
// (YARN-CS) as used in the Hadar paper: a production-style,
// non-preemptive FIFO scheduler that treats GPUs as fungible containers.
// It never revokes a running job's devices, which gives it the highest
// raw GPU utilization in the paper's Fig. 4 — at the cost of very long
// completion times, since gangs may straddle slow and fast accelerators
// and short jobs queue behind long ones.
package yarncs

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// Scheduler is the YARN-CS baseline; it implements sched.Scheduler.
type Scheduler struct{}

// New builds a YARN-CS scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "yarn-cs" }

// Schedule implements sched.Scheduler. Running jobs keep their exact
// allocation; waiting jobs are started in arrival order whenever their
// full gang fits in the free pool (capacity schedulers continue down the
// queue past a job that does not fit).
func (*Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	free := cluster.NewState(ctx.Cluster)

	// Non-preemptive: running jobs are untouchable.
	for _, st := range ctx.Jobs {
		if st.Running() {
			if err := free.Allocate(st.Alloc); err == nil {
				out[st.Job.ID] = st.Alloc
			}
		}
	}
	waiting := make([]*sched.JobState, 0, len(ctx.Jobs))
	for _, st := range ctx.Jobs {
		if _, ok := out[st.Job.ID]; !ok {
			waiting = append(waiting, st)
		}
	}
	sort.SliceStable(waiting, func(a, b int) bool {
		if waiting[a].Job.Arrival < waiting[b].Job.Arrival {
			return true
		}
		if waiting[a].Job.Arrival > waiting[b].Job.Arrival {
			return false
		}
		return waiting[a].Job.ID < waiting[b].Job.ID
	})
	for _, st := range waiting {
		a, ok := place(free, st)
		if !ok {
			// Strict FIFO: a gang job that does not fit holds its queue
			// position (DL jobs under YARN spin up containers and wait),
			// blocking everything behind it. This head-of-line blocking
			// is what makes YARN-CS's completion times 7-15x worse than
			// Hadar's in the paper.
			break
		}
		out[st.Job.ID] = a
	}
	return out
}

// place books containers heterogeneity-unawares: the whole gang goes
// on the single type with the most free devices (node locality is what
// YARN packs by, not device speed). Only a gang too large for every
// type's total capacity falls back to mixing types — and then runs at
// the slowest device's speed.
func place(free *cluster.State, st *sched.JobState) (cluster.Alloc, bool) {
	bestFree := -1
	var bestType gpu.Type
	mixable := 0
	var prefer []gpu.Type
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if st.Job.Speed(t) <= 0 {
			continue
		}
		prefer = append(prefer, t)
		mixable += free.Cluster().TotalOfType(t)
		if f := free.FreeOfType(t); f >= st.Job.Workers && f > bestFree {
			bestFree = f
			bestType = t
		}
	}
	if bestFree >= 0 {
		return sched.AllocSingleType(free, bestType, st.Job.Workers)
	}
	// Can any single type ever host this gang? If yes, wait for it.
	for _, t := range prefer {
		if free.Cluster().TotalOfType(t) >= st.Job.Workers {
			return nil, false
		}
	}
	if mixable < st.Job.Workers {
		return nil, false
	}
	return sched.AllocAnyType(free, prefer, st.Job.Workers)
}
