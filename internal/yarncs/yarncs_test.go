package yarncs

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

func mkJob(id, workers int, arrival float64) *job.Job {
	return &job.Job{
		ID: id, Model: "m", Workers: workers, Epochs: 100, ItersPerEpoch: 100,
		Arrival:    arrival,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.P100: 5, gpu.K80: 2},
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	return &sched.Context{Now: 0, RoundLength: 360, Horizon: 1e6, Cluster: c, Jobs: states}
}

func TestFIFOOrder(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	early := newState(mkJob(0, 2, 0))
	late := newState(mkJob(1, 2, 10))
	out := New().Schedule(mkCtx(c, late, early))
	if out[0].Workers() != 2 {
		t.Errorf("FIFO violated: %v", out)
	}
}

func TestNonPreemptive(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	running := newState(mkJob(0, 2, 100))
	running.Alloc = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	waiting := newState(mkJob(1, 2, 0)) // earlier arrival but must wait
	out := New().Schedule(mkCtx(c, running, waiting))
	if !out[0].Equal(running.Alloc) {
		t.Errorf("running job preempted: %v", out[0])
	}
	if out[1].Workers() != 0 && len(out) > 1 {
		t.Errorf("waiting job overbooked: %v", out)
	}
}

func TestMixesTypesFreely(t *testing.T) {
	// 3-worker gang with only 2 V100 + 2 K80: YARN-CS mixes and runs at
	// the K80 bottleneck (where Gavel/Tiresias would leave it waiting).
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	st := newState(mkJob(0, 3, 0))
	out := New().Schedule(mkCtx(c, st))
	if out[0].Workers() != 3 {
		t.Fatalf("gang not placed: %v", out)
	}
	if len(out[0].Types()) < 2 {
		t.Errorf("expected mixed-type container grab, got %v", out[0])
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	// The 4-worker head job does not fit in the 2 free V100s; the
	// 1-worker job behind it must wait too (strict FIFO: gang jobs hold
	// their queue position).
	c := cluster.New(gpu.Fleet{gpu.V100: 4})
	running := newState(mkJob(9, 2, 0))
	running.Alloc = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	big := newState(mkJob(0, 4, 1))
	small := newState(mkJob(1, 1, 5))
	out := New().Schedule(mkCtx(c, running, big, small))
	if a, ok := out[1]; ok && a.Workers() > 0 {
		t.Errorf("small job jumped the blocked queue head: %v", out)
	}
}

func TestCapacityRespected(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2, gpu.K80: 1})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 0)),
		newState(mkJob(1, 2, 1)),
		newState(mkJob(2, 1, 2)),
	}
	out := New().Schedule(mkCtx(c, states...))
	free := cluster.NewState(c)
	for id, a := range out {
		if err := sched.Validate(states[id].Job, a); err != nil {
			t.Fatal(err)
		}
		if a.Workers() > 0 {
			if err := free.Allocate(a); err != nil {
				t.Fatalf("capacity violated: %v", err)
			}
		}
	}
}

func TestEmptyQueue(t *testing.T) {
	out := New().Schedule(mkCtx(cluster.New(gpu.Fleet{gpu.V100: 1})))
	if len(out) != 0 {
		t.Errorf("non-empty decision: %v", out)
	}
}
