package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Setup parameterizes the evaluation scale. DefaultSetup matches the
// paper (480 jobs, 60 GPUs, 6-minute rounds); tests and quick runs use
// smaller NumJobs.
type Setup struct {
	NumJobs     int
	Seed        int64
	RoundLength float64
	// Rate is the Poisson arrival rate (jobs/second) for continuous
	// traces.
	Rate float64
}

// DefaultSetup returns the paper's simulation scale.
func DefaultSetup() Setup {
	return Setup{
		NumJobs:     480,
		Seed:        1,
		RoundLength: checkpoint.RoundSeconds,
		Rate:        480.0 / (7 * 3600),
	}
}

func (s Setup) simOptions() sim.Options {
	o := sim.DefaultOptions()
	o.RoundLength = s.RoundLength
	return o
}

func (s Setup) staticTrace() ([]*job.Job, error) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = s.NumJobs
	cfg.Seed = s.Seed
	return trace.Generate(cfg)
}

func (s Setup) continuousTrace() ([]*job.Job, error) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = s.NumJobs
	cfg.Seed = s.Seed
	cfg.Pattern = trace.Poisson
	cfg.Rate = s.Rate
	return trace.Generate(cfg)
}

// Fig3Result holds the Fig. 3 experiment: the cumulative fraction of
// jobs completed along the timeline for all four schedulers, in the
// static or continuous arrival setting.
type Fig3Result struct {
	Arrival string
	Cmp     *Comparison
}

// Fig3 runs the JCT experiment for one arrival pattern ("static" or
// "continuous"): Hadar vs Gavel vs Tiresias vs YARN-CS.
func Fig3(setup Setup, continuous bool) (*Fig3Result, error) {
	var jobs []*job.Job
	var err error
	arrival := "static"
	if continuous {
		arrival = "continuous"
		jobs, err = setup.continuousTrace()
	} else {
		jobs, err = setup.staticTrace()
	}
	if err != nil {
		return nil, err
	}
	c := SimCluster()
	scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias(), NewYARNCS()}
	cmp, err := RunComparison(c, jobs, scheds, setup.simOptions())
	if err != nil {
		return nil, err
	}
	return &Fig3Result{Arrival: arrival, Cmp: cmp}, nil
}

// String renders the completion CDF sampled at 12 points up to the
// slowest scheduler's makespan, one series per scheduler — the Fig. 3
// curves.
func (f *Fig3Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 3 (%s trace): fraction of jobs completed along the timeline\n", f.Arrival)
	maxSpan := 0.0
	for _, r := range f.Cmp.Reports {
		if r.Makespan > maxSpan {
			maxSpan = r.Makespan
		}
	}
	fmt.Fprintf(&sb, "%-12s", "time(h)")
	for _, name := range f.Cmp.Order {
		fmt.Fprintf(&sb, "%12s", name)
	}
	sb.WriteByte('\n')
	const points = 12
	for i := 1; i <= points; i++ {
		t := maxSpan * float64(i) / points
		fmt.Fprintf(&sb, "%-12.1f", t/3600)
		for _, name := range f.Cmp.Order {
			fmt.Fprintf(&sb, "%12.3f", f.Cmp.Reports[name].CompletionAt(t))
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(f.Cmp.Table())
	for _, base := range []string{"gavel", "tiresias", "yarn-cs"} {
		if _, ok := f.Cmp.Reports[base]; !ok {
			continue
		}
		fmt.Fprintf(&sb, "Hadar avg-JCT speedup vs %-9s: %.2fx (median %.2fx)\n",
			base,
			f.Cmp.Reports[base].AvgJCT()/f.Cmp.Reports["hadar"].AvgJCT(),
			f.Cmp.Reports[base].MedianJCT()/f.Cmp.Reports["hadar"].MedianJCT())
	}
	return sb.String()
}

// Fig4Result holds the cluster-wide GPU utilization comparison.
type Fig4Result struct {
	Cmp *Comparison
}

// Fig4 compares GPU utilization (busy fraction of held GPU time, the
// quantity preemption overheads eat into) across the four schedulers on
// the static trace, with the Table IV per-model checkpoint cost model
// enabled so preemptive schedulers pay realistic save/restore time.
func Fig4(setup Setup) (*Fig4Result, error) {
	jobs, err := setup.staticTrace()
	if err != nil {
		return nil, err
	}
	opts := setup.simOptions()
	opts.UseModelCosts = true
	scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias(), NewYARNCS()}
	cmp, err := RunComparison(SimCluster(), jobs, scheds, opts)
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Cmp: cmp}, nil
}

// String renders per-scheduler utilization and mid-load occupancy.
func (f *Fig4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 4: cluster-wide GPU utilization\n")
	fmt.Fprintf(&sb, "%-12s %14s %22s\n", "scheduler", "utilization(%)", "occupancy@halfload(%)")
	for _, name := range f.Cmp.Order {
		r := f.Cmp.Reports[name]
		// Occupancy measured while the cluster is still loaded (until
		// half the jobs finished) so long sparse tails do not dominate.
		finishes := make([]float64, len(r.Jobs))
		for i, j := range r.Jobs {
			finishes[i] = j.Finish
		}
		half := stats.Median(finishes)
		fmt.Fprintf(&sb, "%-12s %14.1f %22.1f\n", name, 100*r.Utilization(), 100*r.OccupancyUntil(half))
	}
	return sb.String()
}

// Fig5Result holds the finish-time fairness comparison.
type Fig5Result struct {
	Cmp *Comparison
}

// Fig5 compares finish-time fairness across Hadar, Gavel and Tiresias
// (the paper omits YARN-CS here) on the static trace.
func Fig5(setup Setup) (*Fig5Result, error) {
	jobs, err := setup.staticTrace()
	if err != nil {
		return nil, err
	}
	scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias()}
	cmp, err := RunComparison(SimCluster(), jobs, scheds, setup.simOptions())
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Cmp: cmp}, nil
}

// String renders average and worst-case FTF per scheduler.
func (f *Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5: finish-time fairness (lower is better)\n")
	fmt.Fprintf(&sb, "%-12s %10s %10s\n", "scheduler", "avg FTF", "max FTF")
	for _, name := range f.Cmp.Order {
		r := f.Cmp.Reports[name]
		fmt.Fprintf(&sb, "%-12s %10.2f %10.2f\n", name, r.AvgFTF(), r.MaxFTF())
	}
	if h, ok := f.Cmp.Reports["hadar"]; ok {
		for _, base := range []string{"gavel", "tiresias"} {
			if b, ok := f.Cmp.Reports[base]; ok {
				fmt.Fprintf(&sb, "Hadar FTF improvement vs %-9s: %.2fx\n", base, b.AvgFTF()/h.AvgFTF())
			}
		}
	}
	return sb.String()
}

// Fig6Result holds the makespan comparison.
type Fig6Result struct {
	Cmp *Comparison
}

// Fig6 compares makespan with the scheduling policy "flexibly specified
// towards makespan minimization": Hadar runs with the
// effective-throughput utility, against Gavel and Tiresias.
func Fig6(setup Setup) (*Fig6Result, error) {
	jobs, err := setup.staticTrace()
	if err != nil {
		return nil, err
	}
	scheds := []sched.Scheduler{NewHadarMakespan(), NewGavel(), NewTiresias()}
	cmp, err := RunComparison(SimCluster(), jobs, scheds, setup.simOptions())
	if err != nil {
		return nil, err
	}
	return &Fig6Result{Cmp: cmp}, nil
}

// String renders makespans and Hadar's improvement factors.
func (f *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6: makespan under the makespan-minimization objective\n")
	fmt.Fprintf(&sb, "%-18s %14s\n", "scheduler", "makespan(h)")
	for _, name := range f.Cmp.Order {
		fmt.Fprintf(&sb, "%-18s %14.2f\n", name, f.Cmp.Reports[name].Makespan/3600)
	}
	h := f.Cmp.Reports["hadar-makespan"]
	for _, base := range []string{"gavel", "tiresias"} {
		if b, ok := f.Cmp.Reports[base]; ok && h != nil {
			fmt.Fprintf(&sb, "Hadar makespan improvement vs %-9s: %.2fx\n", base, b.Makespan/h.Makespan)
		}
	}
	return sb.String()
}

// Fig7Point is one x-value of the scalability experiment.
type Fig7Point struct {
	Jobs         int
	Nodes        int
	GPUs         int
	HadarLatency time.Duration
	GavelLatency time.Duration
}

// Fig7Result holds the scheduling-latency scaling sweep.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7 measures the wall time of one scheduling decision for Hadar and
// Gavel as the number of active jobs grows from 32 to maxJobs (2048 in
// the paper), with the cluster scaled proportionally.
func Fig7(seed int64, maxJobs int) (*Fig7Result, error) {
	res := &Fig7Result{}
	for jobs := 32; jobs <= maxJobs; jobs *= 2 {
		perType := jobs / 24
		if perType < 4 {
			perType = 4
		}
		c := ScaledSimCluster(perType)
		cfg := trace.DefaultConfig()
		cfg.NumJobs = jobs
		cfg.Seed = seed
		tr, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		states := make([]*sched.JobState, len(tr))
		for i, j := range tr {
			states[i] = &sched.JobState{
				Job: j, Remaining: j.TotalIters(),
				RoundsByType: map[gpu.Type]float64{},
			}
		}
		ctx := &sched.Context{
			Now: 0, Round: 0, RoundLength: checkpoint.RoundSeconds,
			Horizon: 1e7, Cluster: c, Jobs: states,
		}
		point := Fig7Point{Jobs: jobs, Nodes: c.NumNodes(), GPUs: c.TotalGPUs()}
		point.HadarLatency = timeDecision(NewHadar(), ctx)
		point.GavelLatency = timeDecision(NewGavel(), ctx)
		res.Points = append(res.Points, point)
	}
	return res, nil
}

func timeDecision(s sched.Scheduler, ctx *sched.Context) time.Duration {
	const reps = 3
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		start := time.Now()
		s.Schedule(ctx)
		d := time.Since(start)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// String renders the latency-vs-jobs series.
func (f *Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7: scheduling decision latency vs active jobs\n")
	fmt.Fprintf(&sb, "%8s %8s %14s %14s\n", "jobs", "GPUs", "hadar", "gavel")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%8d %8d %14s %14s\n", p.Jobs, p.GPUs, p.HadarLatency, p.GavelLatency)
	}
	return sb.String()
}

// Fig8Point is one arrival rate's JCT band for one scheduler.
type Fig8Point struct {
	RatePerHour float64
	Scheduler   string
	MinJCT      float64
	AvgJCT      float64
	MaxJCT      float64
}

// Fig8Result holds the min/avg/max JCT sweep over input job rates.
type Fig8Result struct {
	Points []Fig8Point
}

// Fig8 sweeps the Poisson arrival rate and reports each scheduler's
// minimum, average and maximum JCT — the paper's robustness-under-load
// comparison. Rates run in parallel across cores.
func Fig8(setup Setup, ratesPerHour []float64) (*Fig8Result, error) {
	perRate, err := parallel.Map(0, ratesPerHour, func(rate float64) ([]Fig8Point, error) {
		cfg := trace.DefaultConfig()
		cfg.NumJobs = setup.NumJobs
		cfg.Seed = setup.Seed
		cfg.Pattern = trace.Poisson
		cfg.Rate = rate / 3600
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return nil, err
		}
		scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias()}
		cmp, err := RunComparison(SimCluster(), jobs, scheds, setup.simOptions())
		if err != nil {
			return nil, err
		}
		var pts []Fig8Point
		for _, name := range cmp.Order {
			r := cmp.Reports[name]
			pts = append(pts, Fig8Point{
				RatePerHour: rate, Scheduler: name,
				MinJCT: r.MinJCT(), AvgJCT: r.AvgJCT(), MaxJCT: r.MaxJCT(),
			})
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for _, pts := range perRate {
		res.Points = append(res.Points, pts...)
	}
	return res, nil
}

// String renders the JCT bands per rate and scheduler.
func (f *Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 8: JCT range vs input job rate\n")
	fmt.Fprintf(&sb, "%12s %-12s %10s %10s %10s %10s\n",
		"rate(j/h)", "scheduler", "min(h)", "avg(h)", "max(h)", "range(h)")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%12.1f %-12s %10.2f %10.2f %10.2f %10.2f\n",
			p.RatePerHour, p.Scheduler, p.MinJCT/3600, p.AvgJCT/3600, p.MaxJCT/3600,
			(p.MaxJCT-p.MinJCT)/3600)
	}
	return sb.String()
}

// Fig9Point is one (round length, rate) cell of the round-length sweep.
type Fig9Point struct {
	RoundMinutes float64
	RatePerHour  float64
	AvgJCT       float64
}

// Fig9Result holds Hadar's avg JCT across round lengths and loads.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 sweeps the scheduling round length (6 to 48 minutes in the
// paper) under increasing input job rates, for Hadar only.
func Fig9(setup Setup, roundMinutes, ratesPerHour []float64) (*Fig9Result, error) {
	type cell struct{ rm, rate float64 }
	var cells []cell
	for _, rm := range roundMinutes {
		for _, rate := range ratesPerHour {
			cells = append(cells, cell{rm: rm, rate: rate})
		}
	}
	points, err := parallel.Map(0, cells, func(c cell) (Fig9Point, error) {
		cfg := trace.DefaultConfig()
		cfg.NumJobs = setup.NumJobs
		cfg.Seed = setup.Seed
		cfg.Pattern = trace.Poisson
		cfg.Rate = c.rate / 3600
		jobs, err := trace.Generate(cfg)
		if err != nil {
			return Fig9Point{}, err
		}
		opts := setup.simOptions()
		opts.RoundLength = c.rm * 60
		r, err := sim.Run(SimCluster(), jobs, NewHadar(), opts)
		if err != nil {
			return Fig9Point{}, err
		}
		return Fig9Point{RoundMinutes: c.rm, RatePerHour: c.rate, AvgJCT: r.AvgJCT()}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Points: points}, nil
}

// String renders the avg-JCT grid, one row per round length.
func (f *Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 9: impact of round length on Hadar's average JCT (hours)\n")
	// Collect distinct rates preserving order.
	var rates []float64
	seen := map[float64]bool{}
	for _, p := range f.Points {
		if !seen[p.RatePerHour] {
			seen[p.RatePerHour] = true
			rates = append(rates, p.RatePerHour)
		}
	}
	fmt.Fprintf(&sb, "%14s", "round(min)")
	for _, r := range rates {
		fmt.Fprintf(&sb, "%12.1f", r)
	}
	sb.WriteString("  <- rate (jobs/h)\n")
	var rounds []float64
	seenR := map[float64]bool{}
	for _, p := range f.Points {
		if !seenR[p.RoundMinutes] {
			seenR[p.RoundMinutes] = true
			rounds = append(rounds, p.RoundMinutes)
		}
	}
	for _, rm := range rounds {
		fmt.Fprintf(&sb, "%14.0f", rm)
		for _, rate := range rates {
			for _, p := range f.Points {
				//lint:ignore floateq exact grid identity: rm and rate were copied, never computed, from these same points
				if p.RoundMinutes == rm && p.RatePerHour == rate {
					fmt.Fprintf(&sb, "%12.2f", p.AvgJCT/3600)
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Table3Result holds the prototype-cluster experiment: JCT and makespan
// on the 8-GPU AWS-like configuration, in both the "physical" (per-model
// Table IV checkpoint costs) and "simulated" (flat 10 s delay) modes.
type Table3Result struct {
	Physical  *Comparison
	Simulated *Comparison
}

// Table3 runs the 10-job prototype workload on the physical-cluster
// configuration with Hadar, Gavel, and Tiresias.
func Table3(seed int64) (*Table3Result, error) {
	c := PhysicalCluster()
	jobs := trace.PrototypeWorkload(seed)
	scheds := func() []sched.Scheduler {
		return []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias()}
	}
	optsPhys := sim.DefaultOptions()
	optsPhys.UseModelCosts = true
	phys, err := RunComparison(c, jobs, scheds(), optsPhys)
	if err != nil {
		return nil, err
	}
	simulated, err := RunComparison(c, jobs, scheds(), sim.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &Table3Result{Physical: phys, Simulated: simulated}, nil
}

// String renders the Table III layout: rows = cluster mode x metric,
// columns = schedulers.
func (t *Table3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table III: JCT and makespan on the 8-GPU prototype configuration\n")
	fmt.Fprintf(&sb, "%-10s %-10s %10s %10s %10s\n", "cluster", "metric", "hadar", "gavel", "tiresias")
	rows := []struct {
		label string
		cmp   *Comparison
	}{{"physical", t.Physical}, {"simulated", t.Simulated}}
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-10s %-10s %10.2f %10.2f %10.2f\n", row.label, "JCT(h)",
			row.cmp.Reports["hadar"].AvgJCT()/3600,
			row.cmp.Reports["gavel"].AvgJCT()/3600,
			row.cmp.Reports["tiresias"].AvgJCT()/3600)
		fmt.Fprintf(&sb, "%-10s %-10s %10.2f %10.2f %10.2f\n", row.label, "makespan(h)",
			row.cmp.Reports["hadar"].Makespan/3600,
			row.cmp.Reports["gavel"].Makespan/3600,
			row.cmp.Reports["tiresias"].Makespan/3600)
	}
	return sb.String()
}

// Fig10Result holds the prototype-cluster GPU utilization comparison.
type Fig10Result struct {
	Cmp *Comparison
}

// Fig10 reports GPU utilization on the physical-cluster configuration.
func Fig10(seed int64) (*Fig10Result, error) {
	c := PhysicalCluster()
	jobs := trace.PrototypeWorkload(seed)
	opts := sim.DefaultOptions()
	opts.UseModelCosts = true
	cmp, err := RunComparison(c, jobs,
		[]sched.Scheduler{NewHadar(), NewGavel(), NewTiresias()}, opts)
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Cmp: cmp}, nil
}

// String renders utilization per scheduler.
func (f *Fig10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 10: GPU utilization on the prototype cluster\n")
	fmt.Fprintf(&sb, "%-12s %14s\n", "scheduler", "utilization(%)")
	for _, name := range f.Cmp.Order {
		fmt.Fprintf(&sb, "%-12s %14.1f\n", name, 100*f.Cmp.Reports[name].Utilization())
	}
	return sb.String()
}

// Table4Result reproduces the preemption-overhead table directly from
// the checkpoint cost model.
type Table4Result struct {
	RoundSeconds float64
}

// Table4 returns the preemption-overhead table at the given round
// length (360 s in the paper).
func Table4(roundSeconds float64) *Table4Result {
	return &Table4Result{RoundSeconds: roundSeconds}
}

// String renders Table IV.
func (t *Table4Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table IV: preemption overhead per %v-minute round\n", t.RoundSeconds/60)
	fmt.Fprintf(&sb, "%-14s %18s %18s\n", "model", "w/ realloc(%)", "w/o realloc(%)")
	for _, m := range checkpoint.Models() {
		fmt.Fprintf(&sb, "%-14s %18.2f %18.2f\n", m,
			100*checkpoint.Overhead(m, t.RoundSeconds, true),
			100*checkpoint.Overhead(m, t.RoundSeconds, false))
	}
	return sb.String()
}
