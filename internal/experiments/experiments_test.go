package experiments

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestSimClusterMatchesPaper(t *testing.T) {
	c := SimCluster()
	if c.NumNodes() != 15 {
		t.Errorf("NumNodes = %d, want 15", c.NumNodes())
	}
	for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		if got := c.TotalOfType(typ); got != 20 {
			t.Errorf("TotalOfType(%v) = %d, want 20", typ, got)
		}
	}
}

func TestPhysicalClusterMatchesPaper(t *testing.T) {
	c := PhysicalCluster()
	if c.TotalGPUs() != 8 {
		t.Errorf("TotalGPUs = %d, want 8", c.TotalGPUs())
	}
	want := map[gpu.Type]int{gpu.T4: 2, gpu.K520: 2, gpu.K80: 2, gpu.V100: 2}
	for typ, n := range want {
		if got := c.TotalOfType(typ); got != n {
			t.Errorf("TotalOfType(%v) = %d, want %d", typ, got, n)
		}
	}
}

func TestScaledSimClusterProportions(t *testing.T) {
	c := ScaledSimCluster(12)
	for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		if got := c.TotalOfType(typ); got != 12 {
			t.Errorf("TotalOfType(%v) = %d, want 12", typ, got)
		}
	}
	// Non-multiple of 4 still lands exactly.
	c = ScaledSimCluster(6)
	if c.TotalOfType(gpu.V100) != 6 {
		t.Errorf("scaled(6) V100 = %d", c.TotalOfType(gpu.V100))
	}
}

func TestMotivationReproducesTaskLevelWin(t *testing.T) {
	res, err := Motivation()
	if err != nil {
		t.Fatal(err)
	}
	h := res.Cmp.Reports["hadar"].AvgJCT()
	g := res.Cmp.Reports["gavel"].AvgJCT()
	improvement := (g - h) / g
	// The paper reports ~20%; our reconstruction gives ~28%. Require a
	// clear double-digit win.
	if improvement < 0.10 {
		t.Errorf("Hadar improvement over Gavel = %.1f%%, want >= 10%%", 100*improvement)
	}
	if !strings.Contains(res.String(), "improvement") {
		t.Error("rendered result missing improvement line")
	}
}

func TestMotivationJobsValid(t *testing.T) {
	for _, j := range MotivationJobs() {
		if err := j.Validate(); err != nil {
			t.Error(err)
		}
	}
	if MotivationCluster().TotalGPUs() != 6 {
		t.Error("motivation cluster is not 6 GPUs")
	}
}

func smallSetup() Setup {
	s := DefaultSetup()
	s.NumJobs = 24
	return s
}

func TestFig3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig3(smallSetup(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cmp.Order) != 4 {
		t.Fatalf("expected 4 schedulers, got %v", res.Cmp.Order)
	}
	out := res.String()
	for _, frag := range []string{"hadar", "gavel", "tiresias", "yarn-cs", "speedup"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig3 output missing %q", frag)
		}
	}
	// Every scheduler finished every job.
	for name, r := range res.Cmp.Reports {
		if len(r.Jobs) != 24 {
			t.Errorf("%s completed %d of 24 jobs", name, len(r.Jobs))
		}
		if r.CompletionAt(r.Makespan) != 1 {
			t.Errorf("%s CDF does not reach 1", name)
		}
	}
}

func TestFig3ContinuousSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig3(smallSetup(), true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival != "continuous" {
		t.Errorf("arrival label = %q", res.Arrival)
	}
}

func TestFig5And6SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	f5, err := Fig5(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.String(), "FTF") {
		t.Error("Fig5 output missing FTF")
	}
	f6, err := Fig6(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f6.Cmp.Reports["hadar-makespan"]; !ok {
		t.Error("Fig6 did not run the makespan-objective Hadar")
	}
}

func TestFig7LatencyGrowsWithScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig7(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 { // 32, 64, 128
		t.Fatalf("points = %d, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		if p.HadarLatency <= 0 || p.GavelLatency <= 0 {
			t.Errorf("non-positive latency at %d jobs", p.Jobs)
		}
	}
	if !strings.Contains(res.String(), "jobs") {
		t.Error("Fig7 output malformed")
	}
}

func TestFig9LongerRoundsHurt(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	setup := smallSetup()
	res, err := Fig9(setup, []float64{6, 48}, []float64{40})
	if err != nil {
		t.Fatal(err)
	}
	var short, long float64
	for _, p := range res.Points {
		if p.RoundMinutes == 6 {
			short = p.AvgJCT
		}
		if p.RoundMinutes == 48 {
			long = p.AvgJCT
		}
	}
	if !(long > short) {
		t.Errorf("48-min rounds (%.0fs) not worse than 6-min rounds (%.0fs)", long, short)
	}
}

func TestTable3PhysicalVsSimulatedClose(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Table3(7)
	if err != nil {
		t.Fatal(err)
	}
	hp := res.Physical.Reports["hadar"].AvgJCT()
	hs := res.Simulated.Reports["hadar"].AvgJCT()
	div := (hp - hs) / hs
	if div < 0 {
		div = -div
	}
	// The paper reports <10% divergence between prototype and simulator.
	if div > 0.10 {
		t.Errorf("physical vs simulated JCT divergence = %.1f%%, want <= 10%%", 100*div)
	}
	// Hadar beats both baselines on JCT in both modes.
	for _, cmp := range []*Comparison{res.Physical, res.Simulated} {
		h := cmp.Reports["hadar"].AvgJCT()
		if h >= cmp.Reports["gavel"].AvgJCT() || h >= cmp.Reports["tiresias"].AvgJCT() {
			t.Errorf("Hadar did not win JCT: %v", cmp.Table())
		}
	}
}

func TestTable4RendersAllModels(t *testing.T) {
	out := Table4(360).String()
	for _, m := range []string{"ResNet-50", "ResNet-18", "LSTM", "CycleGAN", "Transformer"} {
		if !strings.Contains(out, m) {
			t.Errorf("Table4 missing %s", m)
		}
	}
}

func TestComparisonHelpers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	c := SimCluster()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 12
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := RunComparison(c, jobs,
		[]sched.Scheduler{NewHadar(), NewGavel()}, sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	names := cmp.SortedNames()
	if len(names) != 2 {
		t.Fatalf("SortedNames = %v", names)
	}
	if cmp.Reports[names[0]].AvgJCT() > cmp.Reports[names[1]].AvgJCT() {
		t.Error("SortedNames not ascending by avg JCT")
	}
	sp := cmp.Speedup("hadar", "gavel", func(r *metrics.Report) float64 { return r.AvgJCT() })
	if sp <= 0 {
		t.Errorf("Speedup = %v", sp)
	}
	if cmp.Speedup("nope", "gavel", func(r *metrics.Report) float64 { return 1 }) != 0 {
		t.Error("Speedup with unknown scheduler should be 0")
	}
	if !strings.Contains(cmp.Table(), "avgJCT") {
		t.Error("Table header missing")
	}
}

func TestSeedSweepAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	setup := smallSetup()
	sw, err := SweepSeeds(setup, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Seeds) != 3 {
		t.Fatalf("seeds = %v", sw.Seeds)
	}
	for _, name := range sw.Order {
		if len(sw.AvgJCT[name]) != 3 {
			t.Errorf("%s has %d samples", name, len(sw.AvgJCT[name]))
		}
	}
	// Hadar must beat every baseline on the mean across seeds.
	for _, base := range []string{"gavel", "tiresias", "yarn-cs"} {
		xs := sw.Speedup[base]
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		if mean <= 1 {
			t.Errorf("mean speedup vs %s = %.2f, want > 1", base, mean)
		}
	}
	out := sw.String()
	if !strings.Contains(out, "bootstrap") || !strings.Contains(out, "speedup") {
		t.Errorf("summary malformed:\n%s", out)
	}
}

func TestSeedSweepValidation(t *testing.T) {
	if _, err := SweepSeeds(smallSetup(), 0); err == nil {
		t.Error("zero seed count accepted")
	}
}

func TestFig4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig4(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "utilization") {
		t.Errorf("Fig4 output malformed:\n%s", out)
	}
	for _, name := range res.Cmp.Order {
		u := res.Cmp.Reports[name].Utilization()
		if u <= 0 || u > 1 {
			t.Errorf("%s utilization %v out of (0,1]", name, u)
		}
	}
}

func TestFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig8(smallSetup(), []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 { // 2 rates x 3 schedulers
		t.Fatalf("points = %d, want 6", len(res.Points))
	}
	for _, p := range res.Points {
		if !(p.MinJCT <= p.AvgJCT && p.AvgJCT <= p.MaxJCT) {
			t.Errorf("JCT band unordered: %+v", p)
		}
	}
	if !strings.Contains(res.String(), "rate") {
		t.Error("Fig8 output malformed")
	}
}

func TestFig10SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig10(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cmp.Order) != 3 {
		t.Fatalf("schedulers = %v", res.Cmp.Order)
	}
	if !strings.Contains(res.String(), "prototype") {
		t.Error("Fig10 output malformed")
	}
}

func TestFig6StringSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := Fig6(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "makespan improvement") {
		t.Errorf("Fig6 output missing speedups:\n%s", out)
	}
}

func TestFederationCompareSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := FederationCompare(smallSetup(), 2, []string{"least-queue", "round-robin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want mega + 2 routers", len(res.Series))
	}
	if res.Series[0].Series != "mega-cluster" {
		t.Errorf("first series = %q, want mega-cluster", res.Series[0].Series)
	}
	for _, s := range res.Series {
		if got := len(s.Report.Jobs); got != res.Jobs {
			t.Errorf("%s completed %d of %d jobs", s.Series, got, res.Jobs)
		}
		if s.Members != 2 {
			t.Errorf("%s members = %d, want 2", s.Series, s.Members)
		}
	}
	out := res.String()
	for _, frag := range []string{"mega-cluster", "federation/least-queue", "federation/round-robin", "avgJCT"} {
		if !strings.Contains(out, frag) {
			t.Errorf("federation comparison output missing %q:\n%s", frag, out)
		}
	}
	if _, err := FederationCompare(smallSetup(), 0, nil); err == nil {
		t.Error("zero-member federation comparison accepted")
	}
}

func TestFailureScenarioSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	res, err := FailureScenario(smallSetup())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, frag := range []string{"outage", "recoveries", "lostIters", "hadar"} {
		if !strings.Contains(out, frag) {
			t.Errorf("failure scenario output missing %q", frag)
		}
	}
	for name, r := range res.Cmp.Reports {
		if len(r.Jobs) != 24 {
			t.Errorf("%s completed %d of 24 jobs under outages", name, len(r.Jobs))
		}
		if r.Faults.NodeDown != 2 || r.Faults.NodeUp != 2 {
			t.Errorf("%s node transitions = %d down / %d up, want 2/2",
				name, r.Faults.NodeDown, r.Faults.NodeUp)
		}
		// Outages begin mid-round, so gangs on the failing nodes must
		// actually lose work (the surprise path, not just exclusion).
		if r.Faults.Recoveries == 0 || r.Faults.LostIterations <= 0 {
			t.Errorf("%s recorded no lost work: %+v", name, r.Faults)
		}
	}
	for name, r := range res.Baseline.Reports {
		if r.Faults.Any() {
			t.Errorf("%s baseline has nonzero fault counters: %+v", name, r.Faults)
		}
	}
}
