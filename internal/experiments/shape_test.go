package experiments

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// smallComparison runs a scaled-down version of the paper's static-trace
// experiment: same cluster shape, fewer jobs, so tests stay fast.
func smallComparison(t *testing.T, numJobs int, seed int64) *Comparison {
	t.Helper()
	c := SimCluster()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	cfg.Seed = seed
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias(), NewYARNCS()}
	cmp, err := RunComparison(c, jobs, scheds, sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}

// TestHeadlineShape verifies the paper's headline result holds in the
// reproduction: Hadar achieves the lowest average JCT, beating Gavel,
// Tiresias and (by a wide margin) YARN-CS.
func TestHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison is slow")
	}
	cmp := smallComparison(t, 96, 1)
	t.Log("\n" + cmp.Table())

	avg := func(r interface{ AvgJCT() float64 }) float64 { return r.AvgJCT() }
	_ = avg
	hadar := cmp.Reports["hadar"].AvgJCT()
	gavelJCT := cmp.Reports["gavel"].AvgJCT()
	tiresiasJCT := cmp.Reports["tiresias"].AvgJCT()
	yarnJCT := cmp.Reports["yarn-cs"].AvgJCT()

	if hadar >= gavelJCT {
		t.Errorf("Hadar avg JCT %.0fs not better than Gavel %.0fs", hadar, gavelJCT)
	}
	if hadar >= tiresiasJCT {
		t.Errorf("Hadar avg JCT %.0fs not better than Tiresias %.0fs", hadar, tiresiasJCT)
	}
	if hadar >= yarnJCT {
		t.Errorf("Hadar avg JCT %.0fs not better than YARN-CS %.0fs", hadar, yarnJCT)
	}
}
