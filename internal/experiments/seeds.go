package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/stats"
)

// SeedSweep aggregates the static-trace comparison across random seeds,
// with bootstrap confidence intervals on average JCT and on Hadar's
// speedup factors — the statistical backing the paper's point estimates
// lack.
type SeedSweep struct {
	Seeds []int64
	// AvgJCT[scheduler] holds one average JCT (seconds) per seed.
	AvgJCT map[string][]float64
	// Speedup[baseline] holds Hadar's per-seed avg-JCT speedup factor.
	Speedup map[string][]float64
	Order   []string
}

// SweepSeeds runs the Fig. 3a comparison for numSeeds consecutive seeds
// starting at setup.Seed.
func SweepSeeds(setup Setup, numSeeds int) (*SeedSweep, error) {
	if numSeeds <= 0 {
		return nil, fmt.Errorf("experiments: non-positive seed count %d", numSeeds)
	}
	sw := &SeedSweep{
		AvgJCT:  make(map[string][]float64),
		Speedup: make(map[string][]float64),
	}
	for i := 0; i < numSeeds; i++ {
		seed := setup.Seed + int64(i)
		sw.Seeds = append(sw.Seeds, seed)
		s := setup
		s.Seed = seed
		jobs, err := s.staticTrace()
		if err != nil {
			return nil, err
		}
		scheds := []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias(), NewYARNCS()}
		cmp, err := RunComparison(SimCluster(), jobs, scheds, s.simOptions())
		if err != nil {
			return nil, err
		}
		if len(sw.Order) == 0 {
			sw.Order = cmp.Order
		}
		hadar := cmp.Reports["hadar"].AvgJCT()
		for _, name := range cmp.Order {
			avg := cmp.Reports[name].AvgJCT()
			sw.AvgJCT[name] = append(sw.AvgJCT[name], avg)
			if name != "hadar" && hadar > 0 {
				sw.Speedup[name] = append(sw.Speedup[name], avg/hadar)
			}
		}
	}
	return sw, nil
}

// String renders mean avg-JCT and speedups with 95% bootstrap CIs.
func (sw *SeedSweep) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Seed sweep (%d seeds, 95%% bootstrap CIs)\n", len(sw.Seeds))
	fmt.Fprintf(&sb, "%-12s %14s %24s\n", "scheduler", "avgJCT(h)", "CI")
	for _, name := range sw.Order {
		xs := sw.AvgJCT[name]
		lo, hi := stats.BootstrapCI(xs, 0.95, 2000, 1)
		fmt.Fprintf(&sb, "%-12s %14.2f %24s\n", name,
			stats.Mean(xs)/3600, fmt.Sprintf("[%.2f, %.2f]", lo/3600, hi/3600))
	}
	for _, base := range []string{"gavel", "tiresias", "yarn-cs"} {
		xs, ok := sw.Speedup[base]
		if !ok {
			continue
		}
		lo, hi := stats.BootstrapCI(xs, 0.95, 2000, 1)
		fmt.Fprintf(&sb, "Hadar speedup vs %-9s: %.2fx [%.2f, %.2f]\n",
			base, stats.Mean(xs), lo, hi)
	}
	return sb.String()
}
