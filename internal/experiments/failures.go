package experiments

import (
	"fmt"
	"strings"

	"repro/internal/sched"
	"repro/internal/sim"
)

// FailureScenarioResult compares the four schedulers on the same trace
// with and without injected machine outages: how much each policy's JCT
// degrades when nodes disappear mid-run, and how much work the outages
// destroy (progress since the last checkpoint of every killed gang).
type FailureScenarioResult struct {
	Cmp      *Comparison // runs with outages
	Baseline *Comparison // clean runs of the same trace
	Failures []sim.Failure
}

// FailureScenario runs the static trace through every scheduler twice —
// once clean, once with two rolling node outages (a V100 node and a K80
// node, eight hours each) — mirroring the robustness experiments of the
// prototype control plane on the simulator side.
func FailureScenario(setup Setup) (*FailureScenarioResult, error) {
	jobs, err := setup.staticTrace()
	if err != nil {
		return nil, err
	}
	scheds := func() []sched.Scheduler {
		return []sched.Scheduler{NewHadar(), NewGavel(), NewTiresias(), NewYARNCS()}
	}
	clean, err := RunComparison(SimCluster(), jobs, scheds(), setup.simOptions())
	if err != nil {
		return nil, err
	}
	// SimCluster nodes: 0-4 are V100, 10-14 are K80. Stagger the two
	// outages so the cluster is degraded (but never empty of a type)
	// through the high-load start of the trace. Both begin mid-round
	// (+100 s past the boundary): the scheduler cannot see them coming,
	// so gangs on the failing node lose the round's work — the surprise
	// path, not just the capacity-exclusion path.
	failures := []sim.Failure{
		{Node: 0, Start: 1*3600 + 100, End: 9 * 3600},
		{Node: 10, Start: 4*3600 + 100, End: 12 * 3600},
	}
	opts := setup.simOptions()
	opts.Failures = failures
	faulty, err := RunComparison(SimCluster(), jobs, scheds(), opts)
	if err != nil {
		return nil, err
	}
	return &FailureScenarioResult{Cmp: faulty, Baseline: clean, Failures: failures}, nil
}

// String renders per-scheduler degradation under the outages.
func (f *FailureScenarioResult) String() string {
	var sb strings.Builder
	sb.WriteString("Failure scenario: rolling node outages\n")
	for _, w := range f.Failures {
		fmt.Fprintf(&sb, "  node %d down [%.0fh, %.0fh)\n", w.Node, w.Start/3600, w.End/3600)
	}
	fmt.Fprintf(&sb, "%-12s %12s %12s %9s %11s %11s\n",
		"scheduler", "avgJCT(h)", "clean(h)", "slowdown", "recoveries", "lostIters")
	for _, name := range f.Cmp.Order {
		r := f.Cmp.Reports[name]
		b := f.Baseline.Reports[name]
		slow := 0.0
		if b.AvgJCT() > 0 {
			slow = r.AvgJCT() / b.AvgJCT()
		}
		fmt.Fprintf(&sb, "%-12s %12.3f %12.3f %8.2fx %11d %11.0f\n",
			name, r.AvgJCT()/3600, b.AvgJCT()/3600, slow,
			r.Faults.Recoveries, r.Faults.LostIterations)
	}
	return sb.String()
}
