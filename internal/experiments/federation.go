package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// FedSeries is one series of the federation comparison: either the
// mega-cluster baseline or a federation under one routing policy.
type FedSeries struct {
	// Series is "mega-cluster" or "federation/<router>".
	Series  string
	Members int
	Report  *metrics.Report
}

// FedCompareResult quantifies the cost of partitioning: the same trace
// run through N member clusters merged under a single Hadar instance
// (the mega-cluster, a global-knowledge upper bound) versus an N-member
// federation where a front-door router commits each job to one member
// at submission time.
type FedCompareResult struct {
	Members int
	Jobs    int
	Series  []FedSeries
}

// FederationCompare runs the comparison. Every series sees the same
// trace; the mega-cluster merges `members` copies of the paper's
// simulated cluster, and each federation series runs `members`
// independent engines (each its own SimCluster + Hadar) under one of
// the named routing policies. Empty routers means all registered
// policies.
func FederationCompare(setup Setup, members int, routers []string) (*FedCompareResult, error) {
	if members < 1 {
		return nil, fmt.Errorf("experiments: federation needs >= 1 member, got %d", members)
	}
	if len(routers) == 0 {
		routers = federation.RouterNames()
	}
	// Continuous arrivals: a static trace (everything at t=0) would hand
	// every router the same empty-member view, collapsing all policies
	// into round-robin. With Poisson arrivals the front door routes each
	// job against the queue states it would see live.
	jobs, err := setup.continuousTrace()
	if err != nil {
		return nil, err
	}

	type fedRun struct {
		series string
		router string // empty = mega-cluster baseline
	}
	runs := []fedRun{{series: "mega-cluster"}}
	for _, name := range routers {
		runs = append(runs, fedRun{series: "federation/" + name, router: name})
	}
	reports, err := parallel.Map(0, runs, func(run fedRun) (*metrics.Report, error) {
		if run.router == "" {
			parts := make([]*cluster.Cluster, members)
			for i := range parts {
				parts[i] = SimCluster()
			}
			return sim.Run(cluster.Merge(parts...), jobs, NewHadar(), setup.simOptions())
		}
		return runFederation(setup, members, run.router, jobs)
	})
	if err != nil {
		return nil, err
	}
	res := &FedCompareResult{Members: members, Jobs: len(jobs)}
	for i, run := range runs {
		res.Series = append(res.Series, FedSeries{Series: run.series, Members: members, Report: reports[i]})
	}
	return res, nil
}

// runFederation drives the whole trace through an N-member federation
// under one routing policy and returns the merged report.
func runFederation(setup Setup, members int, routerName string, jobs []*job.Job) (*metrics.Report, error) {
	configs := make([]federation.MemberConfig, members)
	for i := range configs {
		configs[i] = federation.MemberConfig{
			Name:      fmt.Sprintf("region%d", i),
			Cluster:   SimCluster(),
			Scheduler: NewHadar(),
			Sim:       setup.simOptions(),
		}
	}
	router, err := federation.NewRouter(routerName)
	if err != nil {
		return nil, err
	}
	fed, err := federation.New(configs, router, federation.Options{})
	if err != nil {
		return nil, err
	}
	// Interleave submissions with the shared-clock loop: each job is
	// routed only once the federation has advanced to its arrival, so
	// the router sees the member queue states a live front door would
	// (submitting the whole trace up-front would route everything
	// against empty members).
	ordered := append([]*job.Job(nil), jobs...)
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].Arrival < ordered[b].Arrival {
			return true
		}
		if ordered[b].Arrival < ordered[a].Arrival {
			return false
		}
		return ordered[a].ID < ordered[b].ID
	})
	next := 0
	for next < len(ordered) || fed.HasPendingEvents() {
		if next < len(ordered) {
			t, pending := fed.PeekNextEventTime()
			if !pending || ordered[next].Arrival <= t {
				if err := fed.SubmitJob(ordered[next]); err != nil {
					return nil, fmt.Errorf("experiments: federation/%s: %w", routerName, err)
				}
				next++
				continue
			}
		}
		if err := fed.ProcessNextEvent(); err != nil {
			return nil, fmt.Errorf("experiments: federation/%s: %w", routerName, err)
		}
	}
	rep, err := fed.Finish()
	if err != nil {
		return nil, fmt.Errorf("experiments: federation/%s: %w", routerName, err)
	}
	return rep.Merged, nil
}

// String renders the comparison with the mega-cluster baseline first.
func (r *FedCompareResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Federation vs mega-cluster: %d members, %d jobs\n", r.Members, r.Jobs)
	fmt.Fprintf(&sb, "%-26s %10s %10s %12s %8s %10s\n",
		"series", "avgJCT(h)", "medJCT(h)", "makespan(h)", "util(%)", "completed")
	for _, s := range r.Series {
		fmt.Fprintf(&sb, "%-26s %10.3f %10.3f %12.3f %8.1f %10d\n",
			s.Series, s.Report.AvgJCT()/3600, s.Report.MedianJCT()/3600,
			s.Report.Makespan/3600, 100*s.Report.Utilization(), len(s.Report.Jobs))
	}
	return sb.String()
}
