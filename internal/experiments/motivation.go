package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// MotivationCluster returns the Section II.A toy cluster: 2 V100,
// 3 P100 and 1 K80 GPU, one node per type.
func MotivationCluster() *cluster.Cluster {
	return cluster.New(
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.P100: 3},
		gpu.Fleet{gpu.K80: 1},
	)
}

// MotivationJobs returns the three jobs of the Section II.A example.
// J1 requests 3 GPUs for 80 epochs, J2 2 GPUs for 30 epochs, J3 2 GPUs
// for 50 epochs. The throughput matrix is reconstructed from the text's
// worked numbers (J1's mixed 2xV100+1xK80 allocation achieves 30
// iters/s while Gavel's all-P100 allocation achieves 20; J2 reaches 15
// on two P100s): per-worker rates in iterations/second, with one epoch
// equal to 3600 iterations so runtimes land in hours.
func MotivationJobs() []*job.Job {
	const itersPerEpoch = 3600
	mk := func(id, workers, epochs int, v100, p100, k80 float64) *job.Job {
		return &job.Job{
			ID: id, Name: fmt.Sprintf("J%d", id+1), Model: "toy",
			Workers: workers, Epochs: epochs, ItersPerEpoch: itersPerEpoch,
			Throughput: map[gpu.Type]float64{gpu.V100: v100, gpu.P100: p100, gpu.K80: k80},
		}
	}
	return []*job.Job{
		// J1: heterogeneity-sensitive, K80 unusually competitive (the
		// paper's example needs min over {V100, K80} to beat all-P100).
		mk(0, 3, 80, 13.34, 6.67, 10.0),
		// J2: prefers P100s (2 x 7.5 = 15 iters/s as in the text).
		mk(1, 2, 30, 5.0, 7.5, 7.5),
		// J3: throughput-insensitive filler job.
		mk(2, 2, 50, 5.0, 5.0, 5.0),
	}
}

// MotivationResult compares Hadar and Gavel on the toy example.
type MotivationResult struct {
	Cmp *Comparison
}

// Motivation runs the Section II.A example. The paper reports a 20%
// average-JCT improvement for Hadar from task-level allocation (J1 runs
// on 2 V100 + 1 K80 instead of waiting for or settling on P100s).
func Motivation() (*MotivationResult, error) {
	c := MotivationCluster()
	jobs := MotivationJobs()
	cmp, err := RunComparison(c, jobs,
		[]sched.Scheduler{NewHadar(), NewGavel()}, sim.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &MotivationResult{Cmp: cmp}, nil
}

// String renders per-job completion times and the average-JCT gain.
func (m *MotivationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Motivation example (Section II.A): 2xV100 + 3xP100 + 1xK80, jobs J1/J2/J3\n")
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "job", "hadar JCT(h)", "gavel JCT(h)")
	h, g := m.Cmp.Reports["hadar"], m.Cmp.Reports["gavel"]
	for i := range h.Jobs {
		fmt.Fprintf(&sb, "J%-7d %12.2f %12.2f\n", h.Jobs[i].ID+1,
			h.Jobs[i].JCT()/3600, g.Jobs[i].JCT()/3600)
	}
	fmt.Fprintf(&sb, "average  %12.2f %12.2f  (improvement %.0f%%)\n",
		h.AvgJCT()/3600, g.AvgJCT()/3600, 100*(g.AvgJCT()-h.AvgJCT())/g.AvgJCT())
	return sb.String()
}
