// Package experiments reproduces the Hadar paper's evaluation: it
// builds the simulated and prototype cluster configurations, constructs
// the four schedulers under comparison, and provides one harness
// function per table and figure in Section IV. Each harness returns a
// typed result plus a formatted table mirroring the paper's rows/series.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gavel"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiresias"
	"repro/internal/yarncs"
)

// SimCluster returns the paper's simulated cluster: 15 nodes with 20
// GPUs of each type (V100, P100, K80), i.e. 5 nodes x 4 GPUs per type.
func SimCluster() *cluster.Cluster {
	return cluster.Merge(
		cluster.Homogeneous(5, gpu.V100, 4),
		cluster.Homogeneous(5, gpu.P100, 4),
		cluster.Homogeneous(5, gpu.K80, 4),
	)
}

// ScaledSimCluster returns a cluster with the paper's 1:1:1 type mix but
// `perType` GPUs of each type, for scalability sweeps and fast tests.
func ScaledSimCluster(perType int) *cluster.Cluster {
	nodes := (perType + 3) / 4
	fleets := make([]gpu.Fleet, 0, 3*nodes)
	for _, t := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		remaining := perType
		for i := 0; i < nodes; i++ {
			n := 4
			if n > remaining {
				n = remaining
			}
			if n > 0 {
				fleets = append(fleets, gpu.Fleet{t: n})
			}
			remaining -= n
		}
	}
	return cluster.New(fleets...)
}

// ScaleCluster returns a cluster with exactly `nodes` nodes of 4 GPUs
// each, cycling the paper's V100/P100/K80 type mix node by node. Unlike
// ScaledSimCluster (which scales GPUs per type), this fixes the node
// count, so node-count scalability sweeps hit round numbers.
func ScaleCluster(nodes int) *cluster.Cluster {
	mix := []gpu.Type{gpu.V100, gpu.P100, gpu.K80}
	fleets := make([]gpu.Fleet, nodes)
	for i := range fleets {
		fleets[i] = gpu.Fleet{mix[i%len(mix)]: 4}
	}
	return cluster.New(fleets...)
}

// PhysicalCluster returns the paper's AWS prototype: 8 instances with
// one GPU each — two T4 (g4dn), two K520 (g2dn), two K80 (p2), two V100
// (p3).
func PhysicalCluster() *cluster.Cluster {
	return cluster.New(
		gpu.Fleet{gpu.T4: 1}, gpu.Fleet{gpu.T4: 1},
		gpu.Fleet{gpu.K520: 1}, gpu.Fleet{gpu.K520: 1},
		gpu.Fleet{gpu.K80: 1}, gpu.Fleet{gpu.K80: 1},
		gpu.Fleet{gpu.V100: 1}, gpu.Fleet{gpu.V100: 1},
	)
}

// NewHadar returns Hadar configured for the JCT experiments.
func NewHadar() sched.Scheduler { return core.New(core.DefaultOptions()) }

// NewHadarMakespan returns Hadar with the utility swapped to the
// effective-throughput objective, the configuration the paper uses when
// it "flexibly specifies the scheduling policy towards makespan
// minimization" (Fig. 6).
func NewHadarMakespan() sched.Scheduler {
	opts := core.DefaultOptions()
	opts.Utility = core.EffectiveThroughput{}
	opts.NameSuffix = "-makespan"
	return core.New(opts)
}

// NewHadarFTF returns Hadar with the finish-time-fairness utility for
// the given workload size and cluster.
func NewHadarFTF(jobs, totalGPUs int) sched.Scheduler {
	opts := core.DefaultOptions()
	opts.Utility = core.FinishTimeFairness{Jobs: jobs, TotalGPUs: totalGPUs}
	opts.NameSuffix = "-ftf"
	return core.New(opts)
}

// NewGavel returns the Gavel baseline in its paper configuration.
func NewGavel() sched.Scheduler { return gavel.New(gavel.Options{}) }

// NewTiresias returns the Tiresias baseline (two queues, PromoteKnob
// disabled).
func NewTiresias() sched.Scheduler { return tiresias.New(tiresias.DefaultOptions()) }

// NewYARNCS returns the YARN capacity-scheduler baseline.
func NewYARNCS() sched.Scheduler { return yarncs.New() }

// Comparison holds the per-scheduler reports of one experiment.
type Comparison struct {
	Order   []string
	Reports map[string]*metrics.Report
}

// RunComparison simulates each scheduler on its own copy of the trace —
// in parallel, one goroutine per scheduler (the simulations share
// nothing but the immutable cluster and jobs) — and collects the
// reports in input order.
func RunComparison(c *cluster.Cluster, jobs []*job.Job, scheds []sched.Scheduler, opts sim.Options) (*Comparison, error) {
	reports, err := parallel.Map(0, scheds, func(s sched.Scheduler) (*metrics.Report, error) {
		r, err := sim.Run(c, jobs, s, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", s.Name(), err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Reports: make(map[string]*metrics.Report, len(scheds))}
	for i, s := range scheds {
		cmp.Order = append(cmp.Order, s.Name())
		cmp.Reports[s.Name()] = reports[i]
	}
	return cmp, nil
}

// Speedup returns how many times larger metric(b) is than metric(a),
// i.e. the paper's "Hadar improves X by N x over B" with a as Hadar.
func (c *Comparison) Speedup(a, b string, metric func(*metrics.Report) float64) float64 {
	ra, rb := c.Reports[a], c.Reports[b]
	if ra == nil || rb == nil {
		return 0
	}
	va := metric(ra)
	if va <= 0 {
		return 0
	}
	return metric(rb) / va
}

// Table renders the headline metrics of every scheduler.
func (c *Comparison) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %12s %12s %12s %9s %8s %8s %10s\n",
		"scheduler", "avgJCT(h)", "medJCT(h)", "makespan(h)", "util(%)", "occ(%)", "FTF", "queue(h)")
	for _, name := range c.Order {
		r := c.Reports[name]
		fmt.Fprintf(&sb, "%-18s %12.3f %12.3f %12.3f %9.1f %8.1f %8.2f %10.3f\n",
			name, r.AvgJCT()/3600, r.MedianJCT()/3600, r.Makespan/3600,
			100*r.Utilization(), 100*r.Occupancy(), r.AvgFTF(), r.AvgQueueDelay()/3600)
	}
	return sb.String()
}

// SortedNames returns scheduler names ordered by ascending average JCT.
func (c *Comparison) SortedNames() []string {
	names := append([]string(nil), c.Order...)
	sort.Slice(names, func(a, b int) bool {
		return c.Reports[names[a]].AvgJCT() < c.Reports[names[b]].AvgJCT()
	})
	return names
}
