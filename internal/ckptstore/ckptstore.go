// Package ckptstore implements the stable checkpoint storage of the
// paper's prototype: "when a job is suspended, the latest model
// parameter would be checkpointed to stable storage to prevent loss of
// training progress", over SSDs with ~1000 MiB/s of bandwidth.
//
// The store keeps checkpoint blobs keyed by job, models transfer times
// from blob size and device bandwidth (in simulated seconds, so callers
// fold them into their own clocks), and serializes concurrent transfers
// through the device the way a real SSD queue would.
package ckptstore

import (
	"fmt"
	"sync"
)

// DefaultBandwidthBytes is the paper's prototype SSD: 1000 MiB/s.
const DefaultBandwidthBytes = 1000 * 1024 * 1024

// Checkpoint is one saved training state.
type Checkpoint struct {
	JobID int
	// Iter is the training progress captured by this checkpoint.
	Iter float64
	// SizeBytes is the serialized model size (drives transfer time).
	SizeBytes float64
	// SavedAt is the simulated time the save completed.
	SavedAt float64
}

// Store is a bandwidth-modeled checkpoint device. It is safe for
// concurrent use.
type Store struct {
	mu sync.Mutex
	// bandwidth in bytes per simulated second.
	bandwidth float64
	// busyUntil is the simulated time the device finishes its queued
	// transfers.
	busyUntil float64
	blobs     map[int]Checkpoint
	saves     int
	loads     int
}

// New builds a store with the given bandwidth (bytes per simulated
// second); 0 selects the paper's 1000 MiB/s SSD.
func New(bandwidthBytes float64) *Store {
	if bandwidthBytes <= 0 {
		bandwidthBytes = DefaultBandwidthBytes
	}
	return &Store{bandwidth: bandwidthBytes, blobs: make(map[int]Checkpoint)}
}

// transfer reserves the device for size bytes starting no earlier than
// now, returning when the transfer completes (simulated time).
func (s *Store) transfer(now, size float64) float64 {
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start + size/s.bandwidth
	s.busyUntil = end
	return end
}

// Save checkpoints a job's progress at simulated time now, returning
// the simulated completion time of the write (>= now; later when the
// device is busy). A newer save replaces the job's previous blob.
func (s *Store) Save(now float64, c Checkpoint) (doneAt float64, err error) {
	if c.SizeBytes < 0 || c.Iter < 0 {
		return 0, fmt.Errorf("ckptstore: invalid checkpoint %+v", c)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	doneAt = s.transfer(now, c.SizeBytes)
	c.SavedAt = doneAt
	if prev, ok := s.blobs[c.JobID]; ok && prev.Iter > c.Iter {
		// Never regress a checkpoint (a stale save racing a newer one).
		return doneAt, nil
	}
	s.blobs[c.JobID] = c
	s.saves++
	return doneAt, nil
}

// Load reads a job's latest checkpoint at simulated time now, returning
// the blob and the simulated completion time of the read. ok is false
// when the job has no checkpoint (fresh start: zero transfer).
func (s *Store) Load(now float64, jobID int) (c Checkpoint, doneAt float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok = s.blobs[jobID]
	if !ok {
		return Checkpoint{JobID: jobID}, now, false
	}
	s.loads++
	return c, s.transfer(now, c.SizeBytes), true
}

// Delete drops a finished job's checkpoint.
func (s *Store) Delete(jobID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, jobID)
}

// Stats reports operation counts and live blob count.
func (s *Store) Stats() (saves, loads, blobs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saves, s.loads, len(s.blobs)
}
