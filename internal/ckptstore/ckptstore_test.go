package ckptstore

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New(100) // 100 bytes/s for easy math
	doneAt, err := s.Save(0, Checkpoint{JobID: 1, Iter: 500, SizeBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if doneAt != 2 { // 200 bytes at 100 B/s
		t.Errorf("save done at %v, want 2", doneAt)
	}
	c, loadDone, ok := s.Load(doneAt, 1)
	if !ok {
		t.Fatal("checkpoint missing")
	}
	if c.Iter != 500 || c.SavedAt != 2 {
		t.Errorf("loaded %+v", c)
	}
	if loadDone != 4 { // read another 200 bytes
		t.Errorf("load done at %v, want 4", loadDone)
	}
}

func TestDeviceSerializesTransfers(t *testing.T) {
	s := New(100)
	// Two simultaneous saves queue behind each other.
	d1, _ := s.Save(0, Checkpoint{JobID: 1, SizeBytes: 100})
	d2, _ := s.Save(0, Checkpoint{JobID: 2, SizeBytes: 100})
	if d1 != 1 || d2 != 2 {
		t.Errorf("transfers not serialized: %v %v", d1, d2)
	}
	// After the device drains, a new save starts immediately.
	d3, _ := s.Save(10, Checkpoint{JobID: 3, SizeBytes: 100})
	if d3 != 11 {
		t.Errorf("idle device queued: %v", d3)
	}
}

func TestLoadMissingIsFreshStart(t *testing.T) {
	s := New(0)
	c, doneAt, ok := s.Load(5, 42)
	if ok {
		t.Error("missing checkpoint reported present")
	}
	if c.Iter != 0 || doneAt != 5 {
		t.Errorf("fresh start = %+v at %v", c, doneAt)
	}
}

func TestNewerSaveWins(t *testing.T) {
	s := New(0)
	if _, err := s.Save(0, Checkpoint{JobID: 1, Iter: 100, SizeBytes: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(1, Checkpoint{JobID: 1, Iter: 300, SizeBytes: 10}); err != nil {
		t.Fatal(err)
	}
	// A stale save (lower iteration) must not regress the blob.
	if _, err := s.Save(2, Checkpoint{JobID: 1, Iter: 200, SizeBytes: 10}); err != nil {
		t.Fatal(err)
	}
	c, _, ok := s.Load(3, 1)
	if !ok || c.Iter != 300 {
		t.Errorf("checkpoint regressed: %+v", c)
	}
}

func TestDeleteAndStats(t *testing.T) {
	s := New(0)
	s.Save(0, Checkpoint{JobID: 1, Iter: 1, SizeBytes: 1})
	s.Save(0, Checkpoint{JobID: 2, Iter: 1, SizeBytes: 1})
	s.Load(0, 1)
	s.Delete(1)
	saves, loads, blobs := s.Stats()
	if saves != 2 || loads != 1 || blobs != 1 {
		t.Errorf("stats = %d saves, %d loads, %d blobs", saves, loads, blobs)
	}
}

func TestInvalidCheckpointRejected(t *testing.T) {
	s := New(0)
	if _, err := s.Save(0, Checkpoint{JobID: 1, SizeBytes: -5}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := s.Save(0, Checkpoint{JobID: 1, Iter: -1}); err == nil {
		t.Error("negative iter accepted")
	}
}

func TestDefaultBandwidth(t *testing.T) {
	s := New(0)
	// 1 GiB-ish blob at 1000 MiB/s ~ 1.024 s.
	doneAt, _ := s.Save(0, Checkpoint{JobID: 1, SizeBytes: 1 << 30})
	if math.Abs(doneAt-1.024) > 0.01 {
		t.Errorf("default-bandwidth save = %v s, want ~1.024", doneAt)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := New(1e6)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				s.Save(float64(k), Checkpoint{JobID: id, Iter: float64(k), SizeBytes: 100})
				s.Load(float64(k), id)
			}
		}(i)
	}
	wg.Wait()
	saves, loads, blobs := s.Stats()
	if saves != 32*50 || loads != 32*50 || blobs != 32 {
		t.Errorf("stats = %d/%d/%d", saves, loads, blobs)
	}
}

// Property: transfer completion times are monotone in request order and
// never earlier than the request time.
func TestTransferMonotoneProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		s := New(1000)
		prev := 0.0
		for i, raw := range sizes {
			now := float64(i)
			done, err := s.Save(now, Checkpoint{JobID: i, SizeBytes: float64(raw)})
			if err != nil {
				return false
			}
			if done < now || done < prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
