package federation

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/sched"
)

// View is the routing-relevant state of one member at submission time.
// Views are built per job: capacity fields are restricted to the job's
// usable accelerator types, so a router never places a job on capacity
// the job cannot run on.
type View struct {
	// Index is the member's index in the federation; Name its label.
	Index int
	Name  string
	// TotalGPUs is the member's whole fleet; UpGPUs the devices on
	// nodes not currently inside a failure window.
	TotalGPUs int
	UpGPUs    int
	// QueueDepth is the member's pending + active job count — the
	// backlog an arriving job queues behind.
	QueueDepth int
	// UsableTotal counts devices of the job's usable types across all
	// nodes; UsableUp restricts that to up nodes; BestUp further
	// restricts to the job's fastest usable type.
	UsableTotal int
	UsableUp    int
	BestUp      int
	// Price is the member's cheapest current marginal dual price
	// across the job's usable types, evaluated at the member's present
	// utilization. HasPrice is false when the member's scheduler does
	// not expose prices (no invariant.PriceReporter).
	Price    float64
	HasPrice bool
	// Eligible means the member could ever place the job (enough
	// usable devices exist); Healthy means it could place it on nodes
	// that are up right now. The federation only shows routers
	// eligible views, preferring healthy ones.
	Eligible bool
	Healthy  bool
}

// view builds the member's routing view for one job at the shared
// clock's current time.
func (m *member) view(idx int, j *job.Job, now float64) View {
	v := View{
		Index:      idx,
		Name:       m.name,
		TotalGPUs:  m.cfg.Cluster.TotalGPUs(),
		QueueDepth: m.eng.PendingJobs() + m.eng.ActiveJobs(),
	}
	down := m.downNodes(now)
	usable := sched.UsableTypes(j)
	best, _, hasBest := j.BestType()
	for _, n := range m.cfg.Cluster.Nodes() {
		nodeUp := !down[n.ID]
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			c := n.Capacity[t]
			if c == 0 {
				continue
			}
			if nodeUp {
				v.UpGPUs += c
			}
			for _, ut := range usable {
				if ut != t {
					continue
				}
				v.UsableTotal += c
				if nodeUp {
					v.UsableUp += c
					if hasBest && t == best {
						v.BestUp += c
					}
				}
			}
		}
	}
	v.Eligible = v.UsableTotal >= j.Workers
	v.Healthy = v.UsableUp >= j.Workers
	if pr, ok := m.cfg.Scheduler.(invariant.PriceReporter); ok {
		util := 0.0
		if v.TotalGPUs > 0 {
			util = float64(m.eng.HeldGPUs()) / float64(v.TotalGPUs)
		}
		for i, t := range usable {
			p := pr.PriceAt(t, util)
			if i == 0 || p < v.Price {
				v.Price = p
			}
		}
		v.HasPrice = len(usable) > 0
	}
	return v
}

// downNodes evaluates the member's configured failure windows at the
// given instant, mirroring the engine's scheduler-visible outage view
// (a node is down when a window covers [now, now+epsilon)).
func (m *member) downNodes(now float64) map[int]bool {
	var down map[int]bool
	for _, fail := range m.cfg.Sim.Failures {
		if fail.Start < now+1e-9 && fail.End > now {
			if down == nil {
				down = make(map[int]bool)
			}
			down[fail.Node] = true
		}
	}
	return down
}

// Router picks the member that will own a job. Route receives only
// eligible views (healthy ones when any exist) and must return the
// Index field of one of them. Implementations must be deterministic:
// the same job against the same views always yields the same pick.
type Router interface {
	// Name identifies the policy in snapshots and CLI flags.
	Name() string
	// Route picks a member for the job from the candidate views. The
	// views slice is ordered by member index and never empty.
	Route(j *job.Job, views []View) int
}

// RouterNames lists the built-in policies accepted by NewRouter, in
// documentation order.
func RouterNames() []string {
	return []string{"round-robin", "least-queue", "affinity", "price"}
}

// NewRouter builds a built-in router by name ("round-robin" or "rr",
// "least-queue" or "queue", "affinity", "price").
func NewRouter(name string) (Router, error) {
	switch name {
	case "round-robin", "rr":
		return &RoundRobin{}, nil
	case "least-queue", "queue":
		return LeastQueue{}, nil
	case "affinity":
		return Affinity{}, nil
	case "price":
		return PriceAware{}, nil
	}
	return nil, fmt.Errorf("federation: unknown router %q (have %v)", name, RouterNames())
}

// RoundRobin cycles through the members, skipping ineligible ones: the
// chosen member is the first candidate at or after the rotating
// cursor. With every member eligible it degenerates to strict
// round-robin.
type RoundRobin struct {
	next int
}

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (r *RoundRobin) Route(j *job.Job, views []View) int {
	pick := views[0]
	found := false
	for _, v := range views {
		if v.Index >= r.next {
			pick = v
			found = true
			break
		}
	}
	if !found {
		pick = views[0] // wrap around
	}
	r.next = pick.Index + 1
	return pick.Index
}

// LeastQueue routes to the member with the shallowest backlog
// (pending + active jobs), ties broken by lowest member index.
type LeastQueue struct{}

// Name implements Router.
func (LeastQueue) Name() string { return "least-queue" }

// Route implements Router.
func (LeastQueue) Route(j *job.Job, views []View) int {
	pick := views[0]
	for _, v := range views[1:] {
		if v.QueueDepth < pick.QueueDepth {
			pick = v
		}
	}
	return pick.Index
}

// Affinity routes to the member holding the most up devices of the
// job's fastest usable accelerator type — the locality policy: put the
// job where its preferred heterogeneous capacity sits. Ties break by
// shallower queue, then lowest index.
type Affinity struct{}

// Name implements Router.
func (Affinity) Name() string { return "affinity" }

// Route implements Router.
func (Affinity) Route(j *job.Job, views []View) int {
	pick := views[0]
	for _, v := range views[1:] {
		if v.BestUp > pick.BestUp ||
			(v.BestUp == pick.BestUp && v.QueueDepth < pick.QueueDepth) {
			pick = v
		}
	}
	return pick.Index
}

// PriceAware routes to the member quoting the cheapest marginal dual
// price for the job's usable types — the OASiS-style policy: a low
// price signals slack capacity, a price near U_max signals contention.
// Members without a PriceReporter (or before their first round) rank
// by queue depth behind every priced member; ties break by shallower
// queue, then lowest index.
type PriceAware struct{}

// Name implements Router.
func (PriceAware) Name() string { return "price" }

// Route implements Router.
func (PriceAware) Route(j *job.Job, views []View) int {
	pick := views[0]
	for _, v := range views[1:] {
		if better(v, pick) {
			pick = v
		}
	}
	return pick.Index
}

// better orders views for PriceAware: priced beats unpriced, then
// strictly lower price, then shallower queue. Equal on all counts
// keeps the earlier (lower-index) view, so the order is total,
// deterministic, and built from ordered float comparisons only.
func better(v, pick View) bool {
	if v.HasPrice != pick.HasPrice {
		return v.HasPrice
	}
	if v.HasPrice {
		if v.Price < pick.Price {
			return true
		}
		if v.Price > pick.Price {
			return false
		}
	}
	return v.QueueDepth < pick.QueueDepth
}
