package federation_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// staticRouter routes job ID i to member i % n, ignoring all dynamic
// state. Chaos isolation tests use it so routing is provably identical
// between a run with an outage and a run without.
type staticRouter struct{ n int }

func (staticRouter) Name() string { return "static-mod" }

func (s staticRouter) Route(j *job.Job, views []federation.View) int {
	want := j.ID % s.n
	for _, view := range views {
		if view.Index == want {
			return view.Index
		}
	}
	return views[0].Index
}

// TestFederationOutageStopsRouting kills every node of one member and
// asserts the front door routes around it: round-robin, which would
// otherwise alternate, must place every job on the surviving member,
// both for jobs arriving while the outage is active from t=0 and for
// jobs arriving mid-run after a delayed outage begins.
func TestFederationOutageStopsRouting(t *testing.T) {
	core.PanicOnInconsistency = true
	round := sim.DefaultOptions().RoundLength

	// Member 1 fully dark for the whole run.
	darkAll := func(i int) []sim.Failure {
		if i != 1 {
			return nil
		}
		fails := make([]sim.Failure, 15)
		for n := range fails {
			fails[n] = sim.Failure{Node: n, Start: 0, End: 1e12}
		}
		return fails
	}
	f := newFed(t, 2, "round-robin", darkAll)
	jobs := genJobs(t, 12, 1)
	for _, j := range jobs {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
		if idx, _ := f.Owner(j.ID); idx != 0 {
			t.Fatalf("job %d routed to dark member %d", j.ID, idx)
		}
	}
	for f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}

	// Outage beginning mid-run and healing later: jobs submitted before
	// it may land on member 1, but jobs arriving while it is dark must
	// not; jobs stranded on member 1 resume after recovery.
	darkLater := func(i int) []sim.Failure {
		if i != 1 {
			return nil
		}
		fails := make([]sim.Failure, 15)
		for n := range fails {
			fails[n] = sim.Failure{Node: n, Start: 2 * round, End: 60 * round}
		}
		return fails
	}
	f = newFed(t, 2, "round-robin", darkLater)
	jobs = genJobs(t, 16, 2)
	routedToDark := false
	for _, j := range jobs[:8] {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
		if idx, _ := f.Owner(j.ID); idx == 1 {
			routedToDark = true
		}
	}
	if !routedToDark {
		t.Fatal("round-robin never used member 1 before the outage — test premise broken")
	}
	for f.Now() < 3*round && f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs[8:] {
		j.Arrival = f.Now()
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
		if idx, _ := f.Owner(j.ID); idx != 0 {
			t.Fatalf("job %d arriving during the outage routed to dark member %d", j.ID, idx)
		}
	}
	for f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationOutageIsolation is the blast-radius guarantee: a
// partial outage inside one member must not perturb any other member's
// schedule. A static modulo router makes routing identical with and
// without the outage, so the surviving member's digest chain must be
// byte-identical across the two runs, while the failed member alone
// records the fault transitions — and the merged report's fault
// accounting must equal the per-member sums exactly.
func TestFederationOutageIsolation(t *testing.T) {
	core.PanicOnInconsistency = true
	round := sim.DefaultOptions().RoundLength
	numJobs := 32
	if testing.Short() {
		numJobs = 20
	}
	// Nodes 0-2 of member 1 down for rounds ~5..15.
	outage := func(i int) []sim.Failure {
		if i != 1 {
			return nil
		}
		return []sim.Failure{
			{Node: 0, Start: 5 * round, End: 15 * round},
			{Node: 1, Start: 5 * round, End: 15 * round},
			{Node: 2, Start: 5 * round, End: 15 * round},
		}
	}
	run := func(failures func(int) []sim.Failure) ([]uint64, *federation.Report) {
		r, err := federation.New(memberConfigs(2, failures), staticRouter{n: 2}, federation.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		fedDigestChain(t, r, genJobs(t, numJobs, 4))
		rep, err := r.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return r.MemberDigests(), rep
	}
	baseDigests, baseRep := run(nil)
	chaosDigests, chaosRep := run(outage)

	if baseDigests[0] != chaosDigests[0] {
		t.Errorf("surviving member's digest changed under a peer's outage: %#x vs %#x",
			baseDigests[0], chaosDigests[0])
	}
	if baseRep.Members[0].Report.Faults.Any() || baseRep.Members[1].Report.Faults.Any() {
		t.Error("baseline run recorded faults with no failures configured")
	}
	failed := chaosRep.Members[1].Report.Faults
	if failed.NodeDown == 0 {
		t.Error("failed member recorded no node-down transitions")
	}
	if chaosRep.Members[0].Report.Faults.Any() {
		t.Errorf("surviving member recorded faults: %+v", chaosRep.Members[0].Report.Faults)
	}
	var want metrics.FaultStats
	for _, mr := range chaosRep.Members {
		want.RPCRetries += mr.Report.Faults.RPCRetries
		want.RPCTimeouts += mr.Report.Faults.RPCTimeouts
		want.NodeDown += mr.Report.Faults.NodeDown
		want.NodeUp += mr.Report.Faults.NodeUp
		want.Recoveries += mr.Report.Faults.Recoveries
		want.LostIterations += mr.Report.Faults.LostIterations
	}
	got := chaosRep.Merged.Faults
	if got.RPCRetries != want.RPCRetries || got.RPCTimeouts != want.RPCTimeouts ||
		got.NodeDown != want.NodeDown || got.NodeUp != want.NodeUp ||
		got.Recoveries != want.Recoveries ||
		math.Abs(got.LostIterations-want.LostIterations) > 1e-9 {
		t.Errorf("merged fault accounting %+v does not match per-member sum %+v", got, want)
	}
}
