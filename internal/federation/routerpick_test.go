package federation_test

import (
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/sim"
)

// TestRouteJobNoEligibleMember pins the empty-eligible-set path: a job
// whose gang exceeds every member's usable capacity must be rejected
// at routing time with a diagnosis, not forwarded to a router with an
// empty candidate slice.
func TestRouteJobNoEligibleMember(t *testing.T) {
	f := newFed(t, 3, "least-queue", nil)
	j := genJobs(t, 1, 11)[0]
	j.Workers = 1 << 20 // no member holds a million usable devices
	if _, err := f.RouteJob(j); err == nil {
		t.Fatal("RouteJob placed a job no member can ever hold")
	} else if !strings.Contains(err.Error(), "no member can ever place") {
		t.Fatalf("RouteJob error = %v, want the no-eligible-member diagnosis", err)
	}
}

// allDown builds an outage covering every node of the test cluster for
// the whole run, so each member is eligible but never healthy.
func allDown() []sim.Failure {
	var fails []sim.Failure
	for _, n := range experiments.SimCluster().Nodes() {
		fails = append(fails, sim.Failure{Node: n.ID, Start: 0, End: 1e12})
	}
	return fails
}

// TestRouteJobAllUnhealthyFallsBack pins the outage fallback: when an
// outage takes every eligible member's nodes down, RouteJob must fall
// back to the full eligible set (the job queues at its member) rather
// than reject the job or hand the router an empty slice.
func TestRouteJobAllUnhealthyFallsBack(t *testing.T) {
	f := newFed(t, 3, "least-queue", func(i int) []sim.Failure { return allDown() })
	j := genJobs(t, 1, 12)[0]
	idx, err := f.RouteJob(j)
	if err != nil {
		t.Fatalf("RouteJob with every member unhealthy: %v", err)
	}
	// least-queue over identical idle members tie-breaks to the lowest
	// index; the fallback must preserve that determinism.
	if idx != 0 {
		t.Fatalf("RouteJob picked member %d, want deterministic fallback pick 0", idx)
	}
	if err := f.SubmitJob(j); err != nil {
		t.Fatalf("SubmitJob through the unhealthy fallback: %v", err)
	}
	if owner, ok := f.Owner(j.ID); !ok || owner != 0 {
		t.Fatalf("Owner(%d) = %d,%v, want 0,true", j.ID, owner, ok)
	}
}

// rogueRouter returns a constant out-of-range pick, exercising the
// federation's router-output validation.
type rogueRouter struct{ pick int }

func (r rogueRouter) Name() string                                  { return "rogue" }
func (r rogueRouter) Route(j *job.Job, views []federation.View) int { return r.pick }

// TestRouteJobValidatesRouterPick pins the guard between the router
// contract and the member slice: an out-of-range pick must surface as
// an error naming the router, never index into the members.
func TestRouteJobValidatesRouterPick(t *testing.T) {
	for _, pick := range []int{-1, 3, 99} {
		r := rogueRouter{pick: pick}
		f, err := federation.New(memberConfigs(3, nil), r, federation.Options{Validate: true})
		if err != nil {
			t.Fatal(err)
		}
		j := genJobs(t, 1, 13)[0]
		if _, err := f.RouteJob(j); err == nil {
			t.Fatalf("RouteJob accepted out-of-range pick %d", pick)
		} else if !strings.Contains(err.Error(), "picked invalid member") {
			t.Fatalf("RouteJob error = %v, want invalid-pick diagnosis", err)
		}
	}
}

// TestAffinityTieBreak pins Affinity's documented tie order: most
// BestUp capacity first, then shallower queue, then lowest index.
func TestAffinityTieBreak(t *testing.T) {
	r := federation.Affinity{}
	cases := []struct {
		name  string
		views []federation.View
		want  int
	}{
		{"queue breaks equal capacity", []federation.View{v(0, 5, 8), v(1, 2, 8), v(2, 4, 8)}, 1},
		{"index breaks full tie", []federation.View{v(0, 3, 8), v(1, 3, 8), v(2, 3, 8)}, 0},
		{"capacity dominates queue", []federation.View{v(0, 0, 2), v(1, 9, 3)}, 1},
		{"later equal view never displaces", []federation.View{v(1, 3, 8), v(0, 3, 8)}, 1},
	}
	for _, tc := range cases {
		if got := r.Route(rtJob, tc.views); got != tc.want {
			t.Errorf("%s: Route = %d, want %d", tc.name, got, tc.want)
		}
	}
}
