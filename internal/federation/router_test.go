package federation_test

import (
	"testing"

	"repro/internal/federation"
	"repro/internal/job"
)

// rtJob is a placeholder job for router unit tests; the built-in
// policies route on views, not job internals.
var rtJob = &job.Job{ID: 1, Workers: 2}

// v builds a minimal candidate view for router unit tests.
func v(index, queue, bestUp int) federation.View {
	return federation.View{Index: index, Name: "m", QueueDepth: queue, BestUp: bestUp, Eligible: true, Healthy: true}
}

// priced adds a dual-price quote to a view.
func priced(view federation.View, price float64) federation.View {
	view.Price = price
	view.HasPrice = true
	return view
}

func TestNewRouterNamesAndAliases(t *testing.T) {
	for _, name := range federation.RouterNames() {
		r, err := federation.NewRouter(name)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("NewRouter(%q).Name() = %q", name, r.Name())
		}
	}
	for alias, canonical := range map[string]string{"rr": "round-robin", "queue": "least-queue"} {
		r, err := federation.NewRouter(alias)
		if err != nil {
			t.Fatalf("NewRouter(%q): %v", alias, err)
		}
		if r.Name() != canonical {
			t.Errorf("NewRouter(%q).Name() = %q, want %q", alias, r.Name(), canonical)
		}
	}
	if _, err := federation.NewRouter("no-such-policy"); err == nil {
		t.Error("NewRouter accepted an unknown policy")
	}
}

// TestRoundRobinCycles pins the rotation: with all members present the
// picks cycle 0,1,2,0,...; when the cursor's member is filtered out the
// next candidate at or after it is taken; past the end it wraps.
func TestRoundRobinCycles(t *testing.T) {
	r := &federation.RoundRobin{}
	all := []federation.View{v(0, 0, 0), v(1, 0, 0), v(2, 0, 0)}
	want := []int{0, 1, 2, 0, 1}
	for i, w := range want {
		if got := r.Route(rtJob, all); got != w {
			t.Fatalf("pick %d: got member %d, want %d", i, got, w)
		}
	}
	// Cursor now at 2; member 2 missing from the candidates → wrap to 0.
	r = &federation.RoundRobin{}
	partial := []federation.View{v(0, 0, 0), v(2, 0, 0)}
	for i, w := range []int{0, 2, 0, 2} {
		if got := r.Route(rtJob, partial); got != w {
			t.Fatalf("partial pick %d: got member %d, want %d", i, got, w)
		}
	}
}

func TestLeastQueuePicksShallowest(t *testing.T) {
	r := federation.LeastQueue{}
	views := []federation.View{v(0, 5, 0), v(1, 2, 0), v(2, 7, 0)}
	if got := r.Route(rtJob, views); got != 1 {
		t.Errorf("got member %d, want 1 (shallowest queue)", got)
	}
	// Ties keep the lowest index.
	tied := []federation.View{v(0, 3, 0), v(1, 3, 0)}
	if got := r.Route(rtJob, tied); got != 0 {
		t.Errorf("tie broke to member %d, want 0", got)
	}
}

func TestAffinityPicksBestCapacity(t *testing.T) {
	r := federation.Affinity{}
	views := []federation.View{v(0, 0, 4), v(1, 0, 12), v(2, 0, 8)}
	if got := r.Route(rtJob, views); got != 1 {
		t.Errorf("got member %d, want 1 (most best-type devices up)", got)
	}
	// Equal capacity falls back to queue depth, then index.
	tied := []federation.View{v(0, 5, 8), v(1, 2, 8), v(2, 2, 8)}
	if got := r.Route(rtJob, tied); got != 1 {
		t.Errorf("got member %d, want 1 (capacity tie, shallower queue)", got)
	}
}

func TestPriceAwareOrdering(t *testing.T) {
	r := federation.PriceAware{}
	// Cheapest priced member wins.
	views := []federation.View{priced(v(0, 0, 0), 3.5), priced(v(1, 0, 0), 1.25), priced(v(2, 0, 0), 2)}
	if got := r.Route(rtJob, views); got != 1 {
		t.Errorf("got member %d, want 1 (cheapest price)", got)
	}
	// A priced member beats an unpriced one even with a deeper queue.
	mixed := []federation.View{v(0, 0, 0), priced(v(1, 9, 0), 10)}
	if got := r.Route(rtJob, mixed); got != 1 {
		t.Errorf("got member %d, want 1 (priced beats unpriced)", got)
	}
	// All unpriced → queue depth decides.
	unpriced := []federation.View{v(0, 4, 0), v(1, 1, 0)}
	if got := r.Route(rtJob, unpriced); got != 1 {
		t.Errorf("got member %d, want 1 (unpriced falls back to queue)", got)
	}
	// Equal prices → queue depth, then lowest index.
	tied := []federation.View{priced(v(0, 2, 0), 1), priced(v(1, 2, 0), 1)}
	if got := r.Route(rtJob, tied); got != 0 {
		t.Errorf("price tie broke to member %d, want 0", got)
	}
}
