// Package federation runs N independent regional clusters — each its
// own sim.Engine with its own cluster.State, scheduler, and invariant
// checker — behind one front door and one shared clock.
//
// The design is the shared-clock multi-instance event loop: the
// federation never merges engine state and never lets one member touch
// another's cluster. It merely controls *which member advances next* by
// always stepping the engine whose PeekNextEventTime is earliest (ties
// break by member index, so the loop is deterministic). Jobs arrive at
// the federation's front door, a pluggable Router picks the owning
// member at submission time, and cancels and queries are forwarded to
// that owner for the rest of the job's life.
//
// Like sim.Engine, a Federation is single-goroutine: a long-lived
// service wraps it in one owning goroutine (service.FedService) and
// publishes immutable FedSnapshots for concurrent readers.
package federation

import (
	"fmt"
	"reflect"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
)

// MemberConfig describes one regional cluster of the federation. Each
// member owns its Cluster and Scheduler exclusively: configs must not
// share either across members (engines mutate scheduler state and
// track per-cluster free state).
type MemberConfig struct {
	// Name labels the member in snapshots, reports, and routing
	// errors; empty names default to "member<i>".
	Name string
	// Cluster is the member's private capacity.
	Cluster *cluster.Cluster
	// Scheduler is the member's private policy instance.
	Scheduler sched.Scheduler
	// Sim configures the member's engine, including its own failure
	// windows (chaos) and per-member invariant checking (Sim.Validate).
	Sim sim.Options
}

// Options configures federation-level behavior.
type Options struct {
	// Validate enables the federation-level invariants (ownership
	// uniqueness and job-count conservation after every processed
	// event, full iteration-conservation audit at Finish). Member-level
	// oracles are configured per member via MemberConfig.Sim.Validate.
	Validate bool
}

// member pairs a config with its live engine.
type member struct {
	name string
	cfg  MemberConfig
	eng  *sim.Engine
}

// Federation owns N member engines, a router, and the shared-clock
// event loop. It mirrors the sim.Engine step contract (SubmitJob /
// CancelJob / HasPendingEvents / PeekNextEventTime / ProcessNextEvent /
// Finish) so everything that can drive an engine can drive a
// federation.
//
// A Federation is not safe for concurrent use: like the engines it
// owns, it is single-owner state, mutated only by the goroutine that
// drives it (see internal/service.FedService) and read through
// immutable FedSnapshots.
type Federation struct {
	members []*member
	router  Router
	opts    Options

	// owner maps each submitted job ID to its member index; jobs lists
	// the accepted jobs in submission order (the deterministic
	// iteration order for snapshots and invariant sweeps).
	owner map[int]int
	jobs  []*job.Job

	// lastWork is the completed-iterations watermark of the previous
	// full invariant audit; cancelSeen tracks whether a cancellation
	// happened since (cancels may legitimately retire partial work).
	lastWork   float64
	cancelSeen bool

	err error
}

// New builds a federation over the given members and router. At least
// one member is required; every member needs a cluster and a
// scheduler, and no two members may share either.
func New(configs []MemberConfig, router Router, opts Options) (*Federation, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("federation: no members")
	}
	if router == nil {
		return nil, fmt.Errorf("federation: nil router")
	}
	f := &Federation{
		router: router,
		opts:   opts,
		owner:  make(map[int]int),
	}
	for i, cfg := range configs {
		if cfg.Cluster == nil || cfg.Scheduler == nil {
			return nil, fmt.Errorf("federation: member %d missing cluster or scheduler", i)
		}
		for k := 0; k < i; k++ {
			if configs[k].Cluster == cfg.Cluster {
				return nil, fmt.Errorf("federation: members %d and %d share a cluster", k, i)
			}
			if sharedScheduler(configs[k].Scheduler, cfg.Scheduler) {
				return nil, fmt.Errorf("federation: members %d and %d share a scheduler", k, i)
			}
		}
		name := cfg.Name
		if name == "" {
			name = fmt.Sprintf("member%d", i)
		}
		eng, err := sim.NewEngine(cfg.Cluster, cfg.Scheduler, cfg.Sim)
		if err != nil {
			return nil, fmt.Errorf("federation: member %s: %w", name, err)
		}
		f.members = append(f.members, &member{name: name, cfg: cfg, eng: eng})
	}
	return f, nil
}

// sharedScheduler reports whether two member schedulers are the same
// mutable instance. Only pointer identity counts: schedulers carry
// cross-round state behind pointers, while stateless value schedulers
// (empty structs in tests) compare equal without sharing anything.
func sharedScheduler(a, b sched.Scheduler) bool {
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	return va.Kind() == reflect.Pointer && vb.Kind() == reflect.Pointer && va.Pointer() == vb.Pointer()
}

// Members returns the number of member clusters.
func (f *Federation) Members() int { return len(f.members) }

// MemberName returns the label of member i.
func (f *Federation) MemberName(i int) string { return f.members[i].name }

// RouterName returns the active routing policy's name.
func (f *Federation) RouterName() string { return f.router.Name() }

// Err returns the sticky error that poisoned the federation, if any.
func (f *Federation) Err() error { return f.err }

// fail records the first error and poisons the federation.
func (f *Federation) fail(err error) error {
	if f.err == nil {
		f.err = err
	}
	return f.err
}

// Now returns the shared clock: the furthest simulated time any member
// has advanced to. Members can trail this (the loop only advances the
// earliest), but none is ahead of it.
func (f *Federation) Now() float64 {
	now := 0.0
	for _, m := range f.members {
		if t := m.eng.Now(); t > now {
			now = t
		}
	}
	return now
}

// SubmitJob routes the job through the Router and submits it to the
// chosen member, recording ownership. Routing is deterministic: the
// same submission sequence against the same federation state always
// picks the same members.
func (f *Federation) SubmitJob(j *job.Job) error {
	idx, err := f.RouteJob(j)
	if err != nil {
		return err
	}
	if err := f.members[idx].eng.SubmitJob(j); err != nil {
		return err
	}
	f.owner[j.ID] = idx
	f.jobs = append(f.jobs, j)
	return nil
}

// RouteJob runs the routing decision for a job without submitting it:
// it builds the per-member views, filters to members that can place
// the job (preferring ones healthy right now), and asks the Router to
// pick. Exposed so callers can audit routing decisions.
func (f *Federation) RouteJob(j *job.Job) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if _, dup := f.owner[j.ID]; dup {
		return 0, fmt.Errorf("federation: duplicate job ID %d", j.ID)
	}
	now := f.Now()
	views := make([]View, 0, len(f.members))
	healthy := 0
	for i, m := range f.members {
		v := m.view(i, j, now)
		if !v.Eligible {
			continue
		}
		views = append(views, v)
		if v.Healthy {
			healthy++
		}
	}
	if len(views) == 0 {
		return 0, fmt.Errorf("federation: no member can ever place %v (needs %d workers)", j, j.Workers)
	}
	// Prefer members that could place the job on currently-up nodes;
	// when an outage has taken every candidate down, fall back to the
	// full eligible set and let the job queue at its member.
	if healthy > 0 && healthy < len(views) {
		up := views[:0]
		for _, v := range views {
			if v.Healthy {
				up = append(up, v)
			}
		}
		views = up
	}
	idx := f.router.Route(j, views)
	if idx < 0 || idx >= len(f.members) {
		return 0, fmt.Errorf("federation: router %s picked invalid member %d", f.router.Name(), idx)
	}
	return idx, nil
}

// CancelJob forwards the cancellation to the owning member.
func (f *Federation) CancelJob(id int) error {
	if f.err != nil {
		return f.err
	}
	idx, ok := f.owner[id]
	if !ok {
		return fmt.Errorf("federation: cancel of unknown job %d", id)
	}
	if err := f.members[idx].eng.CancelJob(id); err != nil {
		return err
	}
	f.cancelSeen = true
	return nil
}

// Owner returns the member index that owns a submitted job.
func (f *Federation) Owner(id int) (int, bool) {
	idx, ok := f.owner[id]
	return idx, ok
}

// Phase forwards a lifecycle query to the owning member.
func (f *Federation) Phase(id int) (sim.JobPhase, bool) {
	idx, ok := f.owner[id]
	if !ok {
		return 0, false
	}
	return f.members[idx].eng.Phase(id)
}

// HasPendingEvents reports whether any member still has work.
func (f *Federation) HasPendingEvents() bool {
	if f.err != nil {
		return false
	}
	for _, m := range f.members {
		if m.eng.HasPendingEvents() {
			return true
		}
	}
	return false
}

// PeekNextEventTime returns the earliest next-event time across all
// members — the shared clock's next tick. ok is false when every
// member is idle.
func (f *Federation) PeekNextEventTime() (t float64, ok bool) {
	i := f.nextMember()
	if i < 0 {
		return 0, false
	}
	t, _ = f.members[i].eng.PeekNextEventTime()
	return t, true
}

// nextMember picks the member the shared-clock loop advances next: the
// one with the earliest PeekNextEventTime, ties broken by lowest
// member index. Returns -1 when no member has pending events.
func (f *Federation) nextMember() int {
	best := -1
	var bestT float64
	for i, m := range f.members {
		t, ok := m.eng.PeekNextEventTime()
		if !ok {
			continue
		}
		if best < 0 || t < bestT {
			best, bestT = i, t
		}
	}
	return best
}

// ProcessNextEvent advances the federation by exactly one member round
// boundary: the member with the earliest next event processes one
// event while every other member stays frozen. Errors from any member
// — scheduler protocol violations, per-member oracle violations, or
// federation-level invariant violations — are sticky.
func (f *Federation) ProcessNextEvent() error {
	if f.err != nil {
		return f.err
	}
	i := f.nextMember()
	if i < 0 {
		return nil // idle: nothing queued anywhere
	}
	if err := f.members[i].eng.ProcessNextEvent(); err != nil {
		return f.fail(fmt.Errorf("federation: member %s: %w", f.members[i].name, err))
	}
	if f.opts.Validate {
		if err := f.checkOwnership(); err != nil {
			return f.fail(err)
		}
	}
	return nil
}

// Step processes the next event if any member has one, reporting
// whether it did work.
func (f *Federation) Step() (bool, error) {
	if !f.HasPendingEvents() {
		return false, f.err
	}
	if err := f.ProcessNextEvent(); err != nil {
		return false, err
	}
	return true, nil
}

// Digest folds every member's chained per-round schedule digest, in
// member order, into one federation digest. Two federations that
// routed and scheduled identically have identical digests; a
// federation of one has exactly its single engine's digest.
func (f *Federation) Digest() uint64 {
	if len(f.members) == 1 {
		return f.members[0].eng.Digest()
	}
	var d uint64
	for _, m := range f.members {
		d = d*1099511628211 + m.eng.Digest()
	}
	return d
}

// MemberDigests returns each member's engine digest, indexed by
// member. Chaos tests compare these across runs to prove member
// isolation: an outage inside one member must not perturb any other
// member's chain.
func (f *Federation) MemberDigests() []uint64 {
	out := make([]uint64, len(f.members))
	for i, m := range f.members {
		out[i] = m.eng.Digest()
	}
	return out
}

// MemberReport is one member's share of a federation report.
type MemberReport struct {
	Name   string
	Report *metrics.Report
}

// Report is the result of Federation.Finish: the per-member reports
// plus a merged cluster-wide view.
type Report struct {
	// Members holds one finalized report per member, in member order.
	Members []MemberReport
	// Merged aggregates the members into one report: concatenated job
	// results, summed GPU-seconds and fault counters, max makespan.
	// Its Rounds is the total of member rounds (members tick
	// independently), and its occupancy time series is left empty —
	// per-member series live in Members.
	Merged *metrics.Report
}

// Finish finalizes every member engine and returns the federation
// report. Like Engine.Finish it is not terminal: more jobs may be
// submitted and processed afterwards, and Finish called again.
func (f *Federation) Finish() (*Report, error) {
	if f.err != nil {
		return nil, f.err
	}
	rep := &Report{}
	for _, m := range f.members {
		r, err := m.eng.Finish()
		if err != nil {
			return nil, f.fail(fmt.Errorf("federation: member %s: %w", m.name, err))
		}
		rep.Members = append(rep.Members, MemberReport{Name: m.name, Report: r})
	}
	if f.opts.Validate {
		if err := f.CheckInvariants(); err != nil {
			return nil, f.fail(err)
		}
	}
	rep.Merged = f.mergeReports(rep.Members)
	return rep, nil
}

// mergeReports folds the member reports into one cluster-wide report.
func (f *Federation) mergeReports(members []MemberReport) *metrics.Report {
	merged := &metrics.Report{
		Scheduler: fmt.Sprintf("federation-%d/%s", len(f.members), f.router.Name()),
	}
	for _, mr := range members {
		r := mr.Report
		merged.Jobs = append(merged.Jobs, r.Jobs...)
		if r.Makespan > merged.Makespan {
			merged.Makespan = r.Makespan
		}
		merged.BusyGPUSeconds += r.BusyGPUSeconds
		merged.HeldGPUSeconds += r.HeldGPUSeconds
		merged.TotalGPUs += r.TotalGPUs
		merged.Rounds += r.Rounds
		merged.JobRoundAllocs += r.JobRoundAllocs
		merged.JobRoundReallocs += r.JobRoundReallocs
		merged.DecisionTime += r.DecisionTime
		merged.Decisions += r.Decisions
		merged.Faults.RPCRetries += r.Faults.RPCRetries
		merged.Faults.RPCTimeouts += r.Faults.RPCTimeouts
		merged.Faults.NodeDown += r.Faults.NodeDown
		merged.Faults.NodeUp += r.Faults.NodeUp
		merged.Faults.Recoveries += r.Faults.Recoveries
		merged.Faults.LostIterations += r.Faults.LostIterations
	}
	merged.SortJobsByID()
	return merged
}

// checkOwnership is the cheap per-event federation invariant: every
// job the front door accepted is known to exactly its owning member —
// no job lost by its owner, none duplicated into a second member.
// Proving both for every job also proves job-count conservation: the
// per-member lifecycle tallies sum to the accepted total.
func (f *Federation) checkOwnership() error {
	for _, j := range f.jobs {
		own := f.owner[j.ID]
		for i, m := range f.members {
			_, known := m.eng.Phase(j.ID)
			if i == own && !known {
				return fmt.Errorf("federation: invariant: job %d lost by its owner %s", j.ID, m.name)
			}
			if i != own && known {
				return fmt.Errorf("federation: invariant: job %d owned by %s but also known to %s",
					j.ID, f.members[own].name, m.name)
			}
		}
	}
	return nil
}

// CheckInvariants runs the full federation-level audit against fresh
// member snapshots:
//
//   - ownership uniqueness and job-count conservation (checkOwnership);
//   - per-job iteration bounds: every active job's Remaining lies in
//     [0, TotalIters];
//   - global iteration conservation: the completed work across all
//     members (finished jobs' iterations plus active jobs' attained
//     iterations) never exceeds the total work the front door admitted
//     and — absent cancellations, which may retire partial work — never
//     decreases between audits.
//
// Finish runs it automatically under Options.Validate; tests may call
// it between steps.
func (f *Federation) CheckInvariants() error {
	if err := f.checkOwnership(); err != nil {
		return err
	}
	totalIters := 0.0
	for _, j := range f.jobs {
		totalIters += j.TotalIters()
	}
	work := 0.0
	const tol = 1e-6
	for _, m := range f.members {
		snap := m.eng.Snapshot()
		for _, js := range snap.Active {
			if js.Remaining < -tol || js.Remaining > js.TotalIters*(1+tol)+tol {
				return fmt.Errorf("federation: invariant: member %s job %d remaining %v outside [0, %v]",
					m.name, js.ID, js.Remaining, js.TotalIters)
			}
			work += js.TotalIters - js.Remaining
		}
		for _, jr := range snap.Report.Jobs {
			work += jr.TotalIters
		}
	}
	if work > totalIters*(1+tol)+tol {
		return fmt.Errorf("federation: invariant: completed work %v exceeds admitted work %v",
			work, totalIters)
	}
	if !f.cancelSeen && work < f.lastWork-tol {
		return fmt.Errorf("federation: invariant: completed work regressed %v -> %v with no cancellations",
			f.lastWork, work)
	}
	f.lastWork = work
	f.cancelSeen = false
	return nil
}
