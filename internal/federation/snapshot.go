package federation

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// MemberSnapshot is one member's frozen view inside a FedSnapshot.
type MemberSnapshot struct {
	// Name labels the member; Snap is the member engine's immutable
	// copy-on-publish snapshot.
	Name string        `json:"name"`
	Snap *sim.Snapshot `json:"snapshot"`
}

// FedSnapshot is an immutable point-in-time view of the whole
// federation, built by copy-on-publish from the member snapshots: every
// field is a value or a deep copy, so a published *FedSnapshot can be
// read from any goroutine without synchronization while the federation
// keeps stepping. The aggregate fields are sums/maxima over members;
// the member detail is retained for per-region dashboards.
type FedSnapshot struct {
	// Now is the shared clock (the furthest any member has advanced);
	// Router names the routing policy.
	Now    float64 `json:"now_s"`
	Router string  `json:"router"`
	// Members holds one snapshot per member, in member order.
	Members []MemberSnapshot `json:"members"`
	// TotalGPUs and HeldGPUs aggregate the member fleets and their
	// most recent round's held devices.
	TotalGPUs int `json:"total_gpus"`
	HeldGPUs  int `json:"held_gpus"`
	// Pending, Active, Completed, and Cancelled are federation-wide
	// job counts.
	Pending   int `json:"pending"`
	Active    int `json:"active"`
	Completed int `json:"completed"`
	Cancelled int `json:"cancelled"`
	// Digest is the federation digest: the member engine digests
	// folded in member order (see Federation.Digest).
	Digest uint64 `json:"digest"`
	// Owners maps every submitted job ID to its owning member's name,
	// so status queries route without touching the federation.
	Owners map[int]string `json:"owners,omitempty"`
}

// FreeGPUs is the devices not held in the most recent member rounds.
func (s *FedSnapshot) FreeGPUs() int { return s.TotalGPUs - s.HeldGPUs }

// Member returns the named member's snapshot, or nil.
func (s *FedSnapshot) Member(name string) *sim.Snapshot {
	for i := range s.Members {
		if s.Members[i].Name == name {
			return s.Members[i].Snap
		}
	}
	return nil
}

// FindJob resolves a job ID against the snapshot: the owning member's
// name, the job's lifecycle phase, its live detail when active, and
// its final result when finished. ok is false for IDs the federation
// never accepted.
func (s *FedSnapshot) FindJob(id int) (member, phase string, js *sim.JobSnapshot, res *metrics.JobResult, ok bool) {
	member, ok = s.Owners[id]
	if !ok {
		return "", "", nil, nil, false
	}
	snap := s.Member(member)
	if snap == nil {
		return member, "", nil, nil, true
	}
	phase = snap.Phases[id]
	for i := range snap.Active {
		if snap.Active[i].ID == id {
			js = &snap.Active[i]
			break
		}
	}
	for i := range snap.Report.Jobs {
		if snap.Report.Jobs[i].ID == id {
			res = &snap.Report.Jobs[i]
			break
		}
	}
	return member, phase, js, res, true
}

// Snapshot publishes an immutable view of the federation. It must be
// called from the goroutine driving the federation (between steps);
// the returned value may then be shared freely.
func (f *Federation) Snapshot() *FedSnapshot {
	snap := &FedSnapshot{
		Now:    f.Now(),
		Router: f.router.Name(),
		Digest: f.Digest(),
	}
	for _, m := range f.members {
		ms := m.eng.Snapshot()
		snap.Members = append(snap.Members, MemberSnapshot{Name: m.name, Snap: ms})
		snap.TotalGPUs += ms.TotalGPUs
		snap.HeldGPUs += ms.HeldGPUs
		snap.Pending += ms.Pending
		snap.Active += len(ms.Active)
		snap.Completed += ms.Completed
		snap.Cancelled += ms.Cancelled
	}
	// Fill owners from the submission-ordered job list, not the owner
	// map, so the copy is deterministic.
	snap.Owners = make(map[int]string, len(f.jobs))
	for _, j := range f.jobs {
		snap.Owners[j.ID] = f.members[f.owner[j.ID]].name
	}
	return snap
}
