package federation_test

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

// goldenSeeds is the golden seed set for the federation differentials:
// every federation-of-one run over these seeds must reproduce the bare
// engine's digest chain byte for byte.
var goldenSeeds = []int64{1, 2, 3, 5, 7}

// genJobs generates the seeded trace used across the battery, sorted by
// (arrival, ID) so submission order is deterministic.
func genJobs(t *testing.T, numJobs int, seed int64) []*job.Job {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	cfg.Seed = seed
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
	return jobs
}

// memberConfigs builds n identical Hadar members, each with its own
// SimCluster, scheduler, and validated engine options. failures, when
// non-nil, supplies per-member outage windows.
func memberConfigs(n int, failures func(i int) []sim.Failure) []federation.MemberConfig {
	cfgs := make([]federation.MemberConfig, n)
	for i := range cfgs {
		opts := sim.ValidatedOptions()
		if failures != nil {
			opts.Failures = failures(i)
		}
		cfgs[i] = federation.MemberConfig{
			Name:      fmt.Sprintf("region%d", i),
			Cluster:   experiments.SimCluster(),
			Scheduler: core.New(core.DefaultOptions()),
			Sim:       opts,
		}
	}
	return cfgs
}

// newFed builds a federation over n fresh Hadar members with
// federation-level validation on.
func newFed(t *testing.T, n int, routerName string, failures func(i int) []sim.Failure) *federation.Federation {
	t.Helper()
	r, err := federation.NewRouter(routerName)
	if err != nil {
		t.Fatal(err)
	}
	f, err := federation.New(memberConfigs(n, failures), r, federation.Options{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fedDigestChain submits the jobs up front and drives the federation to
// completion, recording the federation digest after every event that
// changed it. Finish must succeed (all member oracles and federation
// invariants hold).
func fedDigestChain(t *testing.T, f *federation.Federation, jobs []*job.Job) []uint64 {
	t.Helper()
	for _, j := range jobs {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	var chain []uint64
	last := f.Digest()
	for f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
		if d := f.Digest(); d != last {
			chain = append(chain, d)
			last = d
		}
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
	return chain
}

// engineDigestChain is the bare-engine baseline for the federation-of-one
// differential: the same trace through one validated engine directly,
// recording the same per-round digest chain.
func engineDigestChain(t *testing.T, jobs []*job.Job) []uint64 {
	t.Helper()
	eng, err := sim.NewEngine(experiments.SimCluster(), core.New(core.DefaultOptions()), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := eng.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	var chain []uint64
	last := eng.Digest()
	for eng.HasPendingEvents() {
		if err := eng.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
		if d := eng.Digest(); d != last {
			chain = append(chain, d)
			last = d
		}
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	return chain
}

// TestFederationOfOneMatchesBareEngine is the core correctness anchor:
// a 1-member federation is the identity wrapper. For every seed in the
// golden set, its per-round digest chain must be byte-identical to a
// bare engine's on the same trace — the front door, the router, the
// shared-clock loop, and the invariant sweeps must add zero scheduling
// behavior.
func TestFederationOfOneMatchesBareEngine(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 96
	if testing.Short() {
		numJobs = 32
	}
	for _, seed := range goldenSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			jobs := genJobs(t, numJobs, seed)
			want := engineDigestChain(t, genJobs(t, numJobs, seed))
			if len(want) == 0 {
				t.Fatal("bare engine produced no round digests")
			}
			for _, router := range federation.RouterNames() {
				got := fedDigestChain(t, newFed(t, 1, router, nil), jobs)
				if len(got) != len(want) {
					t.Fatalf("router %s: federation-of-one chain has %d digests, bare engine %d",
						router, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("router %s: chain diverges at digest %d: %#x vs %#x",
							router, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestFederationDeterminism is the golden-digest battery: every router
// policy × member count × seed, run twice from scratch, must reproduce
// the identical digest chain. Any map-iteration-order or shared-state
// leak in the router, the view builder, or the shared-clock loop fails
// here.
func TestFederationDeterminism(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 64
	seeds := []int64{1, 3}
	if testing.Short() {
		numJobs = 32
		seeds = seeds[:1]
	}
	for _, router := range federation.RouterNames() {
		for _, members := range []int{1, 2, 4} {
			for _, seed := range seeds {
				router, members, seed := router, members, seed
				name := fmt.Sprintf("%s/members%d/seed%d", router, members, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					first := fedDigestChain(t, newFed(t, members, router, nil), genJobs(t, numJobs, seed))
					second := fedDigestChain(t, newFed(t, members, router, nil), genJobs(t, numJobs, seed))
					if len(first) == 0 {
						t.Fatal("run produced no digests")
					}
					if len(first) != len(second) {
						t.Fatalf("runs produced %d vs %d digests", len(first), len(second))
					}
					for i := range first {
						if first[i] != second[i] {
							t.Fatalf("digest chain diverges between identical runs at %d: %#x vs %#x",
								i, first[i], second[i])
						}
					}
				})
			}
		}
	}
}

// TestFederationSpreadsLoad sanity-checks that multi-member federations
// actually use more than one member: on the seed trace every built-in
// router must route at least one job to each of two members, and the
// merged report must conserve the job count.
func TestFederationSpreadsLoad(t *testing.T) {
	core.PanicOnInconsistency = true
	jobs := genJobs(t, 48, 1)
	for _, router := range federation.RouterNames() {
		router := router
		t.Run(router, func(t *testing.T) {
			t.Parallel()
			f := newFed(t, 2, router, nil)
			fedDigestChain(t, f, genJobs(t, 48, 1))
			perMember := make([]int, f.Members())
			for _, j := range jobs {
				idx, ok := f.Owner(j.ID)
				if !ok {
					t.Fatalf("job %d has no owner", j.ID)
				}
				perMember[idx]++
			}
			for i, n := range perMember {
				if n == 0 {
					t.Errorf("router %s never placed a job on member %d", router, i)
				}
			}
			rep, err := f.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if got := len(rep.Merged.Jobs); got != len(jobs) {
				t.Errorf("merged report has %d jobs, submitted %d", got, len(jobs))
			}
		})
	}
}

// TestFederationMergedReport pins the merge semantics: member job
// results concatenate, GPU totals and round counters sum, makespan is
// the max, and every submitted job completes exactly once across the
// federation.
func TestFederationMergedReport(t *testing.T) {
	core.PanicOnInconsistency = true
	jobs := genJobs(t, 48, 2)
	f := newFed(t, 2, "least-queue", nil)
	fedDigestChain(t, f, jobs)
	rep, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Members) != 2 {
		t.Fatalf("expected 2 member reports, got %d", len(rep.Members))
	}
	wantJobs, wantGPUs, wantRounds := 0, 0, 0
	var wantMakespan float64
	for _, mr := range rep.Members {
		wantJobs += len(mr.Report.Jobs)
		wantGPUs += mr.Report.TotalGPUs
		wantRounds += mr.Report.Rounds
		if mr.Report.Makespan > wantMakespan {
			wantMakespan = mr.Report.Makespan
		}
	}
	m := rep.Merged
	if len(m.Jobs) != wantJobs || wantJobs != len(jobs) {
		t.Errorf("merged jobs %d, member sum %d, submitted %d", len(m.Jobs), wantJobs, len(jobs))
	}
	if m.TotalGPUs != wantGPUs {
		t.Errorf("merged TotalGPUs %d, member sum %d", m.TotalGPUs, wantGPUs)
	}
	if m.Rounds != wantRounds {
		t.Errorf("merged Rounds %d, member sum %d", m.Rounds, wantRounds)
	}
	if m.Makespan < wantMakespan {
		t.Errorf("merged makespan %v below member max %v", m.Makespan, wantMakespan)
	}
	for i := 1; i < len(m.Jobs); i++ {
		if m.Jobs[i-1].ID >= m.Jobs[i].ID {
			t.Fatalf("merged jobs not sorted by unique ID: %d then %d", m.Jobs[i-1].ID, m.Jobs[i].ID)
		}
	}
}

// TestFederationSnapshot exercises the copy-on-publish read path:
// aggregate counts sum the members, owners resolve, and FindJob walks
// a job from pending through finished.
func TestFederationSnapshot(t *testing.T) {
	core.PanicOnInconsistency = true
	jobs := genJobs(t, 24, 1)
	f := newFed(t, 2, "round-robin", nil)
	for _, j := range jobs {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.Snapshot()
	if snap.Pending != len(jobs) {
		t.Errorf("pre-run snapshot pending %d, want %d", snap.Pending, len(jobs))
	}
	if snap.TotalGPUs != 2*experiments.SimCluster().TotalGPUs() {
		t.Errorf("snapshot TotalGPUs %d, want %d", snap.TotalGPUs, 2*experiments.SimCluster().TotalGPUs())
	}
	for f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
	}
	snap = f.Snapshot()
	if snap.Completed != len(jobs) || snap.Active != 0 || snap.Pending != 0 {
		t.Errorf("final snapshot completed=%d active=%d pending=%d, want %d/0/0",
			snap.Completed, snap.Active, snap.Pending, len(jobs))
	}
	if snap.Digest != f.Digest() {
		t.Errorf("snapshot digest %#x, federation digest %#x", snap.Digest, f.Digest())
	}
	if len(snap.Owners) != len(jobs) {
		t.Fatalf("snapshot owners %d, want %d", len(snap.Owners), len(jobs))
	}
	for _, j := range jobs {
		member, phase, js, res, ok := snap.FindJob(j.ID)
		if !ok {
			t.Fatalf("FindJob(%d) not found", j.ID)
		}
		idx, _ := f.Owner(j.ID)
		if member != f.MemberName(idx) {
			t.Errorf("FindJob(%d) member %q, owner is %q", j.ID, member, f.MemberName(idx))
		}
		if phase != "finished" {
			t.Errorf("FindJob(%d) phase %q, want finished", j.ID, phase)
		}
		if js != nil {
			t.Errorf("FindJob(%d) returned live detail for a finished job", j.ID)
		}
		if res == nil || res.ID != j.ID {
			t.Errorf("FindJob(%d) missing final result", j.ID)
		}
	}
	if _, _, _, _, ok := snap.FindJob(1 << 30); ok {
		t.Error("FindJob resolved a job the federation never accepted")
	}
	if snap.Member("no-such-region") != nil {
		t.Error("Member lookup resolved an unknown name")
	}
	if free := snap.FreeGPUs(); free != snap.TotalGPUs-snap.HeldGPUs {
		t.Errorf("FreeGPUs %d inconsistent with total %d held %d", free, snap.TotalGPUs, snap.HeldGPUs)
	}
}

// TestFederationConstructorValidation pins the New error paths: empty
// federations, nil routers, and members sharing a cluster or scheduler
// instance are all rejected up front.
func TestFederationConstructorValidation(t *testing.T) {
	rr, err := federation.NewRouter("round-robin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := federation.New(nil, rr, federation.Options{}); err == nil {
		t.Error("New accepted zero members")
	}
	if _, err := federation.New(memberConfigs(1, nil), nil, federation.Options{}); err == nil {
		t.Error("New accepted a nil router")
	}
	shared := memberConfigs(2, nil)
	shared[1].Cluster = shared[0].Cluster
	if _, err := federation.New(shared, rr, federation.Options{}); err == nil {
		t.Error("New accepted two members sharing a cluster")
	}
	shared = memberConfigs(2, nil)
	shared[1].Scheduler = shared[0].Scheduler
	if _, err := federation.New(shared, rr, federation.Options{}); err == nil {
		t.Error("New accepted two members sharing a scheduler")
	}
	missing := memberConfigs(1, nil)
	missing[0].Scheduler = nil
	if _, err := federation.New(missing, rr, federation.Options{}); err == nil {
		t.Error("New accepted a member without a scheduler")
	}
}

// TestFederationFrontDoorErrors pins the submission/cancel error paths:
// duplicate IDs, unroutable jobs, cancels of unknown jobs, and a router
// returning an out-of-range index.
func TestFederationFrontDoorErrors(t *testing.T) {
	jobs := genJobs(t, 4, 1)
	f := newFed(t, 2, "least-queue", nil)
	if err := f.SubmitJob(jobs[0]); err != nil {
		t.Fatal(err)
	}
	if err := f.SubmitJob(jobs[0]); err == nil {
		t.Error("duplicate job ID accepted")
	}
	if err := f.CancelJob(1 << 30); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	if err := f.CancelJob(jobs[0].ID); err != nil {
		t.Errorf("cancel of owned job failed: %v", err)
	}
	huge := *jobs[1]
	huge.Workers = 10000
	if err := f.SubmitJob(&huge); err == nil {
		t.Error("unplaceable job accepted")
	}

	bad, err := federation.New(memberConfigs(2, nil), badRouter{}, federation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.SubmitJob(jobs[2]); err == nil {
		t.Error("router picking an invalid member index not rejected")
	}
}

// badRouter always returns an out-of-range member index.
type badRouter struct{}

func (badRouter) Name() string                              { return "bad" }
func (badRouter) Route(j *job.Job, views []federation.View) int { return 99 }

// TestFederationCancelForwarding submits jobs to a 2-member federation,
// cancels a subset mid-run through the front door, and checks the
// owning members retire exactly those jobs while the invariant sweeps
// (which tolerate cancellations) stay green.
func TestFederationCancelForwarding(t *testing.T) {
	core.PanicOnInconsistency = true
	jobs := genJobs(t, 24, 3)
	f := newFed(t, 2, "round-robin", nil)
	for _, j := range jobs {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	cancelled := map[int]bool{jobs[5].ID: true, jobs[11].ID: true}
	steps := 0
	for f.HasPendingEvents() {
		if err := f.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps == 3 {
			for _, j := range jobs[:12] {
				if cancelled[j.ID] {
					if err := f.CancelJob(j.ID); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if steps%8 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		phase, ok := f.Phase(j.ID)
		if !ok {
			t.Fatalf("job %d unknown after run", j.ID)
		}
		want := sim.JobFinished
		if cancelled[j.ID] {
			want = sim.JobCancelled
		}
		if phase != want {
			t.Errorf("job %d phase %v, want %v", j.ID, phase, want)
		}
	}
	if got := len(rep.Merged.Jobs); got != len(jobs)-len(cancelled) {
		t.Errorf("merged report has %d completed jobs, want %d", got, len(jobs)-len(cancelled))
	}
}

// TestFederationStepAndPeek exercises the shared-clock surface: the
// federation's next-event time is the min over members, Step reports
// idle correctly, and Now never exceeds the furthest member.
func TestFederationStepAndPeek(t *testing.T) {
	core.PanicOnInconsistency = true
	f := newFed(t, 3, "round-robin", nil)
	if _, ok := f.PeekNextEventTime(); ok {
		t.Error("idle federation reported a next event")
	}
	if did, err := f.Step(); err != nil || did {
		t.Errorf("idle Step = (%v, %v), want (false, nil)", did, err)
	}
	for _, j := range genJobs(t, 12, 1) {
		if err := f.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	tNext, ok := f.PeekNextEventTime()
	if !ok {
		t.Fatal("loaded federation reported no next event")
	}
	if now := f.Now(); tNext < now {
		t.Errorf("next event %v before shared clock %v", tNext, now)
	}
	for {
		did, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !did {
			break
		}
	}
	if _, err := f.Finish(); err != nil {
		t.Fatal(err)
	}
}
