package gavel

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

func mkJob(id, workers int, model string, v100, p100, k80 float64) *job.Job {
	return &job.Job{
		ID: id, Model: model, Workers: workers, Epochs: 100, ItersPerEpoch: 100,
		Throughput: map[gpu.Type]float64{gpu.V100: v100, gpu.P100: p100, gpu.K80: k80},
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	return &sched.Context{Now: 0, RoundLength: 360, Horizon: 1e6, Cluster: c, Jobs: states}
}

func heteroCluster() *cluster.Cluster {
	return cluster.New(
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.P100: 3},
		gpu.Fleet{gpu.K80: 1},
	)
}

func validate(t *testing.T, c *cluster.Cluster, states []*sched.JobState, out map[int]cluster.Alloc) {
	t.Helper()
	free := cluster.NewState(c)
	byID := map[int]*sched.JobState{}
	for _, st := range states {
		byID[st.Job.ID] = st
	}
	for id, a := range out {
		st := byID[id]
		if st == nil {
			t.Fatalf("allocation for unknown job %d", id)
		}
		if err := sched.Validate(st.Job, a); err != nil {
			t.Fatal(err)
		}
		if a.Workers() > 0 {
			if err := free.Allocate(a); err != nil {
				t.Fatalf("capacity violation: %v", err)
			}
		}
	}
}

func TestSingleTypePerJob(t *testing.T) {
	c := heteroCluster()
	states := []*sched.JobState{
		newState(mkJob(0, 2, "A", 10, 5, 1)),
		newState(mkJob(1, 3, "B", 8, 6, 2)),
	}
	out := New(Options{}).Schedule(mkCtx(c, states...))
	validate(t, c, states, out)
	for id, a := range out {
		if len(a.Types()) > 1 {
			t.Errorf("job %d received a mixed-type allocation %v; Gavel is job-level", id, a)
		}
	}
}

func TestGavelCannotMixForLargeGang(t *testing.T) {
	// 3-worker gang, but no single type has 3 free devices. Gavel must
	// leave the job waiting — the paper's motivating limitation.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	st := newState(mkJob(0, 3, "A", 10, 0, 4))
	out := New(Options{}).Schedule(mkCtx(c, st))
	if a, ok := out[0]; ok && a.Workers() > 0 {
		t.Errorf("Gavel scheduled an impossible single-type gang: %v", a)
	}
}

func TestSchedulesOnEmptyCluster(t *testing.T) {
	c := heteroCluster()
	st := newState(mkJob(0, 2, "A", 10, 5, 1))
	out := New(Options{}).Schedule(mkCtx(c, st))
	if out[0].Workers() != 2 {
		t.Fatalf("single job not scheduled: %v", out)
	}
}

func TestPriorityFavorsUnderservedJob(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	starved := newState(mkJob(0, 2, "A", 10, 5, 1))
	fed := newState(mkJob(1, 2, "A", 10, 5, 1))
	fed.RoundsByType[gpu.V100] = 50 // has received many V100 rounds
	out := New(Options{}).Schedule(mkCtx(c, starved, fed))
	if out[0].Workers() != 2 {
		t.Errorf("underserved job not prioritized: %v", out)
	}
	if out[1].Workers() != 0 && len(out) > 1 {
		t.Errorf("overserved job scheduled ahead: %v", out)
	}
}

func TestTimeSharingAcrossRounds(t *testing.T) {
	// Two identical 2-worker jobs on 2 V100s: the LP gives each half the
	// V100 time; priority rounds must alternate them.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	a := newState(mkJob(0, 2, "A", 10, 0, 1))
	b := newState(mkJob(1, 2, "A", 10, 0, 1))
	s := New(Options{})
	gotV100 := map[int]int{}
	for round := 0; round < 6; round++ {
		out := s.Schedule(mkCtx(c, a, b))
		validate(t, c, []*sched.JobState{a, b}, out)
		for id, alloc := range out {
			st := a
			if id == 1 {
				st = b
			}
			st.Alloc = alloc
			for _, typ := range alloc.Types() {
				st.RoundsByType[typ]++
				if typ == gpu.V100 {
					gotV100[id]++
				}
			}
		}
	}
	if gotV100[0] == 0 || gotV100[1] == 0 {
		t.Errorf("V100 time not shared: %v", gotV100)
	}
	diff := gotV100[0] - gotV100[1]
	if diff < -2 || diff > 2 {
		t.Errorf("V100 rounds unbalanced: %v", gotV100)
	}
}

func TestLPCacheInvalidation(t *testing.T) {
	c := heteroCluster()
	s := New(Options{})
	st1 := newState(mkJob(0, 2, "A", 10, 5, 1))
	s.Schedule(mkCtx(c, st1))
	sig1 := s.cacheSig
	// Same class set: cache retained.
	s.Schedule(mkCtx(c, st1))
	if s.cacheSig != sig1 {
		t.Error("cache signature changed without workload change")
	}
	// New class arrives: cache recomputed.
	st2 := newState(mkJob(1, 1, "B", 3, 2, 1))
	s.Schedule(mkCtx(c, st1, st2))
	if s.cacheSig == sig1 {
		t.Error("cache not invalidated on workload change")
	}
}

func TestEmptyQueue(t *testing.T) {
	out := New(Options{}).Schedule(mkCtx(heteroCluster()))
	if len(out) != 0 {
		t.Errorf("non-empty decision for empty queue: %v", out)
	}
}

func TestHeterogeneityAwareTypeChoice(t *testing.T) {
	// A job 10x faster on V100 and a job only 1.5x faster on V100 (both
	// 1 worker, 1 V100 + 1 K80): the heterogeneity-sensitive job should
	// get the V100 and the insensitive one the K80 — Gavel's core
	// feature.
	c := cluster.New(gpu.Fleet{gpu.V100: 1, gpu.K80: 1})
	sensitive := newState(mkJob(0, 1, "resnet", 10, 0, 1))
	flat := newState(mkJob(1, 1, "a3c", 3, 0, 2))
	out := New(Options{}).Schedule(mkCtx(c, sensitive, flat))
	validate(t, c, []*sched.JobState{sensitive, flat}, out)
	if len(out) != 2 {
		t.Fatalf("both jobs should run: %v", out)
	}
	if out[0].Types()[0] != gpu.V100 {
		t.Errorf("heterogeneity-sensitive job on %v, want V100", out[0].Types())
	}
	if out[1].Types()[0] != gpu.K80 {
		t.Errorf("flat job on %v, want K80", out[1].Types())
	}
}

func TestManyJobsAggregateIntoSmallLP(t *testing.T) {
	// 200 jobs of 2 classes must schedule quickly and respect capacity.
	c := cluster.New(
		gpu.Fleet{gpu.V100: 8},
		gpu.Fleet{gpu.P100: 8},
		gpu.Fleet{gpu.K80: 8},
	)
	var states []*sched.JobState
	for i := 0; i < 200; i++ {
		model := "A"
		if i%2 == 1 {
			model = "B"
		}
		states = append(states, newState(mkJob(i, 1+i%2, model, 10, 5, 2)))
	}
	out := New(Options{}).Schedule(mkCtx(c, states...))
	validate(t, c, states, out)
	if len(out) == 0 {
		t.Error("nothing scheduled")
	}
}

// TestAllocationMatrixMatchesBruteForce cross-validates the LP against a
// dense grid search of the max-min objective on a 2-class, 2-type
// instance.
func TestAllocationMatrixMatchesBruteForce(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	fast := newState(mkJob(0, 1, "fast", 10, 0, 1)) // 10x on V100
	flat := newState(mkJob(1, 1, "flat", 4, 0, 3))  // barely cares
	s := New(Options{})
	y := s.allocationMatrix(mkCtx(c, fast, flat))

	// Normalized throughput of a class under fractions (v, k):
	// (v*Xv + k*Xk) / bestX. Constraints: v+k <= 1 per class,
	// sum of v <= 2, sum of k <= 2 (1 worker per job, 2 devices).
	score := func(v0, k0, v1, k1 float64) float64 {
		n0 := (v0*10 + k0*1) / 10
		n1 := (v1*4 + k1*3) / 4
		if n0 < n1 {
			return n0
		}
		return n1
	}
	best := 0.0
	const steps = 20
	for a := 0; a <= steps; a++ {
		for b := 0; a+b <= steps; b++ {
			for d := 0; d <= steps; d++ {
				for e := 0; d+e <= steps; e++ {
					v0, k0 := float64(a)/steps, float64(b)/steps
					v1, k1 := float64(d)/steps, float64(e)/steps
					if v0+v1 > 2 || k0+k1 > 2 {
						continue
					}
					if sc := score(v0, k0, v1, k1); sc > best {
						best = sc
					}
				}
			}
		}
	}
	yFast := y[classKey(fast.Job)]
	yFlat := y[classKey(flat.Job)]
	lpScore := score(yFast[gpu.V100], yFast[gpu.K80], yFlat[gpu.V100], yFlat[gpu.K80])
	if lpScore < best-0.06 { // grid resolution slack
		t.Errorf("LP max-min %.3f below brute force %.3f (fast=%v flat=%v)",
			lpScore, best, yFast, yFlat)
	}
}

// TestAllocationMatrixFractionsValid checks the LP output respects the
// per-class time budget and cluster capacity.
func TestAllocationMatrixFractionsValid(t *testing.T) {
	c := heteroCluster()
	states := []*sched.JobState{
		newState(mkJob(0, 2, "A", 10, 5, 1)),
		newState(mkJob(1, 3, "B", 8, 6, 2)),
		newState(mkJob(2, 1, "C", 3, 3, 3)),
	}
	s := New(Options{})
	y := s.allocationMatrix(mkCtx(c, states...))
	capUsed := map[gpu.Type]float64{}
	for _, st := range states {
		frac := y[classKey(st.Job)]
		sum := 0.0
		for t2 := gpu.Type(0); t2 < gpu.NumTypes; t2++ {
			if frac[t2] < -1e-9 {
				t.Errorf("negative fraction for job %d on %v", st.Job.ID, t2)
			}
			sum += frac[t2]
			capUsed[t2] += frac[t2] * float64(st.Job.Workers)
		}
		if sum > 1+1e-6 {
			t.Errorf("job %d time fractions sum to %v > 1", st.Job.ID, sum)
		}
	}
	for _, t2 := range c.Types() {
		if capUsed[t2] > float64(c.TotalOfType(t2))+1e-6 {
			t.Errorf("type %v over-subscribed: %v > %d", t2, capUsed[t2], c.TotalOfType(t2))
		}
	}
}
