// Package gavel implements the Gavel baseline (Narayanan et al., OSDI
// 2020) as configured in the Hadar paper's comparison: a job-level
// heterogeneity-aware scheduler that solves a max-min LP for the
// fraction of time each job should spend on each accelerator type, then
// realizes the fractions with round-based priority scheduling
// (priority = allocation / rounds received).
//
// Unlike Hadar, Gavel places all tasks of a job on a single accelerator
// type per round, so a gang can be blocked even when the cluster has
// enough devices across types — the limitation the paper's motivation
// example exploits.
//
// The LP is solved exactly with the internal simplex solver. Jobs with
// identical throughput profiles and gang sizes are symmetric in the LP
// and are aggregated into classes, so the LP stays small (at most
// #models x #gang-sizes classes) even for 2048-job traces; this mirrors
// Gavel's own scalability optimizations.
package gavel

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/lp"
	"repro/internal/sched"
)

// Options configures the baseline.
type Options struct {
	// Epsilon stabilizes the priority ratio for jobs with zero rounds
	// received.
	Epsilon float64
}

// Scheduler is the Gavel baseline; it implements sched.Scheduler and is
// not safe for concurrent use.
type Scheduler struct {
	opts Options

	// LP solution cache, invalidated when the class histogram changes.
	cacheSig string
	cacheY   map[string][]float64 // class key -> per-type time fraction
}

// New builds a Gavel scheduler.
func New(opts Options) *Scheduler {
	if opts.Epsilon <= 0 {
		opts.Epsilon = 1e-3
	}
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "gavel" }

// classKey groups jobs that are interchangeable in the allocation LP.
func classKey(j *job.Job) string {
	key := fmt.Sprintf("%s/%d", j.Model, j.Workers)
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		key += fmt.Sprintf("/%g", j.Speed(t))
	}
	return key
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	y := s.allocationMatrix(ctx)

	// Priority rounds: rank (job, type) pairs by Y / rounds-received and
	// admit greedily, one type per job (job-level allocation).
	type pair struct {
		st       *sched.JobState
		t        gpu.Type
		priority float64
	}
	var pairs []pair
	types := ctx.Cluster.Types()
	for _, st := range ctx.Jobs {
		frac, ok := y[classKey(st.Job)]
		if !ok {
			continue
		}
		for _, t := range types {
			if st.Job.Speed(t) <= 0 || frac[t] <= 0 {
				continue
			}
			received := s.opts.Epsilon
			if st.RoundsByType != nil {
				received += st.RoundsByType[t]
			}
			pairs = append(pairs, pair{st: st, t: t, priority: frac[t] / received})
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		if pairs[a].priority > pairs[b].priority {
			return true
		}
		if pairs[a].priority < pairs[b].priority {
			return false
		}
		if pairs[a].st.Job.ID != pairs[b].st.Job.ID {
			return pairs[a].st.Job.ID < pairs[b].st.Job.ID
		}
		return pairs[a].t < pairs[b].t
	})

	free := cluster.NewState(ctx.Cluster)
	for _, p := range pairs {
		if _, done := out[p.st.Job.ID]; done {
			continue
		}
		a, ok := sched.AllocSingleType(free, p.t, p.st.Job.Workers)
		if !ok {
			continue
		}
		out[p.st.Job.ID] = a
	}
	return out
}

// allocationMatrix returns, per class, the optimal per-type time
// fractions from the max-min LP, recomputing only when the active class
// histogram changes.
func (s *Scheduler) allocationMatrix(ctx *sched.Context) map[string][]float64 {
	// Histogram of classes.
	counts := map[string]int{}
	rep := map[string]*job.Job{}
	var keys []string
	for _, st := range ctx.Jobs {
		k := classKey(st.Job)
		if counts[k] == 0 {
			keys = append(keys, k)
			rep[k] = st.Job
		}
		counts[k]++
	}
	sort.Strings(keys)
	sig := ""
	for _, k := range keys {
		sig += fmt.Sprintf("%s=%d;", k, counts[k])
	}
	if sig == s.cacheSig && s.cacheY != nil {
		return s.cacheY
	}

	types := ctx.Cluster.Types()
	ng, nr := len(keys), len(types)
	// Variables: Y[g][r] laid out row-major, then lambda.
	nv := ng*nr + 1
	idx := func(g, r int) int { return g*nr + r }
	lambdaIdx := nv - 1

	var A [][]float64
	var B []float64
	row := func() []float64 { return make([]float64, nv) }

	for g, k := range keys {
		j := rep[k]
		// scale_g: best achievable per-job throughput, so lambda is the
		// min normalized throughput across classes.
		_, best, ok := j.BestType()
		if !ok {
			continue
		}
		// lambda*scale - sum_r Y_gr * X_gr * W <= 0.
		r1 := row()
		r1[lambdaIdx] = best * float64(j.Workers)
		for r, t := range types {
			r1[idx(g, r)] = -j.Speed(t) * float64(j.Workers)
		}
		A = append(A, r1)
		B = append(B, 0)
		// sum_r Y_gr <= 1.
		r2 := row()
		for r := range types {
			r2[idx(g, r)] = 1
		}
		A = append(A, r2)
		B = append(B, 1)
		// Forbid types that cannot host the gang or that the job cannot
		// use: Y_gr <= 0.
		for r, t := range types {
			if j.Speed(t) <= 0 || ctx.Cluster.TotalOfType(t) < j.Workers {
				r3 := row()
				r3[idx(g, r)] = 1
				A = append(A, r3)
				B = append(B, 0)
			}
		}
	}
	// Capacity per type: sum_g count_g * W_g * Y_gr <= C_r.
	for r, t := range types {
		rc := row()
		for g, k := range keys {
			rc[idx(g, r)] = float64(counts[k]) * float64(rep[k].Workers)
		}
		A = append(A, rc)
		B = append(B, float64(ctx.Cluster.TotalOfType(t)))
	}
	c := make([]float64, nv)
	c[lambdaIdx] = 1

	sol, err := lp.Solve(lp.Problem{C: c, A: A, B: B})
	y := make(map[string][]float64, ng)
	if err != nil || sol.Status != lp.Optimal {
		// Degenerate fallback: every class prefers its best type full
		// time. The priority rounds still enforce capacity.
		for _, k := range keys {
			frac := make([]float64, gpu.NumTypes)
			if t, _, ok := rep[k].BestType(); ok {
				frac[t] = 1
			}
			y[k] = frac
		}
	} else {
		for g, k := range keys {
			frac := make([]float64, gpu.NumTypes)
			for r, t := range types {
				if v := sol.X[idx(g, r)]; v > 1e-9 {
					frac[t] = v
				}
			}
			y[k] = frac
		}
	}
	s.cacheSig = sig
	s.cacheY = y
	return y
}
