// Package wal implements the write-ahead journal the scheduler service
// persists accepted mutations to, plus the CRC-protected checkpoint
// files that bound replay length.
//
// The journal is a single append-only file: an 8-byte magic header
// followed by frames of the form
//
//	[length uint32 LE][crc32(IEEE) of payload uint32 LE][payload]
//
// Appends happen with one write(2) per frame, so after a process kill
// (SIGKILL, panic, OOM) the file holds a prefix of whole frames plus at
// most one torn frame. Scan tolerates exactly that failure mode: it
// reads frames until the first torn or corrupt one, reports the valid
// prefix length, and the recovering writer truncates the tail before
// appending again. Losing page cache to a machine crash additionally
// requires fsync; the Writer's SyncPolicy chooses how eagerly to pay
// for that.
//
// The package knows nothing about record semantics — payloads are
// opaque bytes. internal/service defines the submit/cancel/round record
// encoding on top.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// magic identifies a journal file (version suffix 1).
var magic = [8]byte{'H', 'D', 'R', 'W', 'A', 'L', '0', '1'}

// ckptMagic identifies a checkpoint file.
var ckptMagic = [8]byte{'H', 'D', 'R', 'C', 'K', 'P', '0', '1'}

const (
	headerSize = 8
	frameHead  = 8 // u32 length + u32 crc
	// MaxRecord bounds a single record payload; a length field beyond it
	// is treated as a torn frame rather than an allocation request.
	MaxRecord = 16 << 20
)

// ErrNotJournal reports a file that exists, is long enough to carry a
// header, and does not start with the journal magic — almost certainly
// an operator error (wrong path), never a torn write.
var ErrNotJournal = errors.New("wal: file is not a journal (bad magic)")

// ErrCorrupt reports a checkpoint file that failed its integrity check.
var ErrCorrupt = errors.New("wal: corrupt checkpoint")

// ErrCrashInjected is returned by Append when the configured FailPoint
// cut the write short: the process is simulating a mid-append crash and
// must not journal anything further.
var ErrCrashInjected = errors.New("wal: injected crash during append")

// SyncPolicy selects when appended frames are fsynced to stable
// storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before every Append returns: an acknowledged
	// record survives machine crashes, at one fsync per record.
	SyncAlways SyncPolicy = iota
	// SyncGroup leaves fsync to the caller's group-commit loop (Sync is
	// called for a batch of records at once); acknowledgements are
	// expected to wait for the batch sync.
	SyncGroup
	// SyncOff never fsyncs: records reach the file with write(2) and
	// survive process kills, but a machine crash can lose the page
	// cache tail.
	SyncOff
)

// String names the policy (flag value form).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParsePolicy converts a flag value to a SyncPolicy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "group":
		return SyncGroup, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, group, or off)", s)
}

// FailPoint simulates a crash mid-append for chaos testing. Before each
// frame write it receives the file offset the frame would start at and
// the full frame bytes; returning keep >= 0 writes only the first keep
// bytes of the frame (a torn write) and makes Append return
// ErrCrashInjected. Returning keep < 0 lets the write proceed normally.
type FailPoint func(offset int64, frame []byte) (keep int)

// ScanResult describes the valid contents of a journal file.
type ScanResult struct {
	// Records holds every intact payload in append order.
	Records [][]byte
	// ValidSize is the byte length of the valid prefix (header plus
	// whole frames); a recovering writer truncates the file here.
	ValidSize int64
	// TruncatedBytes counts bytes past the valid prefix — a torn or
	// corrupt tail frame. Zero on a cleanly closed journal.
	TruncatedBytes int64
	// Existed reports whether the file was present at all.
	Existed bool
}

// Scan reads a journal, tolerating a torn or corrupt final frame: it
// returns every record in the valid prefix and where that prefix ends.
// A missing file or one killed before the header finished scans as an
// empty journal. A present file with a wrong magic fails with
// ErrNotJournal — that is a misconfiguration, not a crash artifact.
func Scan(path string) (*ScanResult, error) {
	res := &ScanResult{}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return res, nil
	}
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	res.Existed = true

	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	size := info.Size()
	if size < headerSize {
		// Killed between create and header write: everything is tail.
		res.TruncatedBytes = size
		return res, nil
	}
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("%w: %s", ErrNotJournal, path)
	}
	res.ValidSize = headerSize

	var fh [frameHead]byte
	for {
		remaining := size - res.ValidSize
		if remaining == 0 {
			return res, nil
		}
		if remaining < frameHead {
			break // torn frame header
		}
		if _, err := io.ReadFull(f, fh[:]); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		length := int64(binary.LittleEndian.Uint32(fh[0:4]))
		sum := binary.LittleEndian.Uint32(fh[4:8])
		if length > MaxRecord || length > remaining-frameHead {
			break // implausible or past EOF: torn length/payload
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt tail frame
		}
		res.Records = append(res.Records, payload)
		res.ValidSize += frameHead + length
	}
	res.TruncatedBytes = size - res.ValidSize
	return res, nil
}

// Writer appends CRC-framed records to a journal file. It is not safe
// for concurrent use; the scheduler service confines it to the engine
// goroutine.
type Writer struct {
	f         *os.File
	off       int64
	unsynced  bool
	policy    SyncPolicy
	failPoint FailPoint
	crashed   bool
	buf       []byte
}

// Create makes a fresh journal at path (truncating anything there),
// writes the header, and syncs it along with the containing directory
// so the file itself survives a crash.
func Create(path string, policy SyncPolicy, fp FailPoint) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(magic[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, off: headerSize, policy: policy, failPoint: fp}, nil
}

// OpenAppend reopens an existing journal for appending after recovery:
// it truncates the file to validSize (dropping any torn tail Scan
// found) and positions the writer at the end. validSize comes from
// Scan; passing 0 for a file that never got its header rebuilds it.
func OpenAppend(path string, validSize int64, policy SyncPolicy, fp FailPoint) (*Writer, error) {
	if validSize < headerSize {
		return Create(path, policy, fp)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Writer{f: f, off: validSize, policy: policy, failPoint: fp}, nil
}

// Append frames the payload and writes it with a single write call.
// Under SyncAlways it also fsyncs before returning, so a nil result
// means the record is on stable storage. If the configured FailPoint
// fires, only part of the frame reaches the file and Append returns
// ErrCrashInjected.
func (w *Writer) Append(payload []byte) error {
	if w.crashed {
		return ErrCrashInjected
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	w.buf = w.buf[:0]
	var fh [frameHead]byte
	binary.LittleEndian.PutUint32(fh[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fh[4:8], crc32.ChecksumIEEE(payload))
	w.buf = append(w.buf, fh[:]...)
	w.buf = append(w.buf, payload...)

	frame := w.buf
	if w.failPoint != nil {
		if keep := w.failPoint(w.off, frame); keep >= 0 {
			if keep > len(frame) {
				keep = len(frame)
			}
			w.crashed = true
			if keep > 0 {
				n, _ := w.f.Write(frame[:keep])
				w.off += int64(n)
			}
			return ErrCrashInjected
		}
	}
	n, err := w.f.Write(frame)
	w.off += int64(n)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.unsynced = true
	if w.policy == SyncAlways {
		return w.Sync()
	}
	return nil
}

// Sync flushes appended frames to stable storage. A no-op when nothing
// is pending or the policy is SyncOff.
func (w *Writer) Sync() error {
	if !w.unsynced || w.policy == SyncOff || w.crashed {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.unsynced = false
	return nil
}

// Size is the current journal length in bytes.
func (w *Writer) Size() int64 { return w.off }

// Policy reports the writer's sync policy.
func (w *Writer) Policy() SyncPolicy { return w.policy }

// Close syncs (regardless of policy, so a graceful shutdown is always
// durable) and closes the file.
func (w *Writer) Close() error {
	if w.crashed {
		return w.f.Close()
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	return w.f.Close()
}

// Abort closes the file descriptor without syncing — the crash-path
// counterpart of Close, used when simulating a kill in-process.
func (w *Writer) Abort() {
	w.f.Close()
}

// WriteCheckpoint atomically replaces the checkpoint at path: the
// CRC-framed payload is written to a temporary file, synced, and
// renamed over the target, then the directory is synced. A crash at
// any point leaves either the old checkpoint or the new one, never a
// torn mixture.
func WriteCheckpoint(path string, payload []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var fh [headerSize + frameHead]byte
	copy(fh[:headerSize], ckptMagic[:])
	binary.LittleEndian.PutUint32(fh[headerSize:headerSize+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(fh[headerSize+4:], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(fh[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(filepath.Dir(path))
}

// ReadCheckpoint loads and verifies a checkpoint written by
// WriteCheckpoint. A missing file returns os.ErrNotExist; any framing
// or CRC failure returns an error wrapping ErrCorrupt, which recovery
// treats as "no usable checkpoint" and falls back to full replay.
func ReadCheckpoint(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize+frameHead {
		return nil, fmt.Errorf("%w: %s: short file (%d bytes)", ErrCorrupt, path, len(data))
	}
	var m [headerSize]byte
	copy(m[:], data[:headerSize])
	if m != ckptMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	length := int(binary.LittleEndian.Uint32(data[headerSize : headerSize+4]))
	sum := binary.LittleEndian.Uint32(data[headerSize+4 : headerSize+frameHead])
	payload := data[headerSize+frameHead:]
	if length != len(payload) {
		return nil, fmt.Errorf("%w: %s: length %d but %d payload bytes", ErrCorrupt, path, length, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorrupt, path)
	}
	return payload, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed file's
// directory entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return nil
}
