package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeRecords(t *testing.T, path string, policy SyncPolicy, recs ...string) {
	t.Helper()
	w, err := Create(path, policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

func TestScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	writeRecords(t, path, SyncAlways, "alpha", "beta", "", "gamma with a longer payload")
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "beta", "", "gamma with a longer payload"}
	if len(res.Records) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(res.Records), len(want))
	}
	for i, r := range res.Records {
		if string(r) != want[i] {
			t.Errorf("record %d = %q, want %q", i, r, want[i])
		}
	}
	if res.TruncatedBytes != 0 {
		t.Errorf("TruncatedBytes = %d on a clean journal", res.TruncatedBytes)
	}
	if res.ValidSize != fileSize(t, path) {
		t.Errorf("ValidSize = %d, file is %d", res.ValidSize, fileSize(t, path))
	}
}

// TestScanDamagedTails drives Scan through every tail-damage shape a
// killed process can leave behind and checks the valid prefix survives.
func TestScanDamagedTails(t *testing.T) {
	cases := []struct {
		name string
		// damage mutates a 3-record journal file in place.
		damage      func(t *testing.T, path string)
		wantRecords int
		wantErr     error
	}{
		{
			name:        "missing file",
			damage:      func(t *testing.T, path string) { os.Remove(path) },
			wantRecords: 0,
		},
		{
			name: "empty file",
			damage: func(t *testing.T, path string) {
				if err := os.Truncate(path, 0); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0,
		},
		{
			name: "killed mid-header",
			damage: func(t *testing.T, path string) {
				if err := os.Truncate(path, 3); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0,
		},
		{
			name:        "header only",
			damage:      func(t *testing.T, path string) { truncateTo(t, path, headerSize) },
			wantRecords: 0,
		},
		{
			name: "torn frame header",
			damage: func(t *testing.T, path string) {
				truncateTo(t, path, fileSize(t, path)-int64(len("record-2"))-3)
			},
			wantRecords: 2,
		},
		{
			name: "torn payload",
			damage: func(t *testing.T, path string) {
				truncateTo(t, path, fileSize(t, path)-2)
			},
			wantRecords: 2,
		},
		{
			name: "corrupt final crc",
			damage: func(t *testing.T, path string) {
				flipLastByte(t, path)
			},
			wantRecords: 2,
		},
		{
			name: "garbage appended after valid frames",
			damage: func(t *testing.T, path string) {
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				// A plausible-length frame header with a wrong checksum.
				if _, err := f.Write([]byte{2, 0, 0, 0, 9, 9, 9, 9, 'x', 'y'}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			wantRecords: 3,
		},
		{
			name: "implausible length field",
			damage: func(t *testing.T, path string) {
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}); err != nil {
					t.Fatal(err)
				}
				f.Close()
			},
			wantRecords: 3,
		},
		{
			name: "not a journal",
			damage: func(t *testing.T, path string) {
				if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: ErrNotJournal,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.wal")
			writeRecords(t, path, SyncOff, "record-0", "record-1", "record-2")
			tc.damage(t, path)
			res, err := Scan(path)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Scan = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Records) != tc.wantRecords {
				t.Fatalf("scanned %d records, want %d", len(res.Records), tc.wantRecords)
			}
			for i, r := range res.Records {
				if want := fmt.Sprintf("record-%d", i); string(r) != want {
					t.Errorf("record %d = %q, want %q", i, r, want)
				}
			}

			// Recovery must be able to append after the damage: reopen at
			// the valid prefix, append, and rescan.
			w, err := OpenAppend(path, res.ValidSize, SyncAlways, nil)
			if err != nil {
				t.Fatalf("OpenAppend after damage: %v", err)
			}
			next := fmt.Sprintf("record-%d", tc.wantRecords)
			if err := w.Append([]byte(next)); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			res2, err := Scan(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(res2.Records) != tc.wantRecords+1 {
				t.Fatalf("after append: %d records, want %d", len(res2.Records), tc.wantRecords+1)
			}
			if got := string(res2.Records[tc.wantRecords]); got != next {
				t.Errorf("appended record = %q, want %q", got, next)
			}
			if res2.TruncatedBytes != 0 {
				t.Errorf("TruncatedBytes = %d after recovery append", res2.TruncatedBytes)
			}
		})
	}
}

func truncateTo(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func flipLastByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFailPointTornWrite injects a mid-append crash and checks the torn
// frame is invisible to Scan while every earlier record survives.
func TestFailPointTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	cut := false
	fp := func(offset int64, frame []byte) int {
		if offset > headerSize && !cut { // tear the second record
			cut = true
			return len(frame) / 2
		}
		return -1
	}
	w, err := Create(path, SyncOff, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("torn-in-half")); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Append under fail point = %v, want ErrCrashInjected", err)
	}
	// A crashed writer refuses further work.
	if err := w.Append([]byte("after")); !errors.Is(err, ErrCrashInjected) {
		t.Fatalf("Append after crash = %v, want ErrCrashInjected", err)
	}
	w.Abort()

	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || string(res.Records[0]) != "survives" {
		t.Fatalf("scan after torn write = %q", res.Records)
	}
	if res.TruncatedBytes == 0 {
		t.Error("torn frame left no truncated tail")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "checkpoint.ckpt")
	if _, err := ReadCheckpoint(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint read = %v, want ErrNotExist", err)
	}
	payload := []byte(`{"seq": 42}`)
	if err := WriteCheckpoint(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("checkpoint = %q, want %q", got, payload)
	}

	// Overwrite is atomic: the new payload fully replaces the old.
	next := []byte(`{"seq": 43, "more": true}`)
	if err := WriteCheckpoint(path, next); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(next) {
		t.Errorf("checkpoint after overwrite = %q, want %q", got, next)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name   string
		mutate func(t *testing.T, path string)
	}{
		{"flipped payload byte", flipLastByte},
		{"truncated", func(t *testing.T, path string) { truncateTo(t, path, fileSize(t, path)-4) }},
		{"short file", func(t *testing.T, path string) { truncateTo(t, path, 5) }},
		{"bad magic", func(t *testing.T, path string) {
			if err := os.WriteFile(path, make([]byte, 64), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("ckpt-%d", i))
			if err := WriteCheckpoint(path, []byte("engine state here")); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, path)
			if _, err := ReadCheckpoint(path); !errors.Is(err, ErrCorrupt) {
				t.Errorf("ReadCheckpoint = %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestSyncPolicyParsing(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncGroup, SyncOff} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("ParsePolicy accepted an unknown policy")
	}
}

// TestOpenAppendOnFreshPath covers recovery pointed at a directory that
// has a journal path but no journal yet (validSize 0 from a fresh scan).
func TestOpenAppendOnFreshPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	w, err := OpenAppend(path, 0, SyncAlways, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || string(res.Records[0]) != "first" {
		t.Fatalf("records = %q", res.Records)
	}
}
