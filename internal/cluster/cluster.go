// Package cluster models the heterogeneous GPU cluster that the Hadar
// scheduler and its baselines allocate from: a set of machines (nodes),
// each holding a fleet of accelerators of possibly several types
// (capacity c_h^r in the paper), plus the allocation bookkeeping used by
// the simulator and the schedulers.
//
// It also supports injecting per-node slowdown factors to model
// straggling machines, an effect the paper's continuous-trace evaluation
// credits Hadar with handling well.
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bug"
	"repro/internal/gpu"
)

// Node is one machine in the cluster.
type Node struct {
	// ID is the node's index within the cluster; Cluster.New assigns it.
	ID int
	// Capacity is c_h^r: the number of accelerators of each type on this
	// machine.
	Capacity gpu.Fleet
	// Speed is a throughput multiplier for every accelerator on the
	// node; 1.0 is nominal, values below 1 model stragglers (e.g.
	// thermal throttling or a slow PCIe link). Must be positive.
	Speed float64
}

// Cluster is an immutable description of the machines. Allocation state
// lives in State.
type Cluster struct {
	nodes []Node
}

// New builds a cluster from node capacities. Node IDs are assigned in
// order; a zero Speed is normalized to 1.0.
func New(capacities ...gpu.Fleet) *Cluster {
	c := &Cluster{nodes: make([]Node, len(capacities))}
	for i, cap := range capacities {
		c.nodes[i] = Node{ID: i, Capacity: cap.Clone(), Speed: 1.0}
	}
	return c
}

// Homogeneous builds a cluster of n identical nodes, each holding
// perNode accelerators of type t.
func Homogeneous(n int, t gpu.Type, perNode int) *Cluster {
	fleets := make([]gpu.Fleet, n)
	for i := range fleets {
		fleets[i] = gpu.Fleet{t: perNode}
	}
	return New(fleets...)
}

// Merge concatenates the nodes of several clusters into one, reassigning
// node IDs.
func Merge(clusters ...*Cluster) *Cluster {
	out := &Cluster{}
	for _, c := range clusters {
		for _, n := range c.nodes {
			n.ID = len(out.nodes)
			out.nodes = append(out.nodes, n)
		}
	}
	return out
}

// NumNodes returns the machine count H.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the node with the given ID. It panics on an invalid ID.
func (c *Cluster) Node(id int) Node {
	return c.nodes[id]
}

// Nodes returns the nodes in ID order. The returned slice must not be
// modified.
func (c *Cluster) Nodes() []Node { return c.nodes }

// SetSpeed sets node id's straggler factor. It panics if speed <= 0.
func (c *Cluster) SetSpeed(id int, speed float64) {
	if speed <= 0 {
		bug.Failf("cluster: non-positive speed %v for node %d", speed, id)
	}
	c.nodes[id].Speed = speed
}

// Speed returns node id's straggler factor.
func (c *Cluster) Speed(id int) float64 { return c.nodes[id].Speed }

// UniformSpeed reports whether every node runs at the same straggler
// factor — the common case, since New normalizes speeds to 1.0 and only
// the straggler experiments change them. Placement code uses it to pick
// scan orders that need no per-node speed tiebreak.
func (c *Cluster) UniformSpeed() bool {
	for _, n := range c.nodes[1:] {
		if n.Speed < c.nodes[0].Speed || n.Speed > c.nodes[0].Speed {
			return false
		}
	}
	return true
}

// Capacity returns c_h^r for node id and type t.
func (c *Cluster) Capacity(id int, t gpu.Type) int {
	return c.nodes[id].Capacity.Count(t)
}

// TotalOfType returns the cluster-wide count of accelerators of type t.
func (c *Cluster) TotalOfType(t gpu.Type) int {
	n := 0
	for _, node := range c.nodes {
		n += node.Capacity.Count(t)
	}
	return n
}

// TotalGPUs returns the cluster-wide accelerator count across all types.
func (c *Cluster) TotalGPUs() int {
	n := 0
	for _, node := range c.nodes {
		n += node.Capacity.Total()
	}
	return n
}

// Types returns the accelerator types present anywhere in the cluster,
// in ascending Type order.
func (c *Cluster) Types() []gpu.Type {
	total := gpu.Fleet{}
	for _, node := range c.nodes {
		total.Add(node.Capacity)
	}
	return total.Types()
}

// String renders a short description, e.g. "cluster[15 nodes, {V100:20 P100:20 K80:20}]".
func (c *Cluster) String() string {
	total := gpu.Fleet{}
	for _, node := range c.nodes {
		total.Add(node.Capacity)
	}
	return fmt.Sprintf("cluster[%d nodes, %s]", len(c.nodes), total)
}

// Without returns a copy of the cluster in which the given nodes have
// zero capacity (their IDs remain valid, so allocations elsewhere are
// unaffected). The simulator uses it to present a failed machine to the
// schedulers.
func (c *Cluster) Without(down map[int]bool) *Cluster {
	out := &Cluster{nodes: make([]Node, len(c.nodes))}
	copy(out.nodes, c.nodes)
	for i := range out.nodes {
		if down[out.nodes[i].ID] {
			out.nodes[i].Capacity = gpu.Fleet{}
		} else {
			out.nodes[i].Capacity = out.nodes[i].Capacity.Clone()
		}
	}
	return out
}

// Placement assigns Count accelerators of one type on one node to a job.
type Placement struct {
	Node  int
	Type  gpu.Type
	Count int
}

// Alloc is a job's full task-level allocation: a set of placements whose
// counts sum to either 0 or the job's gang size W_j. A nil Alloc means
// "not scheduled this round".
type Alloc []Placement

// Workers returns the total accelerator count of the allocation.
func (a Alloc) Workers() int {
	n := 0
	for _, p := range a {
		n += p.Count
	}
	return n
}

// NumNodes returns how many distinct nodes the allocation spans.
func (a Alloc) NumNodes() int {
	seen := map[int]bool{}
	for _, p := range a {
		if p.Count > 0 {
			seen[p.Node] = true
		}
	}
	return len(seen)
}

// Types returns the distinct accelerator types used, ascending.
func (a Alloc) Types() []gpu.Type {
	f := gpu.Fleet{}
	for _, p := range a {
		if p.Count > 0 {
			f[p.Type] += p.Count
		}
	}
	return f.Types()
}

// Canonical returns an equivalent allocation with zero-count placements
// dropped, same-(node,type) placements merged, and entries sorted by
// (node, type). Canonical forms compare with Equal.
func (a Alloc) Canonical() Alloc {
	merged := map[[2]int]int{}
	for _, p := range a {
		if p.Count > 0 {
			merged[[2]int{p.Node, int(p.Type)}] += p.Count
		}
	}
	out := make(Alloc, 0, len(merged))
	//lint:ignore maprange the result is fully sorted by (node, type) immediately below
	for k, count := range merged {
		out = append(out, Placement{Node: k[0], Type: gpu.Type(k[1]), Count: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// Equal reports whether two allocations place the same counts on the
// same (node, type) pairs, regardless of entry order or splitting.
func (a Alloc) Equal(b Alloc) bool {
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (a Alloc) Clone() Alloc {
	if a == nil {
		return nil
	}
	return append(Alloc(nil), a...)
}

// String renders e.g. "[n0:V100x2 n3:K80x1]".
func (a Alloc) String() string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, p := range a.Canonical() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "n%d:%sx%d", p.Node, p.Type, p.Count)
	}
	sb.WriteByte(']')
	return sb.String()
}

// State (see state.go) tracks free accelerators per (node, type)
// against a cluster's capacities.
