package cluster

import (
	"testing"

	"repro/internal/gpu"
)

// TestVersionAt checks the per-cell change counter: it must advance on
// every mutation in either direction — including each undo of a
// rollback — so version-tagged caches can never treat a rolled-back
// state as unchanged.
func TestVersionAt(t *testing.T) {
	s := NewState(scriptCluster())
	a := Alloc{{Node: 0, Type: gpu.V100, Count: 2}}

	if v := s.VersionAt(0, gpu.V100); v != 0 {
		t.Fatalf("fresh state version = %d, want 0", v)
	}
	if err := s.Allocate(a); err != nil {
		t.Fatal(err)
	}
	if v := s.VersionAt(0, gpu.V100); v != 1 {
		t.Fatalf("version after Allocate = %d, want 1", v)
	}
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if v := s.VersionAt(0, gpu.V100); v != 2 {
		t.Fatalf("version after Release = %d, want 2", v)
	}

	// A rollback restores the old free count but must still bump the
	// version: same count, different version.
	freeBefore := s.Free(0, gpu.V100)
	sp := s.Savepoint()
	if err := s.Allocate(a); err != nil {
		t.Fatal(err)
	}
	s.Rollback(sp)
	if got := s.Free(0, gpu.V100); got != freeBefore {
		t.Fatalf("rollback did not restore free count: %d, want %d", got, freeBefore)
	}
	if v := s.VersionAt(0, gpu.V100); v != 4 {
		t.Fatalf("version after allocate+rollback = %d, want 4 (one bump per direction)", v)
	}

	// Untouched cells never move.
	if v := s.VersionAt(1, gpu.V100); v != 0 {
		t.Fatalf("untouched cell version = %d, want 0", v)
	}
}

// TestUniformCap checks the per-type capacity classification on a
// deliberately mixed cluster.
func TestUniformCap(t *testing.T) {
	// scriptCluster: V100 caps {4, 4} (nodes 0, 1), P100 caps {2, 3},
	// K80 cap {1}, T4 cap {2}, K520 cap {4}.
	s := NewState(scriptCluster())
	cases := []struct {
		t    gpu.Type
		want int
	}{
		{gpu.V100, 4},
		{gpu.P100, -1},
		{gpu.K80, 1},
		{gpu.T4, 2},
		{gpu.K520, 4},
	}
	for _, c := range cases {
		if got := s.UniformCap(c.t); got != c.want {
			t.Errorf("UniformCap(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

// TestCloneDeepCopiesIndexes mutates a clone and checks the original's
// indexes and versions are untouched (and vice versa).
func TestCloneDeepCopiesIndexes(t *testing.T) {
	s := NewState(scriptCluster())
	a := Alloc{{Node: 1, Type: gpu.V100, Count: 4}}
	clone := s.Clone()
	if err := clone.Allocate(a); err != nil {
		t.Fatal(err)
	}
	if got := s.Free(1, gpu.V100); got != 4 {
		t.Fatalf("clone mutation leaked into original: free = %d, want 4", got)
	}
	if v := s.VersionAt(1, gpu.V100); v != 0 {
		t.Fatalf("clone mutation bumped original version: %d, want 0", v)
	}
	checkCounters(t, s)
	checkCounters(t, clone)
	if err := s.Allocate(a); err != nil {
		t.Fatal(err)
	}
	checkCounters(t, s)
	checkCounters(t, clone)
	if s.Hash() != clone.Hash() {
		t.Fatal("identical mutations produced different hashes")
	}
}

// TestUniformSpeed covers the straggler classification New/SetSpeed
// feed into the placement fast paths.
func TestUniformSpeed(t *testing.T) {
	c := scriptCluster()
	if !c.UniformSpeed() {
		t.Fatal("freshly built cluster must be uniform speed")
	}
	c.SetSpeed(2, 0.5)
	if c.UniformSpeed() {
		t.Fatal("cluster with a straggler reported uniform speed")
	}
	c.SetSpeed(2, 1.0)
	if !c.UniformSpeed() {
		t.Fatal("restored cluster must be uniform speed again")
	}
}
