package cluster

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func paperSimCluster() *Cluster {
	// 15 nodes, 20 of each type: 5 nodes x 4 GPUs per type.
	return Merge(
		Homogeneous(5, gpu.V100, 4),
		Homogeneous(5, gpu.P100, 4),
		Homogeneous(5, gpu.K80, 4),
	)
}

func TestNewAssignsIDsAndSpeeds(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 1})
	if c.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	for i := 0; i < 2; i++ {
		if c.Node(i).ID != i {
			t.Errorf("node %d has ID %d", i, c.Node(i).ID)
		}
		if c.Speed(i) != 1.0 {
			t.Errorf("node %d default speed %v", i, c.Speed(i))
		}
	}
}

func TestNewClonesCapacity(t *testing.T) {
	f := gpu.Fleet{gpu.V100: 2}
	c := New(f)
	f[gpu.V100] = 99
	if c.Capacity(0, gpu.V100) != 2 {
		t.Error("New shares caller's fleet storage")
	}
}

func TestHomogeneousAndMerge(t *testing.T) {
	c := paperSimCluster()
	if c.NumNodes() != 15 {
		t.Errorf("NumNodes = %d, want 15", c.NumNodes())
	}
	if c.TotalGPUs() != 60 {
		t.Errorf("TotalGPUs = %d, want 60", c.TotalGPUs())
	}
	for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		if c.TotalOfType(typ) != 20 {
			t.Errorf("TotalOfType(%v) = %d, want 20", typ, c.TotalOfType(typ))
		}
	}
	// Merge must reassign IDs contiguously.
	for i := 0; i < 15; i++ {
		if c.Node(i).ID != i {
			t.Errorf("merged node %d has ID %d", i, c.Node(i).ID)
		}
	}
}

func TestTypesSorted(t *testing.T) {
	c := paperSimCluster()
	types := c.Types()
	want := []gpu.Type{gpu.V100, gpu.P100, gpu.K80}
	if len(types) != len(want) {
		t.Fatalf("Types = %v", types)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("Types = %v, want %v", types, want)
		}
	}
}

func TestSetSpeed(t *testing.T) {
	c := Homogeneous(1, gpu.V100, 1)
	c.SetSpeed(0, 0.5)
	if c.Speed(0) != 0.5 {
		t.Error("SetSpeed did not take")
	}
	defer func() {
		if recover() == nil {
			t.Error("SetSpeed(0) did not panic")
		}
	}()
	c.SetSpeed(0, 0)
}

func TestAllocWorkersNodesTypes(t *testing.T) {
	a := Alloc{
		{Node: 0, Type: gpu.V100, Count: 2},
		{Node: 1, Type: gpu.K80, Count: 1},
		{Node: 0, Type: gpu.V100, Count: 1},
	}
	if a.Workers() != 4 {
		t.Errorf("Workers = %d, want 4", a.Workers())
	}
	if a.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", a.NumNodes())
	}
	types := a.Types()
	if len(types) != 2 || types[0] != gpu.V100 || types[1] != gpu.K80 {
		t.Errorf("Types = %v", types)
	}
}

func TestAllocCanonicalMergesAndSorts(t *testing.T) {
	a := Alloc{
		{Node: 1, Type: gpu.K80, Count: 1},
		{Node: 0, Type: gpu.V100, Count: 1},
		{Node: 0, Type: gpu.V100, Count: 2},
		{Node: 2, Type: gpu.P100, Count: 0}, // dropped
	}
	c := a.Canonical()
	if len(c) != 2 {
		t.Fatalf("Canonical = %v", c)
	}
	if c[0] != (Placement{0, gpu.V100, 3}) || c[1] != (Placement{1, gpu.K80, 1}) {
		t.Errorf("Canonical = %v", c)
	}
}

func TestAllocEqual(t *testing.T) {
	a := Alloc{{0, gpu.V100, 2}, {1, gpu.K80, 1}}
	b := Alloc{{1, gpu.K80, 1}, {0, gpu.V100, 1}, {0, gpu.V100, 1}}
	if !a.Equal(b) {
		t.Error("order/split-insensitive Equal failed")
	}
	c := Alloc{{0, gpu.V100, 2}}
	if a.Equal(c) {
		t.Error("unequal allocations reported equal")
	}
	var nilAlloc Alloc
	if !nilAlloc.Equal(Alloc{}) {
		t.Error("nil != empty")
	}
}

func TestAllocCloneIndependent(t *testing.T) {
	a := Alloc{{0, gpu.V100, 2}}
	b := a.Clone()
	b[0].Count = 9
	if a[0].Count != 2 {
		t.Error("Clone shares storage")
	}
	var n Alloc
	if n.Clone() != nil {
		t.Error("nil Clone not nil")
	}
}

func TestAllocString(t *testing.T) {
	a := Alloc{{Node: 3, Type: gpu.K80, Count: 1}, {Node: 0, Type: gpu.V100, Count: 2}}
	if got := a.String(); got != "[n0:V100x2 n3:K80x1]" {
		t.Errorf("String = %q", got)
	}
}

func TestStateAllocateRelease(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 2, gpu.K80: 1})
	s := NewState(c)
	if s.TotalFree() != 3 {
		t.Fatalf("TotalFree = %d", s.TotalFree())
	}
	a := Alloc{{0, gpu.V100, 2}}
	if err := s.Allocate(a); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if s.Free(0, gpu.V100) != 0 || s.FreeOfType(gpu.K80) != 1 {
		t.Error("free counts wrong after Allocate")
	}
	if err := s.Release(a); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.TotalFree() != 3 {
		t.Error("free counts wrong after Release")
	}
}

func TestStateAllocateOverCapacity(t *testing.T) {
	s := NewState(New(gpu.Fleet{gpu.V100: 1}))
	err := s.Allocate(Alloc{{0, gpu.V100, 2}})
	if err == nil {
		t.Fatal("over-allocation accepted")
	}
	if s.Free(0, gpu.V100) != 1 {
		t.Error("failed Allocate mutated state")
	}
}

func TestStateAllocateAtomicity(t *testing.T) {
	// Second placement invalid: the first must not be applied.
	s := NewState(New(gpu.Fleet{gpu.V100: 2}))
	err := s.Allocate(Alloc{{0, gpu.V100, 1}, {5, gpu.K80, 1}})
	if err == nil {
		t.Fatal("invalid node accepted")
	}
	if s.Free(0, gpu.V100) != 2 {
		t.Error("partial allocation applied")
	}
}

func TestStateDoubleReleaseRejected(t *testing.T) {
	s := NewState(New(gpu.Fleet{gpu.V100: 1}))
	a := Alloc{{0, gpu.V100, 1}}
	if err := s.Allocate(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(a); err == nil {
		t.Error("double release accepted")
	}
}

func TestStateInvalidTypeRejected(t *testing.T) {
	s := NewState(New(gpu.Fleet{gpu.V100: 1}))
	if err := s.Allocate(Alloc{{0, gpu.Type(99), 1}}); err == nil {
		t.Error("invalid type accepted")
	}
}

func TestStateCloneIndependent(t *testing.T) {
	s := NewState(New(gpu.Fleet{gpu.V100: 2}))
	c := s.Clone()
	if err := c.Allocate(Alloc{{0, gpu.V100, 1}}); err != nil {
		t.Fatal(err)
	}
	if s.Free(0, gpu.V100) != 2 {
		t.Error("Clone shares free counts")
	}
}

func TestStateKeyDistinguishesStates(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 3})
	s1 := NewState(c)
	s2 := NewState(c)
	if s1.Key() != s2.Key() {
		t.Error("identical states have different keys")
	}
	if err := s2.Allocate(Alloc{{1, gpu.K80, 1}}); err != nil {
		t.Fatal(err)
	}
	if s1.Key() == s2.Key() {
		t.Error("different states share a key")
	}
}

func TestStateKeyLargeCounts(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 300}, gpu.Fleet{gpu.V100: 299})
	s1 := NewState(c)
	s2 := s1.Clone()
	if err := s2.Allocate(Alloc{{0, gpu.V100, 1}}); err != nil {
		t.Fatal(err)
	}
	if s1.Key() == s2.Key() {
		t.Error("keys collide for counts >= 250")
	}
}

// Property: Allocate followed by Release restores the exact free state.
func TestAllocateReleaseRoundTripProperty(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 4, gpu.K80: 4}, gpu.Fleet{gpu.P100: 4})
	prop := func(n1, n2, n3 uint8) bool {
		s := NewState(c)
		before := s.Key()
		a := Alloc{
			{0, gpu.V100, int(n1 % 5)},
			{0, gpu.K80, int(n2 % 5)},
			{1, gpu.P100, int(n3 % 5)},
		}
		if err := s.Allocate(a); err != nil {
			return s.Key() == before // failed allocation must not mutate
		}
		if err := s.Release(a); err != nil {
			return false
		}
		return s.Key() == before
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: free counts never go negative or exceed capacity under a
// random sequence of allocate/release pairs.
func TestFreeBoundsProperty(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 3}, gpu.Fleet{gpu.V100: 2, gpu.K80: 2})
	prop := func(ops []uint8) bool {
		s := NewState(c)
		var held []Alloc
		for _, op := range ops {
			node := int(op) % 2
			count := int(op/2)%3 + 1
			typ := gpu.V100
			if op%5 == 0 {
				typ = gpu.K80
			}
			a := Alloc{{node, typ, count}}
			if op%3 == 0 && len(held) > 0 {
				if err := s.Release(held[0]); err != nil {
					return false
				}
				held = held[1:]
			} else if err := s.Allocate(a); err == nil {
				held = append(held, a)
			}
			for id := 0; id < 2; id++ {
				for _, typ := range gpu.AllTypes() {
					f := s.Free(id, typ)
					if f < 0 || f > c.Capacity(id, typ) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWithoutZeroesFailedNodes(t *testing.T) {
	c := New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 3})
	c.SetSpeed(1, 0.5)
	view := c.Without(map[int]bool{0: true})
	if view.Capacity(0, gpu.V100) != 0 {
		t.Error("failed node still has capacity")
	}
	if view.Capacity(1, gpu.K80) != 3 {
		t.Error("healthy node capacity changed")
	}
	if view.Speed(1) != 0.5 {
		t.Error("node speed not preserved")
	}
	// The original cluster must be untouched.
	if c.Capacity(0, gpu.V100) != 2 {
		t.Error("Without mutated the original cluster")
	}
	// Node IDs stay stable so allocations elsewhere remain valid.
	if view.Node(1).ID != 1 || view.NumNodes() != 2 {
		t.Error("node identity changed")
	}
}
