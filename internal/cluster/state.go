package cluster

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/bug"
	"repro/internal/gpu"
)

// State tracks free accelerators per (node, type) against a cluster's
// capacities. It is the working object schedulers allocate from and the
// simulator validates against.
//
// Free counts live in one flat []int32 indexed by node*gpu.NumTypes+type,
// with cluster-wide per-type and total free counters and a 64-bit
// Zobrist-style hash all maintained incrementally, so the scheduling
// inner loop reads and memoizes allocation state without touching maps
// or allocating.
//
// State additionally offers a transactional API for speculative
// allocation (Hadar's DP branches on allocate-vs-skip thousands of times
// per round): Savepoint opens a transaction, Rollback undoes every
// Allocate/Release since the matching Savepoint, and Commit keeps them.
// Savepoints nest with stack discipline — the most recent open savepoint
// must be rolled back or committed first. A State is not safe for
// concurrent use.
type State struct {
	c      *Cluster
	free   []int32 // node*gpu.NumTypes + type
	cap    []int32 // same layout; immutable after NewState
	byType [gpu.NumTypes]int
	total  int
	hash   uint64

	// ver counts every mutation of a cell, in both directions: apply and
	// undo each bump it, so a rollback that restores an old free count
	// still advances the version. Caches keyed on VersionAt therefore can
	// never serve a value computed before a rollback as current.
	ver []uint32

	// nz[t] is a bitmap over node IDs (64 nodes per word, bit order =
	// node order) of the nodes with free[node,t] > 0, and byFree[t][f] is
	// a bitmap of the nodes with exactly f free devices of t
	// (1 <= f <= the type's largest per-node capacity). Together they
	// serve the placement scans — ascending-node free lists and the
	// consolidation order (free descending, node ascending) — without
	// touching nodes that have nothing free and without sorting.
	nz     [gpu.NumTypes][]uint64
	byFree [gpu.NumTypes][][]uint64

	// uniformCap[t] is the common per-node capacity of type t when every
	// node holding the type has the same capacity, -1 when capacities
	// are mixed, and 0 when no node has the type. Immutable after
	// NewState.
	uniformCap [gpu.NumTypes]int32

	// Undo journal, recorded only while at least one savepoint is open.
	journal []journalEntry
	marks   []int // journal length at each open savepoint

	scratch []NodeFree // reusable placement-scan buffer
}

type journalEntry struct {
	cell  int32
	delta int32
}

const stride = int(gpu.NumTypes)

// cellHash returns the Zobrist key of one (cell, count) pair: a
// splitmix64-finalized mix of the flat cell index and its free count.
// The state hash is the XOR of cellHash over all cells, so any single
// count change updates it with two XORs.
func cellHash(cell int, count int32) uint64 {
	x := uint64(cell)<<32 ^ uint64(uint32(count))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewState returns a fully free state for the cluster.
func NewState(c *Cluster) *State {
	n := c.NumNodes() * stride
	s := &State{c: c, free: make([]int32, n), cap: make([]int32, n), ver: make([]uint32, n)}
	var maxCap [gpu.NumTypes]int32
	for i, node := range c.nodes {
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			count := node.Capacity[t]
			if count == 0 {
				continue
			}
			cell := i*stride + int(t)
			s.free[cell] = int32(count)
			s.cap[cell] = int32(count)
			s.byType[t] += count
			s.total += count
			if int32(count) > maxCap[t] {
				maxCap[t] = int32(count)
			}
			switch {
			case s.uniformCap[t] == 0:
				s.uniformCap[t] = int32(count)
			case s.uniformCap[t] != int32(count):
				s.uniformCap[t] = -1
			}
		}
	}
	for cell, f := range s.free {
		s.hash ^= cellHash(cell, f)
	}
	words := (c.NumNodes() + 63) / 64
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if maxCap[t] == 0 {
			continue
		}
		s.nz[t] = make([]uint64, words)
		s.byFree[t] = make([][]uint64, maxCap[t]+1)
		for f := int32(1); f <= maxCap[t]; f++ {
			s.byFree[t][f] = make([]uint64, words)
		}
		for node := 0; node < c.NumNodes(); node++ {
			if f := s.free[node*stride+int(t)]; f > 0 {
				s.nz[t][node>>6] |= 1 << uint(node&63)
				s.byFree[t][f][node>>6] |= 1 << uint(node&63)
			}
		}
	}
	return s
}

// Cluster returns the cluster this state tracks.
func (s *State) Cluster() *Cluster { return s.c }

// Free returns the free accelerator count on node id of type t.
func (s *State) Free(id int, t gpu.Type) int { return int(s.free[id*stride+int(t)]) }

// FreeOfType returns the cluster-wide free count of type t.
func (s *State) FreeOfType(t gpu.Type) int { return s.byType[t] }

// TotalFree returns the cluster-wide free count across all types.
func (s *State) TotalFree() int { return s.total }

// Hash returns the incremental 64-bit signature of the free state. Two
// states over same-shaped clusters with identical free counts hash
// equal; unequal states collide with probability ~2^-64. It replaces
// the string Key as the memoization key in Hadar's DP subroutine.
func (s *State) Hash() uint64 { return s.hash }

// VersionAt returns the change counter of the (node, type) cell. It
// increments on every mutation in either direction — each Allocate or
// Release placement and each undone journal entry of a Rollback — so a
// value cached at an older version can never be mistaken for current,
// even when a rollback restores the exact free count the cache saw.
func (s *State) VersionAt(node int, t gpu.Type) uint32 {
	return s.ver[node*stride+int(t)]
}

// UniformCap returns the common per-node capacity of type t when every
// node holding the type has the same capacity, -1 when capacities are
// mixed, and 0 when no node has the type.
func (s *State) UniformCap(t gpu.Type) int { return int(s.uniformCap[t]) }

// NodeFree pairs a node ID with a free device count, for placement
// scans.
type NodeFree struct {
	Node int
	Free int
}

// FreeNodes appends to buf the nodes holding free devices of type t, in
// ascending node order, and returns the extended slice. Pass a reused
// buffer (or the state's Scratch) to keep scans allocation-free. The
// scan walks the non-zero bitmap, so its cost is proportional to the
// nodes that actually hold the type free, not the cluster size.
func (s *State) FreeNodes(t gpu.Type, buf []NodeFree) []NodeFree {
	if s.byType[t] == 0 {
		return buf
	}
	for w, word := range s.nz[t] {
		base := w << 6
		for word != 0 {
			n := base + bits.TrailingZeros64(word)
			word &= word - 1
			buf = append(buf, NodeFree{Node: n, Free: int(s.free[n*stride+int(t)])})
		}
	}
	return buf
}

// AppendFreeNodesByFreeDesc appends to buf up to maxNodes nodes holding
// free devices of type t in consolidation order — free count
// descending, ties by ascending node ID — and returns the extended
// slice. maxNodes <= 0 means no limit. The scan walks the per-count
// bucket bitmaps from fullest to emptiest, so no sort happens; a
// consumer placing need devices can pass maxNodes = need, because every
// listed node contributes at least one device.
func (s *State) AppendFreeNodesByFreeDesc(t gpu.Type, maxNodes int, buf []NodeFree) []NodeFree {
	if s.byType[t] == 0 {
		return buf
	}
	appended := 0
	buckets := s.byFree[t]
	for f := len(buckets) - 1; f >= 1; f-- {
		for w, word := range buckets[f] {
			base := w << 6
			for word != 0 {
				n := base + bits.TrailingZeros64(word)
				word &= word - 1
				buf = append(buf, NodeFree{Node: n, Free: f})
				if appended++; maxNodes > 0 && appended >= maxNodes {
					return buf
				}
			}
		}
	}
	return buf
}

// Scratch returns the state's internal placement-scan buffer, emptied.
// The buffer is shared: it is invalidated by the next Scratch call on
// this state, so callers must finish with it before handing the state
// to other placement code.
func (s *State) Scratch() []NodeFree {
	if s.scratch == nil {
		s.scratch = make([]NodeFree, 0, s.c.NumNodes())
	}
	return s.scratch[:0]
}

// setFree moves one cell from old to now free devices, maintaining the
// hash, the version counter, and the bitmap indexes. Both apply and
// undo route through it, so the version advances on rollbacks too.
func (s *State) setFree(cell int, old, now int32) {
	s.hash ^= cellHash(cell, old) ^ cellHash(cell, now)
	s.free[cell] = now
	s.ver[cell]++
	t := cell % stride
	node := cell / stride
	word, bit := node>>6, uint(node&63)
	if old > 0 {
		s.byFree[t][old][word] &^= 1 << bit
	}
	if now > 0 {
		s.byFree[t][now][word] |= 1 << bit
		s.nz[t][word] |= 1 << bit
	} else {
		s.nz[t][word] &^= 1 << bit
	}
}

// apply changes one cell by delta, maintaining the counters, the hash,
// the indexes, and (inside a transaction) the undo journal.
func (s *State) apply(cell int, delta int32) {
	old := s.free[cell]
	s.setFree(cell, old, old+delta)
	s.byType[cell%stride] += int(delta)
	s.total += int(delta)
	if len(s.marks) > 0 {
		s.journal = append(s.journal, journalEntry{cell: int32(cell), delta: delta})
	}
}

// undo reverses one journal entry without re-journaling it.
func (s *State) undo(e journalEntry) {
	cell := int(e.cell)
	old := s.free[cell]
	s.setFree(cell, old, old-e.delta)
	s.byType[cell%stride] -= int(e.delta)
	s.total -= int(e.delta)
}

// Savepoint opens a transaction and returns its token for Rollback or
// Commit. Savepoints nest; close the innermost first.
func (s *State) Savepoint() int {
	s.marks = append(s.marks, len(s.journal))
	return len(s.marks) - 1
}

// Rollback undoes every Allocate/Release since the savepoint and closes
// it (and any savepoint nested inside it). It panics on an already
// closed token, which indicates broken stack discipline.
func (s *State) Rollback(sp int) {
	if sp >= len(s.marks) {
		bug.Failf("cluster: rollback of closed savepoint %d (open: %d)", sp, len(s.marks))
	}
	mark := s.marks[sp]
	for i := len(s.journal) - 1; i >= mark; i-- {
		s.undo(s.journal[i])
	}
	s.journal = s.journal[:mark]
	s.marks = s.marks[:sp]
}

// Commit keeps every change since the savepoint and closes it (and any
// savepoint nested inside it). Changes remain undoable by an enclosing
// savepoint. It panics on an already closed token.
func (s *State) Commit(sp int) {
	if sp >= len(s.marks) {
		bug.Failf("cluster: commit of closed savepoint %d (open: %d)", sp, len(s.marks))
	}
	s.marks = s.marks[:sp]
	if len(s.marks) == 0 {
		s.journal = s.journal[:0]
	}
}

// Allocate removes the allocation's accelerators from the free pool. It
// returns an error (and leaves the state unchanged) if any placement
// exceeds the free count or names an invalid node or type.
func (s *State) Allocate(a Alloc) error {
	sp := s.Savepoint()
	for _, p := range a {
		if p.Count <= 0 {
			continue
		}
		if p.Node < 0 || p.Node >= s.c.NumNodes() {
			s.Rollback(sp)
			return fmt.Errorf("cluster: placement on invalid node %d", p.Node)
		}
		if !p.Type.Valid() {
			s.Rollback(sp)
			return fmt.Errorf("cluster: placement with invalid type %v", p.Type)
		}
		cell := p.Node*stride + int(p.Type)
		if int(s.free[cell]) < p.Count {
			err := fmt.Errorf("cluster: node %d has %d free %s, need %d",
				p.Node, s.free[cell], p.Type, p.Count)
			s.Rollback(sp)
			return err
		}
		s.apply(cell, int32(-p.Count))
	}
	s.Commit(sp)
	return nil
}

// Release returns the allocation's accelerators to the free pool. It
// returns an error (and leaves the state unchanged) if releasing would
// exceed a node's capacity, which indicates double-release.
func (s *State) Release(a Alloc) error {
	sp := s.Savepoint()
	for _, p := range a {
		if p.Count <= 0 {
			continue
		}
		if p.Node < 0 || p.Node >= s.c.NumNodes() {
			s.Rollback(sp)
			return fmt.Errorf("cluster: release on invalid node %d", p.Node)
		}
		if !p.Type.Valid() {
			s.Rollback(sp)
			return fmt.Errorf("cluster: release with invalid type %v", p.Type)
		}
		cell := p.Node*stride + int(p.Type)
		if int(s.free[cell])+p.Count > int(s.cap[cell]) {
			s.Rollback(sp)
			return fmt.Errorf("cluster: release of %d %s on node %d exceeds capacity",
				p.Count, p.Type, p.Node)
		}
		s.apply(cell, int32(p.Count))
	}
	s.Commit(sp)
	return nil
}

// CanAllocate reports whether the allocation fits the current free
// state, without changing it.
func (s *State) CanAllocate(a Alloc) bool {
	sp := s.Savepoint()
	err := s.Allocate(a)
	if err == nil {
		s.Rollback(sp)
	} else {
		s.Commit(sp) // nothing applied; just close the savepoint
	}
	return err == nil
}

// Clone returns an independent copy of the state (sharing the immutable
// cluster and capacity table). Open savepoints do not transfer: the
// clone starts outside any transaction. The bitmap indexes and version
// counters are deep-copied, so clones mutate independently.
func (s *State) Clone() *State {
	out := &State{
		c:          s.c,
		free:       append([]int32(nil), s.free...),
		cap:        s.cap,
		ver:        append([]uint32(nil), s.ver...),
		byType:     s.byType,
		total:      s.total,
		hash:       s.hash,
		uniformCap: s.uniformCap,
	}
	for t := range s.nz {
		if s.nz[t] == nil {
			continue
		}
		out.nz[t] = append([]uint64(nil), s.nz[t]...)
		out.byFree[t] = make([][]uint64, len(s.byFree[t]))
		for f, bm := range s.byFree[t] {
			if bm != nil {
				out.byFree[t][f] = append([]uint64(nil), bm...)
			}
		}
	}
	return out
}

// Key returns a compact canonical signature of the free state. Hash is
// the cheaper replacement for hot paths; Key remains for debugging and
// collision-free comparisons.
func (s *State) Key() string {
	var sb strings.Builder
	sb.Grow(len(s.free) + s.c.NumNodes())
	for i, c := range s.free {
		// Free counts are small non-negative ints; a byte-ish varint
		// keeps the key short. Counts >= 250 spill to two bytes.
		if c < 250 {
			sb.WriteByte(byte(c))
		} else {
			sb.WriteByte(250 + byte(c/250))
			sb.WriteByte(byte(c % 250))
		}
		if (i+1)%stride == 0 {
			sb.WriteByte('|')
		}
	}
	return sb.String()
}
