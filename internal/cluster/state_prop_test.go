package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/gpu"
)

// These tests exercise the transactional State as a black box driven by
// op scripts, checking after every step that the incrementally
// maintained counters and hash agree with a from-scratch recompute, and
// that any interleaving of Allocate/Release/Savepoint/Rollback/Commit
// round-trips exactly to the free counts it started from.

// checkCounters recomputes byType, total, and the Zobrist hash from the
// flat free array and compares them to the incrementally maintained
// values.
func checkCounters(t *testing.T, s *State) {
	t.Helper()
	var byType [gpu.NumTypes]int
	total := 0
	var hash uint64
	for cell, f := range s.free {
		if f < 0 || f > s.cap[cell] {
			t.Fatalf("cell %d free %d out of range [0, %d]", cell, f, s.cap[cell])
		}
		byType[cell%stride] += int(f)
		total += int(f)
		hash ^= cellHash(cell, f)
	}
	if byType != s.byType {
		t.Fatalf("byType drifted: incremental %v, recomputed %v", s.byType, byType)
	}
	if total != s.total {
		t.Fatalf("total drifted: incremental %d, recomputed %d", s.total, total)
	}
	if hash != s.hash {
		t.Fatalf("hash drifted: incremental %#x, recomputed %#x", s.hash, hash)
	}
	checkIndexes(t, s)
}

// checkIndexes recomputes the non-zero and per-free-count bitmap
// indexes from the flat free array and compares them to the
// incrementally maintained ones, then checks the consolidation-order
// iterator against a from-scratch sort.
func checkIndexes(t *testing.T, s *State) {
	t.Helper()
	for typ := gpu.Type(0); typ < gpu.NumTypes; typ++ {
		for node := 0; node < s.c.NumNodes(); node++ {
			f := s.free[node*stride+int(typ)]
			word, bit := node>>6, uint(node&63)
			wantNZ := f > 0
			gotNZ := s.nz[typ] != nil && s.nz[typ][word]&(1<<bit) != 0
			if wantNZ != gotNZ {
				t.Fatalf("nz[%v] bit for node %d = %v, want %v (free %d)", typ, node, gotNZ, wantNZ, f)
			}
			for cnt := 1; cnt < len(s.byFree[typ]); cnt++ {
				got := s.byFree[typ][cnt][word]&(1<<bit) != 0
				if want := int(f) == cnt; got != want {
					t.Fatalf("byFree[%v][%d] bit for node %d = %v, want %v (free %d)", typ, cnt, node, got, want, f)
				}
			}
		}
		// The bucket iterator must equal a brute-force consolidation sort
		// (free descending, node ascending) of the free-node list.
		want := append([]NodeFree(nil), s.FreeNodes(typ, nil)...)
		for i := 1; i < len(want); i++ {
			for k := i; k > 0 && (want[k].Free > want[k-1].Free ||
				(want[k].Free == want[k-1].Free && want[k].Node < want[k-1].Node)); k-- {
				want[k], want[k-1] = want[k-1], want[k]
			}
		}
		got := s.AppendFreeNodesByFreeDesc(typ, 0, nil)
		if len(got) != len(want) {
			t.Fatalf("AppendFreeNodesByFreeDesc(%v) returned %d nodes, want %d", typ, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendFreeNodesByFreeDesc(%v)[%d] = %+v, want %+v", typ, i, got[i], want[i])
			}
		}
		if len(want) > 1 {
			if truncated := s.AppendFreeNodesByFreeDesc(typ, 1, nil); len(truncated) != 1 || truncated[0] != want[0] {
				t.Fatalf("AppendFreeNodesByFreeDesc(%v, 1) = %+v, want [%+v]", typ, truncated, want[0])
			}
		}
	}
}

// frame snapshots everything a savepoint must restore on rollback.
type frame struct {
	sp   int
	key  string
	hash uint64
	held []Alloc // copy of the held list at savepoint time
}

// scriptCluster is deliberately heterogeneous: uneven per-node fleets,
// including a node with zero devices of some types.
func scriptCluster() *Cluster {
	return New(
		gpu.Fleet{gpu.V100: 4, gpu.P100: 2},
		gpu.Fleet{gpu.V100: 4},
		gpu.Fleet{gpu.P100: 3, gpu.K80: 1, gpu.T4: 2},
		gpu.Fleet{gpu.K520: 4},
	)
}

// runStateScript interprets data as a sequence of state operations and
// checks every invariant along the way. It is shared by the fuzz target
// and the seeded property test.
func runStateScript(t *testing.T, data []byte) {
	c := scriptCluster()
	s := NewState(c)
	initKey, initHash := s.Key(), s.Hash()

	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	randomAlloc := func() Alloc {
		n := int(next())%3 + 1
		a := make(Alloc, 0, n)
		for i := 0; i < n; i++ {
			a = append(a, Placement{
				Node:  int(next()) % (c.NumNodes() + 1), // may be invalid
				Type:  gpu.Type(int(next()) % (int(gpu.NumTypes) + 1)),
				Count: int(next())%6 - 1, // -1..4; <=0 entries must be ignored
			})
		}
		return a
	}

	var stack []frame
	var held []Alloc // allocations currently applied, in apply order
	for len(data) > 0 {
		switch next() % 9 {
		case 0, 1, 2: // Allocate
			a := randomAlloc()
			before := s.Hash()
			if err := s.Allocate(a); err != nil {
				if s.Hash() != before {
					t.Fatalf("failed Allocate mutated state: %v", err)
				}
			} else {
				held = append(held, a)
			}
		case 3, 4: // Release a held allocation
			if len(held) == 0 {
				continue
			}
			i := int(next()) % len(held)
			if err := s.Release(held[i]); err != nil {
				t.Fatalf("release of held allocation failed: %v", err)
			}
			held = append(held[:i], held[i+1:]...)
		case 5: // Release something arbitrary (usually over capacity)
			a := randomAlloc()
			before := s.Hash()
			if err := s.Release(a); err != nil {
				if s.Hash() != before {
					t.Fatalf("failed Release mutated state: %v", err)
				}
			} else {
				// Legitimately released capacity someone held: balance the
				// books by immediately re-allocating (must fit: we just
				// freed it).
				if err := s.Allocate(a); err != nil {
					t.Fatalf("re-allocate after arbitrary release failed: %v", err)
				}
			}
		case 6: // Savepoint
			stack = append(stack, frame{
				sp:   s.Savepoint(),
				key:  s.Key(),
				hash: s.Hash(),
				held: append([]Alloc(nil), held...),
			})
		case 7: // Rollback innermost
			if len(stack) == 0 {
				continue
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			s.Rollback(f.sp)
			if s.Key() != f.key || s.Hash() != f.hash {
				t.Fatalf("rollback did not restore savepoint state:\nkey  %q -> %q\nhash %#x -> %#x",
					f.key, s.Key(), f.hash, s.Hash())
			}
			held = f.held
		case 8: // Commit innermost (state must be untouched)
			if len(stack) == 0 {
				continue
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			key, hash := s.Key(), s.Hash()
			s.Commit(f.sp)
			if s.Key() != key || s.Hash() != hash {
				t.Fatal("commit changed the free state")
			}
		}
		checkCounters(t, s)
	}

	// Close every open transaction (innermost first), then return every
	// held allocation: the state must round-trip to fully free.
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.Rollback(f.sp)
		held = f.held
		checkCounters(t, s)
	}
	for _, a := range held {
		if err := s.Release(a); err != nil {
			t.Fatalf("final release failed: %v", err)
		}
	}
	checkCounters(t, s)
	if s.Key() != initKey || s.Hash() != initHash {
		t.Fatalf("state did not round-trip to initial:\nkey  %q -> %q\nhash %#x -> %#x",
			initKey, s.Key(), initHash, s.Hash())
	}
	if s.TotalFree() != c.TotalGPUs() {
		t.Fatalf("TotalFree = %d after round-trip, want %d", s.TotalFree(), c.TotalGPUs())
	}
}

// TestStateTransactionProperty drives runStateScript with pseudo-random
// scripts across many seeds, so the interleaving property holds in
// plain `go test` runs without the fuzzing engine.
func TestStateTransactionProperty(t *testing.T) {
	scripts := 64
	if testing.Short() {
		scripts = 8
	}
	for seed := 0; seed < scripts; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		data := make([]byte, 40+rng.Intn(600))
		rng.Read(data)
		runStateScript(t, data)
	}
}

// FuzzStateTransactions lets `go test -fuzz=FuzzStateTransactions`
// search for op interleavings that break the transactional invariants.
func FuzzStateTransactions(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{6, 0, 0, 1, 2, 7})                   // savepoint, alloc, rollback
	f.Add([]byte{0, 1, 0, 0, 3, 6, 0, 2, 1, 1, 8})    // alloc, release, savepoint, alloc, commit
	f.Add([]byte{6, 6, 0, 0, 0, 4, 8, 7, 5, 9, 9, 9}) // nested savepoints
	f.Fuzz(func(t *testing.T, data []byte) {
		runStateScript(t, data)
	})
}

// TestStateHashMatchesKey checks on random walks that the 64-bit Hash
// and the canonical string Key agree on equality: states reached by
// different operation orders but with identical free counts must share
// both, and distinct Keys must (for these cases) produce distinct
// Hashes.
func TestStateHashMatchesKey(t *testing.T) {
	c := scriptCluster()
	rng := rand.New(rand.NewSource(7))
	seen := map[string]uint64{}
	for i := 0; i < 400; i++ {
		s := NewState(c)
		for steps := rng.Intn(6); steps > 0; steps-- {
			node := rng.Intn(c.NumNodes())
			typ := gpu.Type(rng.Intn(int(gpu.NumTypes)))
			count := rng.Intn(3) + 1
			// Ignore failures; we only care about whatever state results.
			_ = s.Allocate(Alloc{{Node: node, Type: typ, Count: count}})
		}
		key, hash := s.Key(), s.Hash()
		if prev, ok := seen[key]; ok {
			if prev != hash {
				t.Fatalf("same Key %q, different Hash %#x vs %#x", key, prev, hash)
			}
			continue
		}
		for otherKey, otherHash := range seen {
			if otherHash == hash {
				t.Fatalf("Hash collision %#x between Keys %q and %q", hash, key, otherKey)
			}
		}
		seen[key] = hash
	}
}

// TestSavepointStackDiscipline pins the misuse behavior: closing a
// savepoint twice panics rather than corrupting the state.
func TestSavepointStackDiscipline(t *testing.T) {
	s := NewState(scriptCluster())
	sp := s.Savepoint()
	s.Rollback(sp)
	defer func() {
		if recover() == nil {
			t.Fatal("rollback of a closed savepoint did not panic")
		}
	}()
	s.Rollback(sp)
}

// TestRollbackClosesNestedSavepoints pins that rolling back an outer
// savepoint also closes (and undoes) savepoints nested inside it.
func TestRollbackClosesNestedSavepoints(t *testing.T) {
	c := scriptCluster()
	s := NewState(c)
	outer := s.Savepoint()
	if err := s.Allocate(Alloc{{Node: 0, Type: gpu.V100, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	inner := s.Savepoint()
	if err := s.Allocate(Alloc{{Node: 1, Type: gpu.V100, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Rollback(outer)
	if s.TotalFree() != c.TotalGPUs() {
		t.Fatalf("outer rollback left %d free, want %d", s.TotalFree(), c.TotalGPUs())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inner savepoint survived outer rollback")
		}
	}()
	s.Rollback(inner)
}
