// Package export serializes experiment results as CSV so the paper's
// figures can be re-plotted with external tooling (gnuplot, matplotlib,
// spreadsheets). One writer per figure/table shape; columns are stable
// and documented per function.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func writeAll(w io.Writer, rows [][]string) error {
	cw := csv.NewWriter(w)
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("export: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}

func f(x float64) string { return strconv.FormatFloat(x, 'g', 10, 64) }

// Comparison writes one row per scheduler with the headline metrics:
// scheduler, avg_jct_s, median_jct_s, min_jct_s, max_jct_s, makespan_s,
// utilization, occupancy, avg_ftf, max_ftf, avg_queue_delay_s,
// realloc_fraction.
func Comparison(w io.Writer, cmp *experiments.Comparison) error {
	rows := [][]string{{
		"scheduler", "avg_jct_s", "median_jct_s", "min_jct_s", "max_jct_s",
		"makespan_s", "utilization", "occupancy", "avg_ftf", "max_ftf",
		"avg_queue_delay_s", "realloc_fraction",
	}}
	for _, name := range cmp.Order {
		r := cmp.Reports[name]
		rows = append(rows, []string{
			name, f(r.AvgJCT()), f(r.MedianJCT()), f(r.MinJCT()), f(r.MaxJCT()),
			f(r.Makespan), f(r.Utilization()), f(r.Occupancy()),
			f(r.AvgFTF()), f(r.MaxFTF()), f(r.AvgQueueDelay()),
			f(r.ReallocationFraction()),
		})
	}
	return writeAll(w, rows)
}

// CompletionCDF writes the Fig. 3 curves: scheduler, finish_time_s,
// fraction_complete — one row per completion event per scheduler.
func CompletionCDF(w io.Writer, cmp *experiments.Comparison) error {
	rows := [][]string{{"scheduler", "finish_time_s", "fraction_complete"}}
	for _, name := range cmp.Order {
		for _, p := range cmp.Reports[name].CompletionCDF() {
			rows = append(rows, []string{name, f(p.X), f(p.Fraction)})
		}
	}
	return writeAll(w, rows)
}

// Jobs writes per-job results: scheduler, job_id, model, workers,
// arrival_s, start_s, finish_s, jct_s, queue_delay_s, ftf,
// reallocations.
func Jobs(w io.Writer, name string, r *metrics.Report) error {
	rows := [][]string{{
		"scheduler", "job_id", "model", "workers", "arrival_s", "start_s",
		"finish_s", "jct_s", "queue_delay_s", "ftf", "reallocations",
	}}
	for _, j := range r.Jobs {
		rows = append(rows, []string{
			name, strconv.Itoa(j.ID), j.Model, strconv.Itoa(j.Workers),
			f(j.Arrival), f(j.Start), f(j.Finish), f(j.JCT()),
			f(j.QueueDelay()), f(j.FTF()), strconv.Itoa(j.Reallocations),
		})
	}
	return writeAll(w, rows)
}

// Fig7Header is the unified schema of the scalability CSV. Two
// producers share the file: this exporter (the paper's job-count sweep,
// series "jobs-sweep") and cmd/benchjson's -scale-csv flag (the
// node-count benchmark sweeps, series "nodes-prop" / "nodes-fixed").
// The gavel column is empty for benchmark series, which time Hadar only.
var Fig7Header = []string{"series", "nodes", "gpus", "jobs", "hadar_latency_us", "gavel_latency_us"}

// Fig7 writes the job-count scalability sweep under the unified schema.
func Fig7(w io.Writer, r *experiments.Fig7Result) error {
	rows := [][]string{Fig7Header}
	for _, p := range r.Points {
		rows = append(rows, []string{
			"jobs-sweep", strconv.Itoa(p.Nodes), strconv.Itoa(p.GPUs), strconv.Itoa(p.Jobs),
			f(float64(p.HadarLatency.Microseconds())),
			f(float64(p.GavelLatency.Microseconds())),
		})
	}
	return writeAll(w, rows)
}

// Fig8 writes the rate sweep: rate_jobs_per_hour, scheduler, min_jct_s,
// avg_jct_s, max_jct_s.
func Fig8(w io.Writer, r *experiments.Fig8Result) error {
	rows := [][]string{{"rate_jobs_per_hour", "scheduler", "min_jct_s", "avg_jct_s", "max_jct_s"}}
	for _, p := range r.Points {
		rows = append(rows, []string{
			f(p.RatePerHour), p.Scheduler, f(p.MinJCT), f(p.AvgJCT), f(p.MaxJCT),
		})
	}
	return writeAll(w, rows)
}

// Fig9 writes the round-length sweep: round_minutes, rate_jobs_per_hour,
// avg_jct_s.
func Fig9(w io.Writer, r *experiments.Fig9Result) error {
	rows := [][]string{{"round_minutes", "rate_jobs_per_hour", "avg_jct_s"}}
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.RoundMinutes), f(p.RatePerHour), f(p.AvgJCT)})
	}
	return writeAll(w, rows)
}

// FedCompare writes the federation-vs-mega-cluster comparison: series,
// members, jobs, avg_jct_s, median_jct_s, makespan_s, utilization,
// completed — one row per series (the mega-cluster baseline, then one
// federation row per routing policy).
func FedCompare(w io.Writer, r *experiments.FedCompareResult) error {
	rows := [][]string{{
		"series", "members", "jobs", "avg_jct_s", "median_jct_s",
		"makespan_s", "utilization", "completed",
	}}
	for _, s := range r.Series {
		rows = append(rows, []string{
			s.Series, strconv.Itoa(s.Members), strconv.Itoa(r.Jobs),
			f(s.Report.AvgJCT()), f(s.Report.MedianJCT()), f(s.Report.Makespan),
			f(s.Report.Utilization()), strconv.Itoa(len(s.Report.Jobs)),
		})
	}
	return writeAll(w, rows)
}

// OccupancySeries writes a scheduler's per-round cluster occupancy:
// round_start_s, held_workers.
func OccupancySeries(w io.Writer, r *metrics.Report) error {
	rows := [][]string{{"round_start_s", "held_workers"}}
	for i, held := range r.RoundHeld {
		start := 0.0
		if i < len(r.RoundStarts) {
			start = r.RoundStarts[i]
		}
		rows = append(rows, []string{f(start), strconv.Itoa(held)})
	}
	return writeAll(w, rows)
}
