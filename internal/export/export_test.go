package export

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func sampleComparison() *experiments.Comparison {
	mk := func(name string, jct float64) *metrics.Report {
		return &metrics.Report{
			Scheduler: name,
			Jobs: []metrics.JobResult{
				{ID: 0, Model: "LSTM", Workers: 2, Arrival: 0, Start: 10,
					Finish: jct, IsolatedDuration: jct / 2, TotalIters: 100},
				{ID: 1, Model: "ResNet-50", Workers: 1, Arrival: 5, Start: 20,
					Finish: jct * 2, IsolatedDuration: jct, TotalIters: 200},
			},
			Makespan:       jct * 2,
			BusyGPUSeconds: 100,
			HeldGPUSeconds: 120,
			TotalGPUs:      4,
			RoundHeld:      []int{4, 3, 1},
			RoundStarts:    []float64{0, 360, 720},
		}
	}
	return &experiments.Comparison{
		Order: []string{"hadar", "gavel"},
		Reports: map[string]*metrics.Report{
			"hadar": mk("hadar", 100),
			"gavel": mk("gavel", 150),
		},
	}
}

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	return rows
}

func TestComparisonCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := Comparison(&buf, sampleComparison()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "scheduler" || len(rows[0]) != 12 {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "hadar" || rows[2][0] != "gavel" {
		t.Errorf("scheduler order = %v %v", rows[1][0], rows[2][0])
	}
}

func TestCompletionCDFCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := CompletionCDF(&buf, sampleComparison()); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	// header + 2 schedulers x 2 distinct finish times.
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	last := rows[len(rows)-1]
	if last[2] != "1" {
		t.Errorf("final CDF fraction = %v, want 1", last[2])
	}
}

func TestJobsCSV(t *testing.T) {
	var buf bytes.Buffer
	cmp := sampleComparison()
	if err := Jobs(&buf, "hadar", cmp.Reports["hadar"]); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][2] != "LSTM" || rows[2][2] != "ResNet-50" {
		t.Errorf("model columns wrong: %v", rows)
	}
}

func TestFig7CSV(t *testing.T) {
	var buf bytes.Buffer
	r := &experiments.Fig7Result{Points: []experiments.Fig7Point{
		{Jobs: 32, Nodes: 3, GPUs: 12, HadarLatency: 50 * time.Microsecond, GavelLatency: 80 * time.Microsecond},
	}}
	if err := Fig7(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 {
		t.Fatalf("Fig7 rows = %v", rows)
	}
	want := []string{"jobs-sweep", "3", "12", "32", "50", "80"}
	for i, v := range want {
		if rows[1][i] != v {
			t.Errorf("Fig7 row col %d = %q, want %q (row %v)", i, rows[1][i], v, rows[1])
		}
	}
}

func TestFig8And9CSV(t *testing.T) {
	var buf bytes.Buffer
	r8 := &experiments.Fig8Result{Points: []experiments.Fig8Point{
		{RatePerHour: 2, Scheduler: "hadar", MinJCT: 1, AvgJCT: 2, MaxJCT: 3},
	}}
	if err := Fig8(&buf, r8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hadar") {
		t.Error("Fig8 CSV missing scheduler")
	}
	buf.Reset()
	r9 := &experiments.Fig9Result{Points: []experiments.Fig9Point{
		{RoundMinutes: 6, RatePerHour: 2, AvgJCT: 100},
	}}
	if err := Fig9(&buf, r9); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 2 || rows[1][0] != "6" {
		t.Errorf("Fig9 rows = %v", rows)
	}
}

func TestFedCompareCSV(t *testing.T) {
	var buf bytes.Buffer
	cmp := sampleComparison()
	r := &experiments.FedCompareResult{
		Members: 2,
		Jobs:    2,
		Series: []experiments.FedSeries{
			{Series: "mega-cluster", Members: 2, Report: cmp.Reports["hadar"]},
			{Series: "federation/least-queue", Members: 2, Report: cmp.Reports["gavel"]},
		},
	}
	if err := FedCompare(&buf, r); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2 series", len(rows))
	}
	wantHeader := []string{"series", "members", "jobs", "avg_jct_s", "median_jct_s", "makespan_s", "utilization", "completed"}
	for i, col := range wantHeader {
		if rows[0][i] != col {
			t.Errorf("header col %d = %q, want %q", i, rows[0][i], col)
		}
	}
	if rows[1][0] != "mega-cluster" || rows[2][0] != "federation/least-queue" {
		t.Errorf("series order = %v %v", rows[1][0], rows[2][0])
	}
	if rows[1][1] != "2" || rows[1][7] != "2" {
		t.Errorf("mega row = %v", rows[1])
	}
}

func TestOccupancySeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	cmp := sampleComparison()
	if err := OccupancySeries(&buf, cmp.Reports["hadar"]); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want header + 3 rounds", len(rows))
	}
	if rows[2][0] != "360" || rows[2][1] != "3" {
		t.Errorf("round row = %v", rows[2])
	}
}
