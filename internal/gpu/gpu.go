// Package gpu defines the accelerator types used throughout the Hadar
// scheduler and its baselines, together with small helpers for counting
// fleets of devices.
//
// The paper evaluates on clusters mixing NVIDIA V100, P100 and K80 GPUs
// (simulation) and T4, K520, K80 and V100 GPUs (AWS prototype); all five
// types are modeled here.
package gpu

import (
	"fmt"
	"sort"
)

// Type identifies an accelerator model.
type Type uint8

// Accelerator types known to the system. The zero value is V100 so that
// an uninitialized Type is still a valid device, but callers should set
// types explicitly.
const (
	V100 Type = iota
	P100
	K80
	T4
	K520

	// NumTypes is the number of defined accelerator types. It is not a
	// valid Type itself.
	NumTypes
)

var typeNames = [NumTypes]string{"V100", "P100", "K80", "T4", "K520"}

// String returns the canonical marketing name of the accelerator.
func (t Type) String() string {
	if t < NumTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Valid reports whether t names a defined accelerator type.
func (t Type) Valid() bool { return t < NumTypes }

// Parse converts a case-sensitive accelerator name ("V100", "P100",
// "K80", "T4", "K520") back to its Type.
func Parse(s string) (Type, error) {
	for i, name := range typeNames {
		if name == s {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("gpu: unknown accelerator type %q", s)
}

// AllTypes returns every defined accelerator type in declaration order.
func AllTypes() []Type {
	out := make([]Type, NumTypes)
	for i := range out {
		out[i] = Type(i)
	}
	return out
}

// Fleet counts devices by type. A nil Fleet is an empty fleet.
type Fleet map[Type]int

// Total returns the number of devices across all types.
func (f Fleet) Total() int {
	n := 0
	for _, c := range f {
		n += c
	}
	return n
}

// Count returns the number of devices of type t (0 if absent).
func (f Fleet) Count(t Type) int { return f[t] }

// Clone returns an independent copy of the fleet.
func (f Fleet) Clone() Fleet {
	out := make(Fleet, len(f))
	for t, c := range f {
		out[t] = c
	}
	return out
}

// Add merges other into f, returning f for chaining. f must be non-nil.
func (f Fleet) Add(other Fleet) Fleet {
	for t, c := range other {
		f[t] += c
	}
	return f
}

// Types returns the device types present (count > 0) in ascending Type
// order, so iteration is deterministic.
func (f Fleet) Types() []Type {
	out := make([]Type, 0, len(f))
	for t, c := range f {
		if c > 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the fleet as, e.g., "{V100:2 K80:1}".
func (f Fleet) String() string {
	s := "{"
	for i, t := range f.Types() {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", t, f[t])
	}
	return s + "}"
}
