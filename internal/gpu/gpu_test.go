package gpu

import (
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		V100: "V100",
		P100: "P100",
		K80:  "K80",
		T4:   "T4",
		K520: "K520",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeStringOutOfRange(t *testing.T) {
	if got := Type(200).String(); got != "Type(200)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, typ := range AllTypes() {
		got, err := Parse(typ.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", typ.String(), err)
		}
		if got != typ {
			t.Errorf("Parse(%q) = %v, want %v", typ.String(), got, typ)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("H100"); err == nil {
		t.Error("Parse of unknown type succeeded, want error")
	}
	if _, err := Parse(""); err == nil {
		t.Error("Parse of empty string succeeded, want error")
	}
}

func TestValid(t *testing.T) {
	for _, typ := range AllTypes() {
		if !typ.Valid() {
			t.Errorf("%v.Valid() = false", typ)
		}
	}
	if NumTypes.Valid() {
		t.Error("NumTypes.Valid() = true, want false")
	}
}

func TestAllTypesCount(t *testing.T) {
	if got := len(AllTypes()); got != int(NumTypes) {
		t.Errorf("len(AllTypes()) = %d, want %d", got, NumTypes)
	}
}

func TestFleetTotalAndCount(t *testing.T) {
	f := Fleet{V100: 2, K80: 3}
	if f.Total() != 5 {
		t.Errorf("Total() = %d, want 5", f.Total())
	}
	if f.Count(V100) != 2 || f.Count(K80) != 3 || f.Count(P100) != 0 {
		t.Errorf("unexpected counts: %v", f)
	}
}

func TestFleetNil(t *testing.T) {
	var f Fleet
	if f.Total() != 0 {
		t.Errorf("nil fleet Total() = %d, want 0", f.Total())
	}
	if f.Count(V100) != 0 {
		t.Error("nil fleet Count nonzero")
	}
	if len(f.Types()) != 0 {
		t.Error("nil fleet has types")
	}
}

func TestFleetCloneIndependent(t *testing.T) {
	f := Fleet{V100: 1}
	g := f.Clone()
	g[V100] = 99
	if f[V100] != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestFleetAdd(t *testing.T) {
	f := Fleet{V100: 1, P100: 2}
	f.Add(Fleet{P100: 3, K80: 4})
	want := Fleet{V100: 1, P100: 5, K80: 4}
	for typ, c := range want {
		if f[typ] != c {
			t.Errorf("after Add, %v = %d, want %d", typ, f[typ], c)
		}
	}
}

func TestFleetTypesSortedAndPositive(t *testing.T) {
	f := Fleet{K80: 1, V100: 2, P100: 0}
	types := f.Types()
	if len(types) != 2 {
		t.Fatalf("Types() = %v, want 2 entries", types)
	}
	if types[0] != V100 || types[1] != K80 {
		t.Errorf("Types() = %v, want [V100 K80]", types)
	}
}

func TestFleetString(t *testing.T) {
	f := Fleet{V100: 2, K80: 1}
	if got := f.String(); got != "{V100:2 K80:1}" {
		t.Errorf("String() = %q", got)
	}
}

func TestFleetTotalMatchesSumProperty(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		f := Fleet{V100: int(a), P100: int(b), K80: int(c)}
		return f.Total() == int(a)+int(b)+int(c)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFleetAddCommutesWithTotalProperty(t *testing.T) {
	prop := func(a, b uint8) bool {
		f := Fleet{V100: int(a)}
		g := Fleet{P100: int(b)}
		total := f.Clone().Add(g).Total()
		return total == f.Total()+g.Total()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
