package tiresias

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

func mkJob(id, workers int, arrival float64) *job.Job {
	return &job.Job{
		ID: id, Model: "m", Workers: workers, Epochs: 100, ItersPerEpoch: 100,
		Arrival:    arrival,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.P100: 5, gpu.K80: 2},
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	return &sched.Context{Now: 0, RoundLength: 360, Horizon: 1e6, Cluster: c, Jobs: states}
}

func TestLeastAttainedServiceFirst(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	veteran := newState(mkJob(0, 2, 0))
	veteran.Attained = 10 * 3600 // above the 2 GPU-hour threshold
	fresh := newState(mkJob(1, 2, 100))
	out := New(DefaultOptions()).Schedule(mkCtx(c, veteran, fresh))
	if out[1].Workers() != 2 {
		t.Errorf("fresh job not prioritized: %v", out)
	}
	if out[0].Workers() != 0 && len(out) > 1 {
		t.Errorf("demoted job scheduled over fresh job: %v", out)
	}
}

func TestFIFOWithinQueue(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	early := newState(mkJob(0, 2, 0))
	late := newState(mkJob(1, 2, 50))
	out := New(DefaultOptions()).Schedule(mkCtx(c, late, early))
	if out[0].Workers() != 2 {
		t.Errorf("earlier arrival not scheduled first: %v", out)
	}
}

func TestSingleTypeOnly(t *testing.T) {
	// No single type has 3 free devices: Tiresias cannot mix, job waits.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	st := newState(mkJob(0, 3, 0))
	out := New(DefaultOptions()).Schedule(mkCtx(c, st))
	if a, ok := out[0]; ok && a.Workers() > 0 {
		t.Errorf("Tiresias mixed types: %v", a)
	}
}

func TestHeterogeneityUnawareTypePick(t *testing.T) {
	// Picks the type with the most free devices, not the fastest: with 1
	// V100 and 4 K80 free, a 1-worker job lands on K80.
	c := cluster.New(gpu.Fleet{gpu.V100: 1, gpu.K80: 4})
	st := newState(mkJob(0, 1, 0))
	out := New(DefaultOptions()).Schedule(mkCtx(c, st))
	if got := out[0].Types(); len(got) != 1 || got[0] != gpu.K80 {
		t.Errorf("unaware pick = %v, want K80 (most free)", got)
	}
}

func TestKeepsRunningPlacement(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	st := newState(mkJob(0, 2, 0))
	st.Alloc = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	out := New(DefaultOptions()).Schedule(mkCtx(c, st))
	if !out[0].Equal(st.Alloc) {
		t.Errorf("running placement churned: %v", out[0])
	}
}

func TestPreemptionByHigherQueue(t *testing.T) {
	// A demoted running job holds the only V100s; a fresh job arrives
	// and must preempt it (fresh is considered first and takes the
	// devices).
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	veteran := newState(mkJob(0, 2, 0))
	veteran.Attained = 10 * 3600
	veteran.Alloc = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	fresh := newState(mkJob(1, 2, 100))
	out := New(DefaultOptions()).Schedule(mkCtx(c, veteran, fresh))
	if out[1].Workers() != 2 {
		t.Errorf("fresh job did not preempt: %v", out)
	}
}

func TestCapacityRespected(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 3})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 0)),
		newState(mkJob(1, 2, 1)),
		newState(mkJob(2, 1, 2)),
	}
	out := New(DefaultOptions()).Schedule(mkCtx(c, states...))
	free := cluster.NewState(c)
	total := 0
	for _, a := range out {
		if err := free.Allocate(a); err != nil {
			t.Fatalf("capacity violated: %v", err)
		}
		total += a.Workers()
	}
	if total > 3 {
		t.Errorf("allocated %d workers on 3 GPUs", total)
	}
}

func TestEmptyQueue(t *testing.T) {
	out := New(DefaultOptions()).Schedule(mkCtx(cluster.New(gpu.Fleet{gpu.V100: 1})))
	if len(out) != 0 {
		t.Errorf("non-empty decision: %v", out)
	}
}

func TestZeroThresholdNormalized(t *testing.T) {
	s := New(Options{})
	if s.opts.QueueThreshold <= 0 {
		t.Error("zero threshold not normalized to default")
	}
}
