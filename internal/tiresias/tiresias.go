// Package tiresias implements the Tiresias baseline (Gu et al., NSDI
// 2019) as configured in the Hadar paper: two priority queues with
// discretized least-attained-service (2DAS) scheduling and the
// PromoteKnob disabled. Tiresias is heterogeneity-unaware: it treats all
// accelerator types as interchangeable and, like Gavel, places a whole
// gang on one type per round.
package tiresias

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// Options configures the baseline.
type Options struct {
	// QueueThreshold is the attained-service level (GPU-seconds) that
	// demotes a job from the high-priority queue to the low-priority
	// queue. Tiresias' default corresponds to a few GPU-hours.
	QueueThreshold float64
	// LeaseRounds is how many rounds a job keeps its placement before
	// being re-placed. Tiresias preempts and re-launches jobs regularly
	// as queue priorities evolve; since its placement is
	// heterogeneity-unaware, re-placement makes a job's long-run
	// throughput the free-capacity-weighted average across device types
	// instead of whatever type it happened to start on.
	LeaseRounds int
}

// DefaultOptions matches the paper's configuration: two queues,
// PromoteKnob disabled (demoted jobs never return to the high queue).
func DefaultOptions() Options {
	return Options{
		QueueThreshold: 2 * 3600, // 2 GPU-hours
		LeaseRounds:    10,       // 1 hour at 6-minute rounds
	}
}

// Scheduler is the Tiresias baseline; it implements sched.Scheduler.
type Scheduler struct {
	opts Options
}

// New builds a Tiresias scheduler.
func New(opts Options) *Scheduler {
	if opts.QueueThreshold <= 0 {
		opts.QueueThreshold = DefaultOptions().QueueThreshold
	}
	if opts.LeaseRounds <= 0 {
		opts.LeaseRounds = DefaultOptions().LeaseRounds
	}
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "tiresias" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	// 2DAS order: queue index (attained service below/above the
	// threshold), then FIFO by arrival within each queue.
	queue := append([]*sched.JobState(nil), ctx.Jobs...)
	qIndex := func(st *sched.JobState) int {
		if st.Attained < s.opts.QueueThreshold {
			return 0
		}
		return 1
	}
	sort.SliceStable(queue, func(a, b int) bool {
		qa, qb := qIndex(queue[a]), qIndex(queue[b])
		if qa != qb {
			return qa < qb
		}
		if queue[a].Job.Arrival < queue[b].Job.Arrival {
			return true
		}
		if queue[a].Job.Arrival > queue[b].Job.Arrival {
			return false
		}
		return queue[a].Job.ID < queue[b].Job.ID
	})

	free := cluster.NewState(ctx.Cluster)
	for _, st := range queue {
		// Keep the current placement while its lease lasts, to limit
		// checkpoint churn; preemption still happens when a higher-queue
		// job claims the devices first, and expired leases trigger a
		// fresh heterogeneity-unaware placement.
		if st.Running() && st.Rounds%s.opts.LeaseRounds != 0 {
			if err := free.Allocate(st.Alloc); err == nil {
				out[st.Job.ID] = st.Alloc
				continue
			}
		}
		if a, ok := s.place(free, st); ok {
			out[st.Job.ID] = a
		}
	}
	return out
}

// place books a single-type gang placement, heterogeneity-unaware: it
// prefers the type with the most free devices among the types the job
// can physically run on, regardless of throughput.
func (s *Scheduler) place(free *cluster.State, st *sched.JobState) (cluster.Alloc, bool) {
	var bestType gpu.Type
	bestFree := -1
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if st.Job.Speed(t) <= 0 {
			continue
		}
		if f := free.FreeOfType(t); f >= st.Job.Workers && f > bestFree {
			bestFree = f
			bestType = t
		}
	}
	if bestFree < 0 {
		return nil, false
	}
	return sched.AllocSingleType(free, bestType, st.Job.Workers)
}
