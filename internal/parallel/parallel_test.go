package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(8, items, func(x int) (int, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapRunsConcurrently(t *testing.T) {
	var inFlight, maxInFlight int64
	items := make([]int, 32)
	_, err := Map(8, items, func(int) (int, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		for {
			old := atomic.LoadInt64(&maxInFlight)
			if cur <= old || atomic.CompareAndSwapInt64(&maxInFlight, old, cur) {
				break
			}
		}
		// Spin a little to give other workers a chance to overlap.
		for i := 0; i < 100000; i++ {
			_ = i * i
		}
		atomic.AddInt64(&inFlight, -1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&maxInFlight) < 2 {
		t.Skip("no observable concurrency on this machine (GOMAXPROCS=1?)")
	}
}

func TestMapFirstErrorBySmallestIndex(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	_, err := Map(4, items, func(x int) (int, error) {
		if x%3 == 2 { // items 2 and 5 fail
			return 0, fmt.Errorf("boom %d", x)
		}
		return x, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if want := "item 2"; !errors.Is(err, err) || !contains(err.Error(), want) {
		t.Errorf("err = %v, want mention of %q", err, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMapEmptyAndNil(t *testing.T) {
	out, err := Map(4, []int{}, func(int) (int, error) { return 1, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: %v %v", out, err)
	}
	if _, err := Map[int, int](4, []int{1}, nil); err == nil {
		t.Error("nil fn accepted")
	}
}

func TestMapZeroWorkersDefaults(t *testing.T) {
	out, err := Map(0, []int{1, 2, 3}, func(x int) (int, error) { return x + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if out[2] != 4 {
		t.Errorf("out = %v", out)
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	err := ForEach(4, []int{1, 2, 3, 4}, func(x int) error {
		atomic.AddInt64(&sum, int64(x))
		return nil
	})
	if err != nil || sum != 10 {
		t.Errorf("sum = %d, err = %v", sum, err)
	}
	if err := ForEach(2, []int{1}, func(int) error { return errors.New("x") }); err == nil {
		t.Error("ForEach swallowed error")
	}
}

// Property: parallel Map equals sequential map for pure functions.
func TestMapEquivalentToSequentialProperty(t *testing.T) {
	prop := func(xs []int16, workersRaw uint8) bool {
		items := make([]int, len(xs))
		for i, x := range xs {
			items[i] = int(x)
		}
		workers := int(workersRaw%16) + 1
		got, err := Map(workers, items, func(x int) (int, error) { return 3*x - 1, nil })
		if err != nil {
			return false
		}
		for i, x := range items {
			if got[i] != 3*x-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
