// Package parallel provides the worker-pool primitives the experiment
// harness uses to fan simulation sweeps out across CPU cores:
// order-preserving parallel map with first-error propagation, and a
// bounded ForEach. Simulations are independent and CPU-bound, so the
// default pool size is the machine's core count.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers is the pool size used when workers <= 0.
func DefaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}

// Map applies fn to every item concurrently (at most workers at a time)
// and returns the results in input order. If any invocation returns an
// error, Map returns the error of the smallest-index failure; all
// started invocations still run to completion (simulations do not hold
// external resources, so cancellation is not worth its complexity).
func Map[T, R any](workers int, items []T, fn func(T) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, fmt.Errorf("parallel: nil function")
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(items) {
		workers = len(items)
	}
	results := make([]R, len(items))
	errs := make([]error, len(items))
	if len(items) == 0 {
		return results, nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = fn(items[i])
			}
		}()
	}
	for i := range items {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parallel: item %d: %w", i, err)
		}
	}
	return results, nil
}

// ForEach runs fn over items concurrently, collecting the
// smallest-index error.
func ForEach[T any](workers int, items []T, fn func(T) error) error {
	_, err := Map(workers, items, func(t T) (struct{}, error) {
		return struct{}{}, fn(t)
	})
	return err
}
