// Package offline computes exact offline-optimal schedules for tiny
// instances of the paper's Problem P1 by exhaustive search, and replays
// online schedulers on the same instances. It exists to validate
// Theorem 2 empirically: Hadar's total utility must stay within the
// proven 2*alpha factor of the offline optimum (and, in practice, far
// closer).
//
// The search enumerates, per round, every gang-feasible joint allocation
// (including idling) and maximizes the sum of job utilities, so it is
// exponential and only suitable for instances with a handful of jobs,
// devices, and rounds — exactly what a correctness check needs.
package offline

import (
	"fmt"
	"math"

	"repro/internal/bug"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

// Instance is a tiny P1 instance.
type Instance struct {
	Cluster     *cluster.Cluster
	Jobs        []*job.Job
	Rounds      int
	RoundLength float64
	Utility     core.Utility
}

// Validate checks the instance is searchable.
func (in Instance) Validate() error {
	if in.Cluster == nil || len(in.Jobs) == 0 {
		return fmt.Errorf("offline: empty instance")
	}
	if in.Rounds <= 0 || in.Rounds > 6 {
		return fmt.Errorf("offline: rounds %d outside (0, 6]", in.Rounds)
	}
	if len(in.Jobs) > 3 {
		return fmt.Errorf("offline: %d jobs exceed the brute-force limit of 3", len(in.Jobs))
	}
	if in.Cluster.TotalGPUs() > 6 {
		return fmt.Errorf("offline: %d devices exceed the brute-force limit of 6", in.Cluster.TotalGPUs())
	}
	if in.RoundLength <= 0 {
		return fmt.Errorf("offline: non-positive round length")
	}
	if in.Utility == nil {
		return fmt.Errorf("offline: nil utility")
	}
	for _, j := range in.Jobs {
		if err := j.Validate(); err != nil {
			return fmt.Errorf("offline: %w", err)
		}
		if j.Arrival > 0 {
			return fmt.Errorf("offline: brute force assumes static arrivals, job %d arrives at %v", j.ID, j.Arrival)
		}
	}
	return nil
}

// Result is the outcome of the exhaustive search.
type Result struct {
	// BestUtility is the offline-optimal total utility over completed
	// jobs within the horizon.
	BestUtility float64
	// Schedule is one optimal schedule: Schedule[round][jobIndex].
	Schedule [][]cluster.Alloc
	// Explored counts the DFS leaves evaluated.
	Explored int
}

// candidates enumerates every gang allocation of the job on the cluster
// (every way to distribute W_j workers over usable (node, type) slots),
// plus the empty allocation.
func candidates(c *cluster.Cluster, j *job.Job) []cluster.Alloc {
	type slot struct {
		node int
		typ  gpu.Type
		cap  int
	}
	var slots []slot
	for _, n := range c.Nodes() {
		for t, cap := range n.Capacity {
			if cap > 0 && j.Speed(t) > 0 {
				slots = append(slots, slot{node: n.ID, typ: t, cap: cap})
			}
		}
	}
	var out []cluster.Alloc
	out = append(out, nil) // idle
	var rec func(idx, need int, cur cluster.Alloc)
	rec = func(idx, need int, cur cluster.Alloc) {
		if need == 0 {
			out = append(out, cur.Clone().Canonical())
			return
		}
		if idx >= len(slots) {
			return
		}
		max := slots[idx].cap
		if max > need {
			max = need
		}
		for take := 0; take <= max; take++ {
			next := cur
			if take > 0 {
				next = append(cur.Clone(), cluster.Placement{
					Node: slots[idx].node, Type: slots[idx].typ, Count: take,
				})
			}
			rec(idx+1, need-take, next)
		}
	}
	rec(0, j.Workers, nil)
	return out
}

// Optimal exhaustively searches the instance for the maximum total
// utility.
func Optimal(in Instance) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	cands := make([][]cluster.Alloc, len(in.Jobs))
	for i, j := range in.Jobs {
		cands[i] = candidates(in.Cluster, j)
	}

	best := Result{BestUtility: 0}
	remaining := make([]float64, len(in.Jobs))
	finished := make([]float64, len(in.Jobs)) // finish time or -1
	for i, j := range in.Jobs {
		remaining[i] = j.TotalIters()
		finished[i] = -1
	}
	current := make([][]cluster.Alloc, in.Rounds)

	var dfsRound func(round int)
	var dfsJob func(round, jobIdx int, free *cluster.State, chosen []cluster.Alloc)

	scoreAndRecurse := func(round int, chosen []cluster.Alloc) {
		// Advance every job for this round.
		savedRem := append([]float64(nil), remaining...)
		savedFin := append([]float64(nil), finished...)
		now := float64(round) * in.RoundLength
		for i, j := range in.Jobs {
			if finished[i] >= 0 || chosen[i].Workers() == 0 {
				continue
			}
			rate := sched.Rate(j, in.Cluster, chosen[i])
			if rate <= 0 {
				continue
			}
			if remaining[i] <= rate*in.RoundLength {
				finished[i] = now + remaining[i]/rate
				remaining[i] = 0
			} else {
				remaining[i] -= rate * in.RoundLength
			}
		}
		current[round] = append([]cluster.Alloc(nil), chosen...)
		dfsRound(round + 1)
		remaining = savedRem
		finished = savedFin
	}

	dfsJob = func(round, jobIdx int, free *cluster.State, chosen []cluster.Alloc) {
		if jobIdx == len(in.Jobs) {
			scoreAndRecurse(round, chosen)
			return
		}
		if finished[jobIdx] >= 0 {
			chosen[jobIdx] = nil
			dfsJob(round, jobIdx+1, free, chosen)
			return
		}
		for _, a := range cands[jobIdx] {
			if a.Workers() > 0 {
				if err := free.Allocate(a); err != nil {
					continue
				}
			}
			chosen[jobIdx] = a
			dfsJob(round, jobIdx+1, free, chosen)
			if a.Workers() > 0 {
				if err := free.Release(a); err != nil {
					bug.Failf("offline: release during backtracking failed: %v", err)
				}
			}
		}
	}

	score := func() {
		best.Explored++
		total := 0.0
		for i, j := range in.Jobs {
			if finished[i] >= 0 {
				total += in.Utility.Value(j, 0, finished[i]-j.Arrival)
			}
		}
		if total > best.BestUtility {
			best.BestUtility = total
			best.Schedule = make([][]cluster.Alloc, in.Rounds)
			for r := range current {
				best.Schedule[r] = append([]cluster.Alloc(nil), current[r]...)
			}
		}
	}

	dfsRound = func(round int) {
		allDone := true
		for i := range in.Jobs {
			if finished[i] < 0 {
				allDone = false
				break
			}
		}
		if round == in.Rounds || allDone {
			// Remaining rounds (if any) idle.
			for r := round; r < in.Rounds; r++ {
				current[r] = make([]cluster.Alloc, len(in.Jobs))
			}
			score()
			return
		}
		chosen := make([]cluster.Alloc, len(in.Jobs))
		dfsJob(round, 0, cluster.NewState(in.Cluster), chosen)
	}

	dfsRound(0)
	return best, nil
}

// Replay runs an online scheduler round by round on the instance (P1
// semantics: no checkpoint overhead) and returns its total utility over
// completed jobs plus the largest competitive-ratio factor alpha it
// reported (for *core.Scheduler; 1 otherwise).
func Replay(in Instance, s sched.Scheduler) (utility, alpha float64, err error) {
	if err := in.Validate(); err != nil {
		return 0, 0, err
	}
	states := make([]*sched.JobState, len(in.Jobs))
	for i, j := range in.Jobs {
		states[i] = &sched.JobState{
			Job: j, Remaining: j.TotalIters(),
			RoundsByType: make(map[gpu.Type]float64),
		}
	}
	finished := make([]float64, len(in.Jobs))
	for i := range finished {
		finished[i] = -1
	}
	alpha = 1
	horizon := float64(in.Rounds) * in.RoundLength
	for round := 0; round < in.Rounds; round++ {
		now := float64(round) * in.RoundLength
		var active []*sched.JobState
		idx := map[int]int{}
		for i, st := range states {
			if finished[i] < 0 {
				active = append(active, st)
				idx[st.Job.ID] = i
			}
		}
		if len(active) == 0 {
			break
		}
		ctx := &sched.Context{
			Now: now, Round: round, RoundLength: in.RoundLength,
			Horizon: horizon, Cluster: in.Cluster, Jobs: active,
		}
		decisions := s.Schedule(ctx)
		if h, ok := s.(*core.Scheduler); ok {
			if a := h.LastAlpha(); a > alpha {
				alpha = a
			}
		}
		free := cluster.NewState(in.Cluster)
		for id, a := range decisions {
			i, ok := idx[id]
			if !ok {
				return 0, 0, fmt.Errorf("offline: allocation for inactive job %d", id)
			}
			if err := sched.Validate(states[i].Job, a); err != nil {
				return 0, 0, err
			}
			if a.Workers() > 0 {
				if err := free.Allocate(a); err != nil {
					return 0, 0, fmt.Errorf("offline: %s over-allocated: %w", s.Name(), err)
				}
			}
		}
		for _, st := range active {
			i := idx[st.Job.ID]
			a := decisions[st.Job.ID].Canonical()
			st.Alloc = a
			if a.Workers() == 0 {
				continue
			}
			st.Rounds++
			rate := sched.Rate(st.Job, in.Cluster, a)
			if rate <= 0 {
				continue
			}
			if st.Remaining <= rate*in.RoundLength {
				finished[i] = now + st.Remaining/rate
				st.Remaining = 0
			} else {
				st.Remaining -= rate * in.RoundLength
			}
		}
	}
	total := 0.0
	for i, j := range in.Jobs {
		if finished[i] >= 0 {
			total += in.Utility.Value(j, 0, finished[i]-j.Arrival)
		}
	}
	if math.IsNaN(total) {
		return 0, 0, fmt.Errorf("offline: NaN utility")
	}
	return total, alpha, nil
}
