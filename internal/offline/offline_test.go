package offline

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
)

func tinyJob(id, workers int, iters float64, v100, k80 float64) *job.Job {
	return &job.Job{
		ID: id, Model: "tiny", Workers: workers,
		Epochs: int(iters), ItersPerEpoch: 1,
		Throughput: map[gpu.Type]float64{gpu.V100: v100, gpu.K80: k80},
	}
}

func tinyInstance() Instance {
	return Instance{
		Cluster: cluster.New(
			gpu.Fleet{gpu.V100: 2},
			gpu.Fleet{gpu.K80: 1},
		),
		Jobs: []*job.Job{
			tinyJob(0, 2, 2000, 10, 4),
			tinyJob(1, 1, 600, 5, 3),
		},
		Rounds:      3,
		RoundLength: 100,
		Utility:     core.EffectiveThroughput{},
	}
}

func TestOptimalFindsCompletingSchedule(t *testing.T) {
	res, err := Optimal(tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestUtility <= 0 {
		t.Fatalf("optimum utility = %v, want > 0", res.BestUtility)
	}
	if res.Explored == 0 {
		t.Error("nothing explored")
	}
	if len(res.Schedule) != 3 {
		t.Errorf("schedule has %d rounds", len(res.Schedule))
	}
	// The optimal schedule's allocations must be jointly feasible.
	for r, roundAllocs := range res.Schedule {
		free := cluster.NewState(tinyInstance().Cluster)
		for _, a := range roundAllocs {
			if a.Workers() == 0 {
				continue
			}
			if err := free.Allocate(a); err != nil {
				t.Errorf("round %d optimal schedule infeasible: %v", r, err)
			}
		}
	}
}

func TestOptimalSingleJobExact(t *testing.T) {
	// One 2-worker job, 2 V100 at 10 it/s each: 2000 iters need 100s,
	// i.e. exactly one round. Utility = 2000/100 = 20.
	in := Instance{
		Cluster:     cluster.New(gpu.Fleet{gpu.V100: 2}),
		Jobs:        []*job.Job{tinyJob(0, 2, 2000, 10, 0)},
		Rounds:      2,
		RoundLength: 100,
		Utility:     core.EffectiveThroughput{},
	}
	res, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestUtility != 20 {
		t.Errorf("optimal utility = %v, want 20", res.BestUtility)
	}
}

func TestOptimalPrefersFastDevices(t *testing.T) {
	// A 1-worker job with V100 5x K80: the optimum must finish on V100.
	in := Instance{
		Cluster:     cluster.New(gpu.Fleet{gpu.V100: 1, gpu.K80: 1}),
		Jobs:        []*job.Job{tinyJob(0, 1, 900, 10, 2)},
		Rounds:      2,
		RoundLength: 100,
		Utility:     core.EffectiveThroughput{},
	}
	res, err := Optimal(in)
	if err != nil {
		t.Fatal(err)
	}
	// On V100: finishes at 90s -> utility 10. On K80 it cannot finish in
	// 200s at 2 it/s (400 of 900 iters).
	if res.BestUtility != 10 {
		t.Errorf("optimal utility = %v, want 10 (V100 finish)", res.BestUtility)
	}
}

func TestValidateLimits(t *testing.T) {
	in := tinyInstance()
	in.Rounds = 9
	if _, err := Optimal(in); err == nil {
		t.Error("oversized rounds accepted")
	}
	in = tinyInstance()
	in.Jobs = append(in.Jobs, tinyJob(2, 1, 1, 1, 1), tinyJob(3, 1, 1, 1, 1))
	if _, err := Optimal(in); err == nil {
		t.Error("too many jobs accepted")
	}
	in = tinyInstance()
	in.Jobs[0].Arrival = 5
	if _, err := Optimal(in); err == nil {
		t.Error("non-static arrival accepted")
	}
	in = tinyInstance()
	in.Utility = nil
	if _, err := Optimal(in); err == nil {
		t.Error("nil utility accepted")
	}
}

func TestReplayNeverExceedsOptimal(t *testing.T) {
	instances := []Instance{
		tinyInstance(),
		{
			Cluster: cluster.New(gpu.Fleet{gpu.V100: 1}, gpu.Fleet{gpu.K80: 2}),
			Jobs: []*job.Job{
				tinyJob(0, 1, 500, 8, 3),
				tinyJob(1, 2, 800, 6, 2),
				tinyJob(2, 1, 300, 4, 4),
			},
			Rounds:      3,
			RoundLength: 100,
			Utility:     core.EffectiveThroughput{},
		},
	}
	for i, in := range instances {
		opt, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Utility = in.Utility
		online, _, err := Replay(in, core.New(opts))
		if err != nil {
			t.Fatal(err)
		}
		if online > opt.BestUtility+1e-6 {
			t.Errorf("instance %d: online utility %v exceeds offline optimum %v",
				i, online, opt.BestUtility)
		}
	}
}

// TestCompetitiveRatioEmpirical validates Theorem 2 on brute-forceable
// instances: Hadar's utility must be at least OPT / (2*alpha).
func TestCompetitiveRatioEmpirical(t *testing.T) {
	instances := []Instance{
		tinyInstance(),
		{
			Cluster: cluster.New(gpu.Fleet{gpu.V100: 2, gpu.K80: 1}),
			Jobs: []*job.Job{
				tinyJob(0, 2, 1500, 9, 3),
				tinyJob(1, 1, 400, 7, 5),
			},
			Rounds:      4,
			RoundLength: 100,
			Utility:     core.EffectiveThroughput{},
		},
		{
			Cluster: cluster.New(gpu.Fleet{gpu.V100: 1}, gpu.Fleet{gpu.K80: 1}),
			Jobs: []*job.Job{
				tinyJob(0, 1, 700, 10, 2),
				tinyJob(1, 1, 700, 10, 2),
			},
			Rounds:      3,
			RoundLength: 100,
			Utility:     core.EffectiveThroughput{},
		},
	}
	for i, in := range instances {
		opt, err := Optimal(in)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.DefaultOptions()
		opts.Utility = in.Utility
		online, alpha, err := Replay(in, core.New(opts))
		if err != nil {
			t.Fatal(err)
		}
		bound := opt.BestUtility / (2 * alpha)
		if online < bound-1e-9 {
			t.Errorf("instance %d: online %.3f below competitive bound %.3f (OPT %.3f, alpha %.2f)",
				i, online, bound, opt.BestUtility, alpha)
		}
		t.Logf("instance %d: OPT=%.2f online=%.2f alpha=%.2f ratio=%.2f",
			i, opt.BestUtility, online, alpha, opt.BestUtility/maxf(online, 1e-9))
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestReplayRejectsBadInstance(t *testing.T) {
	in := tinyInstance()
	in.Rounds = 0
	if _, _, err := Replay(in, core.New(core.DefaultOptions())); err == nil {
		t.Error("invalid instance accepted")
	}
}
