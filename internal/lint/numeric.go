package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isFloat reports whether the expression's type is (or has underlying)
// float32/float64.
func isFloat(p *Pass, e ast.Expr) bool {
	t := p.Pkg.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// analyzerFloatEq forbids == and != between floating-point operands.
// The dual-price arithmetic (Eq. 5-8) and the conservation accounting
// are exact float math validated against tolerances; a raw equality is
// either a latent bug (values that "should" be equal drift apart after
// reassociation) or an identity check that deserves an explicit
// justification. Use an epsilon (invariant.Tol) or an ordered
// comparison instead.
var analyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc: "forbid ==/!= between floating-point operands; compare against an explicit epsilon " +
		"(invariant.Tol) or restructure with </>, suppressing only genuine bitwise-identity checks",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if isFloat(p, be.X) && isFloat(p, be.Y) {
				p.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon (invariant.Tol) or an ordered comparison", be.Op)
			}
			return true
		})
	},
}

// commentLines maps each line carrying a comment to the comment text,
// for the documented-tolerance check.
func commentLines(p *Pass, f *ast.File) map[int]string {
	m := map[int]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := p.Pkg.Fset.Position(c.Pos())
			end := p.Pkg.Fset.Position(c.End())
			for line := pos.Line; line <= end.Line; line++ {
				m[line] += c.Text
			}
		}
	}
	return m
}

// documentsTolerance reports whether the statement at the given line
// carries (on its own line or within the three lines above it) a
// comment acknowledging the accumulated error, by mentioning a
// tolerance or the shared epsilon.
func documentsTolerance(comments map[int]string, line int) bool {
	for l := line - 3; l <= line; l++ {
		c := strings.ToLower(comments[l])
		if strings.Contains(c, "tolerance") || strings.Contains(c, "invariant.tol") {
			return true
		}
	}
	return false
}

// analyzerFloatAccum flags floating-point accumulation into persistent
// state (a field or element, not a function-local) inside a loop,
// unless a nearby comment documents the tolerance story. Cross-round
// sums drift by round-off; the drift is fine exactly when something
// (the invariant oracle's conservation check, a report-level bound)
// owns the error budget — and that ownership must be written down.
var analyzerFloatAccum = &Analyzer{
	Name: "floataccum",
	Doc: "flag float += / -= into fields or elements inside loops without a documented tolerance; " +
		"cross-round accumulation drifts, so a comment must say which check owns the error budget",
	Run: func(p *Pass) {
		for _, f := range p.Pkg.Files {
			comments := commentLines(p, f)
			var loopDepth int
			var walk func(n ast.Node) bool
			walk = func(n ast.Node) bool {
				switch s := n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loopDepth++
					for _, c := range children(s) {
						ast.Inspect(c, walk)
					}
					loopDepth--
					return false
				case *ast.AssignStmt:
					if loopDepth == 0 || (s.Tok != token.ADD_ASSIGN && s.Tok != token.SUB_ASSIGN) {
						return true
					}
					lhs := s.Lhs[0]
					switch lhs.(type) {
					case *ast.SelectorExpr, *ast.IndexExpr:
					default:
						return true // locals accumulate within one scope; fine
					}
					if !isFloat(p, lhs) {
						return true
					}
					line := p.Pkg.Fset.Position(s.Pos()).Line
					if !documentsTolerance(comments, line) {
						p.Reportf(s.Pos(), "float accumulation into persistent state inside a loop without a documented tolerance")
					}
				}
				return true
			}
			ast.Inspect(f, walk)
		}
	},
}

// children returns the immediate child nodes of a for/range statement
// so the walker can re-enter them with the loop depth raised.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	add := func(c ast.Node) {
		if c != nil {
			out = append(out, c)
		}
	}
	switch s := n.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			out = append(out, s.Init)
		}
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
		if s.Post != nil {
			out = append(out, s.Post)
		}
		add(s.Body)
	case *ast.RangeStmt:
		if s.Key != nil {
			out = append(out, s.Key)
		}
		if s.Value != nil {
			out = append(out, s.Value)
		}
		if s.X != nil {
			out = append(out, s.X)
		}
		add(s.Body)
	}
	return out
}
