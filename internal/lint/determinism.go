package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgFuncObj resolves a selector to a package-level function and
// returns its package path and name, or "" when it is anything else
// (method, field, variable, type).
func pkgFuncObj(p *Pass, sel *ast.SelectorExpr) (pkgPath, name string) {
	obj, ok := p.Pkg.Info.Uses[sel.Sel]
	if !ok {
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", "" // method: rand.Rand.Intn etc. are fine
	}
	return fn.Pkg().Path(), fn.Name()
}

// inspectAll walks every file of the pass's package.
func inspectAll(p *Pass, fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}

// analyzerWallClock forbids reading the wall clock in packages where
// simulated time is the only legitimate clock: time.Now, time.Since,
// and time.Until make replays non-reproducible and let real-machine
// speed leak into results.
var analyzerWallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock reads (time.Now/Since/Until) in deterministic packages; " +
		"scheduler-path code must run on the simulated round clock so replays are bit-identical",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name := pkgFuncObj(p, sel); pkg == "time" {
				switch name {
				case "Now", "Since", "Until":
					p.Reportf(sel.Pos(), "wall-clock read time.%s in deterministic package %s", name, p.Pkg.Types.Name())
				}
			}
			return true
		})
	},
}

// globalRandAllowed lists the math/rand functions that do NOT touch
// the global source: constructors for explicitly seeded generators.
var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// analyzerGlobalRand forbids the global math/rand functions (Intn,
// Float64, Shuffle, ...), which draw from a process-global, possibly
// auto-seeded source. Methods on an explicitly seeded *rand.Rand are
// fine.
var analyzerGlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand functions in deterministic packages; thread an explicitly " +
		"seeded *rand.Rand instead so every run replays identically from its seed",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFuncObj(p, sel)
			if (pkg == "math/rand" || pkg == "math/rand/v2") && !globalRandAllowed[name] {
				p.Reportf(sel.Pos(), "global math/rand function rand.%s; use a seeded *rand.Rand", name)
			}
			return true
		})
	},
}

// collectsKeyOnly reports whether a range body is exactly the
// collect-then-sort idiom: a single append of the range variable into
// a slice (`keys = append(keys, k)`), optionally under a single filter
// guard, whose order the caller is expected to fix by sorting before
// use.
func collectsKeyOnly(body *ast.BlockStmt, key, value ast.Expr) bool {
	if len(body.List) != 1 {
		return false
	}
	stmt := body.List[0]
	// A single guard (`if c > 0 { keys = append(keys, k) }`) filters
	// the collection but does not order it: unwrap it.
	if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil && ifs.Else == nil && len(ifs.Body.List) == 1 {
		stmt = ifs.Body.List[0]
	}
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	names := map[string]bool{}
	for _, e := range []ast.Expr{key, value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			names[id.Name] = true
		}
	}
	for _, arg := range call.Args[1:] {
		id, ok := arg.(*ast.Ident)
		if !ok || !names[id.Name] {
			return false
		}
	}
	return true
}

// analyzerMapRange forbids ranging over maps in deterministic
// packages: Go randomizes map iteration order per run, so any schedule
// decision, emitted event, accumulated float, or rendered line that
// depends on it differs between replays. The one permitted shape is
// the collect-then-sort idiom (a body that only appends the key to a
// slice); everything else must sort keys first or carry a justified
// suppression.
var analyzerMapRange = &Analyzer{
	Name: "maprange",
	Doc: "forbid `range` over maps in deterministic packages (iteration order is randomized); " +
		"collect keys and sort them, or suppress with the reason the order cannot be observed",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsKeyOnly(rs.Body, rs.Key, rs.Value) {
				return true
			}
			p.Reportf(rs.Pos(), "range over map %s: iteration order is nondeterministic; sort the keys first", types.TypeString(t, types.RelativeTo(p.Pkg.Types)))
			return true
		})
	},
}
