package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// analyzerOwnership enforces the single-owner goroutine discipline for
// guarded types (sim.Engine, federation.Federation): after
// construction, exactly one goroutine — the service run loop launched
// with `go` — may mutate the value. The analyzer classifies every
// mutation site (a call to a receiver-mutating method of a guarded
// type, or a direct field store through a guarded value) by the
// goroutine context that reaches it:
//
//   - inside a method of a guarded type: internal, covered by the
//     outer value's own ownership;
//   - reachable from a `go` launch: the owning goroutine;
//   - reachable only from constructors (functions that create the
//     value): pre-publication setup, happens-before the launch;
//   - reachable from the exported API without a goroutine handoff
//     while a go-context owner exists: a violation — a reader or
//     handler is mutating the owner's state.
//
// Separately, a goroutine launched inside a loop that mutates a
// guarded value captured from outside the loop is always a violation:
// every iteration shares one owner.
var analyzerOwnership = &Analyzer{
	Name: "ownership",
	Doc: "enforce single-owner goroutine discipline for guarded types (doc marker " +
		"\"single-owner\" / \"not safe for concurrent use\"): mutations must stay on the " +
		"owning goroutine or in pre-publication constructors",
	RunModule: func(p *ModulePass) {
		m := p.Mod
		guarded := guardedTypes(m)
		if len(guarded) == 0 {
			return
		}
		guardedSet := map[*types.Named]bool{}
		for _, g := range guarded {
			guardedSet[g.Origin()] = true
		}

		mainReach := m.closure(exportedEntries(m, guardedSet))
		goCtxs := goContexts(m)

		for _, g := range guarded {
			sites := mutationSites(m, g, guardedSet)
			if len(sites) == 0 {
				continue
			}
			ctorReach := m.closure(constructorNodes(m, g))
			hasGoOwner := false
			for _, c := range goCtxs {
				for _, s := range sites {
					if c[s.node] {
						hasGoOwner = true
					}
				}
			}
			if !hasGoOwner {
				continue // batch-only usage: one goroutine total
			}
			for _, s := range sites {
				if !mainReach[s.node] || ctorReach[s.node] {
					continue
				}
				inGo := false
				for _, c := range goCtxs {
					if c[s.node] {
						inGo = true
					}
				}
				if inGo {
					continue
				}
				p.Reportf(s.node.Pkg, s.pos,
					"%s mutates single-owner %s outside its owning goroutine (reachable from the exported API "+
						"without a goroutine handoff); route the mutation through the owner's run loop",
					s.node.Name(), g.Obj().Name())
			}
		}

		checkLoopLaunches(p, guardedSet)
	},
}

// exportedEntries returns the nodes reachable by callers outside the
// module without a goroutine handoff: exported functions and methods,
// plus main and init. Methods of guarded types are excluded — calling
// those IS the mutation being classified, not an entry.
func exportedEntries(m *Module, guarded map[*types.Named]bool) []*FuncNode {
	var out []*FuncNode
	for _, n := range m.nodes {
		if n.Obj == nil {
			continue
		}
		if rb := receiverBase(n.Obj); rb != nil && guarded[rb.Origin()] {
			continue
		}
		if n.Obj.Exported() || n.Obj.Name() == "main" || n.Obj.Name() == "init" {
			out = append(out, n)
		}
	}
	return out
}

// goContexts returns one reachability set per `go` launch in the
// module: the functions that may execute on that launched goroutine.
func goContexts(m *Module) []map[*FuncNode]bool {
	var out []map[*FuncNode]bool
	for _, n := range m.nodes {
		for _, gl := range n.GoLaunches {
			if roots := m.launchRoots(gl); len(roots) > 0 {
				out = append(out, m.closure(roots))
			}
		}
	}
	return out
}

// mutSite is one mutation of a guarded value.
type mutSite struct {
	node *FuncNode
	pos  token.Pos
}

// guardedEnclosing reports whether the node (or, for a go-literal, its
// declaring parent chain) is a method of any guarded type.
func guardedEnclosing(n *FuncNode, guarded map[*types.Named]bool) bool {
	for at := n; at != nil; at = at.Parent {
		if at.Obj != nil {
			if rb := receiverBase(at.Obj); rb != nil && guarded[rb.Origin()] {
				return true
			}
		}
	}
	return false
}

// lvalueTouches reports whether an assignment target writes through a
// value of type g (a direct field store like e.digest = x, possibly
// nested: f.members[i].eng.round = x).
func lvalueTouches(n *FuncNode, lvalue ast.Expr, g *types.Named) bool {
	for e := ast.Unparen(lvalue); e != nil; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			named := namedOf(n.Pkg.TypeOf(e))
			return named != nil && named.Origin() == g.Origin()
		}
		if named := namedOf(n.Pkg.TypeOf(e)); named != nil && named.Origin() == g.Origin() {
			return true
		}
	}
	return false
}

// mutationSites collects every mutation of guarded type g outside g's
// (or any guarded type's) own methods: calls to receiver-mutating
// methods of g, and direct stores through g-typed expressions.
func mutationSites(m *Module, g *types.Named, guarded map[*types.Named]bool) []*mutSite {
	var sites []*mutSite
	for _, n := range m.nodes {
		if n.body() == nil || guardedEnclosing(n, guarded) {
			continue
		}
		for _, c := range n.Calls {
			rb := receiverBase(c.Callee)
			if rb == nil || rb.Origin() != g.Origin() {
				continue
			}
			if cn := m.node(c.Callee); cn != nil && cn.mutatesReceiver() {
				sites = append(sites, &mutSite{node: n, pos: c.Expr.Pos()})
			}
		}
		node := n
		ast.Inspect(n.body(), func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.FuncLit:
				// go-launched literals are their own nodes; other
				// literals share this goroutine and stay attributed here.
				for _, gl := range node.GoLaunches {
					if gl.Node != nil && gl.Node.Lit == s {
						return false
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if lvalueTouches(node, lhs, g) {
						sites = append(sites, &mutSite{node: node, pos: s.Pos()})
					}
				}
			case *ast.IncDecStmt:
				if lvalueTouches(node, s.X, g) {
					sites = append(sites, &mutSite{node: node, pos: s.Pos()})
				}
			}
			return true
		})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}

// constructorNodes returns the functions that create values of g:
// composite literals, new(g), or calls whose results contain g (its
// own constructors and wrappers like RestoreEngine / recoverState).
func constructorNodes(m *Module, g *types.Named) []*FuncNode {
	var out []*FuncNode
	for _, n := range m.nodes {
		if n.body() == nil || n.Obj == nil {
			continue
		}
		found := false
		ast.Inspect(n.body(), func(x ast.Node) bool {
			if found {
				return false
			}
			switch s := x.(type) {
			case *ast.CompositeLit:
				if named := namedOf(n.Pkg.TypeOf(s)); named != nil && named.Origin() == g.Origin() {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok && id.Name == "new" && n.Pkg.Info.Uses[id] == nil {
					if len(s.Args) == 1 && typeContainsNamed(n.Pkg.TypeOf(s.Args[0]), g, 0) {
						found = true
						return false
					}
				}
				if t := n.Pkg.TypeOf(s); t != nil && typeContainsNamed(t, g, 0) {
					found = true
				}
			}
			return true
		})
		if found {
			out = append(out, n)
		}
	}
	return out
}

// checkLoopLaunches flags goroutines launched in a loop whose bodies
// mutate a guarded value captured from OUTSIDE the loop: N goroutines
// sharing one owner. Per-iteration loop variables (one value per
// goroutine since Go 1.22) are exempt.
func checkLoopLaunches(p *ModulePass, guarded map[*types.Named]bool) {
	m := p.Mod
	for _, n := range m.nodes {
		for _, gl := range n.GoLaunches {
			if !gl.InLoop() || gl.Node == nil || gl.Node.body() == nil {
				continue
			}
			lit := gl.Node
			ast.Inspect(lit.body(), func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, _ := m.resolveCallee(lit.Pkg, call)
				if callee == nil {
					return true
				}
				rb := receiverBase(callee)
				if rb == nil || !guarded[rb.Origin()] {
					return true
				}
				cn := m.node(callee)
				if cn == nil || !cn.mutatesReceiver() {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base := baseIdentObj(lit.Pkg, sel.X)
				if base == nil {
					return true
				}
				// Captured from outside the loop: declared before the
				// loop began and outside the literal itself.
				if base.Pos() >= gl.Loop.Pos() && base.Pos() <= gl.Loop.End() {
					return true // loop variable or loop-local: fresh per iteration
				}
				p.Reportf(lit.Pkg, call.Pos(),
					"goroutine launched in a loop mutates single-owner %s %q captured from outside the loop; "+
						"every iteration shares one owner",
					rb.Obj().Name(), base.Name())
				return true
			})
		}
	}
}

// baseIdentObj resolves the base identifier of a selector chain to its
// object.
func baseIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
