package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// containsLock reports whether a value of type t holds (directly or
// through nested struct fields or arrays) a sync primitive that must
// not be copied after first use.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockName renders a lock-containing type for diagnostics.
func lockName(p *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(p.Pkg.Types))
}

// analyzerLockCopy detects by-value copies of types containing
// sync.Mutex, sync.WaitGroup, or the other non-copyable sync
// primitives: value receivers, value parameters, value results, plain
// assignments, and ranging by value over slices of such types. Copying
// the lock forks its state, so the copy guards nothing.
var analyzerLockCopy = &Analyzer{
	Name: "lockcopy",
	Doc: "detect by-value copies of types containing sync.Mutex/WaitGroup (receivers, params, " +
		"results, assignments, range values); a copied lock guards nothing — pass a pointer",
	Run: func(p *Pass) {
		checkField := func(kind string, fl *ast.FieldList) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				t := p.Pkg.TypeOf(f.Type)
				if t == nil {
					continue
				}
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if containsLock(t, map[types.Type]bool{}) {
					p.Reportf(f.Type.Pos(), "%s copies lock: %s contains a sync primitive; use a pointer", kind, lockName(p, t))
				}
			}
		}
		inspectAll(p, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncDecl:
				checkField("receiver", s.Recv)
				checkField("parameter", s.Type.Params)
				checkField("result", s.Type.Results)
			case *ast.FuncLit:
				checkField("parameter", s.Type.Params)
				checkField("result", s.Type.Results)
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					if len(s.Lhs) != len(s.Rhs) {
						break
					}
					switch rhs.(type) {
					case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					default:
						continue // composite literals etc. construct fresh values
					}
					t := p.Pkg.TypeOf(rhs)
					if t != nil && containsLock(t, map[types.Type]bool{}) {
						p.Reportf(s.Rhs[i].Pos(), "assignment copies lock: %s contains a sync primitive", lockName(p, t))
					}
				}
			case *ast.RangeStmt:
				if s.Value == nil {
					return true
				}
				t := p.Pkg.TypeOf(s.Value)
				if t != nil && containsLock(t, map[types.Type]bool{}) {
					p.Reportf(s.Value.Pos(), "range value copies lock: %s contains a sync primitive; range by index", lockName(p, t))
				}
			}
			return true
		})
	},
}

// hasCancellationPath reports whether a goroutine body observes some
// form of stop signal: a context.Context value, a channel receive, a
// select statement, or a return-on-error loop around a call that a
// shutdown unblocks. The heuristic accepts the first three shapes;
// anything else needs a suppression explaining how the goroutine ends.
func hasCancellationPath(p *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.Ident:
			if t := p.Pkg.TypeOf(e); t != nil && isContext(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// analyzerGoStop requires every goroutine launched in the live control
// plane to have a visible cancellation or deadline path. A goroutine
// with no way to stop outlives the run, keeps connections and workers
// pinned, and turns clean shutdowns into leaks the race detector then
// reports at random places.
var analyzerGoStop = &Analyzer{
	Name: "gostop",
	Doc: "require goroutines in the control plane to observe a cancellation path (context, " +
		"channel receive, or select); suppress only with the reason the goroutine is bounded",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body ast.Node
			switch fn := gs.Call.Fun.(type) {
			case *ast.FuncLit:
				body = fn.Body
			default:
				// A named function or method: find its declaration in
				// this package; foreign callees cannot be inspected and
				// must carry a suppression.
				if decl := localDecl(p, gs.Call.Fun); decl != nil {
					body = decl.Body
				}
			}
			if body == nil || !hasCancellationPath(p, body) {
				p.Reportf(gs.Pos(), "goroutine without a visible cancellation/deadline path")
			}
			return true
		})
	},
}

// localDecl resolves a call target to a function declared in the
// current package, if it is one.
func localDecl(p *Pass, fun ast.Expr) *ast.FuncDecl {
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[f.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != p.Pkg.Path {
		return nil
	}
	for _, file := range p.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && p.Pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// exprString renders an expression for receiver matching.
func exprString(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, p.Pkg.Fset, e)
	return buf.String()
}

// syncLockCall matches a statement of the form `x.Lock()` / `x.RLock()`
// where the method is sync's, returning the receiver rendering and the
// matching unlock method name.
func syncLockCall(p *Pass, stmt ast.Stmt) (recv, unlock string, pos ast.Node) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", "", nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", nil
	}
	obj, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", nil
	}
	switch obj.Name() {
	case "Lock":
		return exprString(p, sel.X), "Unlock", es
	case "RLock":
		return exprString(p, sel.X), "RUnlock", es
	}
	return "", "", nil
}

// isDeferredUnlock matches `defer x.Unlock()` for the given receiver
// rendering and unlock method.
func isDeferredUnlock(p *Pass, stmt ast.Stmt, recv, unlock string) bool {
	ds, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	sel, ok := ds.Call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return sel.Sel.Name == unlock && exprString(p, sel.X) == recv
}

// countReturns counts return statements in a body, not descending into
// nested function literals.
func countReturns(body *ast.BlockStmt) int {
	n := 0
	ast.Inspect(body, func(node ast.Node) bool {
		switch node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			n++
		}
		return true
	})
	return n
}

// analyzerDeferUnlock requires `defer mu.Unlock()` immediately after
// `mu.Lock()` in functions with more than one return statement: with
// multiple exits, a manually paired Unlock is one early return away
// from a deadlock.
var analyzerDeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc: "require `defer mu.Unlock()` on the line after `mu.Lock()` in multi-return functions; " +
		"a manual unlock across several exits is one early return away from a deadlock",
	Run: func(p *Pass) {
		checkBody := func(body *ast.BlockStmt) {
			if body == nil || countReturns(body) < 2 {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // checked separately with its own return count
				}
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				for i, stmt := range block.List {
					recv, unlock, at := syncLockCall(p, stmt)
					if at == nil {
						continue
					}
					if i+1 < len(block.List) && isDeferredUnlock(p, block.List[i+1], recv, unlock) {
						continue
					}
					p.Reportf(at.Pos(), "%s.Lock() in a multi-return function without an immediate `defer %s.%s()`",
						recv, recv, unlock)
				}
				return true
			})
		}
		inspectAll(p, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkBody(fn.Body)
			case *ast.FuncLit:
				checkBody(fn.Body)
			}
			return true
		})
	},
}
