// Package digesttaint exercises the digest taint analysis: the
// dataflow feeding a golden digest fold must be free of unsorted map
// ranges, wall-clock reads, and global rand draws — even when the
// producing code sits outside the syntactic rules' path allowlists.
package digesttaint

import (
	"math/rand"
	"sort"
	"time"
)

// Engine folds schedule decisions into a golden digest.
type Engine struct {
	digest uint64
	sched  Scheduler
}

// Scheduler produces the decisions for one round.
type Scheduler interface {
	Schedule(jobs map[int]int) []int
}

// Greedy schedules deterministically.
type Greedy struct{}

// Schedule sorts the keys before iterating: replay-identical.
func (Greedy) Schedule(jobs map[int]int) []int {
	var keys []int
	for k := range jobs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, jobs[k])
	}
	return out
}

// Sloppy schedules in map order with tie-breaks from the global RNG
// and the wall clock: every source the digest must never see. The
// taint tracker reaches it through the Scheduler interface even
// though no allowlist names this package.
type Sloppy struct{}

// Schedule is nondeterministic three ways over.
func (Sloppy) Schedule(jobs map[int]int) []int {
	var out []int
	for k, v := range jobs { // want "digesttaint: unsorted range over map"
		out = append(out, k+v)
	}
	if time.Now().Unix()%2 == 0 { // want "digesttaint: wall-clock read time.Now"
		out = append(out, rand.Int()) // want "digesttaint: global math/rand draw rand.Int"
	}
	return out
}

// Tally schedules by commutative accumulation: integer sums, stores
// keyed by the range key, constant flag sets, guarded continues, and
// guarded error returns cannot observe iteration order, so none of
// these ranges is flagged even though Tally sits on the digest path.
type Tally struct{}

// Schedule accumulates order-insensitively.
func (Tally) Schedule(jobs map[int]int) []int {
	total := 0
	seen := make(map[int]bool, len(jobs))
	any := false
	for k, v := range jobs {
		if v < 0 {
			continue
		}
		total += v
		seen[k] = true
		any = true
	}
	if !any {
		return nil
	}
	return []int{total, len(seen)}
}

// check aborts on the first bad entry: which one aborts first varies
// with map order, but an aborted fold never reaches the digest.
func check(jobs map[int]int) error {
	for k, v := range jobs {
		if v < 0 {
			return errBad(k)
		}
	}
	return nil
}

type errBad int

func (e errBad) Error() string { return "bad job" }

// Filtered collects keys under a guard and sorts: the guarded
// collect-then-sort idiom stays exempt.
func Filtered(jobs map[int]int) []int {
	var keys []int
	for k, v := range jobs {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Ints(keys)
	if err := check(jobs); err != nil {
		return nil
	}
	return keys
}

// Round runs one round and folds the decisions into the digest: the
// producer flows into the fold through the decisions argument.
func (e *Engine) Round(jobs map[int]int) {
	decisions := e.sched.Schedule(jobs)
	e.fold(decisions)
	e.fold(Filtered(jobs))
}

// fold chains the decisions into the digest (FNV-style).
func (e *Engine) fold(decisions []int) {
	for _, d := range decisions {
		e.digest = e.digest*1099511628211 + uint64(d)
	}
}

// Digest publishes the fold.
func (e *Engine) Digest() uint64 { return e.digest }
