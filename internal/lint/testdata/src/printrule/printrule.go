// Package printrule is a lint corpus: writing to process stdout from
// library code.
package printrule

import (
	"fmt"
	"io"
)

// Bad prints straight to stdout.
func Bad(v int) {
	fmt.Println("value", v) // want "fmt.Println writes to stdout"
	fmt.Printf("%d\n", v)   // want "fmt.Printf writes to stdout"
}

// BadBuiltin uses the println builtin.
func BadBuiltin(v int) {
	println(v) // want "builtin println writes to stderr"
}

// Clean writes through an injected writer.
func Clean(w io.Writer, v int) {
	fmt.Fprintf(w, "value %d\n", v)
}
