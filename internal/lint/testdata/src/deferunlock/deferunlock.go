// Package deferunlock is a lint corpus: manual Lock/Unlock pairing in
// multi-return functions.
package deferunlock

import "sync"

type store struct {
	mu sync.Mutex
	m  map[int]int
}

// Bad unlocks manually in a function with two exits.
func (s *store) Bad(k int) (int, bool) {
	s.mu.Lock() // want "in a multi-return function without an immediate"
	v, ok := s.m[k]
	s.mu.Unlock()
	if !ok {
		return 0, false
	}
	return v, true
}

// Clean defers the unlock on the next line.
func (s *store) Clean(k int) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[k]
	if !ok {
		return 0, false
	}
	return v, true
}

// CleanSingleExit pairs Lock/Unlock manually, which is fine with one
// way out.
func (s *store) CleanSingleExit(k, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}
