// Package directives is a lint corpus for the suppression machinery:
// justified suppressions silence findings; malformed, unknown-rule,
// and stale directives are themselves diagnostics.
package directives

import "time"

// Suppressed carries a justified suppression on the line above the
// finding; nothing is reported.
func Suppressed() time.Time {
	//lint:ignore wallclock fixture: a justified suppression covers the next line
	return time.Now()
}

// Trailing carries the suppression as a trailing comment on the
// flagged line itself.
func Trailing() time.Duration {
	return time.Since(time.Time{}) //lint:ignore wallclock fixture: trailing-comment form
}

//lint:ignore wallclock
func MissingReason() time.Time {
	return time.Now()
}

//lint:ignore nosuchrule fixture: unknown rule names are rejected
func UnknownRule() {}

//lint:ignore wallclock fixture: matches nothing and must be reported stale
func Unused() {}
