// Package floataccum is a lint corpus: float accumulation into
// persistent state inside loops.
package floataccum

type report struct {
	busy float64
	bins []float64
}

// Bad accumulates into a field across iterations with no documented
// error budget.
func Bad(r *report, xs []float64) {
	for _, x := range xs {
		r.busy += x // want "float accumulation into persistent state"
	}
}

// BadIndexed accumulates into an element, same problem.
func BadIndexed(r *report, xs []float64) {
	for i, x := range xs {
		r.bins[i%2] -= x // want "float accumulation into persistent state"
	}
}

// Clean documents which check owns the accumulated error.
func Clean(r *report, xs []float64) {
	for _, x := range xs {
		// Accumulates within the conservation check's tolerance.
		r.busy += x
	}
}

// CleanLocal accumulates into a function-local, which never outlives
// the scope that can reason about it.
func CleanLocal(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}
