// Package snapescape exercises the copy-on-publish escape analysis:
// reference-bearing values stored into a published snapshot must not
// alias live engine state.
package snapescape

// Engine is a toy stateful core with reference-bearing fields.
type Engine struct {
	name   string
	phases map[int]string
	jobs   []*Job
	report *Report
}

// Job is live mutable state.
type Job struct{ ID int }

// Report is live mutable state with a deep-copy helper.
type Report struct{ Rows []int }

// Clone returns a deep copy in the canonical copy-and-reallocate
// shape. The alias analysis cannot see the per-field kill through the
// struct copy, so clone-named module methods are trusted to return
// fresh storage (see freshReturn); this pins that trust.
func (r *Report) Clone() *Report {
	c := *r
	c.Rows = append([]int(nil), r.Rows...)
	return &c
}

// Snapshot is the published immutable view.
type Snapshot struct {
	Name   string
	Phases map[int]string
	Jobs   []*Job
	Report *Report
}

// BadDirect shares the live map and slice with every reader.
func (e *Engine) BadDirect() *Snapshot {
	return &Snapshot{
		Phases: e.phases, // want "snapescape: snapshot field Phases aliases live state"
		Jobs:   e.jobs,   // want "snapescape: snapshot field Jobs aliases live state"
	}
}

// BadFieldStore shares the report through a later field store.
func (e *Engine) BadFieldStore() *Snapshot {
	snap := &Snapshot{Name: e.name}
	snap.Report = e.report // want "snapescape: store into published snapshot aliases live state"
	return snap
}

// BadAliasChain escapes through a local alias of the live report.
func (e *Engine) BadAliasChain() *Snapshot {
	rows := e.report
	snap := &Snapshot{}
	snap.Report = rows // want "snapescape: store into published snapshot aliases live state"
	return snap
}

// BadSharedElement republishes live job pointers element by element.
func (e *Engine) BadSharedElement() *Snapshot {
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, j)
	}
	return &Snapshot{Jobs: jobs} // want "snapescape: snapshot field Jobs aliases live state"
}

// BadFromParam aliases a parameter instead of a receiver.
func BadFromParam(r *Report) *Snapshot {
	return &Snapshot{Report: r} // want "snapescape: snapshot field Report aliases live state"
}

// GoodCopy deep-copies every reference-bearing field before
// publishing: fresh map, fresh slice of fresh values, cloned report,
// and a scalar copied by value.
func (e *Engine) GoodCopy() *Snapshot {
	phases := make(map[int]string, len(e.phases))
	for id, ph := range e.phases {
		phases[id] = ph
	}
	jobs := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		jobs = append(jobs, &Job{ID: j.ID})
	}
	return &Snapshot{
		Name:   e.name,
		Phases: phases,
		Jobs:   jobs,
		Report: e.report.Clone(),
	}
}

// Member is a reader method ON the snapshot: aliases into frozen data
// are the point, not a leak.
func (s *Snapshot) Member(i int) *Job {
	if i < 0 || i >= len(s.Jobs) {
		return nil
	}
	return s.Jobs[i]
}
