// Package gostop is a lint corpus: goroutines with and without a
// visible cancellation path.
package gostop

import "context"

// Bad launches a goroutine that can never be told to stop.
func Bad(work func()) {
	go func() { // want "goroutine without a visible cancellation/deadline path"
		for {
			work()
		}
	}()
}

// BadNamed launches a same-package function with no stop signal.
func BadNamed(work func()) {
	go spin(work) // want "goroutine without a visible cancellation/deadline path"
}

func spin(work func()) {
	for {
		work()
	}
}

// CleanCtx observes a context.
func CleanCtx(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// CleanChan launches a same-package function whose declaration selects
// on a stop channel; the analyzer resolves and inspects it.
func CleanChan(stop chan struct{}, work func()) {
	go loop(stop, work)
}

func loop(stop chan struct{}, work func()) {
	for {
		select {
		case <-stop:
			return
		default:
			work()
		}
	}
}
