// Package lockcopy is a lint corpus: by-value copies of types holding
// sync primitives.
package lockcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type wrapper struct {
	inner guarded
}

// BadParam takes a lock-holding type by value.
func BadParam(g guarded) int { // want "parameter copies lock"
	return g.n
}

// BadRecv has a value receiver over a lock-holding type.
func (g guarded) BadRecv() int { // want "receiver copies lock"
	return g.n
}

// BadAssign dereference-copies the whole struct, lock included.
func BadAssign(g *guarded) int {
	cp := *g // want "assignment copies lock"
	return cp.n
}

// BadRange copies each element, nested lock included.
func BadRange(gs []wrapper) int {
	n := 0
	for _, g := range gs { // want "range value copies lock"
		n += g.inner.n
	}
	return n
}

// Clean passes a pointer and ranges by index.
func Clean(gs []wrapper) int {
	n := 0
	for i := range gs {
		g := &gs[i]
		g.inner.mu.Lock()
		n += g.inner.n
		g.inner.mu.Unlock()
	}
	return n
}
