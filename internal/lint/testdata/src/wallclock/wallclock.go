// Package wallclock is a lint corpus: wall-clock reads in a
// deterministic package.
package wallclock

import "time"

// Bad reads the wall clock three forbidden ways.
func Bad() time.Duration {
	start := time.Now()      // want "wall-clock read time.Now"
	_ = time.Until(start)    // want "wall-clock read time.Until"
	return time.Since(start) // want "wall-clock read time.Since"
}

// Clean builds timestamps explicitly; no wall-clock read involved.
func Clean() time.Time {
	t := time.Unix(0, 0)
	return t.Add(time.Second)
}
