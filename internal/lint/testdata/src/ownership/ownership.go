// Package ownership exercises the single-owner goroutine analysis:
// guarded values may be mutated during construction and by the one
// goroutine that owns them after Start, and by nothing else.
package ownership

// Core is the guarded state machine. A Core is not safe for
// concurrent use: after Start, one goroutine owns it.
type Core struct {
	round int
	done  bool
}

// Step advances the core (mutating).
func (c *Core) Step() { c.round++ }

// Finish marks the core done (mutating).
func (c *Core) Finish() { c.done = true }

// Round reads the current round (non-mutating).
func (c *Core) Round() int { return c.round }

// Server fronts a Core with one owning run loop.
type Server struct {
	core *Core
	reqs chan int
	stop chan struct{}
}

// NewServer builds a server and steps the core once during setup:
// construction happens-before the launch, so this is legal.
func NewServer() *Server {
	s := &Server{core: &Core{}, reqs: make(chan int, 1), stop: make(chan struct{})}
	s.core.Step()
	return s
}

// Start launches the owning goroutine.
func (s *Server) Start() { go s.run() }

// run is the owner loop: its mutations are the legal ones.
func (s *Server) run() {
	for {
		select {
		case <-s.reqs:
			s.core.Step()
		case <-s.stop:
			s.core.Finish()
			return
		}
	}
}

// Poke mutates the core from the exported API while the run loop owns
// it: the violation this analyzer exists to catch.
func (s *Server) Poke() {
	s.core.Step() // want "ownership: .*mutates single-owner Core outside its owning goroutine"
}

// Reset writes a guarded field directly from the API: the same
// violation through a field store instead of a method call.
func (s *Server) Reset() {
	s.core.round = 0 // want "ownership: .*mutates single-owner Core outside its owning goroutine"
}

// Peek only reads; read races are the race detector's department.
func (s *Server) Peek() int { return s.core.Round() }

// FanOut launches one goroutine per iteration that all mutate a core
// captured from outside the loop: N owners for one value.
func FanOut(c *Core, n int) {
	for i := 0; i < n; i++ {
		go func() {
			c.Step() // want "ownership: goroutine launched in a loop mutates single-owner Core"
		}()
	}
}

// FanOutFresh gives every goroutine its own per-iteration core:
// loop variables are one value per iteration, so each goroutine owns
// what it mutates.
func FanOutFresh(cores []*Core) {
	for _, c := range cores {
		go func() {
			c.Step()
		}()
	}
}
