// Package walorder exercises the apply->append->reply ordering check
// at journaling sites: an applied request must hit the WAL before its
// reply is sent, with error-branch and nil-journal replies exempt.
package walorder

// Engine is the applied state. An Engine is not safe for concurrent
// use; the service loop owns it.
type Engine struct{ n int }

// Apply mutates the engine.
func (e *Engine) Apply(x int) error {
	e.n += x
	return nil
}

// Journal is the write-ahead log.
type Journal struct{ recs []int }

// Append journals one record.
func (j *Journal) Append(x int) error {
	j.recs = append(j.recs, x)
	return nil
}

// request carries a reply channel.
type request struct {
	x     int
	reply chan error
}

// Server owns the engine and an optional journal.
type Server struct {
	eng     *Engine
	journal *Journal
}

// HandleGood follows the contract: apply, then append, then reply.
// The error replies and the nil-journal reply are the protocol, not
// violations.
func (s *Server) HandleGood(r request) {
	if err := s.eng.Apply(r.x); err != nil {
		r.reply <- err
		return
	}
	if s.journal == nil {
		r.reply <- nil
		return
	}
	if err := s.journal.Append(r.x); err != nil {
		r.reply <- err
		return
	}
	r.reply <- nil
}

// HandleBad acknowledges before the append: after a crash the log
// cannot replay the state the client was told is durable.
func (s *Server) HandleBad(r request) {
	if err := s.eng.Apply(r.x); err != nil {
		r.reply <- err
		return
	}
	r.reply <- nil // want "walorder: reply sent before WAL append"
	_ = s.journal.Append(r.x)
}

// HandleBadHelper hides the premature reply behind a helper; the
// bounded inlining still sees it.
func (s *Server) HandleBadHelper(r request) {
	if err := s.eng.Apply(r.x); err != nil {
		r.reply <- err
		return
	}
	s.ack(r)
	_ = s.journal.Append(r.x)
}

// ack replies on the request's channel.
func (s *Server) ack(r request) {
	r.reply <- nil // want "walorder: reply sent before WAL append"
}
