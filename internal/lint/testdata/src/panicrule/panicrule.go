// Package panicrule is a lint corpus: the panic builtin in library
// code.
package panicrule

import "errors"

// Bad panics on an input problem.
func Bad(n int) {
	if n < 0 {
		panic("negative input") // want "panic in library code"
	}
}

var errNegative = errors.New("negative input")

// Clean returns the error instead.
func Clean(n int) error {
	if n < 0 {
		return errNegative
	}
	return nil
}

// CleanShadow calls a local function that shadows the builtin's name;
// only the builtin is forbidden.
func CleanShadow() {
	panic := func(string) {}
	panic("not the builtin")
}
