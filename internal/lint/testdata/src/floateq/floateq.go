// Package floateq is a lint corpus: raw float equality vs epsilon and
// ordered comparisons.
package floateq

const tol = 1e-9

// BadEq compares floats with ==.
func BadEq(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// BadNeq compares floats with !=.
func BadNeq(a, b float32) bool {
	return a != b // want "floating-point != comparison"
}

// Clean compares against an explicit epsilon.
func Clean(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// CleanInt compares integers, which is exact.
func CleanInt(a, b int) bool { return a == b }

// CleanOrdered breaks a sort tie with ordered comparisons only.
func CleanOrdered(a, b float64) bool {
	if a < b {
		return true
	}
	return false
}
