// Package globalrand is a lint corpus: global math/rand functions vs
// an explicitly seeded generator.
package globalrand

import "math/rand"

// Bad draws from the process-global source.
func Bad() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand function rand.Shuffle"
	return rand.Intn(10)               // want "global math/rand function rand.Intn"
}

// Clean threads a seeded *rand.Rand; the constructors and the methods
// on the seeded generator are allowed.
func Clean(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
