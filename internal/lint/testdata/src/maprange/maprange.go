// Package maprange is a lint corpus: ranging over maps vs the
// collect-then-sort idiom.
package maprange

import "sort"

// Bad iterates a map in randomized order and lets the order escape
// through the early return.
func Bad(m map[string]int) string {
	for k, v := range m { // want "range over map"
		if v > 0 {
			return k
		}
	}
	return ""
}

// Clean collects the keys (the one permitted range-over-map shape) and
// sorts them before use.
func Clean(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CleanSlice ranges over a slice, which is ordered.
func CleanSlice(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
