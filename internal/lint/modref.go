package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes the two interprocedural summaries the dataflow
// analyzers lean on:
//
//   - mod-ref: which of a function's parameters (receiver first) it
//     may mutate through — field stores, indexed stores, builtin
//     delete/copy, and calls to other mutating functions, with
//     range-variable aliasing so `for _, st := range e.active
//     { st.X = ... }` counts as mutating e;
//   - alias-ret: whether a function's results may alias one of its
//     parameters, so `return e.report` taints and `return
//     e.report.Clone()` does not.
//
// Both are flow-insensitive may-analyses iterated to fixpoint over the
// module. Non-module (stdlib) callees are assumed pure except for a
// small table (sort.*, and any method call on a tracked value whose
// name is not a known read-only accessor).

// paramSet is a small bitmask over receiver+parameters (index 0 = the
// receiver when present). 64 parameters is far beyond anything real.
type paramSet uint64

func (s paramSet) has(i int) bool      { return i < 64 && s&(1<<uint(i)) != 0 }
func (s paramSet) with(i int) paramSet { return s | 1<<uint(min(i, 63)) }

// containsRef reports whether values of t carry references through
// which shared state could be reached or mutated: pointers, slices,
// maps, chans, funcs, interfaces, and aggregates containing them.
// Strings are immutable and exempt.
func containsRef(t types.Type) bool {
	return containsRefSeen(t, map[types.Type]bool{})
}

func containsRefSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsRefSeen(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsRefSeen(u.Elem(), seen)
	}
	return false
}

// paramObjs returns the function's receiver (if any) followed by its
// parameters, matching the paramSet index convention.
func paramObjs(fn *types.Func) []*types.Var {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	var out []*types.Var
	if sig.Recv() != nil {
		out = append(out, sig.Recv())
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// pureMethods are non-module method names assumed not to mutate their
// receiver; any other non-module method call on a tracked value is
// conservatively treated as a mutation.
var pureMethods = map[string]bool{
	"Load": true, "String": true, "Error": true, "Len": true, "Cap": true,
	"Format": true, "MarshalJSON": true, "Sum64": true, "Size": true,
}

// freshReturn names the module's deep-copy idiom: a method named like
// a clone is trusted to return fresh storage aliasing nothing its
// receiver owns. The alias analysis cannot see through the canonical
// copy-and-reallocate shape (c := *r; c.F = append([]T(nil), r.F...);
// return &c) without per-field kill tracking, so the trust is by name
// and the snapescape corpus pins the contract; a shallow "Clone" is
// the accepted soundness gap.
var freshReturn = map[string]bool{"Clone": true, "Copy": true, "DeepCopy": true}

// stdlibMutatesArg0 lists non-module functions known to mutate their
// first argument.
var stdlibMutatesArg0 = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.Reverse": true,
}

func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// rootSets computes, per local object of n, the set of parameter
// indices the object may alias, flowing through simple assignments,
// range statements, address-taking, composite literals, and calls with
// alias-returning summaries. Results are cached on the node.
func (m *Module) rootSets(n *FuncNode) map[types.Object]paramSet {
	if n.roots != nil {
		return n.roots
	}
	roots := map[types.Object]paramSet{}
	n.roots = roots
	if n.Obj != nil {
		for i, v := range paramObjs(n.Obj) {
			roots[v] = roots[v].with(i)
		}
	}
	body := n.body()
	if body == nil {
		return roots
	}
	// Iterate to a local fixpoint: later statements can extend chains
	// established by earlier ones and vice versa.
	for iter := 0; iter < 8; iter++ {
		changed := false
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := n.Pkg.Info.Defs[id]
					if obj == nil {
						obj = n.Pkg.Info.Uses[id]
					}
					if obj == nil || !containsRef(obj.Type()) {
						continue
					}
					if add := m.aliases(n, s.Rhs[i]); add&^roots[obj] != 0 {
						roots[obj] |= add
						changed = true
					}
				}
			case *ast.RangeStmt:
				src := m.aliases(n, s.X)
				if src == 0 {
					return true
				}
				for _, v := range []ast.Expr{s.Key, s.Value} {
					id, ok := v.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := n.Pkg.Info.Defs[id]
					if obj == nil || !containsRef(obj.Type()) {
						continue
					}
					if src&^roots[obj] != 0 {
						roots[obj] |= src
						changed = true
					}
				}
			case *ast.GenDecl:
				if s.Tok != token.VAR {
					return true
				}
				for _, spec := range s.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) != len(vs.Names) {
						continue
					}
					for i, name := range vs.Names {
						obj := n.Pkg.Info.Defs[name]
						if obj == nil || !containsRef(obj.Type()) {
							continue
						}
						if add := m.aliases(n, vs.Values[i]); add&^roots[obj] != 0 {
							roots[obj] |= add
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return roots
}

// body returns the node's statement body.
func (n *FuncNode) body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	if n.Lit != nil {
		return n.Lit.Body
	}
	return nil
}

// aliases computes which parameters the value of e may alias (share
// mutable backing store with), relative to node n's root sets.
func (m *Module) aliases(n *FuncNode, e ast.Expr) paramSet {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := n.Pkg.Info.Uses[x]
		if obj == nil {
			obj = n.Pkg.Info.Defs[x]
		}
		if obj == nil {
			return 0
		}
		return n.roots[obj]
	case *ast.SelectorExpr:
		if sel, ok := n.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if !containsRef(sel.Type()) {
				return 0
			}
			return m.aliases(n, x.X)
		}
		return 0 // package member or method value
	case *ast.IndexExpr:
		if !containsRef(n.Pkg.TypeOf(x)) {
			return 0
		}
		return m.aliases(n, x.X)
	case *ast.SliceExpr:
		return m.aliases(n, x.X)
	case *ast.StarExpr:
		if !containsRef(n.Pkg.TypeOf(x)) {
			return 0
		}
		return m.aliases(n, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return m.aliases(n, x.X)
		}
		return 0
	case *ast.TypeAssertExpr:
		return m.aliases(n, x.X)
	case *ast.CompositeLit:
		var s paramSet
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			s |= m.aliases(n, v)
		}
		return s
	case *ast.CallExpr:
		// Conversions pass the value through.
		if tv, ok := n.Pkg.Info.Types[x.Fun]; ok && tv.IsType() {
			if len(x.Args) == 1 && containsRef(n.Pkg.TypeOf(x)) {
				return m.aliases(n, x.Args[0])
			}
			return 0
		}
		callee, _ := m.resolveCallee(n.Pkg, x)
		if callee == nil {
			// append returns its first argument's backing array and
			// holds references to every appended element.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && len(x.Args) > 0 {
				var s paramSet
				for _, a := range x.Args {
					s |= m.aliases(n, a)
				}
				return s
			}
			return 0
		}
		if freshReturn[callee.Name()] && m.node(callee) != nil {
			return 0
		}
		cn := m.node(callee)
		if cn == nil || cn.aliasRet == 0 {
			return 0
		}
		var s paramSet
		for i, arg := range callArgs(n, x, callee) {
			if cn.aliasRet.has(i) {
				s |= m.aliases(n, arg)
			}
		}
		return s
	}
	return 0
}

// callArgs lines a call's argument expressions up with the callee's
// paramObjs convention: the receiver expression first for method
// calls, then the ordinary arguments. Variadic overflow arguments all
// map to the final parameter slot (handled by index clamping in
// paramSet).
func callArgs(n *FuncNode, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var out []ast.Expr
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := n.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				out = append(out, sel.X)
			}
		}
		if len(out) == 0 {
			out = append(out, nil) // method value/expr call: receiver unknown
		}
	}
	out = append(out, call.Args...)
	// Clamp variadic overflow onto the last declared parameter index.
	if sig != nil {
		max := sig.Params().Len()
		if sig.Recv() != nil {
			max++
		}
		if max > 0 && len(out) > max {
			out = out[:max]
		}
	}
	return out
}

// argAliases is aliases over a possibly-nil arg from callArgs.
func (m *Module) argAliases(n *FuncNode, e ast.Expr) paramSet {
	if e == nil {
		return 0
	}
	return m.aliases(n, e)
}

// computeSummaries runs the alias-ret and mod-ref fixpoints over every
// declared node in the module.
func computeSummaries(m *Module) {
	for _, n := range m.nodes {
		if n.Obj != nil {
			n.mutates = make([]bool, len(paramObjs(n.Obj)))
		}
	}
	for iter := 0; iter < 10; iter++ {
		changed := false
		for _, n := range m.nodes {
			if n.Obj == nil {
				continue
			}
			// Invalidate the root cache: callee summaries may have
			// grown since the last iteration.
			n.roots = nil
			if m.updateAliasRet(n) {
				changed = true
			}
			if m.updateModRef(n) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// updateAliasRet rescans n's return statements; true if the summary grew.
func (m *Module) updateAliasRet(n *FuncNode) bool {
	body := n.body()
	if body == nil {
		return false
	}
	m.rootSets(n)
	var s paramSet
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // a literal's returns are not n's returns
		}
		if ret, ok := x.(*ast.ReturnStmt); ok {
			for _, r := range ret.Results {
				if containsRef(n.Pkg.TypeOf(r)) {
					s |= m.aliases(n, r)
				}
			}
		}
		return true
	})
	if s&^n.aliasRet != 0 {
		n.aliasRet |= s
		return true
	}
	return false
}

// mutationTargets returns the alias set an assignment through lvalue
// writes into: nonzero only when the store goes through a reference
// (selector, index, or pointer dereference), not a plain rebind.
func (m *Module) mutationTargets(n *FuncNode, lvalue ast.Expr) paramSet {
	switch x := ast.Unparen(lvalue).(type) {
	case *ast.SelectorExpr:
		if sel, ok := n.Pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return m.aliases(n, x.X)
		}
		return 0
	case *ast.IndexExpr:
		return m.aliases(n, x.X)
	case *ast.StarExpr:
		return m.aliases(n, x.X)
	}
	return 0
}

// updateModRef rescans n's body for mutations; true if the summary grew.
func (m *Module) updateModRef(n *FuncNode) bool {
	body := n.body()
	if body == nil || n.mutates == nil {
		return false
	}
	m.rootSets(n)
	var hit paramSet
	record := func(s paramSet) { hit |= s }
	ast.Inspect(body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				record(m.mutationTargets(n, lhs))
			}
		case *ast.IncDecStmt:
			record(m.mutationTargets(n, s.X))
		case *ast.CallExpr:
			record(m.callMutations(n, s))
		}
		return true
	})
	changed := false
	for i := range n.mutates {
		if !n.mutates[i] && hit.has(i) {
			n.mutates[i] = true
			changed = true
		}
	}
	return changed
}

// callMutations returns which of n's parameters a call may mutate,
// through builtin delete/copy, the stdlib mutator table, module callee
// summaries, and the conservative non-module-method rule.
func (m *Module) callMutations(n *FuncNode, call *ast.CallExpr) paramSet {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "delete", "copy":
			if n.Pkg.Info.Uses[id] == nil && len(call.Args) > 0 { // builtin
				return m.aliases(n, call.Args[0])
			}
		}
	}
	callee, _ := m.resolveCallee(n.Pkg, call)
	if callee == nil {
		return 0
	}
	if cn := m.node(callee); cn != nil {
		var s paramSet
		args := callArgs(n, call, callee)
		for i, arg := range args {
			if i < len(cn.mutates) && cn.mutates[i] {
				s |= m.argAliases(n, arg)
			}
		}
		// Interface call: any module implementation may be the target.
		sig, _ := callee.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				for _, impl := range m.implementers(callee) {
					for i, arg := range args {
						if i < len(impl.mutates) && impl.mutates[i] {
							s |= m.argAliases(n, arg)
						}
					}
				}
			}
		}
		return s
	}
	// Non-module callee.
	if stdlibMutatesArg0[qualifiedName(callee)] && len(call.Args) > 0 {
		return m.aliases(n, call.Args[0])
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil && !pureMethods[callee.Name()] {
		// Unknown method on a tracked value: assume it mutates its
		// receiver (sync.Mutex.Lock, rand.Rand.Intn, bytes.Buffer.Write...).
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := n.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				return m.aliases(n, sel.X)
			}
		}
	}
	return 0
}

// mutatesReceiver reports whether the method node's summary marks its
// receiver as mutated.
func (n *FuncNode) mutatesReceiver() bool {
	if n.Obj == nil || len(n.mutates) == 0 {
		return false
	}
	sig, _ := n.Obj.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && n.mutates[0]
}
