package lint

import (
	"go/types"
	"strings"
)

// The interprocedural analyzers key off contracts declared in doc
// comments rather than hard-coded type lists, so the corpus, the live
// tree, and any future subsystem opt in the same way:
//
//   - a type whose doc contains "single-owner" or "not safe for
//     concurrent use" is GUARDED: exactly one goroutine may mutate it
//     after construction (ownership, walorder);
//   - a struct type whose name ends in "Snapshot" or whose doc
//     contains "immutable after publish" is a SNAPSHOT: once returned
//     to a reader it must not alias any mutable state (snapescape).

// flatDoc lower-cases a doc comment and collapses all whitespace so
// markers match across line breaks.
func flatDoc(doc string) string {
	return strings.Join(strings.Fields(strings.ToLower(doc)), " ")
}

// guardedTypes returns the module's single-owner types in node order.
func guardedTypes(m *Module) []*types.Named {
	var out []*types.Named
	for _, named := range m.named {
		doc := flatDoc(m.docOf(named))
		if strings.Contains(doc, "single-owner") || strings.Contains(doc, "not safe for concurrent use") {
			out = append(out, named)
		}
	}
	return out
}

// snapshotTypes returns the module's publish-frozen view types.
func snapshotTypes(m *Module) map[*types.Named]bool {
	out := map[*types.Named]bool{}
	for _, named := range m.named {
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		if strings.HasSuffix(named.Obj().Name(), "Snapshot") ||
			strings.Contains(flatDoc(m.docOf(named)), "immutable after publish") {
			out[named] = true
		}
	}
	return out
}

// namedOf unwraps one pointer and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeContainsNamed reports whether values of t embed or reach target
// structurally (directly, through a pointer, aggregate element, struct
// field, or tuple component).
func typeContainsNamed(t types.Type, target *types.Named, depth int) bool {
	if t == nil || depth > 5 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if named.Origin() == target.Origin() {
			return true
		}
		return typeContainsNamed(named.Underlying(), target, depth+1)
	}
	switch u := t.(type) {
	case *types.Pointer:
		return typeContainsNamed(u.Elem(), target, depth+1)
	case *types.Slice:
		return typeContainsNamed(u.Elem(), target, depth+1)
	case *types.Array:
		return typeContainsNamed(u.Elem(), target, depth+1)
	case *types.Map:
		return typeContainsNamed(u.Elem(), target, depth+1)
	case *types.Chan:
		return typeContainsNamed(u.Elem(), target, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsNamed(u.Field(i).Type(), target, depth+1) {
				return true
			}
		}
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if typeContainsNamed(u.At(i).Type(), target, depth+1) {
				return true
			}
		}
	}
	return false
}
