package lint

import (
	"go/ast"
	"go/types"
)

// analyzerPanic forbids the panic builtin in library code. Internal
// invariant violations must go through the designated hook,
// bug.Failf (internal/bug), which DefaultConfig exempts; everything
// else is an input error and must be returned as an error. A panic
// that escapes a scheduler mid-round leaves the control plane holding
// devices and the simulator's state half-advanced.
var analyzerPanic = &Analyzer{
	Name: "panicrule",
	Doc: "forbid the panic builtin in library code outside the designated invariant-violation " +
		"hook (internal/bug's Failf); return errors for input problems, call bug.Failf for programmer errors",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the name
			}
			p.Reportf(call.Pos(), "panic in library code; return an error, or call bug.Failf for a violated internal invariant")
			return true
		})
	},
}

// stdoutPrinters are the fmt functions that write to process stdout.
var stdoutPrinters = map[string]bool{
	"Print":   true,
	"Println": true,
	"Printf":  true,
}

// analyzerPrint forbids writing to stdout from library code: fmt.Print*
// (and the print/println builtins) belong in cmd/ and examples/, where
// the binary owns its output stream. Library code printing directly
// corrupts machine-read exports and the dashboard's responses.
var analyzerPrint = &Analyzer{
	Name: "printrule",
	Doc: "forbid fmt.Print/Println/Printf and the print/println builtins outside cmd/ and " +
		"examples/; library code must write through an injected io.Writer",
	Run: func(p *Pass) {
		inspectAll(p, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if pkg, name := pkgFuncObj(p, e); pkg == "fmt" && stdoutPrinters[name] {
					p.Reportf(e.Pos(), "fmt.%s writes to stdout from library code; take an io.Writer", name)
				}
			case *ast.CallExpr:
				id, ok := e.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := p.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin &&
					(id.Name == "print" || id.Name == "println") {
					p.Reportf(e.Pos(), "builtin %s writes to stderr from library code", id.Name)
				}
			}
			return true
		})
	},
}
