package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// analyzerDigestTaint replaces the path-scoped allowlists with real
// taint tracking for the golden digests: it finds every fold site (an
// assignment into a *digest* field or a method named Digest), resolves
// the producers whose results feed the fold — including dynamic
// Scheduler.Schedule dispatch to every module implementation — and
// walks the transitive callee closure of fold+producers looking for
// nondeterminism sources: unsorted map ranges, wall-clock reads, and
// global math/rand draws. A package can sit outside the maprange /
// wallclock allowlists and still poison the digest through an
// interface call; this rule follows the dataflow instead of the
// directory layout. Sites already covered by the syntactic rules'
// configured scopes are not re-reported.
var analyzerDigestTaint = &Analyzer{
	Name: "digesttaint",
	Doc: "track values flowing into schedule digests (fold sites and their producers, " +
		"resolved through interfaces) and flag unsorted map ranges, wall-clock reads, and " +
		"global rand draws anywhere on that dataflow path",
	RunModule: func(p *ModulePass) {
		m := p.Mod
		folds := foldSites(m)
		if len(folds) == 0 {
			return
		}
		reported := map[token.Pos]bool{}
		for _, fold := range folds {
			roots := []*FuncNode{fold.node}
			roots = append(roots, producers(m, fold.node)...)
			reach, parents := m.closureWithParents(roots)
			var nodes []*FuncNode
			for n := range reach {
				nodes = append(nodes, n)
			}
			sort.Slice(nodes, func(i, j int) bool { return nodes[i].Pos() < nodes[j].Pos() })
			foldAt := fold.node.Pkg.Fset.Position(fold.pos)
			for _, n := range nodes {
				scanTaintedFunc(p, n, parents, foldAt.String(), reported)
			}
		}
	},
}

// foldSite is one assignment that chains state into a digest.
type foldSite struct {
	node *FuncNode
	pos  token.Pos
}

// foldSites finds digest folds: assignments whose target name contains
// "digest" with a non-literal source, plus methods named Digest.
func foldSites(m *Module) []*foldSite {
	var out []*foldSite
	for _, n := range m.nodes {
		if n.body() == nil {
			continue
		}
		if n.Obj != nil && strings.EqualFold(n.Obj.Name(), "digest") {
			out = append(out, &foldSite{node: n, pos: n.Pos()})
			continue
		}
		node := n
		ast.Inspect(n.body(), func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				if !strings.Contains(strings.ToLower(terminalName(lhs)), "digest") {
					continue
				}
				if _, isLit := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); isLit {
					continue // digest = 0 resets fold no state
				}
				out = append(out, &foldSite{node: node, pos: as.Pos()})
			}
			return true
		})
	}
	return out
}

// terminalName is the last identifier of an lvalue chain (x, s.digest,
// m[k] -> "").
func terminalName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.StarExpr:
		return terminalName(x.X)
	}
	return ""
}

// producers resolves the functions whose results feed a fold
// function's arguments at its call sites: direct call arguments and
// single-assignment locals, with interface callees expanded to every
// module implementation.
func producers(m *Module, fold *FuncNode) []*FuncNode {
	if fold.Obj == nil {
		return nil
	}
	var out []*FuncNode
	seen := map[*FuncNode]bool{}
	add := func(ns []*FuncNode) {
		for _, n := range ns {
			if n != nil && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	for _, caller := range m.nodes {
		if caller.body() == nil {
			continue
		}
		for _, c := range caller.Calls {
			if c.Callee != fold.Obj && c.Callee.Origin() != fold.Obj {
				continue
			}
			for _, arg := range c.Expr.Args {
				add(argProducers(m, caller, arg))
			}
		}
	}
	return out
}

// argProducers finds the calls that may have produced the value of
// arg: the call itself, or assignments to the local it names.
func argProducers(m *Module, caller *FuncNode, arg ast.Expr) []*FuncNode {
	switch x := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if callee, iface := m.resolveCallee(caller.Pkg, x); callee != nil {
			if iface {
				return m.implementers(callee)
			}
			if n := m.node(callee); n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.Ident:
		obj := caller.Pkg.Info.Uses[x]
		if obj == nil {
			return nil
		}
		var out []*FuncNode
		ast.Inspect(caller.body(), func(y ast.Node) bool {
			as, ok := y.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				def := caller.Pkg.Info.Defs[id]
				if def == nil {
					def = caller.Pkg.Info.Uses[id]
				}
				if def != obj {
					continue
				}
				if call, ok := ast.Unparen(as.Rhs[min(i, len(as.Rhs)-1)]).(*ast.CallExpr); ok {
					if callee, iface := m.resolveCallee(caller.Pkg, call); callee != nil {
						if iface {
							out = append(out, m.implementers(callee)...)
						} else if n := m.node(callee); n != nil {
							out = append(out, n)
						}
					}
				}
			}
			return true
		})
		return out
	}
	return nil
}

// orderInsensitiveRange reports whether a map-range body is a
// commutative accumulation whose result cannot depend on iteration
// order: every statement is an integer/boolean accumulation into one
// lvalue (n += c), a store indexed by the range key (out[k] = v,
// f[k] += c — each iteration owns its own key), a constant flag set
// (ok = true), a guarded continue, or a guarded early return whose
// only non-nil results are errors (an aborted fold never reaches the
// digest; which of several bad entries aborts it first is
// immaterial). Guard conditions are assumed side-effect-free.
// Anything else — appends, calls, float accumulation (float addition
// is not associative), returns of data — keeps the range flagged.
func orderInsensitiveRange(n *FuncNode, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(n, rs.Key)
	var stmtOK func(s ast.Stmt, guarded bool) bool
	stmtOK = func(s ast.Stmt, guarded bool) bool {
		switch st := s.(type) {
		case *ast.AssignStmt:
			return orderInsensitiveAssign(n, st, keyObj)
		case *ast.IncDecStmt:
			return keyedByRange(n, st.X, keyObj) || intOrBoolLvalue(n, st.X)
		case *ast.BranchStmt:
			return st.Tok == token.CONTINUE && st.Label == nil
		case *ast.IfStmt:
			if st.Init != nil || st.Else != nil {
				return false
			}
			for _, bs := range st.Body.List {
				if !stmtOK(bs, true) {
					return false
				}
			}
			return true
		case *ast.ReturnStmt:
			if !guarded {
				return false
			}
			for _, r := range st.Results {
				if id, isID := ast.Unparen(r).(*ast.Ident); isID && id.Name == "nil" {
					continue
				}
				t := n.Pkg.TypeOf(r)
				if t == nil || !isErrorType(t) {
					return false
				}
			}
			return true
		}
		return false
	}
	for _, s := range rs.Body.List {
		if !stmtOK(s, false) {
			return false
		}
	}
	return true
}

// orderInsensitiveAssign classifies one assignment inside a map range
// (see orderInsensitiveRange for the accepted shapes).
func orderInsensitiveAssign(n *FuncNode, as *ast.AssignStmt, keyObj types.Object) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || hasCall(as.Rhs[0]) {
		return false
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	switch as.Tok {
	case token.ASSIGN:
		if keyedByRange(n, lhs, keyObj) {
			return true
		}
		if _, isID := ast.Unparen(lhs).(*ast.Ident); isID && isConstExpr(rhs) {
			return true
		}
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_ASSIGN:
		return keyedByRange(n, lhs, keyObj) || intOrBoolLvalue(n, lhs)
	}
	return false
}

// rangeVarObj resolves the object defined by a range key/value clause
// variable (nil for `_` or non-identifier clauses).
func rangeVarObj(n *FuncNode, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := n.Pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return n.Pkg.Info.Uses[id]
}

// keyedByRange reports whether lhs is an index expression whose index
// is exactly the range key variable: each iteration then writes a
// distinct element, so iteration order cannot matter.
func keyedByRange(n *FuncNode, lhs ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.Index).(*ast.Ident)
	return ok && n.Pkg.Info.Uses[id] == keyObj
}

// intOrBoolLvalue reports whether e is an identifier of integer or
// boolean type — the types whose += / |= / ^= accumulations commute.
func intOrBoolLvalue(n *FuncNode, e ast.Expr) bool {
	if _, ok := ast.Unparen(e).(*ast.Ident); !ok {
		return false
	}
	t := n.Pkg.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && (b.Info()&types.IsInteger != 0 || b.Info()&types.IsBoolean != 0)
}

// hasCall reports whether the expression contains any function call.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// isConstExpr matches literal constants and true/false.
func isConstExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return x.Name == "true" || x.Name == "false"
	}
	return false
}

// isErrorType reports whether t is (or implements) the error interface.
func isErrorType(t types.Type) bool {
	errIface, _ := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return errIface != nil && types.Implements(t, errIface)
}

// scanTaintedFunc reports nondeterminism sources in one function on
// the digest dataflow path, skipping sites the syntactic rules already
// police under the active config.
func scanTaintedFunc(p *ModulePass, n *FuncNode, parents map[*FuncNode]*FuncNode, foldAt string, reported map[token.Pos]bool) {
	if n.body() == nil {
		return
	}
	covered := func(rule string) bool {
		return p.Cfg != nil && p.Cfg.inScope(rule, n.Pkg.Path)
	}
	via := chain(parents, n)
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		args = append(args, via, foldAt)
		p.Reportf(n.Pkg, pos, format+" on digest dataflow path %s (fold at %s)", args...)
	}
	info := n.Pkg.Info
	ast.Inspect(n.body(), func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.RangeStmt:
			if covered("maprange") {
				return true
			}
			t := n.Pkg.TypeOf(s.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsKeyOnly(s.Body, s.Key, s.Value) || orderInsensitiveRange(n, s) {
				return true
			}
			report(s.Pos(), "unsorted range over map %s", types.TypeString(t, types.RelativeTo(n.Pkg.Types)))
		case *ast.SelectorExpr:
			obj, ok := info.Uses[s.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if covered("wallclock") {
					return true
				}
				switch fn.Name() {
				case "Now", "Since", "Until":
					report(s.Pos(), "wall-clock read time.%s", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if covered("globalrand") {
					return true
				}
				if !globalRandAllowed[fn.Name()] {
					report(s.Pos(), "global math/rand draw rand.%s", fn.Name())
				}
			}
		}
		return true
	})
}
