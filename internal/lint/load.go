package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path (module path + relative directory).
	Path string
	// Dir is the absolute directory.
	Dir string
	// Fset is the file set shared by every package of the load.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's resolution results.
	Info *types.Info
}

// TypeOf is a nil-safe Info.TypeOf.
func (p *Package) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// entry is one parsed-but-not-yet-checked package directory.
type entry struct {
	path  string
	dir   string
	files []*ast.File
	pkg   *Package // set once type-checked
}

// loader type-checks module packages on demand, resolving module
// imports to its own entries and everything else (the standard
// library) through a source importer rooted at GOROOT.
type loader struct {
	fset     *token.FileSet
	entries  map[string]*entry
	std      types.Importer
	checking map[string]bool
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if e, ok := l.entries[path]; ok {
		p, err := l.check(e)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// check type-checks one entry, memoized, with import-cycle detection.
func (l *loader) check(e *entry) (*Package, error) {
	if e.pkg != nil {
		return e.pkg, nil
	}
	if l.checking[e.path] {
		return nil, fmt.Errorf("lint: import cycle through %s", e.path)
	}
	l.checking[e.path] = true
	defer delete(l.checking, e.path)

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: l}
	tp, err := conf.Check(e.path, l.fset, e.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", e.path, err)
	}
	e.pkg = &Package{Path: e.path, Dir: e.dir, Fset: l.fset, Files: e.files, Types: tp, Info: info}
	return e.pkg, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// parseDir parses every non-test .go file of one directory, sorted by
// name so positions and diagnostics are stable.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		n := de.Name()
		if de.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadModule parses and type-checks every package of the module rooted
// at root (the directory holding go.mod), excluding test files,
// testdata, and hidden directories. Packages come back sorted by
// import path.
func LoadModule(root string) ([]*Package, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &loader{
		fset:     fset,
		entries:  map[string]*entry{},
		std:      importer.ForCompiler(fset, "source", nil),
		checking: map[string]bool{},
	}
	err = filepath.WalkDir(abs, func(path string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() {
			return nil
		}
		name := de.Name()
		if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		files, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(abs, path)
		if err != nil {
			return err
		}
		imp := mod
		if rel != "." {
			imp = mod + "/" + filepath.ToSlash(rel)
		}
		l.entries[imp] = &entry{path: imp, dir: path, files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(l.entries))
	for p := range l.entries {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.check(l.entries[p])
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory as one package
// under the given import path (stdlib imports only) — the entry point
// the golden-file test corpus uses, where the vanity import path
// places the package in or out of a rule's scope.
func LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	files, err := parseDir(fset, abs)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}
	l := &loader{
		fset:     fset,
		entries:  map[string]*entry{importPath: {path: importPath, dir: abs, files: files}},
		std:      importer.ForCompiler(fset, "source", nil),
		checking: map[string]bool{},
	}
	return l.check(l.entries[importPath])
}
