// Package lint is a zero-dependency, domain-aware static-analysis
// engine for this repository, built directly on the standard library's
// go/parser + go/types stack (no golang.org/x/tools).
//
// The analyzers encode the properties the scheduler's correctness
// story leans on and that no test can reliably flag when they rot:
//
//   - determinism: the golden schedule digests and the differential /
//     metamorphic oracles (internal/conformance) require bit-identical
//     replays, which a single wall-clock read, global-RNG call, or
//     unsorted map iteration silently destroys;
//   - numeric safety: the dual-price arithmetic (Eq. 5-8) is exact
//     float math compared against tolerances — raw ==/!= between
//     floats and undocumented cross-round accumulation are bugs in
//     waiting;
//   - concurrency hygiene: the live control plane is the only
//     concurrent subsystem; copied locks, uncancellable goroutines and
//     unpaired Lock/Unlock are how it breaks;
//   - API discipline: library code must not panic outside the
//     designated invariant-violation hook (internal/bug) and must not
//     write to stdout outside cmd/.
//
// Diagnostics are suppressed site-by-site with
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// where the reason is mandatory: a suppression without one is itself a
// diagnostic. A directive covers its own source line and the line
// immediately below it, so it works both as a trailing comment and as
// a comment line above the flagged statement. Unused directives are
// reported too, so stale suppressions cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Pkg  *Package
	diag *[]Diagnostic
	rule string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diag = append(*p.diag, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass is the whole-module context handed to
// Analyzer.RunModule: the callgraph plus the active config, so
// interprocedural analyzers can both scope their findings and avoid
// double-reporting sites the syntactic rules already cover.
type ModulePass struct {
	Mod  *Module
	Cfg  *Config
	diag *[]Diagnostic
	rule string
}

// Reportf records a diagnostic at pos, attributed to pkg; findings in
// packages outside the rule's configured scope are dropped.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	if !p.Cfg.inScope(p.rule, pkg.Path) {
		return
	}
	*p.diag = append(*p.diag, Diagnostic{
		Pos:     pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named rule: either a per-package syntactic rule
// (Run) or a whole-module interprocedural rule (RunModule).
type Analyzer struct {
	// Name is the rule name used in diagnostics and suppression
	// directives (short, lower-case, no spaces).
	Name string
	// Doc is a one-paragraph description of what the rule enforces and
	// why, shown by `repolint -rules`.
	Doc string
	// Run inspects one type-checked package and reports findings.
	Run func(p *Pass)
	// RunModule inspects the whole loaded module at once, with the
	// callgraph and dataflow summaries available. Exactly one of Run
	// and RunModule is set.
	RunModule func(p *ModulePass)
}

// Config scopes rules to package paths. Paths are import paths; a
// pattern ending in "/..." matches the prefix, anything else matches
// exactly.
type Config struct {
	// Only restricts a rule to the listed patterns. A rule with no
	// entry runs everywhere. An empty (non-nil) list disables the rule.
	Only map[string][]string
	// Skip exempts the listed patterns from a rule, applied after Only.
	Skip map[string][]string
}

// matchPath reports whether the import path matches the pattern.
func matchPath(pattern, path string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return path == pattern
}

func matchAny(patterns []string, path string) bool {
	for _, p := range patterns {
		if matchPath(p, path) {
			return true
		}
	}
	return false
}

// inScope reports whether the rule applies to the package path under
// the config.
func (c *Config) inScope(rule, path string) bool {
	if c == nil {
		return true
	}
	if only, ok := c.Only[rule]; ok && !matchAny(only, path) {
		return false
	}
	if matchAny(c.Skip[rule], path) {
		return false
	}
	return true
}

// schedulerPath lists the packages whose behavior feeds the schedule
// digests: any nondeterminism here changes golden tests, differential
// runs, and the paper's reported numbers.
var schedulerPath = []string{
	"repro/internal/core",
	"repro/internal/sim",
	"repro/internal/sched",
	"repro/internal/gavel",
	"repro/internal/tiresias",
	"repro/internal/yarncs",
	"repro/internal/policy",
	"repro/internal/invariant",
	"repro/internal/trace",
	"repro/internal/eventq",
	"repro/internal/cluster",
	"repro/internal/federation",
}

// reportingPath lists packages whose *output* must be reproducible run
// to run (metrics tables, exported CSV/JSON, dashboard rendering, the
// control plane's reconciliation), even though they are not priced
// into the schedule itself. service and loadgen belong here, not in
// schedulerPath: their seeded workloads and snapshots must replay
// identically, but their pacing (wall-clock rounds, retry backoff) is
// legitimately real-time, like rpccluster's. wal is here too: its
// frames and checkpoints must be byte-reproducible, but fsync pacing
// (group-commit deadlines) is wall-clock by nature, so it stays out of
// the wallclock rule's scope below.
var reportingPath = []string{
	"repro/internal/metrics",
	"repro/internal/export",
	"repro/internal/web",
	"repro/internal/rpccluster",
	"repro/internal/service",
	"repro/internal/loadgen",
	"repro/internal/stats",
	"repro/internal/wal",
	"repro/cmd/dashboard",
}

// DefaultConfig returns the repository's rule scoping.
func DefaultConfig() *Config {
	detScope := append(append([]string(nil), schedulerPath...), reportingPath...)
	return &Config{
		Only: map[string][]string{
			// Wall-clock reads are forbidden where simulated time is the
			// only legitimate clock. rpccluster is excluded: the live
			// control plane's deadlines, backoff, and round pacing are
			// genuinely wall-clock driven.
			"wallclock": append(append([]string(nil), schedulerPath...),
				"repro/internal/metrics", "repro/internal/export"),
			// The linter lints itself: analyzer output ordering must be
			// deterministic (findings are diffed in CI), so map ranges
			// and global rand are policed here too. wallclock stays out:
			// RunTimed legitimately measures real analyzer latency.
			"globalrand": append(append([]string(nil), detScope...), "repro/internal/lint"),
			"maprange":   append(append([]string(nil), detScope...), "repro/internal/lint"),
			// Cross-round accumulation matters where exact conservation
			// and dual-price arithmetic live.
			"floataccum": {"repro/internal/core", "repro/internal/invariant", "repro/internal/sim"},
			"floateq":    {"repro/internal/..."},
			"gostop":     {"repro/internal/rpccluster"},
			"panicrule":  {"repro/internal/..."},
			// The WAL apply->append->reply contract lives in the
			// service's journaling sites; elsewhere the rule has
			// nothing to say.
			"walorder": {"repro/internal/service", "repro/internal/wal"},
		},
		Skip: map[string][]string{
			// internal/bug is the designated invariant-violation hook.
			"panicrule": {"repro/internal/bug"},
			// Binaries own their stdout.
			"printrule": {"repro/cmd/...", "repro/examples/..."},
		},
	}
}

// AnalyzersFast returns the per-package syntactic rules: cheap AST
// walks with no interprocedural state, suitable for a fast CI stage.
func AnalyzersFast() []*Analyzer {
	return []*Analyzer{
		analyzerWallClock,
		analyzerGlobalRand,
		analyzerMapRange,
		analyzerFloatEq,
		analyzerFloatAccum,
		analyzerLockCopy,
		analyzerGoStop,
		analyzerDeferUnlock,
		analyzerPanic,
		analyzerPrint,
	}
}

// AnalyzersDeep returns the whole-module interprocedural rules built
// on the callgraph and mod-ref summaries.
func AnalyzersDeep() []*Analyzer {
	return []*Analyzer{
		analyzerSnapEscape,
		analyzerOwnership,
		analyzerDigestTaint,
		analyzerWALOrder,
	}
}

// Analyzers returns the full rule suite in a stable order.
func Analyzers() []*Analyzer {
	return append(AnalyzersFast(), AnalyzersDeep()...)
}

// AnalyzerNames returns the rule names, for directive validation.
func AnalyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	pos    token.Position
	rules  map[string]bool
	reason string
	broken string // non-empty: malformed, with the problem text
	used   bool
}

// parseDirectives extracts //lint:ignore directives from a file,
// validating rule names against known.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool) []*directive {
	var out []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments cannot carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "lint:ignore")
			if !ok {
				continue
			}
			d := &directive{pos: fset.Position(c.Pos()), rules: map[string]bool{}}
			fields := strings.Fields(rest)
			switch {
			case len(fields) == 0:
				d.broken = "missing rule name and reason"
			case len(fields) == 1:
				d.broken = "missing reason (a justification is mandatory)"
			default:
				for _, r := range strings.Split(fields[0], ",") {
					if !known[r] {
						d.broken = fmt.Sprintf("unknown rule %q", r)
						break
					}
					d.rules[r] = true
				}
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Timing is one analyzer's wall-clock cost for a run, reported by
// `repolint -verbose` and checked against the CI timing budget.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run executes the analyzers over the packages under the config and
// returns the surviving diagnostics sorted by position: findings not
// covered by a directive, malformed directives, and unused directives.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	diags, _ := RunTimed(pkgs, analyzers, cfg)
	return diags
}

// RunTimed is Run plus per-analyzer wall-clock timings in suite order.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Diagnostic, []Timing) {
	// Directive rule names validate against the full suite, not just
	// the analyzers running now, so a fast-only pass does not report
	// suppressions of deep rules as unknown (and vice versa).
	known := AnalyzerNames()
	running := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
		running[a.Name] = true
	}

	var raw []Diagnostic
	var timings []Timing
	var mod *Module
	for _, a := range analyzers {
		start := time.Now()
		if a.Run != nil {
			for _, pkg := range pkgs {
				if !cfg.inScope(a.Name, pkg.Path) {
					continue
				}
				a.Run(&Pass{Pkg: pkg, diag: &raw, rule: a.Name})
			}
		}
		if a.RunModule != nil {
			if mod == nil {
				mod = BuildModule(pkgs)
			}
			a.RunModule(&ModulePass{Mod: mod, Cfg: cfg, diag: &raw, rule: a.Name})
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}

	// Index directives by (file, line): a directive covers its own line
	// and the next one.
	type key struct {
		file string
		line int
	}
	byLine := map[key][]*directive{}
	var dirs []*directive
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg.Fset, f, known) {
				dirs = append(dirs, d)
				if d.broken != "" {
					continue
				}
				byLine[key{d.pos.Filename, d.pos.Line}] = append(byLine[key{d.pos.Filename, d.pos.Line}], d)
				byLine[key{d.pos.Filename, d.pos.Line + 1}] = append(byLine[key{d.pos.Filename, d.pos.Line + 1}], d)
			}
		}
	}

	var out []Diagnostic
	for _, d := range raw {
		suppressed := false
		for _, dir := range byLine[key{d.Pos.Filename, d.Pos.Line}] {
			if dir.rules[d.Rule] {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	for _, d := range dirs {
		// A directive for rules that are not all running now cannot be
		// judged stale: the deep pass owns deep-rule directives.
		allRunning := true
		for _, r := range sortedRules(d.rules) {
			if !running[r] {
				allRunning = false
			}
		}
		switch {
		case d.broken != "":
			out = append(out, Diagnostic{Pos: d.pos, Rule: "lintdirective",
				Message: "malformed //lint:ignore: " + d.broken})
		case !d.used && allRunning:
			out = append(out, Diagnostic{Pos: d.pos, Rule: "lintdirective",
				Message: fmt.Sprintf("unused suppression for %s (no matching diagnostic on this or the next line)",
					strings.Join(sortedRules(d.rules), ","))})
		}
	}

	return sortDiagnostics(out), timings
}

// sortedRules returns a directive's rule names in sorted order.
func sortedRules(rules map[string]bool) []string {
	out := make([]string, 0, len(rules))
	for r := range rules {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func sortDiagnostics(out []Diagnostic) []Diagnostic {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
