package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation from a `// want "regex"` comment in
// a corpus file.
var wantRe = regexp.MustCompile(`//\s*want "(.*)"`)

// expectation is one parsed want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a corpus package for want comments.
func parseWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// loadCorpus loads testdata/src/<name> under the given vanity import
// path.
func loadCorpus(t *testing.T, name, importPath string) *Package {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("load corpus %s: %v", name, err)
	}
	return pkg
}

// checkAgainstWants verifies that diagnostics and want comments match
// one-to-one by (file, line): every diagnostic needs a matching want on
// its line, every want needs a matching diagnostic.
func checkAgainstWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := parseWants(t, pkg)
	for _, d := range diags {
		text := d.Rule + ": " + d.Message
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

// analyzerByName fetches one analyzer from the suite.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestAnalyzerCorpora runs each analyzer alone over its golden corpus:
// the known-bad snippets must produce exactly the diagnostics the want
// comments record, and the known-clean snippets in the same files must
// stay silent.
func TestAnalyzerCorpora(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			pkg := loadCorpus(t, a.Name, "example.com/corpus/"+a.Name)
			diags := Run([]*Package{pkg}, []*Analyzer{analyzerByName(t, a.Name)}, nil)
			if len(diags) == 0 {
				t.Fatalf("corpus produced no diagnostics; the %s analyzer no longer fires on known-bad input", a.Name)
			}
			checkAgainstWants(t, pkg, diags)
		})
	}
}

// TestDirectives exercises the suppression machinery over its corpus:
// justified suppressions (leading and trailing form) silence findings,
// while missing reasons, unknown rule names, and stale directives are
// reported as lintdirective diagnostics.
func TestDirectives(t *testing.T) {
	pkg := loadCorpus(t, "directives", "example.com/corpus/directives")
	diags := Run([]*Package{pkg}, Analyzers(), nil)

	type want struct {
		rule   string
		substr string
	}
	wants := []want{
		{"lintdirective", "missing reason"},
		{"wallclock", "time.Now"}, // the broken directive above it must not suppress
		{"lintdirective", `unknown rule "nosuchrule"`},
		{"lintdirective", "unused suppression for wallclock"},
	}
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	for i, w := range wants {
		d := diags[i]
		if d.Rule != w.rule || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diagnostic %d = %s, want rule %s containing %q", i, d, w.rule, w.substr)
		}
	}
}

// TestConfigScoping verifies per-package rule scoping: the same
// wall-clock corpus is clean when loaded under an import path outside
// the rule's scope and dirty when loaded inside it.
func TestConfigScoping(t *testing.T) {
	cfg := DefaultConfig()

	out := loadCorpus(t, "wallclock", "repro/cmd/somebin")
	if diags := Run([]*Package{out}, Analyzers(), cfg); len(diags) != 0 {
		t.Errorf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}

	in := loadCorpus(t, "wallclock", "repro/internal/sim")
	diags := Run([]*Package{in}, Analyzers(), cfg)
	if len(diags) != 3 {
		t.Errorf("in-scope package produced %d wallclock diagnostics, want 3: %v", len(diags), diags)
	}
}

// TestMatchPath pins the pattern syntax: exact match, and "/..."
// prefix match that does not leak across path-segment boundaries.
func TestMatchPath(t *testing.T) {
	cases := []struct {
		pattern, path string
		want          bool
	}{
		{"repro/internal/core", "repro/internal/core", true},
		{"repro/internal/core", "repro/internal/core2", false},
		{"repro/internal/...", "repro/internal/core", true},
		{"repro/internal/...", "repro/internal", true},
		{"repro/internal/...", "repro/internals", false},
		{"repro/cmd/...", "repro/cmd/dashboard", true},
	}
	for _, c := range cases {
		if got := matchPath(c.pattern, c.path); got != c.want {
			t.Errorf("matchPath(%q, %q) = %v, want %v", c.pattern, c.path, got, c.want)
		}
	}
}

// TestRepositoryClean asserts the live tree is diagnostic-clean under
// the default configuration, so a regression fails `go test`, not just
// `make lint`.
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk is broken", len(pkgs))
	}
	diags := Run(pkgs, Analyzers(), DefaultConfig())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("%d diagnostics in the live tree; fix them or add a justified //lint:ignore", len(diags))
	}
}

// TestAnalyzerMetadata keeps names and docs well-formed: lower-case
// single-token names (they double as suppression keys) and non-empty
// docs for `repolint -rules`.
func TestAnalyzerMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || strings.ToLower(a.Name) != a.Name || strings.ContainsAny(a.Name, " ,\t") {
			t.Errorf("analyzer name %q must be lower-case with no spaces or commas", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Name == "lintdirective" {
			t.Errorf("lintdirective is reserved for the suppression machinery")
		}
	}
}

// TestAnalyzerSetsAndTimings pins the fast/deep partition behind
// `repolint -set` and the RunTimed plumbing behind -verbose/-budget:
// the sets are disjoint, together they are the whole suite, fast rules
// are purely syntactic (no module pass), deep rules are purely
// interprocedural, and RunTimed reports one timing per analyzer in
// suite order.
func TestAnalyzerSetsAndTimings(t *testing.T) {
	fast, deep := AnalyzersFast(), AnalyzersDeep()
	if len(fast)+len(deep) != len(Analyzers()) {
		t.Fatalf("fast (%d) + deep (%d) analyzers != whole suite (%d)", len(fast), len(deep), len(Analyzers()))
	}
	for _, a := range fast {
		if a.RunModule != nil || a.Run == nil {
			t.Errorf("fast analyzer %s must be per-package syntactic", a.Name)
		}
	}
	for _, a := range deep {
		if a.RunModule == nil {
			t.Errorf("deep analyzer %s must have a module pass", a.Name)
		}
	}
	pkg := loadCorpus(t, "walorder", "example.com/corpus/walorder")
	_, timings := RunTimed([]*Package{pkg}, deep, nil)
	if len(timings) != len(deep) {
		t.Fatalf("RunTimed returned %d timings for %d analyzers", len(timings), len(deep))
	}
	for i, tm := range timings {
		if tm.Name != deep[i].Name {
			t.Errorf("timing %d is %q, want suite order %q", i, tm.Name, deep[i].Name)
		}
		if tm.Elapsed < 0 {
			t.Errorf("timing %s is negative: %v", tm.Name, tm.Elapsed)
		}
	}
}
