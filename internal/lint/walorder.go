package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// analyzerWALOrder verifies the durability contract at the service's
// journaling sites: a request must be applied to the engine, appended
// to the WAL, and only then answered (apply -> append -> reply).
// Replying before the append acknowledges state the log cannot replay
// after a crash. The analyzer abstractly interprets journal-aware
// functions — those whose (inlined) bodies append to a WAL or guard on
// a nil journal — tracking an (applied, appended-since-apply) state
// through straight-line code, branches, and bounded callee inlining.
//
// Exemptions, so the real commit paths stay quiet:
//   - replies inside an error branch of a failed apply (nothing was
//     applied, the error reply is the protocol);
//   - replies under a nil-journal guard (no WAL configured, nothing to
//     append);
//   - functions with no append effect at all (e.g. the federation
//     front door, which has no WAL by design) are never checked.
var analyzerWALOrder = &Analyzer{
	Name: "walorder",
	Doc: "verify apply->append->reply ordering at journaling sites: an applied request must " +
		"be appended to the WAL before its reply is sent (error-branch and nil-journal " +
		"replies exempt)",
	RunModule: func(p *ModulePass) {
		m := p.Mod
		guardedSet := map[*types.Named]bool{}
		for _, g := range guardedTypes(m) {
			guardedSet[g.Origin()] = true
		}
		w := &walChecker{
			m:        m,
			p:        p,
			guarded:  guardedSet,
			eff:      map[*FuncNode]walEffects{},
			visiting: map[*FuncNode]bool{},
			reported: map[token.Pos]bool{},
		}
		for _, n := range m.nodes {
			if n.body() == nil {
				continue
			}
			e := w.effects(n)
			if e.appendE || e.nilguard {
				w.checkFn(n, 0, walState{}, false)
			}
		}
	},
}

// walEffects is a function's flat (order-free) effect summary, used to
// gate which functions get the ordered walk and to summarize callees
// past the inlining depth.
type walEffects struct {
	apply    bool
	appendE  bool
	reply    bool
	nilguard bool
}

// walState is the abstract state threaded through a function body.
type walState struct {
	applied  bool // a guarded-type mutation has happened
	appended bool // a WAL append has happened since the last apply
}

type walChecker struct {
	m        *Module
	p        *ModulePass
	guarded  map[*types.Named]bool
	eff      map[*FuncNode]walEffects
	visiting map[*FuncNode]bool
	reported map[token.Pos]bool
}

// effects computes the flat transitive effect summary of n.
func (w *walChecker) effects(n *FuncNode) walEffects {
	if e, ok := w.eff[n]; ok {
		return e
	}
	if w.visiting[n] {
		return walEffects{}
	}
	w.visiting[n] = true
	defer delete(w.visiting, n)
	var e walEffects
	if body := n.body(); body != nil {
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.GoStmt:
				return false // other goroutine
			case *ast.SendStmt:
				if isReplySend(s) {
					e.reply = true
				}
			case *ast.IfStmt:
				if isNilJournalGuard(s.Cond) {
					e.nilguard = true
				}
			case *ast.CallExpr:
				if w.isApplyCall(n, s) {
					e.apply = true
				}
				if w.isAppendCall(n, s) {
					e.appendE = true
				}
				if callee, _ := w.m.resolveCallee(n.Pkg, s); callee != nil {
					if cn := w.m.node(callee); cn != nil {
						ce := w.effects(cn)
						e.apply = e.apply || ce.apply
						e.appendE = e.appendE || ce.appendE
						e.reply = e.reply || ce.reply
					}
				}
			}
			return true
		})
	}
	w.eff[n] = e
	return e
}

// isReplySend matches sends on channels named like reply channels.
func isReplySend(s *ast.SendStmt) bool {
	return strings.Contains(strings.ToLower(types.ExprString(s.Chan)), "reply")
}

// namesJournal reports whether an identifier chain names a journal:
// "journal" matches anywhere, but "wal" only as a complete camelCase
// or snake_case token — otherwise newAlloc and withdrawals read as
// WALs and every scheduler function looks journal-aware.
func namesJournal(text string) bool {
	if strings.Contains(strings.ToLower(text), "journal") {
		return true
	}
	for _, tok := range identTokens(text) {
		if tok == "wal" {
			return true
		}
	}
	return false
}

// identTokens splits an expression string into lowercase word tokens
// on non-alphanumeric boundaries and camelCase humps (both aB and ABc
// shapes).
func identTokens(text string) []string {
	var toks []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			toks = append(toks, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	runes := []rune(text)
	for i, r := range runes {
		switch {
		case !unicode.IsLetter(r) && !unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r) && i > 0 && unicode.IsLower(runes[i-1]),
			unicode.IsUpper(r) && i > 0 && unicode.IsUpper(runes[i-1]) && i+1 < len(runes) && unicode.IsLower(runes[i+1]):
			flush()
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return toks
}

// walPackage reports whether an import path has a wal or journal path
// segment.
func walPackage(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "wal" || strings.Contains(seg, "journal") {
			return true
		}
	}
	return false
}

// isNilJournalGuard matches `if x.journal == nil` / `if wal == nil`.
func isNilJournalGuard(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if namesJournal(types.ExprString(side)) {
			return true
		}
	}
	return false
}

// isErrGuard matches `if err != nil` (any expression naming an err).
func isErrGuard(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	nilSide := false
	errSide := false
	for _, side := range []ast.Expr{be.X, be.Y} {
		if id, ok := ast.Unparen(side).(*ast.Ident); ok && id.Name == "nil" {
			nilSide = true
			continue
		}
		if strings.Contains(strings.ToLower(types.ExprString(side)), "err") {
			errSide = true
		}
	}
	return nilSide && errSide
}

// isApplyCall matches calls to receiver-mutating methods of guarded
// types: the request being applied to the single-owner engine state.
func (w *walChecker) isApplyCall(n *FuncNode, call *ast.CallExpr) bool {
	callee, _ := w.m.resolveCallee(n.Pkg, call)
	if callee == nil {
		return false
	}
	rb := receiverBase(callee)
	if rb == nil || !w.guarded[rb.Origin()] {
		return false
	}
	cn := w.m.node(callee)
	return cn != nil && cn.mutatesReceiver()
}

// isAppendCall matches WAL appends. A name containing "append" is not
// enough on its own — the scheduler has plenty of innocent appendFoo
// helpers (appendCand, AppendUsableTypes, ...) whose transitive
// reachability would otherwise make every front door look
// journal-aware. The call must also carry WAL evidence: the callee
// lives in a wal package, its receiver type is named like a journal,
// or the receiver expression is (s.journal.Append). A non-pure method
// invoked on a journal-named value counts even without "append" in
// the name.
func (w *walChecker) isAppendCall(n *FuncNode, call *ast.CallExpr) bool {
	callee, _ := w.m.resolveCallee(n.Pkg, call)
	if callee == nil {
		return false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && namesJournal(types.ExprString(sel.X)) {
		if s, ok := n.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && !pureMethods[callee.Name()] {
			return true
		}
	}
	if !strings.Contains(strings.ToLower(callee.Name()), "append") {
		return false
	}
	if pkg := callee.Pkg(); pkg != nil && walPackage(pkg.Path()) {
		return true
	}
	if rb := receiverBase(callee); rb != nil && namesJournal(rb.Obj().Name()) {
		return true
	}
	return false
}

// checkFn interprets n's body from state st. exempt suppresses reply
// diagnostics (error-branch / nil-journal contexts).
func (w *walChecker) checkFn(n *FuncNode, depth int, st walState, exempt bool) walState {
	if body := n.body(); body != nil && depth <= 3 {
		st, _ = w.walkStmts(n, body.List, depth, st, exempt)
		return st
	}
	// Past the inlining depth: apply the flat summary in the
	// conservative order apply-then-append.
	e := w.effects(n)
	if e.apply {
		st.applied, st.appended = true, false
	}
	if e.appendE {
		st.appended = true
	}
	return st
}

// walkStmts interprets a statement list; the bool result reports
// whether the list definitely terminates (ends in return).
func (w *walChecker) walkStmts(n *FuncNode, list []ast.Stmt, depth int, st walState, exempt bool) (walState, bool) {
	terminated := false
	for _, stmt := range list {
		if terminated {
			break
		}
		switch s := stmt.(type) {
		case *ast.SendStmt:
			if isReplySend(s) && !exempt && st.applied && !st.appended {
				w.report(n, s.Pos())
			}
			st = w.walkCallsIn(n, s, depth, st, exempt)
		case *ast.ReturnStmt:
			st = w.walkCallsIn(n, s, depth, st, exempt)
			terminated = true
		case *ast.IfStmt:
			if s.Init != nil {
				st = w.walkCallsIn(n, s.Init, depth, st, exempt)
			}
			st = w.walkCallsIn(n, s.Cond, depth, st, exempt)
			branchSt := st
			branchExempt := exempt
			switch {
			case isErrGuard(s.Cond):
				// The guarded operation failed; its error reply is the
				// protocol, and nothing is durably applied.
				branchSt.applied = false
				branchExempt = true
			case isNilJournalGuard(s.Cond):
				branchExempt = true
			}
			thenOut, thenTerm := w.walkStmts(n, s.Body.List, depth, branchSt, branchExempt)
			var elseOut walState
			elseTerm := false
			hasElse := s.Else != nil
			if hasElse {
				switch e := s.Else.(type) {
				case *ast.BlockStmt:
					elseOut, elseTerm = w.walkStmts(n, e.List, depth, st, exempt)
				case *ast.IfStmt:
					elseOut, elseTerm = w.walkStmts(n, []ast.Stmt{e}, depth, st, exempt)
				}
			} else {
				elseOut = st
			}
			switch {
			case thenTerm && elseTerm:
				terminated = true
			case thenTerm:
				st = elseOut
			case elseTerm:
				st = thenOut
			default:
				st = joinQuiet(thenOut, elseOut)
			}
		case *ast.BlockStmt:
			var term bool
			st, term = w.walkStmts(n, s.List, depth, st, exempt)
			terminated = terminated || term
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Each clause starts from the entry state; clause-internal
			// ordering is still checked. The post-switch state joins
			// to quiet.
			for _, clause := range clauseBodies(s) {
				w.walkStmts(n, clause, depth, st, exempt)
			}
		case *ast.ForStmt:
			w.walkStmts(n, s.Body.List, depth, st, exempt)
		case *ast.RangeStmt:
			w.walkStmts(n, s.Body.List, depth, st, exempt)
		case *ast.DeferStmt:
			st = w.walkCallsIn(n, s.Call, depth, st, exempt)
		case *ast.GoStmt:
			// Other goroutine: no effect on this request's ordering.
		default:
			st = w.walkCallsIn(n, stmt, depth, st, exempt)
		}
	}
	return st, terminated
}

// clauseBodies extracts the statement lists of switch/select clauses.
func clauseBodies(s ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	var body *ast.BlockStmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		body = x.Body
	case *ast.TypeSwitchStmt:
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	if body == nil {
		return nil
	}
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			out = append(out, cc.Body)
		case *ast.CommClause:
			out = append(out, cc.Body)
		}
	}
	return out
}

// walkCallsIn processes the calls (and reply sends in nested
// literals are ignored — other goroutine semantics are out of scope)
// inside one statement or expression, in source order.
func (w *walChecker) walkCallsIn(n *FuncNode, node ast.Node, depth int, st walState, exempt bool) walState {
	ast.Inspect(node, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			st = w.applyCallEffect(n, s, depth, st, exempt)
		}
		return true
	})
	return st
}

// applyCallEffect updates the state for one call expression.
func (w *walChecker) applyCallEffect(n *FuncNode, call *ast.CallExpr, depth int, st walState, exempt bool) walState {
	if w.isApplyCall(n, call) {
		st.applied, st.appended = true, false
		return st
	}
	if w.isAppendCall(n, call) {
		st.appended = true
		return st
	}
	callee, _ := w.m.resolveCallee(n.Pkg, call)
	if callee == nil {
		return st
	}
	cn := w.m.node(callee)
	if cn == nil || cn.body() == nil {
		return st
	}
	e := w.effects(cn)
	if !e.apply && !e.appendE && !e.reply && !e.nilguard {
		return st // pure helper: nothing to interpret
	}
	if depth >= 3 {
		if e.reply && st.applied && !st.appended && !exempt {
			w.report(n, call.Pos())
		}
		if e.apply {
			st.applied, st.appended = true, false
		}
		if e.appendE {
			st.appended = true
		}
		return st
	}
	return w.checkFn(cn, depth+1, st, exempt)
}

// joinQuiet merges branch states toward silence: disagreement resolves
// to the state that cannot produce a diagnostic, trading recall for a
// zero-false-positive default on branchy commit paths.
func joinQuiet(a, b walState) walState {
	return walState{
		applied:  a.applied && b.applied,
		appended: a.appended || b.appended,
	}
}

func (w *walChecker) report(n *FuncNode, pos token.Pos) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.p.Reportf(n.Pkg, pos,
		"reply sent before WAL append for an applied request in %s; the contract is apply -> append -> reply "+
			"so a crash after the reply can always replay the acknowledged state", n.Name())
}
