package lint

import (
	"go/ast"
	"go/types"
)

// analyzerSnapEscape proves copy-on-publish: no mutable reference
// (slice backing array, map, pointer field) stored into a published
// Snapshot/FedSnapshot value may alias the live engine state the
// publishing function can reach through its receiver or parameters.
// A snapshot handed to a reader over an atomic pointer is only
// immutable if every reference-bearing field was deep-copied; one
// shared map turns every reader into a data race and every published
// view into a lie.
var analyzerSnapEscape = &Analyzer{
	Name: "snapescape",
	Doc: "prove copy-on-publish for snapshot types: a reference-bearing value stored into a " +
		"published *Snapshot must not alias live state reachable from the publisher's receiver " +
		"or parameters; deep-copy (Clone) it instead",
	RunModule: func(p *ModulePass) {
		m := p.Mod
		snaps := snapshotTypes(m)
		if len(snaps) == 0 {
			return
		}
		for _, n := range m.nodes {
			if n.Obj == nil || n.body() == nil {
				continue
			}
			// Methods on a snapshot type are readers of already-frozen
			// data; aliases inside them point at immutable state.
			if rb := receiverBase(n.Obj); rb != nil && snaps[rb] {
				continue
			}
			checkSnapshotStores(p, n, snaps)
		}
	},
}

// isSnapshotType reports whether t (through one pointer) is a snapshot
// type.
func isSnapshotType(t types.Type, snaps map[*types.Named]bool) bool {
	named := namedOf(t)
	return named != nil && snaps[named.Origin()]
}

// lvalueInSnapshot reports whether an assignment target writes into a
// snapshot value: some prefix of the selector/index/deref chain is
// snapshot-typed (snap.Field, snap.M[k], (*snap).F, ...).
func lvalueInSnapshot(n *FuncNode, lvalue ast.Expr, snaps map[*types.Named]bool) bool {
	for e := ast.Unparen(lvalue); e != nil; {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		default:
			return isSnapshotType(n.Pkg.TypeOf(e), snaps)
		}
		if isSnapshotType(n.Pkg.TypeOf(e), snaps) {
			return true
		}
	}
	return false
}

// paramRef names the first parameter in the alias set for diagnostics.
func paramRef(n *FuncNode, s paramSet) string {
	if n.Obj == nil {
		return "enclosing state"
	}
	objs := paramObjs(n.Obj)
	sig, _ := n.Obj.Type().(*types.Signature)
	for i, v := range objs {
		if !s.has(i) {
			continue
		}
		if i == 0 && sig != nil && sig.Recv() != nil {
			return "receiver " + v.Name()
		}
		return "parameter " + v.Name()
	}
	return "a parameter"
}

// checkSnapshotStores flags reference-bearing values that flow into a
// snapshot while aliasing the publisher's receiver or parameters, both
// through field assignments and composite-literal elements.
func checkSnapshotStores(p *ModulePass, n *FuncNode, snaps map[*types.Named]bool) {
	m := p.Mod
	m.rootSets(n)
	ast.Inspect(n.body(), func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if !lvalueInSnapshot(n, lhs, snaps) {
					continue
				}
				rhs := s.Rhs[i]
				if !containsRef(n.Pkg.TypeOf(rhs)) {
					continue
				}
				if isSnapshotType(n.Pkg.TypeOf(rhs), snaps) {
					continue // snapshot-into-snapshot: fields vetted at their own stores
				}
				if al := m.aliases(n, rhs); al != 0 {
					p.Reportf(n.Pkg, s.Pos(),
						"store into published snapshot aliases live state reachable from %s of %s; deep-copy before publishing",
						paramRef(n, al), n.Name())
				}
			}
		case *ast.CompositeLit:
			if !isSnapshotType(n.Pkg.TypeOf(s), snaps) {
				return true
			}
			for _, elt := range s.Elts {
				v := elt
				field := ""
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
					if id, ok := kv.Key.(*ast.Ident); ok {
						field = id.Name
					}
				}
				vt := n.Pkg.TypeOf(v)
				if !containsRef(vt) {
					continue
				}
				// A nested snapshot-typed literal is vetted on its own
				// visit; a snapshot-typed value from elsewhere is
				// already frozen.
				if isSnapshotType(vt, snaps) {
					continue
				}
				if _, isLit := ast.Unparen(v).(*ast.CompositeLit); isLit {
					if elem, ok := vt.Underlying().(*types.Slice); ok && isSnapshotType(elem.Elem(), snaps) {
						continue
					}
				}
				if al := m.aliases(n, v); al != 0 {
					p.Reportf(n.Pkg, v.Pos(),
						"snapshot field %s aliases live state reachable from %s of %s; deep-copy before publishing",
						field, paramRef(n, al), n.Name())
				}
			}
		}
		return true
	})
}
