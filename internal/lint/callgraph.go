package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module view the interprocedural analyzers
// (snapescape, ownership, digesttaint, walorder) share: a callgraph
// over every declared function and method, with interface calls
// resolved to the module's implementations and `go`-launched function
// literals split out as goroutine roots. It stays zero-dependency:
// everything is derived from the go/types information the loader
// already computed.

// Module is the interprocedural view over one set of loaded packages.
type Module struct {
	Pkgs []*Package

	// nodes holds every function node in deterministic (position)
	// order: declared functions and methods first-class, plus one
	// synthetic node per go-launched function literal.
	nodes []*FuncNode
	// byObj maps a declared function/method object to its node.
	byObj map[*types.Func]*FuncNode
	// named lists the module's named (non-generic) types in
	// deterministic order, for interface-implementation resolution.
	named []*types.Named
	// impls caches interface-method -> implementing-method resolution.
	impls map[*types.Func][]*FuncNode
}

// FuncNode is one function in the callgraph: a declared function or
// method (Obj/Decl set) or a go-launched function literal (Lit/Parent
// set, Obj nil).
type FuncNode struct {
	Obj    *types.Func
	Decl   *ast.FuncDecl
	Lit    *ast.FuncLit
	Parent *FuncNode
	Pkg    *Package

	// Calls are the resolved call sites executed on this node's own
	// goroutine (calls inside nested go-launched literals belong to
	// the literal's node, not this one).
	Calls []*CallSite
	// GoLaunches are the `go` statements in the body: each one starts
	// a new goroutine context.
	GoLaunches []*GoLaunch

	// Summaries computed by the mod-ref fixpoint (modref.go).
	// Index 0 is the receiver when present; parameters follow.
	mutates  []bool
	aliasRet paramSet

	// roots caches the intra-procedural alias sets (modref.go).
	roots map[types.Object]paramSet
}

// CallSite is one resolved call expression.
type CallSite struct {
	Expr   *ast.CallExpr
	Callee *types.Func // static callee, or the interface method
	Iface  bool        // dynamic dispatch through an interface
	InLoop bool
}

// GoLaunch is one `go` statement.
type GoLaunch struct {
	Site   *ast.GoStmt
	Callee *types.Func // go m(...): the launched function, nil for literals
	Iface  bool
	Node   *FuncNode // go func(){...}(): the literal's synthetic node
	Loop   ast.Node  // innermost enclosing for/range statement, nil outside loops
}

// InLoop reports whether the launch executes once per loop iteration.
func (gl *GoLaunch) InLoop() bool { return gl.Loop != nil }

// Name renders the node for diagnostics: pkg-relative, method
// receivers included, go-literals named after their parent.
func (n *FuncNode) Name() string {
	if n.Obj == nil {
		if n.Parent != nil {
			return n.Parent.Name() + ".go-func"
		}
		return "go-func"
	}
	if recv := n.Obj.Type().(*types.Signature).Recv(); recv != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(recv.Type(), types.RelativeTo(n.Pkg.Types)), n.Obj.Name())
	}
	return n.Obj.Name()
}

// Pos is the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return token.NoPos
}

// BuildModule indexes the packages into a callgraph. The packages must
// share one FileSet (as LoadModule and LoadDir guarantee).
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:  pkgs,
		byObj: map[*types.Func]*FuncNode{},
		impls: map[*types.Func][]*FuncNode{},
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			m.named = append(m.named, named)
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg}
				m.nodes = append(m.nodes, node)
				m.byObj[obj] = node
				m.attribute(node, fd.Body, nil)
			}
		}
	}
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].Pos() < m.nodes[j].Pos() })
	computeSummaries(m)
	return m
}

// attribute walks body, recording call sites and go-launches on node.
// Nested go-launched literals get their own synthetic nodes; all other
// function literals (deferred, stored, immediately invoked) run on the
// same goroutine for our purposes and stay attributed to node.
func (m *Module) attribute(node *FuncNode, body ast.Node, loop ast.Node) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.ForStmt:
			if s.Init != nil {
				m.attribute(node, s.Init, loop)
			}
			if s.Cond != nil {
				m.attribute(node, s.Cond, loop)
			}
			if s.Post != nil {
				m.attribute(node, s.Post, loop)
			}
			m.attribute(node, s.Body, s)
			return false
		case *ast.RangeStmt:
			m.attribute(node, s.X, loop)
			m.attribute(node, s.Body, s)
			return false
		case *ast.GoStmt:
			gl := &GoLaunch{Site: s, Loop: loop}
			if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				child := &FuncNode{Lit: lit, Parent: node, Pkg: node.Pkg}
				m.nodes = append(m.nodes, child)
				gl.Node = child
				m.attribute(child, lit.Body, nil)
			} else {
				gl.Callee, gl.Iface = m.resolveCallee(node.Pkg, s.Call)
			}
			node.GoLaunches = append(node.GoLaunches, gl)
			for _, a := range s.Call.Args {
				m.attribute(node, a, loop)
			}
			return false
		case *ast.CallExpr:
			if callee, iface := m.resolveCallee(node.Pkg, s); callee != nil {
				node.Calls = append(node.Calls, &CallSite{Expr: s, Callee: callee, Iface: iface, InLoop: loop != nil})
			}
			return true
		}
		return true
	})
}

// resolveCallee resolves a call expression to its static callee (a
// declared function or a possibly-interface method), or nil for
// builtins, conversions, and calls of function-typed values.
func (m *Module) resolveCallee(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn, false
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				_, iface := sel.Recv().Underlying().(*types.Interface)
				return fn, iface
			}
			return nil, false
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn, false // package-qualified call
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return fn, false
			}
		}
	}
	return nil, false
}

// node returns the FuncNode for a declared function object, nil for
// functions outside the module.
func (m *Module) node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	if n, ok := m.byObj[fn]; ok {
		return n
	}
	// Generic origin: calls to instantiated generics resolve to the
	// instance object; map it back to the declaration.
	if o := fn.Origin(); o != fn {
		return m.byObj[o]
	}
	return nil
}

// implementers resolves a dynamic call through interface method ifm to
// every module-declared method that may answer it, in node order.
func (m *Module) implementers(ifm *types.Func) []*FuncNode {
	if cached, ok := m.impls[ifm]; ok {
		return cached
	}
	var out []*FuncNode
	sig, _ := ifm.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if iface, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			lookupPkg := ifm.Pkg()
			for _, named := range m.named {
				ptr := types.NewPointer(named)
				if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, lookupPkg, ifm.Name())
				if fn, ok := obj.(*types.Func); ok {
					if n := m.node(fn); n != nil {
						out = append(out, n)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	m.impls[ifm] = out
	return out
}

// callees returns the module nodes a call site may reach: the static
// callee, or every implementation for an interface call.
func (m *Module) siteCallees(c *CallSite) []*FuncNode {
	if c.Iface {
		return m.implementers(c.Callee)
	}
	if n := m.node(c.Callee); n != nil {
		return []*FuncNode{n}
	}
	return nil
}

// launchRoots returns the nodes a go-launch starts: the literal's node
// or the resolved (possibly interface) callee nodes.
func (m *Module) launchRoots(gl *GoLaunch) []*FuncNode {
	if gl.Node != nil {
		return []*FuncNode{gl.Node}
	}
	if gl.Iface {
		return m.implementers(gl.Callee)
	}
	if n := m.node(gl.Callee); n != nil {
		return []*FuncNode{n}
	}
	return nil
}

// closure returns the set of nodes reachable from roots over ordinary
// call edges (go-launch edges excluded: they change goroutine).
func (m *Module) closure(roots []*FuncNode) map[*FuncNode]bool {
	seen := map[*FuncNode]bool{}
	var work []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, c := range n.Calls {
			for _, callee := range m.siteCallees(c) {
				if !seen[callee] {
					seen[callee] = true
					work = append(work, callee)
				}
			}
		}
	}
	return seen
}

// closureWithParents is closure plus a parent edge per reached node,
// for rendering call-chain evidence in diagnostics.
func (m *Module) closureWithParents(roots []*FuncNode) (map[*FuncNode]bool, map[*FuncNode]*FuncNode) {
	seen := map[*FuncNode]bool{}
	parent := map[*FuncNode]*FuncNode{}
	var work []*FuncNode
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, c := range n.Calls {
			for _, callee := range m.siteCallees(c) {
				if !seen[callee] {
					seen[callee] = true
					parent[callee] = n
					work = append(work, callee)
				}
			}
		}
	}
	return seen, parent
}

// chain renders the call path from a root to n, e.g. "Schedule -> explore".
func chain(parent map[*FuncNode]*FuncNode, n *FuncNode) string {
	var names []string
	for at := n; at != nil; at = parent[at] {
		names = append(names, at.Name())
		if len(names) > 8 {
			break
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " -> ")
}

// receiverBase returns the named type of a method's receiver (through
// one pointer), or nil.
func receiverBase(fn *types.Func) *types.Named {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// docOf returns the doc comment attached to a named type's
// declaration, checking both the TypeSpec and its parent GenDecl.
func (m *Module) docOf(named *types.Named) string {
	obj := named.Obj()
	pkg := m.pkgFor(obj.Pkg())
	if pkg == nil {
		return ""
	}
	for _, f := range pkg.Files {
		if f.Pos() > obj.Pos() || obj.Pos() > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Pos() != obj.Pos() {
					continue
				}
				if ts.Doc != nil {
					return ts.Doc.Text()
				}
				if gd.Doc != nil {
					return gd.Doc.Text()
				}
				return ""
			}
		}
	}
	return ""
}

// pkgFor maps a types.Package back to the loaded Package.
func (m *Module) pkgFor(tp *types.Package) *Package {
	if tp == nil {
		return nil
	}
	for _, p := range m.Pkgs {
		if p.Types == tp {
			return p
		}
	}
	return nil
}
