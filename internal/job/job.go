// Package job models a distributed deep-learning training job as
// formulated in the Hadar paper (Table I): a gang of W_j workers that
// must run E_j epochs of N_j iterations each, with per-accelerator-type
// throughput X_j^r (training iterations per second per worker).
package job

import (
	"fmt"
	"math"

	"repro/internal/gpu"
)

// Job is an immutable description of a training job. Mutable scheduling
// state (remaining work, current allocation) lives in the scheduler
// layer, not here.
type Job struct {
	// ID uniquely identifies the job within a trace.
	ID int
	// Name is a human-readable label, e.g. "resnet50-17".
	Name string
	// Model is the workload catalog entry this job trains (Table II),
	// e.g. "ResNet-50". It selects the checkpoint cost model.
	Model string
	// Workers is W_j, the gang size: the job runs with exactly this many
	// accelerators or not at all (constraint 1e).
	Workers int
	// Epochs is E_j, the requested number of training epochs.
	Epochs int
	// ItersPerEpoch is N_j, the number of data chunks (iterations)
	// processed per epoch.
	ItersPerEpoch int
	// Arrival is a_j, the submission time in seconds from trace start.
	Arrival float64
	// Throughput maps accelerator type r to X_j^r, the iterations per
	// second one worker achieves on that type. Types absent from the map
	// cannot run this job.
	Throughput map[gpu.Type]float64
}

// TotalIters returns E_j * N_j, the iterations required to finish.
func (j *Job) TotalIters() float64 {
	return float64(j.Epochs) * float64(j.ItersPerEpoch)
}

// Speed returns X_j^r for the given type, or 0 if the job cannot use it.
func (j *Job) Speed(t gpu.Type) float64 { return j.Throughput[t] }

// BestType returns the accelerator type with the highest throughput for
// this job and that throughput. It returns ok=false if the job has no
// usable type.
func (j *Job) BestType() (best gpu.Type, speed float64, ok bool) {
	speed = 0
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if x := j.Throughput[t]; x > speed {
			best, speed, ok = t, x, true
		}
	}
	return best, speed, ok
}

// WorstType returns the lowest positive throughput among the job's
// usable types and the corresponding type. ok=false if none.
func (j *Job) WorstType() (worst gpu.Type, speed float64, ok bool) {
	speed = math.Inf(1)
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if x := j.Throughput[t]; x > 0 && x < speed {
			worst, speed, ok = t, x, true
		}
	}
	if !ok {
		speed = 0
	}
	return worst, speed, ok
}

// MinDuration returns t_j^min (Eq. 8): the shortest possible runtime,
// achieved with all W_j workers on the fastest type. It returns +Inf for
// a job with no usable type.
func (j *Job) MinDuration() float64 {
	_, x, ok := j.BestType()
	if !ok || j.Workers == 0 {
		return math.Inf(1)
	}
	return j.TotalIters() / (float64(j.Workers) * x)
}

// MaxDuration returns t_j^max (Eq. 8): the runtime with all workers on
// the slowest usable type. It returns +Inf for a job with no usable
// type.
func (j *Job) MaxDuration() float64 {
	_, x, ok := j.WorstType()
	if !ok || j.Workers == 0 {
		return math.Inf(1)
	}
	return j.TotalIters() / (float64(j.Workers) * x)
}

// GPUHours returns the job's nominal resource demand in GPU-hours when
// run on its fastest type, the quantity the paper's trace buckets
// (Small/Medium/Large/XLarge) are defined over.
func (j *Job) GPUHours() float64 {
	d := j.MinDuration()
	if math.IsInf(d, 1) {
		return math.Inf(1)
	}
	return d * float64(j.Workers) / 3600
}

// Validate checks the job is well-formed: positive gang size and work,
// non-negative arrival, and at least one usable accelerator type.
func (j *Job) Validate() error {
	if j.Workers <= 0 {
		return fmt.Errorf("job %d: non-positive worker count %d", j.ID, j.Workers)
	}
	if j.Epochs <= 0 || j.ItersPerEpoch <= 0 {
		return fmt.Errorf("job %d: non-positive work %d epochs x %d iters", j.ID, j.Epochs, j.ItersPerEpoch)
	}
	if j.Arrival < 0 || math.IsNaN(j.Arrival) {
		return fmt.Errorf("job %d: invalid arrival %v", j.ID, j.Arrival)
	}
	usable := false
	for t, x := range j.Throughput {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("job %d: invalid throughput %v on %v", j.ID, x, t)
		}
		if x > 0 {
			usable = true
		}
	}
	if !usable {
		return fmt.Errorf("job %d: no usable accelerator type", j.ID)
	}
	return nil
}

// String renders a compact description for logs.
func (j *Job) String() string {
	return fmt.Sprintf("job %d (%s, W=%d, %d x %d iters, arr=%.0fs)",
		j.ID, j.Model, j.Workers, j.Epochs, j.ItersPerEpoch, j.Arrival)
}
