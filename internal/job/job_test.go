package job

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func sample() *Job {
	return &Job{
		ID:            1,
		Name:          "resnet50-1",
		Model:         "ResNet-50",
		Workers:       4,
		Epochs:        10,
		ItersPerEpoch: 100,
		Arrival:       5,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 10,
			gpu.P100: 5,
			gpu.K80:  1,
		},
	}
}

func TestTotalIters(t *testing.T) {
	if got := sample().TotalIters(); got != 1000 {
		t.Errorf("TotalIters = %v, want 1000", got)
	}
}

func TestSpeed(t *testing.T) {
	j := sample()
	if j.Speed(gpu.V100) != 10 {
		t.Error("Speed(V100) wrong")
	}
	if j.Speed(gpu.T4) != 0 {
		t.Error("Speed of unusable type should be 0")
	}
}

func TestBestWorstType(t *testing.T) {
	j := sample()
	best, bx, ok := j.BestType()
	if !ok || best != gpu.V100 || bx != 10 {
		t.Errorf("BestType = %v,%v,%v", best, bx, ok)
	}
	worst, wx, ok := j.WorstType()
	if !ok || worst != gpu.K80 || wx != 1 {
		t.Errorf("WorstType = %v,%v,%v", worst, wx, ok)
	}
}

func TestBestTypeNoUsable(t *testing.T) {
	j := &Job{Workers: 1, Epochs: 1, ItersPerEpoch: 1, Throughput: map[gpu.Type]float64{}}
	if _, _, ok := j.BestType(); ok {
		t.Error("BestType reported usable type on empty throughput map")
	}
	if _, _, ok := j.WorstType(); ok {
		t.Error("WorstType reported usable type on empty throughput map")
	}
	if !math.IsInf(j.MinDuration(), 1) || !math.IsInf(j.MaxDuration(), 1) {
		t.Error("durations of unusable job should be +Inf")
	}
}

func TestMinMaxDuration(t *testing.T) {
	j := sample()
	// 1000 iters, 4 workers, fastest 10 iter/s -> 25s; slowest 1 -> 250s.
	if got := j.MinDuration(); got != 25 {
		t.Errorf("MinDuration = %v, want 25", got)
	}
	if got := j.MaxDuration(); got != 250 {
		t.Errorf("MaxDuration = %v, want 250", got)
	}
}

func TestGPUHours(t *testing.T) {
	j := sample()
	want := 25.0 * 4 / 3600
	if got := j.GPUHours(); math.Abs(got-want) > 1e-12 {
		t.Errorf("GPUHours = %v, want %v", got, want)
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Errorf("Validate of valid job: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero workers", func(j *Job) { j.Workers = 0 }},
		{"negative workers", func(j *Job) { j.Workers = -1 }},
		{"zero epochs", func(j *Job) { j.Epochs = 0 }},
		{"zero iters", func(j *Job) { j.ItersPerEpoch = 0 }},
		{"negative arrival", func(j *Job) { j.Arrival = -1 }},
		{"NaN arrival", func(j *Job) { j.Arrival = math.NaN() }},
		{"negative throughput", func(j *Job) { j.Throughput[gpu.V100] = -1 }},
		{"NaN throughput", func(j *Job) { j.Throughput[gpu.V100] = math.NaN() }},
		{"no usable type", func(j *Job) { j.Throughput = map[gpu.Type]float64{gpu.V100: 0} }},
	}
	for _, c := range cases {
		j := sample()
		c.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid job", c.name)
		}
	}
}

func TestStringIncludesEssentials(t *testing.T) {
	s := sample().String()
	for _, frag := range []string{"job 1", "ResNet-50", "W=4"} {
		if !contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// Property: MinDuration <= MaxDuration for any job with positive
// throughputs on multiple types.
func TestDurationOrderingProperty(t *testing.T) {
	prop := func(a, b, c uint8, w uint8) bool {
		xa, xb, xc := float64(a)+1, float64(b)+1, float64(c)+1
		j := &Job{
			Workers: int(w%8) + 1, Epochs: 10, ItersPerEpoch: 10,
			Throughput: map[gpu.Type]float64{gpu.V100: xa, gpu.P100: xb, gpu.K80: xc},
		}
		return j.MinDuration() <= j.MaxDuration()+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: scaling all throughputs by k scales durations by 1/k.
func TestDurationScalingProperty(t *testing.T) {
	prop := func(x uint8, k uint8) bool {
		speed := float64(x%100) + 1
		scale := float64(k%10) + 1
		j1 := &Job{Workers: 2, Epochs: 5, ItersPerEpoch: 20,
			Throughput: map[gpu.Type]float64{gpu.V100: speed}}
		j2 := &Job{Workers: 2, Epochs: 5, ItersPerEpoch: 20,
			Throughput: map[gpu.Type]float64{gpu.V100: speed * scale}}
		return math.Abs(j1.MinDuration()/scale-j2.MinDuration()) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
