package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bug"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/stats"
)

// Pattern selects the job arrival process.
type Pattern int

const (
	// Static releases every job at time 0 (the paper's "static trace").
	Static Pattern = iota
	// Poisson draws exponential interarrival times with the configured
	// rate (the paper's "continuous trace").
	Poisson
	// Diurnal draws from a non-homogeneous Poisson process whose rate
	// oscillates over a 24-hour period: rate(t) = Rate x
	// (1 + Amplitude x sin(2 pi t / day)). Production traces (the paper
	// samples "the busiest hour range, hours 3-10") show exactly this
	// day/night pattern.
	Diurnal
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case Static:
		return "static"
	case Poisson:
		return "poisson"
	case Diurnal:
		return "diurnal"
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Config parameterizes trace synthesis.
type Config struct {
	// NumJobs is the trace length; the paper samples 480 jobs.
	NumJobs int
	// Seed drives all sampling; identical configs produce identical
	// traces.
	Seed int64
	// Pattern selects static vs Poisson arrivals.
	Pattern Pattern
	// Rate is the Poisson arrival rate in jobs/second (ignored for
	// Static). The paper sweeps this as the "input job rate". For
	// Diurnal it is the mean rate around which the day/night cycle
	// oscillates.
	Rate float64
	// Amplitude is the relative day/night swing for Diurnal arrivals,
	// in [0, 1); 0 degenerates to Poisson. Ignored otherwise.
	Amplitude float64
	// WorkerChoices and WorkerWeights define the gang-size distribution.
	// Defaults follow the Philly trace's heavy small-job skew with a
	// heavy tail of large gangs: 1 GPU 45%, 2 GPUs 25%, 4 GPUs 14%,
	// 8 GPUs 10%, 16 GPUs 6%. The 16-GPU gangs approach the per-type
	// pool size of the paper's simulated cluster (20), which is what
	// makes job-level (single-accelerator-type) schedulers block while
	// Hadar's task-level gangs straddle types.
	WorkerChoices []int
	WorkerWeights []float64
}

// DefaultConfig returns the paper's simulation workload: 480 jobs.
func DefaultConfig() Config {
	return Config{
		NumJobs: 480,
		Seed:    1,
		Pattern: Static,
		Rate:    480.0 / (7 * 3600), // busiest-hours average if Poisson
	}
}

func (c *Config) workerDistribution() ([]int, []float64) {
	if len(c.WorkerChoices) > 0 {
		return c.WorkerChoices, c.WorkerWeights
	}
	return []int{1, 2, 4, 8, 16}, []float64{0.45, 0.25, 0.14, 0.1, 0.06}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumJobs <= 0 {
		return fmt.Errorf("trace: NumJobs must be positive, got %d", c.NumJobs)
	}
	if (c.Pattern == Poisson || c.Pattern == Diurnal) && c.Rate <= 0 {
		return fmt.Errorf("trace: %v pattern requires positive Rate, got %v", c.Pattern, c.Rate)
	}
	if c.Pattern == Diurnal && (c.Amplitude < 0 || c.Amplitude >= 1) {
		return fmt.Errorf("trace: Diurnal amplitude %v outside [0, 1)", c.Amplitude)
	}
	choices, weights := c.workerDistribution()
	if len(choices) != len(weights) {
		return fmt.Errorf("trace: %d worker choices but %d weights", len(choices), len(weights))
	}
	for _, w := range choices {
		if w <= 0 {
			return fmt.Errorf("trace: non-positive worker choice %d", w)
		}
	}
	return nil
}

// Generate synthesizes a trace per the paper's recipe: for each job,
// sample the size class uniformly, pick a model for the class, sample
// GPU-hours uniformly within the class range, and derive epochs so that
// the job's best-type runtime matches the sampled demand.
func Generate(cfg Config) ([]*job.Job, error) {
	return GenerateWithCatalog(cfg, Catalog())
}

// nextDiurnal samples the next arrival of a non-homogeneous Poisson
// process with rate(t) = rate x (1 + amplitude x sin(2 pi t / day)),
// using Lewis-Shedler thinning against the peak rate.
func nextDiurnal(rng *stats.Rand, now, rate, amplitude float64) float64 {
	const day = 86400.0
	peak := rate * (1 + amplitude)
	t := now
	for {
		t += rng.Exponential(peak)
		lambda := rate * (1 + amplitude*math.Sin(2*math.Pi*t/day))
		if rng.Float64() <= lambda/peak {
			return t
		}
	}
}

// FromDemand builds a job of the given model whose best-type (V100 for
// all catalog entries) runtime equals gpuHours of aggregate GPU time
// spread over the gang, rounded up to whole epochs.
func FromDemand(id int, spec ModelSpec, workers int, gpuHours, arrival float64) (*job.Job, error) {
	best := 0.0
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if x := spec.Throughput[t]; x > best {
			best = x
		}
	}
	if best <= 0 {
		return nil, fmt.Errorf("trace: model %s has no usable type", spec.Name)
	}
	// gpuHours = duration * workers / 3600 and duration = iters/(workers
	// * best)  =>  iters = gpuHours * 3600 * best, independent of gang
	// size.
	iters := gpuHours * 3600 * best
	epochs := int(math.Ceil(iters / float64(spec.ItersPerEpoch)))
	if epochs < 1 {
		epochs = 1
	}
	j := &job.Job{
		ID:            id,
		Name:          fmt.Sprintf("%s-%d", spec.Name, id),
		Model:         spec.Name,
		Workers:       workers,
		Epochs:        epochs,
		ItersPerEpoch: spec.ItersPerEpoch,
		Arrival:       arrival,
		Throughput:    spec.Throughput,
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// PrototypeWorkload returns the 10-job mixed workload of the paper's
// prototype experiment (Table III): jobs "of different models and sizes
// (GPU demands) from Table II".
func PrototypeWorkload(seed int64) []*job.Job {
	rng := stats.NewRand(seed)
	// Two jobs per catalog model, with modest demands so the 8-GPU
	// cluster finishes in tens of hours as in Table III. Gang sizes stay
	// within 2 because the prototype cluster has two devices per type
	// and the job-level baselines (Gavel, Tiresias) cannot split a gang
	// across types.
	demands := []struct {
		workers  int
		gpuHours float64
	}{
		{1, 0.5}, {2, 2}, {2, 6}, {1, 3}, {2, 10},
		{2, 8}, {1, 1}, {2, 4}, {2, 16}, {1, 2},
	}
	jobs := make([]*job.Job, 0, len(demands))
	for i, d := range demands {
		spec := catalog[i%len(catalog)]
		jitter := rng.Uniform(0.9, 1.1)
		j, err := FromDemand(i, spec, d.workers, d.gpuHours*jitter, 0)
		if err != nil {
			bug.Failf("trace: static demand table invalid: %v", err)
		}
		jobs = append(jobs, j)
	}
	return jobs
}

// jobJSON is the serialized form of a job in a trace file.
type jobJSON struct {
	ID            int                `json:"id"`
	Name          string             `json:"name"`
	Model         string             `json:"model"`
	Workers       int                `json:"workers"`
	Epochs        int                `json:"epochs"`
	ItersPerEpoch int                `json:"iters_per_epoch"`
	Arrival       float64            `json:"arrival_s"`
	Throughput    map[string]float64 `json:"throughput_iters_per_s"`
}

// Write serializes a trace as indented JSON, one array of jobs.
func Write(w io.Writer, jobs []*job.Job) error {
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		tp := make(map[string]float64, len(j.Throughput))
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			if x, ok := j.Throughput[t]; ok {
				tp[t.String()] = x
			}
		}
		out[i] = jobJSON{
			ID: j.ID, Name: j.Name, Model: j.Model, Workers: j.Workers,
			Epochs: j.Epochs, ItersPerEpoch: j.ItersPerEpoch,
			Arrival: j.Arrival, Throughput: tp,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Read parses a trace previously produced by Write and validates every
// job.
func Read(r io.Reader) ([]*job.Job, error) {
	var in []jobJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	jobs := make([]*job.Job, len(in))
	for i, jj := range in {
		// Sorted keys keep the error path deterministic when several
		// type names are unparseable.
		names := make([]string, 0, len(jj.Throughput))
		for name := range jj.Throughput {
			names = append(names, name)
		}
		sort.Strings(names)
		tp := make(map[gpu.Type]float64, len(jj.Throughput))
		for _, name := range names {
			t, err := gpu.Parse(name)
			if err != nil {
				return nil, fmt.Errorf("trace: job %d: %w", jj.ID, err)
			}
			tp[t] = jj.Throughput[name]
		}
		j := &job.Job{
			ID: jj.ID, Name: jj.Name, Model: jj.Model, Workers: jj.Workers,
			Epochs: jj.Epochs, ItersPerEpoch: jj.ItersPerEpoch,
			Arrival: jj.Arrival, Throughput: tp,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		jobs[i] = j
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	return jobs, nil
}
