package trace_test

import (
	"fmt"

	"repro/internal/trace"
)

// Example synthesizes a small deterministic trace and summarizes it.
func Example() {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 3
	cfg.Seed = 42
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, j := range jobs {
		fmt.Printf("%s: %d workers, %.1f GPU-hours\n", j.Model, j.Workers, j.GPUHours())
	}
	// Output:
	// CycleGAN: 1 workers, 6.4 GPU-hours
	// ResNet-50: 1 workers, 92.5 GPU-hours
	// ResNet-18: 1 workers, 0.8 GPU-hours
}
