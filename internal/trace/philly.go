package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/job"
	"repro/internal/stats"
)

// PhillyRow is one record of a Microsoft-Philly-style cluster trace:
// the fields the paper says the trace provides ("the requested number
// of GPUs, submission time, and job duration, while details on model
// architectures and datasets are not provided").
type PhillyRow struct {
	JobID      string
	SubmitTime float64 // seconds from trace start
	GPUs       int
	Duration   float64 // seconds of execution on the original cluster
}

// phillyHeader is the canonical CSV header.
var phillyHeader = []string{"job_id", "submit_time_s", "gpus", "duration_s"}

// ReadPhillyCSV parses a Philly-style CSV (header required). Rows with
// non-positive GPUs or duration are rejected.
func ReadPhillyCSV(r io.Reader) ([]PhillyRow, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(phillyHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: philly csv header: %w", err)
	}
	for i, want := range phillyHeader {
		if header[i] != want {
			return nil, fmt.Errorf("trace: philly csv column %d is %q, want %q", i, header[i], want)
		}
	}
	var rows []PhillyRow
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: philly csv line %d: %w", line, err)
		}
		submit, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: philly csv line %d: submit: %w", line, err)
		}
		gpus, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("trace: philly csv line %d: gpus: %w", line, err)
		}
		duration, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: philly csv line %d: duration: %w", line, err)
		}
		if gpus <= 0 || duration <= 0 || submit < 0 {
			return nil, fmt.Errorf("trace: philly csv line %d: non-positive fields", line)
		}
		rows = append(rows, PhillyRow{JobID: rec[0], SubmitTime: submit, GPUs: gpus, Duration: duration})
	}
	return rows, nil
}

// WritePhillyCSV writes rows in the canonical schema.
func WritePhillyCSV(w io.Writer, rows []PhillyRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(phillyHeader); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, r := range rows {
		rec := []string{
			r.JobID,
			strconv.FormatFloat(r.SubmitTime, 'f', -1, 64),
			strconv.Itoa(r.GPUs),
			strconv.FormatFloat(r.Duration, 'f', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// FromPhilly converts trace rows to jobs using the paper's recipe: each
// row's total GPU time (duration x GPUs) selects the size class, a model
// is sampled for that class with the seeded RNG, and the iteration
// count is derived so the job's best-type runtime matches the row's
// demand. Rows asking for more GPUs than maxWorkers are clamped (the
// paper's 60-GPU cluster cannot host Philly's largest gangs).
func FromPhilly(rows []PhillyRow, seed int64, maxWorkers int) ([]*job.Job, error) {
	if maxWorkers <= 0 {
		return nil, fmt.Errorf("trace: non-positive maxWorkers %d", maxWorkers)
	}
	rng := stats.NewRand(seed)
	jobs := make([]*job.Job, 0, len(rows))
	for i, r := range rows {
		gpuHours := r.Duration * float64(r.GPUs) / 3600
		class := classOf(gpuHours)
		models := ModelsForClass(class)
		spec := models[rng.Intn(len(models))]
		workers := r.GPUs
		if workers > maxWorkers {
			workers = maxWorkers
		}
		j, err := FromDemand(i, spec, workers, gpuHours, r.SubmitTime)
		if err != nil {
			return nil, fmt.Errorf("trace: philly row %q: %w", r.JobID, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// classOf buckets a GPU-hour demand into the paper's size classes.
// Demands falling in the paper's unassigned gap (50-60 GPU-hours) join
// XLarge; demands beyond 100 stay XLarge too.
func classOf(gpuHours float64) SizeClass {
	switch {
	case gpuHours < 1:
		return Small
	case gpuHours < 10:
		return Medium
	case gpuHours < 50:
		return Large
	default:
		return XLarge
	}
}

// ToPhilly exports synthesized jobs in the Philly schema, using each
// job's best-type runtime as the duration (the original trace recorded
// actual execution time).
func ToPhilly(jobs []*job.Job) []PhillyRow {
	rows := make([]PhillyRow, len(jobs))
	for i, j := range jobs {
		rows[i] = PhillyRow{
			JobID:      j.Name,
			SubmitTime: j.Arrival,
			GPUs:       j.Workers,
			Duration:   j.MinDuration(),
		}
	}
	return rows
}
