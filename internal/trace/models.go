// Package trace provides the evaluation workload model of the Hadar
// paper: the Table II catalog of DNN training workloads with their
// per-accelerator throughputs, and a synthetic generator reproducing the
// paper's sampling recipe over the Microsoft Philly trace (heavy-tailed
// GPU-hour buckets, static or Poisson arrivals).
package trace

import (
	"fmt"
	"maps"

	"repro/internal/bug"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/stats"
)

// SizeClass buckets jobs by total GPU-hours, exactly as the paper
// categorizes the Philly trace ("Small (0-1 GPU-hours), Medium (1-10),
// Large (10-50), and XLarge (60-100)").
type SizeClass int

// Size classes in ascending resource demand.
const (
	Small SizeClass = iota
	Medium
	Large
	XLarge
	numSizeClasses
)

// String names the size class as in Table II ("S", "M", "L", "XL").
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	case XLarge:
		return "XL"
	}
	return fmt.Sprintf("SizeClass(%d)", int(s))
}

// GPUHourRange returns the [lo, hi) GPU-hour interval of the class.
func (s SizeClass) GPUHourRange() (lo, hi float64) {
	switch s {
	case Small:
		return 0.1, 1 // lower bound >0 so every job has real work
	case Medium:
		return 1, 10
	case Large:
		return 10, 50
	case XLarge:
		return 60, 100
	}
	bug.Failf("trace: invalid size class %d", int(s))
	return 0, 0 // unreachable: Failf panics
}

// ModelSpec is one row of Table II plus the throughput profile used as
// scheduling input (X_j^r, iterations per second per worker).
//
// The V100/P100/K80 ratios are calibrated to the heterogeneity the paper
// reports (e.g. ResNet-50 trains ~10x faster on V100 than K80, while
// other models see smaller speedups); T4 and K520 extend the profile to
// the AWS prototype's devices. Absolute magnitudes only set the time
// scale and cancel out of all relative metrics.
type ModelSpec struct {
	Name          string
	Task          string
	Dataset       string
	Size          SizeClass
	ItersPerEpoch int
	Throughput    map[gpu.Type]float64
}

var catalog = []ModelSpec{
	{
		Name: "ResNet-50", Task: "Image Classification", Dataset: "ImageNet",
		Size: XLarge, ItersPerEpoch: 1000,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 60, gpu.P100: 30, gpu.K80: 6, gpu.T4: 25, gpu.K520: 4,
		},
	},
	{
		Name: "ResNet-18", Task: "Image Classification", Dataset: "CIFAR-10",
		Size: Small, ItersPerEpoch: 400,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 300, gpu.P100: 180, gpu.K80: 60, gpu.T4: 150, gpu.K520: 40,
		},
	},
	{
		Name: "LSTM", Task: "Language Modeling", Dataset: "Wikitext-2",
		Size: Large, ItersPerEpoch: 600,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 80, gpu.P100: 48, gpu.K80: 16, gpu.T4: 40, gpu.K520: 10,
		},
	},
	{
		Name: "CycleGAN", Task: "Image-to-Image Translation", Dataset: "monet2photo",
		Size: Medium, ItersPerEpoch: 250,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 30, gpu.P100: 18, gpu.K80: 7.5, gpu.T4: 15, gpu.K520: 5,
		},
	},
	{
		Name: "Transformer", Task: "Language Translation", Dataset: "Multi30K (de-en)",
		Size: Large, ItersPerEpoch: 600,
		Throughput: map[gpu.Type]float64{
			gpu.V100: 100, gpu.P100: 55, gpu.K80: 20, gpu.T4: 50, gpu.K520: 13,
		},
	},
}

// Catalog returns the Table II workloads. The returned specs share the
// package's throughput maps and must not be modified.
func Catalog() []ModelSpec { return catalog }

// ModelByName finds a catalog entry by its Table II name.
func ModelByName(name string) (ModelSpec, bool) {
	for _, m := range catalog {
		if m.Name == name {
			return m, true
		}
	}
	return ModelSpec{}, false
}

// ModelsForClass returns the catalog entries assigned to a size class,
// implementing the paper's recipe of specifying model and dataset from
// the sampled GPU-hour category.
func ModelsForClass(s SizeClass) []ModelSpec {
	var out []ModelSpec
	for _, m := range catalog {
		if m.Size == s {
			out = append(out, m)
		}
	}
	return out
}

// CatalogWithThroughputs returns a copy of the Table II catalog with
// each model's throughput profile replaced by the supplied derivation
// (e.g. one computed from first principles by internal/psmodel). Models
// absent from the map keep their calibrated defaults. The returned
// specs own their throughput maps.
func CatalogWithThroughputs(derived map[string]map[gpu.Type]float64) []ModelSpec {
	out := make([]ModelSpec, len(catalog))
	copy(out, catalog)
	for i := range out {
		if tp, ok := derived[out[i].Name]; ok {
			out[i].Throughput = maps.Clone(tp)
		}
	}
	return out
}

// GenerateWithCatalog synthesizes a trace like Generate but samples
// models from the supplied catalog instead of the built-in one. Every
// spec must cover at least one accelerator type per size class.
func GenerateWithCatalog(cfg Config, specs []ModelSpec) ([]*job.Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	byClass := map[SizeClass][]ModelSpec{}
	for _, m := range specs {
		byClass[m.Size] = append(byClass[m.Size], m)
	}
	for c := SizeClass(0); c < numSizeClasses; c++ {
		if len(byClass[c]) == 0 {
			return nil, fmt.Errorf("trace: catalog has no models for class %v", c)
		}
	}
	rng := stats.NewRand(cfg.Seed)
	choices, weights := cfg.workerDistribution()
	jobs := make([]*job.Job, 0, cfg.NumJobs)
	now := 0.0
	for i := 0; i < cfg.NumJobs; i++ {
		class := SizeClass(rng.Intn(int(numSizeClasses)))
		models := byClass[class]
		spec := models[rng.Intn(len(models))]
		lo, hi := class.GPUHourRange()
		gpuHours := rng.Uniform(lo, hi)
		workers := choices[rng.Choice(weights)]
		arrival := 0.0
		switch cfg.Pattern {
		case Poisson:
			now += rng.Exponential(cfg.Rate)
			arrival = now
		case Diurnal:
			now = nextDiurnal(rng, now, cfg.Rate, cfg.Amplitude)
			arrival = now
		}
		j, err := FromDemand(i, spec, workers, gpuHours, arrival)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}
