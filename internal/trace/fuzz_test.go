package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadPhillyCSV ensures arbitrary CSV input never panics the parser
// and that accepted inputs survive a write/read round trip.
func FuzzReadPhillyCSV(f *testing.F) {
	f.Add("job_id,submit_time_s,gpus,duration_s\napp-1,0,1,1800\n")
	f.Add("job_id,submit_time_s,gpus,duration_s\nx,5.5,8,36000\ny,9,2,60\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		rows, err := ReadPhillyCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WritePhillyCSV(&buf, rows); err != nil {
			t.Fatalf("accepted rows failed to serialize: %v", err)
		}
		back, err := ReadPhillyCSV(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(back) != len(rows) {
			t.Fatalf("round trip changed row count: %d -> %d", len(rows), len(back))
		}
	})
}

// FuzzReadTraceJSON ensures arbitrary JSON never panics the trace
// reader.
func FuzzReadTraceJSON(f *testing.F) {
	var buf bytes.Buffer
	cfg := DefaultConfig()
	cfg.NumJobs = 2
	if jobs, err := Generate(cfg); err == nil {
		if err := Write(&buf, jobs); err == nil {
			f.Add(buf.String())
		}
	}
	f.Add("[]")
	f.Add("{")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("Read returned invalid job: %v", err)
			}
		}
	})
}
