package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gpu"
)

func TestCatalogMatchesTableII(t *testing.T) {
	want := map[string]struct {
		dataset string
		size    SizeClass
	}{
		"ResNet-50":   {"ImageNet", XLarge},
		"ResNet-18":   {"CIFAR-10", Small},
		"LSTM":        {"Wikitext-2", Large},
		"CycleGAN":    {"monet2photo", Medium},
		"Transformer": {"Multi30K (de-en)", Large},
	}
	if len(Catalog()) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(Catalog()), len(want))
	}
	for _, m := range Catalog() {
		w, ok := want[m.Name]
		if !ok {
			t.Errorf("unexpected catalog model %s", m.Name)
			continue
		}
		if m.Dataset != w.dataset || m.Size != w.size {
			t.Errorf("%s: dataset/size = %s/%v, want %s/%v", m.Name, m.Dataset, m.Size, w.dataset, w.size)
		}
	}
}

func TestResNet50HeterogeneityRatio(t *testing.T) {
	m, ok := ModelByName("ResNet-50")
	if !ok {
		t.Fatal("ResNet-50 missing")
	}
	ratio := m.Throughput[gpu.V100] / m.Throughput[gpu.K80]
	if math.Abs(ratio-10) > 0.5 {
		t.Errorf("ResNet-50 V100/K80 ratio = %v, want ~10 (paper)", ratio)
	}
}

func TestAllModelsFasterOnV100(t *testing.T) {
	for _, m := range Catalog() {
		if m.Throughput[gpu.V100] <= m.Throughput[gpu.P100] ||
			m.Throughput[gpu.P100] <= m.Throughput[gpu.K80] {
			t.Errorf("%s throughputs not ordered V100 > P100 > K80: %v", m.Name, m.Throughput)
		}
		for typ, x := range m.Throughput {
			if x <= 0 {
				t.Errorf("%s has non-positive throughput on %v", m.Name, typ)
			}
		}
	}
}

func TestModelByNameMissing(t *testing.T) {
	if _, ok := ModelByName("BERT"); ok {
		t.Error("ModelByName found a model not in Table II")
	}
}

func TestModelsForClassCoversAllClasses(t *testing.T) {
	for c := SizeClass(0); c < numSizeClasses; c++ {
		if len(ModelsForClass(c)) == 0 {
			t.Errorf("no models for class %v", c)
		}
	}
}

func TestSizeClassStrings(t *testing.T) {
	want := map[SizeClass]string{Small: "S", Medium: "M", Large: "L", XLarge: "XL"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}

func TestGPUHourRanges(t *testing.T) {
	cases := map[SizeClass][2]float64{
		Small: {0.1, 1}, Medium: {1, 10}, Large: {10, 50}, XLarge: {60, 100},
	}
	for c, r := range cases {
		lo, hi := c.GPUHourRange()
		if lo != r[0] || hi != r[1] {
			t.Errorf("%v range = [%v,%v), want [%v,%v)", c, lo, hi, r[0], r[1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 50
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Workers != b[i].Workers ||
			a[i].Epochs != b[i].Epochs || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d differs between same-seed generations", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 50
	a, _ := Generate(cfg)
	cfg.Seed = 2
	b, _ := Generate(cfg)
	same := true
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Epochs != b[i].Epochs {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateStaticArrivals(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 20
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Arrival != 0 {
			t.Errorf("%v: static trace job has nonzero arrival", j)
		}
	}
}

func TestGeneratePoissonArrivalsIncreasing(t *testing.T) {
	cfg := Config{NumJobs: 100, Seed: 3, Pattern: Poisson, Rate: 0.01}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", j.Arrival, prev)
		}
		prev = j.Arrival
	}
	// Mean interarrival should approximate 1/Rate.
	mean := jobs[len(jobs)-1].Arrival / float64(len(jobs))
	if mean < 50 || mean > 200 {
		t.Errorf("mean interarrival = %vs, want ~100s", mean)
	}
}

func TestGenerateDemandMatchesSizeClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 200
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		spec, ok := ModelByName(j.Model)
		if !ok {
			t.Fatalf("job %d references unknown model %s", j.ID, j.Model)
		}
		lo, hi := spec.Size.GPUHourRange()
		gh := j.GPUHours()
		// Epoch rounding can push demand slightly above the sampled
		// value; allow one epoch of slack.
		slack := float64(spec.ItersPerEpoch) / j.Throughput[gpu.V100] * float64(j.Workers) / 3600
		if gh < lo-slack || gh > hi+slack {
			t.Errorf("job %d (%s): %.2f GPU-hours outside class %v range [%v,%v)",
				j.ID, j.Model, gh, spec.Size, lo, hi)
		}
	}
}

func TestGenerateAllJobsValid(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 480
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 480 {
		t.Fatalf("generated %d jobs, want 480", len(jobs))
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("invalid generated job: %v", err)
		}
	}
}

func TestGenerateWorkerDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 2000
	jobs, _ := Generate(cfg)
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.Workers]++
	}
	if counts[1] < counts[2] || counts[2] < counts[8] || counts[8] < counts[16] {
		t.Errorf("worker distribution not skewed small: %v", counts)
	}
	for w := range counts {
		switch w {
		case 1, 2, 4, 8, 16:
		default:
			t.Errorf("unexpected gang size %d", w)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{NumJobs: 0},
		{NumJobs: 5, Pattern: Poisson, Rate: 0},
		{NumJobs: 5, WorkerChoices: []int{1, 2}, WorkerWeights: []float64{1}},
		{NumJobs: 5, WorkerChoices: []int{0}, WorkerWeights: []float64{1}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCustomWorkerChoices(t *testing.T) {
	cfg := Config{NumJobs: 50, Seed: 1, WorkerChoices: []int{3}, WorkerWeights: []float64{1}}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.Workers != 3 {
			t.Fatalf("job has %d workers, want 3", j.Workers)
		}
	}
}

func TestPrototypeWorkload(t *testing.T) {
	jobs := PrototypeWorkload(7)
	if len(jobs) != 10 {
		t.Fatalf("prototype workload has %d jobs, want 10", len(jobs))
	}
	models := map[string]bool{}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("invalid prototype job: %v", err)
		}
		models[j.Model] = true
	}
	if len(models) != 5 {
		t.Errorf("prototype workload uses %d models, want all 5", len(models))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 25
	cfg.Pattern = Poisson
	cfg.Rate = 0.01
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(jobs), len(back))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.Model != b.Model || a.Workers != b.Workers ||
			a.Epochs != b.Epochs || a.ItersPerEpoch != b.ItersPerEpoch ||
			a.Arrival != b.Arrival {
			t.Errorf("job %d mutated in round trip: %+v vs %+v", i, a, b)
		}
		for typ, x := range a.Throughput {
			if b.Throughput[typ] != x {
				t.Errorf("job %d throughput %v mutated", i, typ)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage input accepted")
	}
	if _, err := Read(bytes.NewBufferString(`[{"id":1,"workers":0}]`)); err == nil {
		t.Error("invalid job accepted")
	}
	if _, err := Read(bytes.NewBufferString(`[{"id":1,"workers":1,"epochs":1,"iters_per_epoch":1,"throughput_iters_per_s":{"H100":5}}]`)); err == nil {
		t.Error("unknown GPU type accepted")
	}
}

func TestFromDemandEpochRounding(t *testing.T) {
	spec, _ := ModelByName("ResNet-18")
	j, err := FromDemand(0, spec, 1, 0.0001, 0) // tiny demand
	if err != nil {
		t.Fatal(err)
	}
	if j.Epochs < 1 {
		t.Errorf("epochs = %d, want >= 1", j.Epochs)
	}
}

// Property: FromDemand preserves the sampled GPU-hour demand up to one
// epoch of rounding for any model and gang size.
func TestFromDemandPreservesDemandProperty(t *testing.T) {
	prop := func(modelIdx, wIdx uint8, hoursRaw uint16) bool {
		spec := Catalog()[int(modelIdx)%len(Catalog())]
		workers := []int{1, 2, 4, 8}[wIdx%4]
		hours := 0.1 + float64(hoursRaw%1000)/10 // 0.1 .. 100
		j, err := FromDemand(0, spec, workers, hours, 0)
		if err != nil {
			return false
		}
		slack := float64(spec.ItersPerEpoch) / j.Throughput[gpu.V100] * float64(workers) / 3600
		return math.Abs(j.GPUHours()-hours) <= slack+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDiurnalArrivalsIncreasing(t *testing.T) {
	cfg := Config{NumJobs: 200, Seed: 11, Pattern: Diurnal, Rate: 0.005, Amplitude: 0.8}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, j := range jobs {
		if j.Arrival <= prev {
			t.Fatalf("arrivals not strictly increasing: %v after %v", j.Arrival, prev)
		}
		prev = j.Arrival
	}
}

func TestDiurnalDayNightDensity(t *testing.T) {
	// With a strong amplitude, day-phase (sin > 0) hours must receive
	// more arrivals than night-phase hours.
	cfg := Config{NumJobs: 4000, Seed: 3, Pattern: Diurnal, Rate: 0.02, Amplitude: 0.9}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const day = 86400.0
	dayCount, nightCount := 0, 0
	for _, j := range jobs {
		phase := math.Mod(j.Arrival, day) / day
		if phase < 0.5 { // sin positive in the first half-period
			dayCount++
		} else {
			nightCount++
		}
	}
	if dayCount <= nightCount {
		t.Errorf("diurnal density flat: %d day vs %d night arrivals", dayCount, nightCount)
	}
	ratio := float64(dayCount) / float64(nightCount)
	if ratio < 1.5 {
		t.Errorf("day/night ratio = %.2f, want > 1.5 at amplitude 0.9", ratio)
	}
}

func TestDiurnalZeroAmplitudeMatchesMeanRate(t *testing.T) {
	cfg := Config{NumJobs: 2000, Seed: 5, Pattern: Diurnal, Rate: 0.01, Amplitude: 0}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := jobs[len(jobs)-1].Arrival
	gotRate := float64(len(jobs)) / span
	if math.Abs(gotRate-0.01) > 0.002 {
		t.Errorf("mean rate = %v, want ~0.01", gotRate)
	}
}

func TestDiurnalValidation(t *testing.T) {
	if _, err := Generate(Config{NumJobs: 5, Pattern: Diurnal, Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Generate(Config{NumJobs: 5, Pattern: Diurnal, Rate: 1, Amplitude: 1.5}); err == nil {
		t.Error("amplitude >= 1 accepted")
	}
}

func TestPatternStrings(t *testing.T) {
	if Static.String() != "static" || Poisson.String() != "poisson" || Diurnal.String() != "diurnal" {
		t.Error("pattern strings wrong")
	}
	if Pattern(9).String() == "" {
		t.Error("unknown pattern stringer empty")
	}
}

func TestAnalyzeStaticTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 200
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(jobs)
	if st.Jobs != 200 {
		t.Errorf("Jobs = %d", st.Jobs)
	}
	total := 0
	for _, n := range st.ByClass {
		total += n
	}
	if total != 200 {
		t.Errorf("class counts sum to %d", total)
	}
	if st.TotalGPUHours <= 0 || st.GPUHours.Mean <= 0 {
		t.Error("demand stats empty")
	}
	if st.Span != 0 {
		t.Errorf("static trace span = %v", st.Span)
	}
	out := st.String()
	for _, frag := range []string{"GPU-hours", "classes:", "gang sizes:", "static"} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q:\n%s", frag, out)
		}
	}
}

func TestAnalyzePoissonTrace(t *testing.T) {
	cfg := Config{NumJobs: 100, Seed: 2, Pattern: Poisson, Rate: 0.01}
	jobs, _ := Generate(cfg)
	st := Analyze(jobs)
	if st.Span <= 0 || st.Interarrival.Count != 99 {
		t.Errorf("arrival stats: span=%v count=%d", st.Span, st.Interarrival.Count)
	}
	if math.Abs(st.Interarrival.Mean-100) > 40 {
		t.Errorf("mean interarrival = %v, want ~100", st.Interarrival.Mean)
	}
}

func TestSustainableRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 400
	jobs, _ := Generate(cfg)
	st := Analyze(jobs)
	// ~32 V100-equivalents (20 V100 + 20 P100/2 + 20 K80/10) on the
	// paper cluster; the sustainable rate should land near the ~2
	// jobs/hour the Fig. 8 sweep straddles.
	rate := st.SustainableRatePerHour(32)
	if rate < 0.5 || rate > 4 {
		t.Errorf("sustainable rate = %.2f jobs/h, want ~1-2", rate)
	}
	if (Stats{}).SustainableRatePerHour(32) != 0 {
		t.Error("empty stats rate nonzero")
	}
}

func TestCatalogWithThroughputs(t *testing.T) {
	derived := map[string]map[gpu.Type]float64{
		"LSTM": {gpu.V100: 42, gpu.K80: 7},
	}
	specs := CatalogWithThroughputs(derived)
	if len(specs) != len(Catalog()) {
		t.Fatalf("catalog size changed: %d", len(specs))
	}
	for _, m := range specs {
		if m.Name == "LSTM" {
			if m.Throughput[gpu.V100] != 42 || m.Throughput[gpu.K80] != 7 {
				t.Errorf("derived profile not applied: %v", m.Throughput)
			}
		} else if m.Throughput[gpu.V100] == 42 {
			t.Errorf("%s profile clobbered", m.Name)
		}
	}
	// Mutating the derived map after the call must not affect the specs.
	derived["LSTM"][gpu.V100] = 1
	for _, m := range specs {
		if m.Name == "LSTM" && m.Throughput[gpu.V100] != 42 {
			t.Error("catalog shares caller storage")
		}
	}
}

func TestGenerateWithCatalog(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 40
	jobs, err := GenerateWithCatalog(cfg, Catalog())
	if err != nil {
		t.Fatal(err)
	}
	// Same catalog + same seed must reproduce Generate exactly.
	ref, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if jobs[i].Model != ref[i].Model || jobs[i].Epochs != ref[i].Epochs ||
			jobs[i].Workers != ref[i].Workers {
			t.Fatalf("job %d differs from Generate: %v vs %v", i, jobs[i], ref[i])
		}
	}
}

func TestGenerateWithCatalogMissingClass(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 5
	var onlySmall []ModelSpec
	for _, m := range Catalog() {
		if m.Size == Small {
			onlySmall = append(onlySmall, m)
		}
	}
	if _, err := GenerateWithCatalog(cfg, onlySmall); err == nil {
		t.Error("catalog missing classes accepted")
	}
}
