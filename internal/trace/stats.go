package trace

import (
	"fmt"
	"strings"

	"repro/internal/job"
	"repro/internal/stats"
)

// Stats summarizes a trace the way the paper characterizes the Philly
// workload: size-class mix, gang-size distribution, aggregate demand,
// and the arrival process.
type Stats struct {
	Jobs int
	// ByClass counts jobs per size class (classified by GPU-hours, the
	// paper's bucketing).
	ByClass map[SizeClass]int
	// ByWorkers counts jobs per gang size.
	ByWorkers map[int]int
	// ByModel counts jobs per catalog model.
	ByModel map[string]int
	// GPUHours summarizes per-job demand; TotalGPUHours is the aggregate
	// work (at best-type rates).
	GPUHours      stats.Summary
	TotalGPUHours float64
	// Interarrival summarizes gaps between consecutive arrivals (zero
	// Count for static traces); Span is last arrival minus first.
	Interarrival stats.Summary
	Span         float64
}

// Analyze computes trace statistics.
func Analyze(jobs []*job.Job) Stats {
	st := Stats{
		Jobs:      len(jobs),
		ByClass:   make(map[SizeClass]int),
		ByWorkers: make(map[int]int),
		ByModel:   make(map[string]int),
	}
	var hours, gaps []float64
	prev := -1.0
	for _, j := range jobs {
		gh := j.GPUHours()
		hours = append(hours, gh)
		st.TotalGPUHours += gh
		st.ByClass[classOf(gh)]++
		st.ByWorkers[j.Workers]++
		st.ByModel[j.Model]++
		if prev >= 0 {
			gaps = append(gaps, j.Arrival-prev)
		}
		prev = j.Arrival
	}
	st.GPUHours = stats.Summarize(hours)
	if len(jobs) > 0 {
		st.Span = jobs[len(jobs)-1].Arrival - jobs[0].Arrival
	}
	if st.Span > 0 {
		st.Interarrival = stats.Summarize(gaps)
	}
	return st
}

// SustainableRatePerHour estimates the arrival rate (jobs/hour) a
// cluster of the given V100-equivalent capacity can serve at steady
// state: capacity divided by the mean per-job GPU-hour demand. The
// Fig. 8/9 sweeps should straddle this value for load to actually vary.
func (s Stats) SustainableRatePerHour(v100EquivalentGPUs float64) float64 {
	if s.Jobs == 0 || s.GPUHours.Mean <= 0 {
		return 0
	}
	return v100EquivalentGPUs / s.GPUHours.Mean
}

// String renders the summary as a report.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace: %d jobs, %.0f total GPU-hours (mean %.1f, median %.1f, max %.1f per job)\n",
		s.Jobs, s.TotalGPUHours, s.GPUHours.Mean, s.GPUHours.Median, s.GPUHours.Max)
	fmt.Fprintf(&sb, "classes:")
	for c := SizeClass(0); c < numSizeClasses; c++ {
		fmt.Fprintf(&sb, " %s=%d", c, s.ByClass[c])
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "gang sizes:")
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		if n, ok := s.ByWorkers[w]; ok {
			fmt.Fprintf(&sb, " %dx%d", w, n)
		}
	}
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "models:")
	for _, m := range Catalog() {
		if n, ok := s.ByModel[m.Name]; ok {
			fmt.Fprintf(&sb, " %s=%d", m.Name, n)
		}
	}
	sb.WriteByte('\n')
	if s.Span > 0 {
		fmt.Fprintf(&sb, "arrivals: span %.1fh, mean interarrival %.0fs (rate %.2f jobs/h)\n",
			s.Span/3600, s.Interarrival.Mean, 3600/s.Interarrival.Mean)
	} else {
		sb.WriteString("arrivals: static (all at t=0)\n")
	}
	return sb.String()
}
