package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleRows() []PhillyRow {
	return []PhillyRow{
		{JobID: "app-1", SubmitTime: 0, GPUs: 1, Duration: 1800},    // 0.5 GPUh -> S
		{JobID: "app-2", SubmitTime: 60, GPUs: 2, Duration: 7200},   // 4 GPUh -> M
		{JobID: "app-3", SubmitTime: 120, GPUs: 4, Duration: 18000}, // 20 GPUh -> L
		{JobID: "app-4", SubmitTime: 300, GPUs: 8, Duration: 36000}, // 80 GPUh -> XL
	}
}

func TestPhillyCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePhillyCSV(&buf, sampleRows()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhillyCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("round trip lost rows: %d", len(back))
	}
	for i, r := range sampleRows() {
		if back[i] != r {
			t.Errorf("row %d mutated: %+v vs %+v", i, back[i], r)
		}
	}
}

func TestReadPhillyCSVErrors(t *testing.T) {
	cases := []string{
		"",          // no header
		"a,b,c,d\n", // wrong header
		"job_id,submit_time_s,gpus,duration_s\nx,NaNish,1,10\n", // bad float
		"job_id,submit_time_s,gpus,duration_s\nx,0,zero,10\n",   // bad int
		"job_id,submit_time_s,gpus,duration_s\nx,0,0,10\n",      // zero gpus
		"job_id,submit_time_s,gpus,duration_s\nx,0,1,-5\n",      // negative duration
		"job_id,submit_time_s,gpus,duration_s\nx,-1,1,5\n",      // negative submit
	}
	for i, c := range cases {
		if _, err := ReadPhillyCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestFromPhillyClassAssignment(t *testing.T) {
	jobs, err := FromPhilly(sampleRows(), 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	wantClass := []SizeClass{Small, Medium, Large, XLarge}
	for i, j := range jobs {
		spec, ok := ModelByName(j.Model)
		if !ok {
			t.Fatalf("job %d has unknown model %s", i, j.Model)
		}
		if spec.Size != wantClass[i] {
			t.Errorf("row %d mapped to class %v, want %v", i, spec.Size, wantClass[i])
		}
		if j.Arrival != sampleRows()[i].SubmitTime {
			t.Errorf("row %d arrival %v, want %v", i, j.Arrival, sampleRows()[i].SubmitTime)
		}
		if j.Workers != sampleRows()[i].GPUs {
			t.Errorf("row %d workers %d, want %d", i, j.Workers, sampleRows()[i].GPUs)
		}
	}
}

func TestFromPhillyPreservesGPUHours(t *testing.T) {
	rows := sampleRows()
	jobs, err := FromPhilly(rows, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want := rows[i].Duration * float64(rows[i].GPUs) / 3600
		spec, _ := ModelByName(j.Model)
		_, best, _ := j.BestType()
		slack := float64(spec.ItersPerEpoch) / best * float64(j.Workers) / 3600
		if math.Abs(j.GPUHours()-want) > slack+1e-9 {
			t.Errorf("row %d GPU-hours %.3f, want %.3f (slack %.3f)", i, j.GPUHours(), want, slack)
		}
	}
}

func TestFromPhillyClampsWorkers(t *testing.T) {
	rows := []PhillyRow{{JobID: "big", SubmitTime: 0, GPUs: 128, Duration: 3600}}
	jobs, err := FromPhilly(rows, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Workers != 16 {
		t.Errorf("workers = %d, want clamped 16", jobs[0].Workers)
	}
	if _, err := FromPhilly(rows, 1, 0); err == nil {
		t.Error("zero maxWorkers accepted")
	}
}

func TestFromPhillyDeterministic(t *testing.T) {
	a, _ := FromPhilly(sampleRows(), 5, 16)
	b, _ := FromPhilly(sampleRows(), 5, 16)
	for i := range a {
		if a[i].Model != b[i].Model || a[i].Epochs != b[i].Epochs {
			t.Fatal("same seed produced different conversions")
		}
	}
}

func TestClassOfBoundaries(t *testing.T) {
	cases := []struct {
		hours float64
		want  SizeClass
	}{
		{0.5, Small}, {1, Medium}, {9.99, Medium}, {10, Large},
		{49.9, Large}, {55, XLarge}, {500, XLarge},
	}
	for _, c := range cases {
		if got := classOf(c.hours); got != c.want {
			t.Errorf("classOf(%v) = %v, want %v", c.hours, got, c.want)
		}
	}
}

func TestToPhillyExport(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumJobs = 10
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := ToPhilly(jobs)
	if len(rows) != 10 {
		t.Fatalf("exported %d rows", len(rows))
	}
	for i, r := range rows {
		if r.GPUs != jobs[i].Workers || r.Duration <= 0 {
			t.Errorf("row %d malformed: %+v", i, r)
		}
	}
	// And the export parses back through the importer.
	var buf bytes.Buffer
	if err := WritePhillyCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhillyCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Fatal("export/import mismatch")
	}
	if _, err := FromPhilly(back, 1, 16); err != nil {
		t.Fatalf("re-imported trace rejected: %v", err)
	}
}
