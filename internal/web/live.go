package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NewLiveServer serves the dashboard plus the live control API for a
// running scheduler service: the Provider-backed pages (/, /jobs,
// /api/summary, SVGs) render the service's latest snapshot, and the
// /api/jobs endpoints submit, cancel, and query jobs against the
// engine through the service's bounded admission queue.
func NewLiveServer(svc *service.Service) *Server {
	s := NewServerFrom(svc)
	live := &liveAPI{svc: svc}
	s.mux.HandleFunc("GET /api/snapshot", live.handleSnapshot)
	s.mux.HandleFunc("POST /api/jobs", live.handleSubmit)
	s.mux.HandleFunc("GET /api/jobs/{id}", live.handleQuery)
	s.mux.HandleFunc("DELETE /api/jobs/{id}", live.handleCancel)
	return s
}

// liveAPI holds the mutating endpoints' shared state.
type liveAPI struct {
	svc *service.Service
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing useful left to do.
		_ = err
	}
}

// writeError maps a service error to an HTTP status: backpressure
// becomes 429 with a Retry-After hint, shutdown 503, anything else
// (validation, duplicate ID, unknown job) 400/404/409 per endpoint.
func writeError(w http.ResponseWriter, err error, fallback int) {
	var busy *service.BusyError
	var dead *service.DeadError
	switch {
	case errors.As(err, &busy):
		secs := int(busy.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	case errors.As(err, &dead):
		// The engine loop missed the verdict deadline: the request may
		// or may not have been applied, so the client should retry with
		// an idempotency key.
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case errors.Is(err, service.ErrStopped):
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, fallback, map[string]string{"error": err.Error()})
	}
}

// snapshotResponse is the /api/snapshot body: the engine snapshot plus
// the service's admission counters.
type snapshotResponse struct {
	*sim.Snapshot
	Stats service.Stats `json:"stats"`
}

func (a *liveAPI) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, snapshotResponse{
		Snapshot: a.svc.Snapshot(),
		Stats:    a.svc.Stats(),
	})
}

// submitSpec is the POST /api/jobs body. The job is built from the
// workload catalog: Model selects the Table II entry, GPUHours the
// aggregate demand, Workers the gang size. ID is optional; omitted IDs
// are assigned from the service's range. Key is an optional
// idempotency key: retrying a submission with the same key — after a
// timeout, a 5xx, or a scheduler restart — returns the original job's
// ID instead of admitting a duplicate.
type submitSpec struct {
	ID       *int    `json:"id"`
	Key      string  `json:"key"`
	Model    string  `json:"model"`
	Workers  int     `json:"workers"`
	GPUHours float64 `json:"gpu_hours"`
}

// lookupModel finds a catalog entry by name.
func lookupModel(name string) (trace.ModelSpec, bool) {
	for _, spec := range trace.Catalog() {
		if spec.Name == name {
			return spec, true
		}
	}
	return trace.ModelSpec{}, false
}

func (a *liveAPI) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec submitSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	model, ok := lookupModel(spec.Model)
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unknown model %q (see the workload catalog)", spec.Model)})
		return
	}
	id := a.svc.NextID()
	if spec.ID != nil {
		id = *spec.ID
	}
	// Arrival 0 is in the engine's past; it clamps to the current
	// simulated time, i.e. "arrives now".
	j, err := trace.FromDemand(id, model, spec.Workers, spec.GPUHours, 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if spec.Key != "" {
		gotID, deduped, err := a.svc.SubmitKeyed(spec.Key, j)
		if err != nil {
			writeError(w, err, http.StatusConflict)
			return
		}
		status := http.StatusAccepted
		if deduped {
			// The key was already accepted (possibly before a crash);
			// report the original admission rather than a new one.
			status = http.StatusOK
		}
		writeJSON(w, status, map[string]any{"id": gotID, "name": j.Name, "deduped": deduped})
		return
	}
	if err := a.svc.Submit(j); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "name": j.Name})
}

// queryResponse is the GET /api/jobs/{id} body: the lifecycle phase
// plus whichever detail exists — the live JobSnapshot for admitted
// jobs, the final JobResult for finished ones.
type queryResponse struct {
	ID     int                `json:"id"`
	Phase  string             `json:"phase"`
	Job    *sim.JobSnapshot   `json:"job,omitempty"`
	Result *metrics.JobResult `json:"result,omitempty"`
}

func jobID(r *http.Request) (int, error) {
	return strconv.Atoi(r.PathValue("id"))
}

func (a *liveAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id: " + err.Error()})
		return
	}
	snap := a.svc.Snapshot()
	phase, ok := snap.Phases[id]
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown job %d", id)})
		return
	}
	resp := queryResponse{ID: id, Phase: phase}
	for i := range snap.Active {
		if snap.Active[i].ID == id {
			resp.Job = &snap.Active[i]
			break
		}
	}
	for i := range snap.Report.Jobs {
		if snap.Report.Jobs[i].ID == id {
			resp.Result = &snap.Report.Jobs[i]
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (a *liveAPI) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id: " + err.Error()})
		return
	}
	if err := a.svc.Cancel(id); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelled": true})
}
