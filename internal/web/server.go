package web

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// Provider supplies the named reports the dashboard renders. A
// finished experiments.Comparison satisfies it through NewServer's
// adapter; a live scheduler service satisfies it with snapshot-backed
// reports, so the same handlers serve both a static comparison and a
// running engine.
type Provider interface {
	// Order lists the scheduler names in display order.
	Order() []string
	// Report returns the report for one scheduler; ok is false for
	// unknown names. The returned report must stay immutable for as
	// long as the caller may read it (live providers return deep-copied
	// snapshots).
	Report(name string) (*metrics.Report, bool)
}

// Server renders a scheduling comparison — finished or live — as a web
// dashboard.
type Server struct {
	src Provider
	mux *http.ServeMux
}

// comparisonProvider adapts a finished comparison to the Provider
// interface.
type comparisonProvider struct{ cmp *experiments.Comparison }

func (p comparisonProvider) Order() []string { return p.cmp.Order }

func (p comparisonProvider) Report(name string) (*metrics.Report, bool) {
	rep, ok := p.cmp.Reports[name]
	return rep, ok
}

// NewServer wraps a comparison. The comparison must not be mutated
// while the server runs.
func NewServer(cmp *experiments.Comparison) *Server {
	return NewServerFrom(comparisonProvider{cmp: cmp})
}

// NewServerFrom builds the dashboard over any report provider.
func NewServerFrom(src Provider) *Server {
	s := &Server{src: src, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/cdf.svg", s.handleCDF)
	s.mux.HandleFunc("/occupancy.svg", s.handleOccupancy)
	s.mux.HandleFunc("/utilization.svg", s.handleUtilization)
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/summary", s.handleSummary)
	return s
}

// Handler returns the dashboard's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

var indexTmpl = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>hadar-go dashboard</title>
<style>
body { font-family: sans-serif; margin: 24px; color: #222; }
table { border-collapse: collapse; margin: 12px 0 24px; }
th, td { border: 1px solid #ccc; padding: 6px 12px; text-align: right; }
th:first-child, td:first-child { text-align: left; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
a { color: #1f77b4; }
</style></head><body>
<h1>Hadar reproduction — scheduling comparison</h1>
<table>
<tr><th>scheduler</th><th>avg JCT (h)</th><th>median JCT (h)</th>
<th>makespan (h)</th><th>utilization</th><th>avg FTF</th>
<th>queue delay (h)</th><th>realloc %</th><th></th></tr>
{{range .Rows}}
<tr><td>{{.Name}}</td><td>{{printf "%.2f" .AvgJCT}}</td>
<td>{{printf "%.2f" .MedianJCT}}</td><td>{{printf "%.2f" .Makespan}}</td>
<td>{{printf "%.1f%%" .Utilization}}</td><td>{{printf "%.2f" .FTF}}</td>
<td>{{printf "%.2f" .Queue}}</td><td>{{printf "%.1f%%" .Realloc}}</td>
<td><a href="/jobs?scheduler={{.Name}}">jobs</a></td></tr>
{{end}}
</table>
{{if .FaultRows}}
<h2>Fault tolerance</h2>
<table>
<tr><th>scheduler</th><th>RPC retries</th><th>timeouts</th><th>node down</th>
<th>node up</th><th>recoveries</th><th>lost iterations</th></tr>
{{range .FaultRows}}
<tr><td>{{.Name}}</td><td>{{.F.RPCRetries}}</td><td>{{.F.RPCTimeouts}}</td>
<td>{{.F.NodeDown}}</td><td>{{.F.NodeUp}}</td><td>{{.F.Recoveries}}</td>
<td>{{printf "%.0f" .F.LostIterations}}</td></tr>
{{end}}
</table>
{{end}}
<h2>Completion CDF</h2><img src="/cdf.svg" alt="completion CDF">
<h2>GPU utilization</h2><img src="/utilization.svg" alt="utilization">
<h2>Cluster occupancy ({{.First}})</h2>
<img src="/occupancy.svg?scheduler={{.First}}" alt="occupancy">
<p><a href="/api/summary">JSON summary</a></p>
</body></html>`))

type indexRow struct {
	Name        string
	AvgJCT      float64
	MedianJCT   float64
	Makespan    float64
	Utilization float64
	FTF         float64
	Queue       float64
	Realloc     float64
}

// faultRow is one scheduler's fault-tolerance counters; the section
// renders only for runs that actually saw faults.
type faultRow struct {
	Name string
	F    metrics.FaultStats
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Rows      []indexRow
		FaultRows []faultRow
		First     string
	}{}
	for _, name := range s.src.Order() {
		rep, ok := s.src.Report(name)
		if !ok {
			continue
		}
		if rep.Faults.Any() {
			data.FaultRows = append(data.FaultRows, faultRow{Name: name, F: rep.Faults})
		}
		data.Rows = append(data.Rows, indexRow{
			Name:        name,
			AvgJCT:      rep.AvgJCT() / 3600,
			MedianJCT:   rep.MedianJCT() / 3600,
			Makespan:    rep.Makespan / 3600,
			Utilization: 100 * rep.Utilization(),
			FTF:         rep.AvgFTF(),
			Queue:       rep.AvgQueueDelay() / 3600,
			Realloc:     100 * rep.ReallocationFraction(),
		})
	}
	if order := s.src.Order(); len(order) > 0 {
		data.First = order[0]
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleCDF(w http.ResponseWriter, r *http.Request) {
	var series []svgSeries
	for _, name := range s.src.Order() {
		rep, ok := s.src.Report(name)
		if !ok {
			continue
		}
		sv := svgSeries{Name: name, Step: true}
		sv.X = append(sv.X, 0)
		sv.Y = append(sv.Y, 0)
		for _, p := range rep.CompletionCDF() {
			sv.X = append(sv.X, p.X/3600)
			sv.Y = append(sv.Y, p.Fraction)
		}
		series = append(series, sv)
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, lineSVG("fraction of jobs completed over time", "hours", "fraction", 760, 380, series))
}

func (s *Server) report(r *http.Request) (*metrics.Report, string, bool) {
	name := r.URL.Query().Get("scheduler")
	if name == "" {
		if order := s.src.Order(); len(order) > 0 {
			name = order[0]
		}
	}
	rep, ok := s.src.Report(name)
	return rep, name, ok
}

func (s *Server) handleOccupancy(w http.ResponseWriter, r *http.Request) {
	rep, name, ok := s.report(r)
	if !ok {
		http.Error(w, "unknown scheduler", http.StatusNotFound)
		return
	}
	sv := svgSeries{Name: name}
	for i, held := range rep.RoundHeld {
		t := 0.0
		if i < len(rep.RoundStarts) {
			t = rep.RoundStarts[i]
		}
		sv.X = append(sv.X, t/3600)
		sv.Y = append(sv.Y, float64(held))
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, lineSVG("held workers per round — "+name, "hours", "workers", 760, 300, []svgSeries{sv}))
}

func (s *Server) handleUtilization(w http.ResponseWriter, r *http.Request) {
	var labels []string
	var values []float64
	for _, name := range s.src.Order() {
		rep, ok := s.src.Report(name)
		if !ok {
			continue
		}
		labels = append(labels, name)
		values = append(values, 100*rep.Utilization())
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, barSVG("GPU utilization", "%", 560, labels, values))
}

var jobsTmpl = template.Must(template.New("jobs").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} jobs</title>
<style>
body { font-family: sans-serif; margin: 24px; color: #222; }
table { border-collapse: collapse; }
th, td { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
</style></head><body>
<h1>{{.Name}}: {{len .Jobs}} jobs</h1>
<p><a href="/">back</a></p>
<table>
<tr><th>id</th><th>model</th><th>W</th><th>arrival (h)</th><th>start (h)</th>
<th>finish (h)</th><th>JCT (h)</th><th>FTF</th><th>reallocs</th></tr>
{{range .Jobs}}
<tr><td>{{.ID}}</td><td>{{.Model}}</td><td>{{.Workers}}</td>
<td>{{printf "%.2f" .ArrivalH}}</td><td>{{printf "%.2f" .StartH}}</td>
<td>{{printf "%.2f" .FinishH}}</td><td>{{printf "%.2f" .JCTH}}</td>
<td>{{printf "%.2f" .FTF}}</td><td>{{.Reallocs}}</td></tr>
{{end}}
</table></body></html>`))

type jobRow struct {
	ID       int
	Model    string
	Workers  int
	ArrivalH float64
	StartH   float64
	FinishH  float64
	JCTH     float64
	FTF      float64
	Reallocs int
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	rep, name, ok := s.report(r)
	if !ok {
		http.Error(w, "unknown scheduler", http.StatusNotFound)
		return
	}
	data := struct {
		Name string
		Jobs []jobRow
	}{Name: name}
	for _, j := range rep.Jobs {
		data.Jobs = append(data.Jobs, jobRow{
			ID: j.ID, Model: j.Model, Workers: j.Workers,
			ArrivalH: j.Arrival / 3600, StartH: j.Start / 3600,
			FinishH: j.Finish / 3600, JCTH: j.JCT() / 3600,
			FTF: j.FTF(), Reallocs: j.Reallocations,
		})
	}
	sort.Slice(data.Jobs, func(a, b int) bool { return data.Jobs[a].ID < data.Jobs[b].ID })
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := jobsTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// summaryEntry is one scheduler's JSON summary.
type summaryEntry struct {
	Scheduler     string  `json:"scheduler"`
	AvgJCTSec     float64 `json:"avg_jct_s"`
	MedianJCTSec  float64 `json:"median_jct_s"`
	MakespanSec   float64 `json:"makespan_s"`
	Utilization   float64 `json:"utilization"`
	Occupancy     float64 `json:"occupancy"`
	AvgFTF        float64 `json:"avg_ftf"`
	QueueDelaySec float64 `json:"avg_queue_delay_s"`
	Jobs          int     `json:"jobs"`

	Faults *metrics.FaultStats `json:"faults,omitempty"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	var out []summaryEntry
	for _, name := range s.src.Order() {
		rep, ok := s.src.Report(name)
		if !ok {
			continue
		}
		e := summaryEntry{
			Scheduler: name, AvgJCTSec: rep.AvgJCT(), MedianJCTSec: rep.MedianJCT(),
			MakespanSec: rep.Makespan, Utilization: rep.Utilization(),
			Occupancy: rep.Occupancy(), AvgFTF: rep.AvgFTF(),
			QueueDelaySec: rep.AvgQueueDelay(), Jobs: len(rep.Jobs),
		}
		if rep.Faults.Any() {
			f := rep.Faults
			e.Faults = &f
		}
		out = append(out, e)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
