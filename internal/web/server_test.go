package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func testComparison() *experiments.Comparison {
	mk := func(name string, jct float64) *metrics.Report {
		return &metrics.Report{
			Scheduler: name,
			Jobs: []metrics.JobResult{
				{ID: 0, Model: "LSTM", Workers: 2, Arrival: 0, Start: 360,
					Finish: jct, IsolatedDuration: jct / 2, TotalIters: 100},
				{ID: 1, Model: "ResNet-50", Workers: 1, Arrival: 100, Start: 720,
					Finish: jct * 1.5, IsolatedDuration: jct, TotalIters: 200,
					Reallocations: 2},
			},
			Makespan:       jct * 1.5,
			BusyGPUSeconds: 900,
			HeldGPUSeconds: 1000,
			TotalGPUs:      6,
			RoundHeld:      []int{6, 4, 2},
			RoundStarts:    []float64{0, 360, 720},
		}
	}
	return &experiments.Comparison{
		Order: []string{"hadar", "gavel"},
		Reports: map[string]*metrics.Report{
			"hadar": mk("hadar", 4000),
			"gavel": mk("gavel", 6000),
		},
	}
}

func get(t *testing.T, srv *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestIndexPage(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(ctype, "text/html") {
		t.Errorf("content type = %q", ctype)
	}
	for _, frag := range []string{"hadar", "gavel", "avg JCT", "/cdf.svg", "/jobs?scheduler=hadar"} {
		if !strings.Contains(body, frag) {
			t.Errorf("index missing %q", frag)
		}
	}
}

func TestIndex404OnUnknownPath(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, _, _ := get(t, srv, "/nope")
	if code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", code)
	}
}

func TestCDFSVG(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/cdf.svg")
	if code != http.StatusOK || !strings.Contains(ctype, "svg") {
		t.Fatalf("status=%d ctype=%q", code, ctype)
	}
	if !strings.Contains(body, "<svg") || !strings.Contains(body, "polyline") {
		t.Errorf("SVG body malformed: %.120s", body)
	}
	if strings.Count(body, "polyline") < 2 {
		t.Errorf("expected one polyline per scheduler")
	}
}

func TestOccupancySVG(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/occupancy.svg?scheduler=gavel")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "gavel") {
		t.Error("occupancy SVG missing scheduler name")
	}
	code, _, _ = get(t, srv, "/occupancy.svg?scheduler=unknown")
	if code != http.StatusNotFound {
		t.Errorf("unknown scheduler status = %d, want 404", code)
	}
}

func TestUtilizationSVG(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/utilization.svg")
	if code != http.StatusOK || !strings.Contains(body, "rect") {
		t.Errorf("utilization SVG malformed (status %d)", code)
	}
}

func TestJobsPage(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, _ := get(t, srv, "/jobs?scheduler=hadar")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, frag := range []string{"LSTM", "ResNet-50", "2 jobs"} {
		if !strings.Contains(body, frag) {
			t.Errorf("jobs page missing %q", frag)
		}
	}
	// Default scheduler when none specified.
	code, body, _ = get(t, srv, "/jobs")
	if code != http.StatusOK || !strings.Contains(body, "hadar") {
		t.Error("default scheduler not served")
	}
}

func TestSummaryJSON(t *testing.T) {
	srv := httptest.NewServer(NewServer(testComparison()).Handler())
	defer srv.Close()
	code, body, ctype := get(t, srv, "/api/summary")
	if code != http.StatusOK || !strings.Contains(ctype, "json") {
		t.Fatalf("status=%d ctype=%q", code, ctype)
	}
	var entries []map[string]interface{}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("summary not JSON: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0]["scheduler"] != "hadar" {
		t.Errorf("first entry = %v", entries[0]["scheduler"])
	}
	if entries[0]["jobs"].(float64) != 2 {
		t.Errorf("job count = %v", entries[0]["jobs"])
	}
}

func TestSVGHelpersDegenerate(t *testing.T) {
	out := lineSVG("t", "x", "y", 400, 200, nil)
	if !strings.Contains(out, "no data") {
		t.Error("empty line SVG missing placeholder")
	}
	out = barSVG("t", "%", 400, nil, nil)
	if !strings.Contains(out, "no data") {
		t.Error("empty bar SVG missing placeholder")
	}
	// Constant series must not divide by zero.
	out = lineSVG("t", "x", "y", 400, 200, []svgSeries{
		{Name: "flat", X: []float64{1, 2}, Y: []float64{5, 5}},
	})
	if !strings.Contains(out, "polyline") {
		t.Error("constant series dropped")
	}
}

func TestSVGEscapesTitles(t *testing.T) {
	out := lineSVG(`<script>"x"</script>`, "x", "y", 300, 150, []svgSeries{
		{Name: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}},
	})
	if strings.Contains(out, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b") {
		t.Error("series name not escaped")
	}
}
