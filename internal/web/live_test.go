package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/sim"
)

func newLiveFixture(t *testing.T) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(experiments.SimCluster(), policy.New(policy.SRTF, true), service.Options{
		Sim: sim.ValidatedOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(NewLiveServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func do(t *testing.T, method, url string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestLiveSubmitQueryCancel(t *testing.T) {
	svc, ts := newLiveFixture(t)

	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "ResNet-50", "workers": 2, "gpu_hours": 50000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))
	if id < 1<<20 {
		t.Errorf("auto-assigned ID %d not in the service range", id)
	}

	// The engine admits the job at the next boundary; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Phases[id] != "active" {
		if time.Now().After(deadline) {
			t.Fatalf("job %d never became active: phases %v", id, svc.Snapshot().Phases)
		}
		time.Sleep(time.Millisecond)
	}

	resp, out = do(t, http.MethodGet, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["phase"] != "active" {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	if out["job"] == nil {
		t.Error("active job query missing live detail")
	}

	resp, out = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["cancelled"] != true {
		t.Fatalf("cancel status = %d, body %v", resp.StatusCode, out)
	}
	// Double cancel is a client error.
	resp, _ = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}
}

func TestLiveSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newLiveFixture(t)
	for _, body := range []string{
		`{"model": "NoSuchNet", "workers": 1, "gpu_hours": 1}`,
		`{"model": "ResNet-50", "workers": 0, "gpu_hours": 1}`,
		`not json`,
	} {
		resp, out := postJSON(t, ts.URL+"/api/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q status = %d, body %v; want 400", body, resp.StatusCode, out)
		}
	}
	resp, _ := do(t, http.MethodGet, ts.URL+"/api/jobs/999999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job query status = %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/api/jobs/notanumber")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status = %d, want 400", resp.StatusCode)
	}
}

func TestLiveSnapshotAndSummary(t *testing.T) {
	svc, ts := newLiveFixture(t)
	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"id": 7, "model": "LSTM", "workers": 1, "gpu_hours": 0.05}`)
	if resp.StatusCode != http.StatusAccepted || out["id"].(float64) != 7 {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job 7 never completed")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out = do(t, http.MethodGet, ts.URL+"/api/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	if out["completed"].(float64) != 1 {
		t.Errorf("snapshot completed = %v, want 1", out["completed"])
	}
	stats, ok := out["stats"].(map[string]any)
	if !ok || stats["accepted"].(float64) != 1 {
		t.Errorf("snapshot stats = %v, want accepted=1", out["stats"])
	}

	// The Provider-backed summary endpoint serves the live report.
	res, err := http.Get(ts.URL + "/api/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var summary []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if len(summary) != 1 || summary[0]["jobs"].(float64) != 1 {
		t.Errorf("live summary = %v, want one scheduler with one job", summary)
	}

	// The HTML dashboard renders from the same provider.
	res, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("live index status = %d", res.StatusCode)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }
