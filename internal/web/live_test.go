package web

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/sim"
)

func newLiveFixture(t *testing.T) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.New(experiments.SimCluster(), policy.New(policy.SRTF, true), service.Options{
		Sim: sim.ValidatedOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(NewLiveServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})
	return svc, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func do(t *testing.T, method, url string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestLiveSubmitQueryCancel(t *testing.T) {
	svc, ts := newLiveFixture(t)

	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "ResNet-50", "workers": 2, "gpu_hours": 50000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))
	if id < 1<<20 {
		t.Errorf("auto-assigned ID %d not in the service range", id)
	}

	// The engine admits the job at the next boundary; wait for it.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Phases[id] != "active" {
		if time.Now().After(deadline) {
			t.Fatalf("job %d never became active: phases %v", id, svc.Snapshot().Phases)
		}
		time.Sleep(time.Millisecond)
	}

	resp, out = do(t, http.MethodGet, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["phase"] != "active" {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	if out["job"] == nil {
		t.Error("active job query missing live detail")
	}

	resp, out = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["cancelled"] != true {
		t.Fatalf("cancel status = %d, body %v", resp.StatusCode, out)
	}
	// Double cancel is a client error.
	resp, _ = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}
}

func TestLiveSubmitRejectsBadSpecs(t *testing.T) {
	_, ts := newLiveFixture(t)
	for _, body := range []string{
		`{"model": "NoSuchNet", "workers": 1, "gpu_hours": 1}`,
		`{"model": "ResNet-50", "workers": 0, "gpu_hours": 1}`,
		`not json`,
	} {
		resp, out := postJSON(t, ts.URL+"/api/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q status = %d, body %v; want 400", body, resp.StatusCode, out)
		}
	}
	resp, _ := do(t, http.MethodGet, ts.URL+"/api/jobs/999999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job query status = %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, ts.URL+"/api/jobs/notanumber")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed id status = %d, want 400", resp.StatusCode)
	}
}

func TestLiveSnapshotAndSummary(t *testing.T) {
	svc, ts := newLiveFixture(t)
	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"id": 7, "model": "LSTM", "workers": 1, "gpu_hours": 0.05}`)
	if resp.StatusCode != http.StatusAccepted || out["id"].(float64) != 7 {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Snapshot().Completed < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job 7 never completed")
		}
		time.Sleep(time.Millisecond)
	}

	resp, out = do(t, http.MethodGet, ts.URL+"/api/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	if out["completed"].(float64) != 1 {
		t.Errorf("snapshot completed = %v, want 1", out["completed"])
	}
	stats, ok := out["stats"].(map[string]any)
	if !ok || stats["accepted"].(float64) != 1 {
		t.Errorf("snapshot stats = %v, want accepted=1", out["stats"])
	}

	// The Provider-backed summary endpoint serves the live report.
	res, err := http.Get(ts.URL + "/api/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var summary []map[string]any
	if err := json.NewDecoder(res.Body).Decode(&summary); err != nil {
		t.Fatal(err)
	}
	if len(summary) != 1 || summary[0]["jobs"].(float64) != 1 {
		t.Errorf("live summary = %v, want one scheduler with one job", summary)
	}

	// The HTML dashboard renders from the same provider.
	res, err = http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Errorf("live index status = %d", res.StatusCode)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// TestLiveSubmitIdempotencyKey: posting the same key twice admits one
// job and answers the retry with the original ID.
func TestLiveSubmitIdempotencyKey(t *testing.T) {
	svc, ts := newLiveFixture(t)
	body := `{"key": "retry-me", "model": "ResNet-50", "workers": 1, "gpu_hours": 50000}`

	resp, out := postJSON(t, ts.URL+"/api/jobs", body)
	if resp.StatusCode != http.StatusAccepted || out["deduped"] != false {
		t.Fatalf("first keyed submit status = %d, body %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))

	resp, out = postJSON(t, ts.URL+"/api/jobs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried keyed submit status = %d, want 200; body %v", resp.StatusCode, out)
	}
	if out["deduped"] != true || int(out["id"].(float64)) != id {
		t.Errorf("retry body = %v, want deduped=true id=%d", out, id)
	}
	if got := svc.Stats(); got.Accepted != 1 || got.Deduped != 1 {
		t.Errorf("stats = %+v, want 1 accepted + 1 deduped", got)
	}
}

// TestLiveBusyMapsTo429WithRetryAfter fills the admission queue of an
// unstarted service and checks backpressure surfaces as HTTP 429 with
// a parseable Retry-After header.
func TestLiveBusyMapsTo429WithRetryAfter(t *testing.T) {
	svc, err := service.New(experiments.SimCluster(), policy.New(policy.SRTF, true), service.Options{
		Sim:            sim.ValidatedOptions(),
		QueueDepth:     1,
		RetryAfter:     3 * time.Second,
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewLiveServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})

	// The service is never started, so the first submit occupies the
	// queue's only slot, times out its verdict wait (503), and stays
	// parked in the channel. The next submit then overflows.
	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "LSTM", "workers": 1, "gpu_hours": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-filling submit status = %d, body %v; want 503", resp.StatusCode, out)
	}
	resp, out = postJSON(t, ts.URL+"/api/jobs", `{"model": "LSTM", "workers": 1, "gpu_hours": 1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit status = %d, body %v; want 429", resp.StatusCode, out)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", ra)
	}
	if secs != 3 {
		t.Errorf("Retry-After = %d, want the service's 3s hint", secs)
	}
}

// TestLiveDeadVerdictMapsTo503: a verdict timeout (wedged engine loop)
// is a retriable server-side failure, not a client error.
func TestLiveDeadVerdictMapsTo503(t *testing.T) {
	svc, err := service.New(experiments.SimCluster(), policy.New(policy.SRTF, true), service.Options{
		Sim:            sim.ValidatedOptions(),
		RequestTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewLiveServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})
	// Never started: the submit parks until RequestTimeout expires.
	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "LSTM", "workers": 1, "gpu_hours": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead verdict status = %d, body %v; want 503", resp.StatusCode, out)
	}
}
