package web

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
)

// NewFedServer serves the dashboard plus the live control API for a
// federated scheduler service: the Provider-backed pages render one
// report per member, and the /api endpoints submit, cancel, and query
// jobs through the federation's front door — the router picks the
// owning member, and queries resolve against the merged FedSnapshot.
func NewFedServer(svc *service.FedService) *Server {
	s := NewServerFrom(svc)
	api := &fedAPI{svc: svc}
	s.mux.HandleFunc("GET /api/snapshot", api.handleSnapshot)
	s.mux.HandleFunc("POST /api/jobs", api.handleSubmit)
	s.mux.HandleFunc("GET /api/jobs/{id}", api.handleQuery)
	s.mux.HandleFunc("DELETE /api/jobs/{id}", api.handleCancel)
	return s
}

// fedAPI holds the federated mutating endpoints' shared state.
type fedAPI struct {
	svc *service.FedService
}

// fedSnapshotResponse is the federated /api/snapshot body: the merged
// federation snapshot plus the front door's admission counters.
type fedSnapshotResponse struct {
	*federation.FedSnapshot
	Stats service.Stats `json:"stats"`
}

func (a *fedAPI) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, fedSnapshotResponse{
		FedSnapshot: a.svc.Snapshot(),
		Stats:       a.svc.Stats(),
	})
}

func (a *fedAPI) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec submitSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	model, ok := lookupModel(spec.Model)
	if !ok {
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("unknown model %q (see the workload catalog)", spec.Model)})
		return
	}
	id := a.svc.NextID()
	if spec.ID != nil {
		id = *spec.ID
	}
	j, err := trace.FromDemand(id, model, spec.Workers, spec.GPUHours, 0)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if spec.Key != "" {
		gotID, deduped, err := a.svc.SubmitKeyed(spec.Key, j)
		if err != nil {
			writeError(w, err, http.StatusConflict)
			return
		}
		status := http.StatusAccepted
		if deduped {
			status = http.StatusOK
		}
		writeJSON(w, status, map[string]any{"id": gotID, "name": j.Name, "deduped": deduped})
		return
	}
	if err := a.svc.Submit(j); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	// Report which member the router placed the job on: useful for
	// debugging routing policies from the command line.
	member := ""
	if m, _, _, _, ok := a.svc.Snapshot().FindJob(id); ok {
		member = m
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "name": j.Name, "member": member})
}

// fedQueryResponse is the federated GET /api/jobs/{id} body: the
// owning member joins the usual phase and detail fields.
type fedQueryResponse struct {
	ID     int                `json:"id"`
	Member string             `json:"member"`
	Phase  string             `json:"phase"`
	Job    *sim.JobSnapshot   `json:"job,omitempty"`
	Result *metrics.JobResult `json:"result,omitempty"`
}

func (a *fedAPI) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id: " + err.Error()})
		return
	}
	member, phase, js, res, ok := a.svc.Snapshot().FindJob(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("unknown job %d", id)})
		return
	}
	writeJSON(w, http.StatusOK, fedQueryResponse{ID: id, Member: member, Phase: phase, Job: js, Result: res})
}

func (a *fedAPI) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := jobID(r)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad job id: " + err.Error()})
		return
	}
	if err := a.svc.Cancel(id); err != nil {
		writeError(w, err, http.StatusConflict)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "cancelled": true})
}
