// Package web serves an HTML dashboard over a finished scheduling
// comparison: summary tables, per-job listings, completion-CDF and
// cluster-occupancy charts rendered as inline SVG, plus a JSON API.
// Everything is stdlib (net/http, html/template) so the dashboard works
// in the offline reproduction environment.
package web

import (
	"fmt"
	"math"
	"strings"
)

// palette holds distinguishable stroke colors for up to eight series.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
	"#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
}

// svgSeries is one polyline of a chart.
type svgSeries struct {
	Name string
	X    []float64
	Y    []float64
	// Step draws a right-continuous step function (for CDFs).
	Step bool
}

// lineSVG renders series on shared axes as a standalone SVG document.
func lineSVG(title, xLabel, yLabel string, width, height int, series []svgSeries) string {
	const margin = 55.0
	w, h := float64(width), float64(height)
	plotW, plotH := w-2*margin, h-2*margin

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			xmin, xmax = math.Min(xmin, s.X[i]), math.Max(xmax, s.X[i])
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			any = true
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="%g" y="20" font-size="14" font-family="sans-serif">%s</text>`, margin, escape(title))
	if !any {
		sb.WriteString(`<text x="50%" y="50%" font-family="sans-serif">no data</text></svg>`)
		return sb.String()
	}
	//lint:ignore floateq degenerate-range guard: only bitwise equality divides the scale by zero
	if xmax == xmin {
		xmax = xmin + 1
	}
	//lint:ignore floateq degenerate-range guard, as above
	if ymax == ymin {
		ymax = ymin + 1
	}
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return h - margin - (y-ymin)/(ymax-ymin)*plotH }

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`, margin, h-margin, w-margin, h-margin)
	fmt.Fprintf(&sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#333"/>`, margin, margin, margin, h-margin)
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" font-family="sans-serif">%s</text>`, margin, h-margin+28, tick(xmin))
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`, w-margin, h-margin+28, tick(xmax))
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`, margin-6, h-margin, tick(ymin))
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="11" font-family="sans-serif" text-anchor="end">%s</text>`, margin-6, margin+4, tick(ymax))
	fmt.Fprintf(&sb, `<text x="%g" y="%g" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`, margin+plotW/2, h-10, escape(xLabel))
	fmt.Fprintf(&sb, `<text x="14" y="%g" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`, margin+plotH/2, margin+plotH/2, escape(yLabel))

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		prevY := math.NaN()
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			x, y := px(s.X[i]), py(s.Y[i])
			if s.Step && !math.IsNaN(prevY) {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, prevY))
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
			prevY = y
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`, color, strings.Join(pts, " "))
		// Legend entry.
		ly := 34 + 16*si
		fmt.Fprintf(&sb, `<rect x="%g" y="%d" width="12" height="3" fill="%s"/>`, w-margin-110, ly, color)
		fmt.Fprintf(&sb, `<text x="%g" y="%d" font-size="11" font-family="sans-serif">%s</text>`, w-margin-92, ly+5, escape(s.Name))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// barSVG renders labeled horizontal bars.
func barSVG(title, unit string, width int, labels []string, values []float64) string {
	n := len(labels)
	if len(values) < n {
		n = len(values)
	}
	rowH := 26
	height := 40 + n*rowH + 10
	w := float64(width)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, width, height, width, height)
	fmt.Fprintf(&sb, `<text x="10" y="20" font-size="14" font-family="sans-serif">%s</text>`, escape(title))
	if n == 0 {
		sb.WriteString(`<text x="10" y="50" font-family="sans-serif">no data</text></svg>`)
		return sb.String()
	}
	maxVal := 0.0
	for i := 0; i < n; i++ {
		if values[i] > maxVal {
			maxVal = values[i]
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	labelW := 110.0
	barMax := w - labelW - 90
	for i := 0; i < n; i++ {
		y := 40 + i*rowH
		bw := values[i] / maxVal * barMax
		if bw < 0 {
			bw = 0
		}
		fmt.Fprintf(&sb, `<text x="%g" y="%d" font-size="12" font-family="sans-serif" text-anchor="end">%s</text>`, labelW-8, y+14, escape(labels[i]))
		fmt.Fprintf(&sb, `<rect x="%g" y="%d" width="%.1f" height="%d" fill="%s"/>`, labelW, y, bw, rowH-8, palette[i%len(palette)])
		fmt.Fprintf(&sb, `<text x="%g" y="%d" font-size="12" font-family="sans-serif">%s%s</text>`, labelW+bw+6, y+14, tick(values[i]), escape(unit))
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func tick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1e6, (a > 0 && a < 1e-3):
		return fmt.Sprintf("%.2g", v)
	case a >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
