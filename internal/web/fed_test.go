package web

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/sim"
)

func newFedFixture(t *testing.T, members int) (*service.FedService, *httptest.Server) {
	t.Helper()
	configs := make([]federation.MemberConfig, members)
	for i := range configs {
		configs[i] = federation.MemberConfig{
			Name:      fmt.Sprintf("region%d", i),
			Cluster:   experiments.SimCluster(),
			Scheduler: policy.New(policy.SRTF, true),
			Sim:       sim.ValidatedOptions(),
		}
	}
	router, err := federation.NewRouter("least-queue")
	if err != nil {
		t.Fatal(err)
	}
	svc, err := service.NewFed(configs, router, service.FedOptions{
		Federation: federation.Options{Validate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	svc.Start()
	ts := httptest.NewServer(NewFedServer(svc).Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Stop()
	})
	return svc, ts
}

// TestFedSubmitQueryCancel walks a job through the federated control
// API: submit through the front door, observe it land on a member,
// query it with its owning member in the response, and cancel it.
func TestFedSubmitQueryCancel(t *testing.T) {
	svc, ts := newFedFixture(t, 2)

	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "ResNet-50", "workers": 2, "gpu_hours": 50000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}
	id := int(out["id"].(float64))
	member, ok := out["member"].(string)
	if !ok || member == "" {
		t.Errorf("submit response missing owning member: %v", out)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, phase, _, _, ok := svc.Snapshot().FindJob(id); ok && phase == "active" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never became active", id)
		}
		time.Sleep(time.Millisecond)
	}

	resp, out = do(t, http.MethodGet, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["phase"] != "active" {
		t.Fatalf("query status = %d, body %v", resp.StatusCode, out)
	}
	if out["member"] != member {
		t.Errorf("query reports member %v, submit reported %v", out["member"], member)
	}
	if out["job"] == nil {
		t.Error("active job query missing live detail")
	}

	resp, out = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusOK || out["cancelled"] != true {
		t.Fatalf("cancel status = %d, body %v", resp.StatusCode, out)
	}
	resp, _ = do(t, http.MethodDelete, ts.URL+"/api/jobs/"+itoa(id))
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("double cancel status = %d, want 409", resp.StatusCode)
	}
}

// TestFedSnapshotAndDashboard checks the merged snapshot endpoint and
// the Provider-backed dashboard pages over a federation.
func TestFedSnapshotAndDashboard(t *testing.T) {
	_, ts := newFedFixture(t, 2)

	resp, out := postJSON(t, ts.URL+"/api/jobs", `{"model": "ResNet-18", "workers": 1, "gpu_hours": 10}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %v", resp.StatusCode, out)
	}

	resp, snap := do(t, http.MethodGet, ts.URL+"/api/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	members, ok := snap["members"].([]any)
	if !ok || len(members) != 2 {
		t.Fatalf("snapshot members = %v, want 2 entries", snap["members"])
	}
	if snap["router"] != "least-queue" {
		t.Errorf("snapshot router = %v, want least-queue", snap["router"])
	}
	if _, ok := snap["stats"]; !ok {
		t.Error("snapshot missing admission stats")
	}
	if got := int(snap["total_gpus"].(float64)); got != 2*experiments.SimCluster().TotalGPUs() {
		t.Errorf("snapshot total_gpus = %d, want %d", got, 2*experiments.SimCluster().TotalGPUs())
	}

	// The dashboard renders one section per member.
	page, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer page.Body.Close()
	if page.StatusCode != http.StatusOK {
		t.Errorf("dashboard status = %d", page.StatusCode)
	}

	resp, _ = do(t, http.MethodGet, ts.URL+"/api/jobs/999999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job query status = %d, want 404", resp.StatusCode)
	}
}
