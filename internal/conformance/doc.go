// Package conformance holds cross-policy correctness tests: the
// differential matrix that simulates every scheduling policy over
// seeded trace families with the invariant oracle enabled, the
// empirical check of Theorem 2's 2-alpha competitive bound against the
// brute-force offline optimum, and the metamorphic relations
// (arrival-order permutation, accelerator-type relabeling, utility
// scaling) that pin down symmetries the model says must hold.
//
// The package intentionally contains no production code — everything
// lives in its external tests — so that it can import every policy
// package without creating dependency edges between them.
package conformance
