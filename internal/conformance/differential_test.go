package conformance

import (
	"fmt"
	"testing"

	"repro/internal/allox"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gavel"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiresias"
	"repro/internal/trace"
	"repro/internal/yarncs"
)

// policies returns a fresh instance of every scheduling policy under
// test, keyed by name. Fresh instances matter: schedulers carry
// per-run state (leases, service counters, memoization).
func policies() map[string]func() sched.Scheduler {
	return map[string]func() sched.Scheduler{
		"hadar":    func() sched.Scheduler { return core.New(core.DefaultOptions()) },
		"gavel":    func() sched.Scheduler { return gavel.New(gavel.Options{}) },
		"tiresias": func() sched.Scheduler { return tiresias.New(tiresias.DefaultOptions()) },
		"yarn-cs":  func() sched.Scheduler { return yarncs.New() },
		"allox":    func() sched.Scheduler { return allox.New() },
	}
}

// seededTrace generates a deterministic workload for the given seed and
// arrival pattern.
func seededTrace(t *testing.T, seed int64, pattern trace.Pattern, n int) []*job.Job {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = n
	cfg.Seed = seed
	cfg.Pattern = pattern
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestDifferentialMatrix runs every policy over a family of seeded
// traces (static and Poisson arrivals) with the invariant oracle
// enabled. Any capacity, gang, conservation, price or report violation
// in any cell of the matrix fails the run — the policies check each
// other against one shared model rather than their own bookkeeping.
func TestDifferentialMatrix(t *testing.T) {
	core.PanicOnInconsistency = true
	type cell struct {
		seed    int64
		pattern trace.Pattern
	}
	cells := []cell{
		{seed: 1, pattern: trace.Static},
		{seed: 2, pattern: trace.Static},
		{seed: 3, pattern: trace.Poisson},
	}
	for name, mk := range policies() {
		name, mk := name, mk
		for _, cl := range cells {
			cl := cl
			t.Run(fmt.Sprintf("%s/seed%d-%v", name, cl.seed, cl.pattern), func(t *testing.T) {
				t.Parallel()
				jobs := seededTrace(t, cl.seed, cl.pattern, 48)
				rep, err := sim.Run(experiments.SimCluster(), jobs, mk(), sim.ValidatedOptions())
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Jobs) != len(jobs) {
					t.Errorf("%d of %d jobs completed", len(rep.Jobs), len(jobs))
				}
			})
		}
	}
}

// TestDifferentialMatrixUnderFailures repeats the matrix with machine
// outages injected, exercising the oracle's down-node and killed-round
// paths: schedulers must never place on a node they saw as down, and a
// failure-killed round must conserve zero iterations.
func TestDifferentialMatrixUnderFailures(t *testing.T) {
	core.PanicOnInconsistency = true
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			jobs := seededTrace(t, 4, trace.Static, 48)
			opts := sim.ValidatedOptions()
			opts.Failures = []sim.Failure{
				{Node: 0, Start: 0, End: 4000},
				{Node: 3, Start: 2000, End: 9000},
				{Node: 7, Start: 500, End: 1300},
			}
			rep, err := sim.Run(experiments.SimCluster(), jobs, mk(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Faults.NodeDown == 0 {
				t.Error("failure injection did not register any outage")
			}
		})
	}
}

// TestDifferentialMatrixOptionVariants sweeps the simulator's option
// axes — the Table IV checkpoint-cost model, shared-SSD checkpoint
// contention, and round-quantized completions — under the oracle, for
// every policy. The invariants are option-independent: progress must
// follow the bottleneck model whatever the stall model charges.
func TestDifferentialMatrixOptionVariants(t *testing.T) {
	core.PanicOnInconsistency = true
	variants := map[string]func(*sim.Options){
		"model-costs": func(o *sim.Options) { o.UseModelCosts = true },
		"contention":  func(o *sim.Options) { o.CheckpointContention = true },
		"quantized":   func(o *sim.Options) { o.QuantizeCompletions = true },
	}
	for name, mk := range policies() {
		for vname, apply := range variants {
			name, mk, vname, apply := name, mk, vname, apply
			t.Run(name+"/"+vname, func(t *testing.T) {
				t.Parallel()
				jobs := seededTrace(t, 8, trace.Static, 48)
				opts := sim.ValidatedOptions()
				apply(&opts)
				if _, err := sim.Run(experiments.SimCluster(), jobs, mk(), opts); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestDifferentialJCTAgreement is the differential sanity layer on top
// of the shared oracle: on the same trace, every policy must agree on
// the workload's physics even while disagreeing on its order. Each
// job's iteration count in each report must match the trace, and every
// policy's makespan must be at least the work-conserving lower bound
// (total fastest-case GPU-seconds over cluster capacity).
func TestDifferentialJCTAgreement(t *testing.T) {
	jobs := seededTrace(t, 5, trace.Static, 48)
	c := experiments.SimCluster()
	want := make(map[int]float64, len(jobs))
	lower := 0.0
	for _, j := range jobs {
		want[j.ID] = j.TotalIters()
		// GPU-seconds at the job's fastest type: w workers at best*w
		// it/s for TotalIters/(best*w) seconds = TotalIters/best.
		if _, best, ok := j.BestType(); ok && best > 0 {
			lower += j.TotalIters() / best
		}
	}
	lower /= float64(c.TotalGPUs())
	reports := map[string]*metrics.Report{}
	for name, mk := range policies() {
		rep, err := sim.Run(c, jobs, mk(), sim.ValidatedOptions())
		if err != nil {
			t.Fatal(err)
		}
		reports[name] = rep
		for _, jr := range rep.Jobs {
			if jr.TotalIters != want[jr.ID] {
				t.Errorf("%s: job %d reports %v iterations, trace says %v",
					name, jr.ID, jr.TotalIters, want[jr.ID])
			}
		}
		if rep.Makespan < lower {
			t.Errorf("%s: makespan %v below work-conserving floor %v", name, rep.Makespan, lower)
		}
	}
}
