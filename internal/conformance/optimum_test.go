package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/offline"
)

// randomTinyInstance samples a brute-forceable P1 instance (at most 3
// jobs, 6 devices, 4 rounds) with heterogeneous throughputs. All
// arrivals are static, as the exhaustive search requires.
func randomTinyInstance(rng *rand.Rand) offline.Instance {
	fleets := [][]gpu.Fleet{
		{{gpu.V100: 2}, {gpu.K80: 1}},
		{{gpu.V100: 2, gpu.K80: 1}, {gpu.K80: 2}},
		{{gpu.V100: 1}, {gpu.P100: 2}, {gpu.K80: 2}},
		{{gpu.V100: 3}, {gpu.K80: 3}},
	}
	c := cluster.New(fleets[rng.Intn(len(fleets))]...)
	numJobs := 2 + rng.Intn(2)
	jobs := make([]*job.Job, numJobs)
	for i := range jobs {
		workers := 1 + rng.Intn(2)
		// Iteration counts sized so jobs can finish within the horizon
		// but rarely all of them can: the optimum must actually choose.
		iters := 200 + rng.Intn(1800)
		v := 4 + rng.Float64()*8
		p := 2 + rng.Float64()*5
		k := 1 + rng.Float64()*3
		jobs[i] = &job.Job{
			ID: i, Model: "rand-tiny", Workers: workers,
			Epochs: iters, ItersPerEpoch: 1,
			Throughput: map[gpu.Type]float64{gpu.V100: v, gpu.P100: p, gpu.K80: k},
		}
	}
	return offline.Instance{
		Cluster:     c,
		Jobs:        jobs,
		Rounds:      2 + rng.Intn(3),
		RoundLength: 100,
		Utility:     core.EffectiveThroughput{},
	}
}

// TestHadarWithinTwoAlphaOfOptimum validates Theorem 2 on a family of
// randomly generated (seeded) tiny instances: the online utility must
// stay within the proven 2*alpha factor of the brute-force offline
// optimum, and must never exceed the optimum itself. This generalizes
// the hand-written instances in internal/offline to a broader sample
// of shapes.
func TestHadarWithinTwoAlphaOfOptimum(t *testing.T) {
	core.PanicOnInconsistency = true
	rng := rand.New(rand.NewSource(2024))
	const instances = 12
	for i := 0; i < instances; i++ {
		in := randomTinyInstance(rng)
		opt, err := offline.Optimal(in)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		opts := core.DefaultOptions()
		opts.Utility = in.Utility
		online, alpha, err := offline.Replay(in, core.New(opts))
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if online > opt.BestUtility+1e-6 {
			t.Errorf("instance %d: online utility %v exceeds offline optimum %v",
				i, online, opt.BestUtility)
		}
		bound := opt.BestUtility / (2 * alpha)
		if online < bound-1e-9 {
			t.Errorf("instance %d: online %.4f below competitive bound %.4f (OPT %.4f, alpha %.3f)",
				i, online, bound, opt.BestUtility, alpha)
		}
	}
}
