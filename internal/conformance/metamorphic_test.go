package conformance

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// outcome is a comparable rendering of one job's simulated schedule.
type outcome struct {
	start, finish float64
	reallocs      int
}

func outcomes(t *testing.T, rep *metrics.Report) map[int]outcome {
	t.Helper()
	m := make(map[int]outcome, len(rep.Jobs))
	for _, jr := range rep.Jobs {
		m[jr.ID] = outcome{start: jr.Start, finish: jr.Finish, reallocs: jr.Reallocations}
	}
	return m
}

func sameOutcomes(t *testing.T, name string, a, b map[int]outcome) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: %d vs %d completed jobs", name, len(a), len(b))
		return
	}
	for id, oa := range a {
		if ob, ok := b[id]; !ok || oa != ob {
			t.Errorf("%s: job %d schedule differs: %+v vs %+v", name, id, oa, ob)
		}
	}
}

// TestArrivalPermutationInvariance checks the metamorphic relation that
// the order in which same-time arrivals appear in the input slice is
// meaningless: the simulator and every policy must key their decisions
// on (arrival time, job ID), never on input position. The static trace
// makes every pair of jobs a same-time pair, maximizing the surface.
func TestArrivalPermutationInvariance(t *testing.T) {
	core.PanicOnInconsistency = true
	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			jobs := seededTrace(t, 6, trace.Static, 48)
			base, err := sim.Run(experiments.SimCluster(), jobs, mk(), sim.ValidatedOptions())
			if err != nil {
				t.Fatal(err)
			}
			shuffled := append([]*job.Job(nil), jobs...)
			rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, k int) {
				shuffled[i], shuffled[k] = shuffled[k], shuffled[i]
			})
			perm, err := sim.Run(experiments.SimCluster(), shuffled, mk(), sim.ValidatedOptions())
			if err != nil {
				t.Fatal(err)
			}
			sameOutcomes(t, name, outcomes(t, base), outcomes(t, perm))
		})
	}
}

// relabelJob builds a job whose throughput map is the image of j's
// under the type permutation p.
func relabelJob(j *job.Job, p map[gpu.Type]gpu.Type) *job.Job {
	out := *j
	out.Throughput = make(map[gpu.Type]float64, len(j.Throughput))
	for t, v := range j.Throughput {
		out.Throughput[p[t]] = v
	}
	return &out
}

// TestTypeRelabelIsomorphism checks that accelerator type identities
// carry no hidden meaning: renaming every type consistently across the
// cluster and all jobs must yield the identical schedule (same starts,
// finishes, reallocation counts per job). The instance uses distinct
// per-type capacities and throughputs so no policy faces a tie it
// could legitimately break by type index.
func TestTypeRelabelIsomorphism(t *testing.T) {
	core.PanicOnInconsistency = true
	// Permutation into entirely different indices, including reversing
	// relative order: V100 (0) -> K520 (4), P100 (1) -> T4 (3),
	// K80 (2) -> V100 (0).
	perm := map[gpu.Type]gpu.Type{gpu.V100: gpu.K520, gpu.P100: gpu.T4, gpu.K80: gpu.V100}

	baseFleets := []gpu.Fleet{
		{gpu.V100: 4}, {gpu.V100: 4},
		{gpu.P100: 3}, {gpu.P100: 3},
		{gpu.K80: 2},
	}
	relabeled := make([]gpu.Fleet, len(baseFleets))
	for i, f := range baseFleets {
		g := gpu.Fleet{}
		for t, n := range f {
			g[perm[t]] = n
		}
		relabeled[i] = g
	}

	mkJobs := func(p map[gpu.Type]gpu.Type) []*job.Job {
		id := map[gpu.Type]gpu.Type{gpu.V100: gpu.V100, gpu.P100: gpu.P100, gpu.K80: gpu.K80}
		if p != nil {
			id = p
		}
		var jobs []*job.Job
		// Distinct throughput triples, no two equal within a job, and
		// distinct iteration totals so value ties cannot arise.
		specs := []struct {
			workers  int
			iters    float64
			v, pp, k float64
			arrival  float64
		}{
			{1, 4000, 10, 7, 3, 0},
			{2, 9000, 12, 8, 2, 0},
			{4, 15000, 9, 6, 4, 360},
			{1, 2500, 11, 5, 1, 360},
			{2, 7000, 13, 9, 5, 720},
			{3, 5200, 8, 4, 2.5, 1080},
		}
		for i, s := range specs {
			jobs = append(jobs, relabelJob(&job.Job{
				ID: i, Model: "relabel", Workers: s.workers, Arrival: s.arrival,
				Epochs: int(s.iters), ItersPerEpoch: 1,
				Throughput: map[gpu.Type]float64{gpu.V100: s.v, gpu.P100: s.pp, gpu.K80: s.k},
			}, id))
		}
		return jobs
	}

	for name, mk := range policies() {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base, err := sim.Run(cluster.New(baseFleets...), mkJobs(nil), mk(), sim.ValidatedOptions())
			if err != nil {
				t.Fatal(err)
			}
			rel, err := sim.Run(cluster.New(relabeled...), mkJobs(perm), mk(), sim.ValidatedOptions())
			if err != nil {
				t.Fatal(err)
			}
			sameOutcomes(t, name, outcomes(t, base), outcomes(t, rel))
		})
	}
}

// TestUtilityScaleInvariance checks that Hadar's decisions depend only
// on relative utilities: multiplying every utility by a constant must
// not change any allocation. The scale is a power of two, so every
// intermediate float (utility, price, payoff = utility - cost) scales
// exactly and the relation holds bit-for-bit, not just approximately.
func TestUtilityScaleInvariance(t *testing.T) {
	core.PanicOnInconsistency = true
	run := func(scale float64) map[int]outcome {
		t.Helper()
		opts := core.DefaultOptions()
		opts.Utility = core.InverseJCT{Scale: scale}
		jobs := seededTrace(t, 7, trace.Static, 48)
		rep, err := sim.Run(experiments.SimCluster(), jobs, core.New(opts), sim.ValidatedOptions())
		if err != nil {
			t.Fatal(err)
		}
		return outcomes(t, rep)
	}
	base := run(3600)
	scaled := run(3600 * 1024) // 2^10: exact in binary floating point
	sameOutcomes(t, "hadar", base, scaled)

	// The relation must also hold for the exponential price function
	// (Eq. 5's literal form), whose prices are again linear in scale.
	runExp := func(scale float64) map[int]outcome {
		t.Helper()
		opts := core.DefaultOptions()
		opts.Utility = core.InverseJCT{Scale: scale}
		opts.ExponentialPrice = true
		jobs := seededTrace(t, 7, trace.Static, 48)
		rep, err := sim.Run(experiments.SimCluster(), jobs, core.New(opts), sim.ValidatedOptions())
		if err != nil {
			t.Fatal(err)
		}
		return outcomes(t, rep)
	}
	sameOutcomes(t, "hadar-exp", runExp(3600), runExp(3600*1024))
}
