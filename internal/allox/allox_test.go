package allox

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func mkJob(id, workers int, iters, v100, k80 float64) *job.Job {
	return &job.Job{
		ID: id, Model: "m", Workers: workers, Epochs: int(iters), ItersPerEpoch: 1,
		Throughput: map[gpu.Type]float64{gpu.V100: v100, gpu.K80: k80},
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{Job: j, Remaining: j.TotalIters(), RoundsByType: map[gpu.Type]float64{}}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	return &sched.Context{Now: 0, RoundLength: 360, Horizon: 1e7, Cluster: c, Jobs: states}
}

func TestSingleTypePerJob(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 1000, 10, 2)),
		newState(mkJob(1, 2, 1000, 10, 2)),
	}
	out := New().Schedule(mkCtx(c, states...))
	free := cluster.NewState(c)
	for id, a := range out {
		if len(a.Types()) > 1 {
			t.Errorf("job %d got mixed types %v; AlloX is job-level", id, a)
		}
		if err := sched.Validate(states[id].Job, a); err != nil {
			t.Fatal(err)
		}
		if a.Workers() > 0 {
			if err := free.Allocate(a); err != nil {
				t.Fatalf("capacity violated: %v", err)
			}
		}
	}
	if len(out) != 2 {
		t.Errorf("both jobs should run on separate types: %v", out)
	}
}

func TestShortJobGetsFastType(t *testing.T) {
	// Both want the single V100 pair; the shorter job has the better
	// (1/runtime) value and must win it.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	long := newState(mkJob(0, 2, 1e6, 10, 2))
	short := newState(mkJob(1, 2, 1e3, 10, 2))
	out := New().Schedule(mkCtx(c, long, short))
	if got := out[1].Types(); len(got) != 1 || got[0] != gpu.V100 {
		t.Errorf("short job on %v, want V100", got)
	}
	if got := out[0].Types(); len(got) != 1 || got[0] != gpu.K80 {
		t.Errorf("long job on %v, want K80", got)
	}
}

func TestHeterogeneitySensitiveJobPrioritized(t *testing.T) {
	// Same remaining runtime on K80, but job 0 is 10x faster on V100
	// while job 1 is only 1.5x faster: job 0 should claim the V100s.
	c := cluster.New(gpu.Fleet{gpu.V100: 1, gpu.K80: 1})
	sensitive := newState(mkJob(0, 1, 1000, 10, 1))
	flat := newState(mkJob(1, 1, 1500, 1.5, 1))
	out := New().Schedule(mkCtx(c, sensitive, flat))
	if got := out[0].Types(); len(got) != 1 || got[0] != gpu.V100 {
		t.Errorf("sensitive job on %v, want V100", got)
	}
}

func TestGangBlockedWithoutSingleType(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	st := newState(mkJob(0, 3, 1000, 10, 2))
	out := New().Schedule(mkCtx(c, st))
	if a, ok := out[0]; ok && a.Workers() > 0 {
		t.Errorf("3-worker gang placed without a 3-device type: %v", a)
	}
}

func TestEmptyQueue(t *testing.T) {
	out := New().Schedule(mkCtx(cluster.New(gpu.Fleet{gpu.V100: 1})))
	if len(out) != 0 {
		t.Errorf("non-empty decision: %v", out)
	}
}

// TestEndToEndSandwich: AlloX must complete a trace, beating the
// heterogeneity-unaware Tiresias-style placement on avg JCT is not
// guaranteed round-by-round, but Hadar must beat AlloX (task-level +
// pricing vs job-level matching).
func TestEndToEndSandwich(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	c := cluster.New(
		gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.P100: 4}, gpu.Fleet{gpu.K80: 4},
	)
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 24
	cfg.WorkerChoices = []int{1, 2, 4}
	cfg.WorkerWeights = []float64{0.5, 0.3, 0.2}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := sim.Run(c, jobs, New(), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ax.Jobs) != 24 {
		t.Fatalf("AlloX completed %d of 24 jobs", len(ax.Jobs))
	}
	hd, err := sim.Run(c, jobs, core.New(core.DefaultOptions()), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if hd.AvgJCT() > ax.AvgJCT()*1.05 {
		t.Errorf("Hadar avgJCT %.0fs worse than AlloX %.0fs", hd.AvgJCT(), ax.AvgJCT())
	}
	t.Logf("avgJCT: hadar=%.1fh allox=%.1fh", hd.AvgJCT()/3600, ax.AvgJCT()/3600)
}
