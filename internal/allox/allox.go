// Package allox implements an AlloX-flavored baseline (Le et al.,
// EuroSys 2020, discussed in the paper's related work): each round it
// solves a minimum-cost assignment of waiting jobs to accelerator
// types — cost being the job's estimated remaining runtime on that type,
// scaled by SRPT-style position weighting — using the internal LP
// solver, then realizes the fractional assignment greedily.
//
// Like Gavel and Tiresias it is job-level (a gang occupies one
// accelerator type), so it inherits the blocking behavior Hadar's
// task-level gangs avoid; unlike Tiresias it is heterogeneity-aware
// through the cost matrix. AlloX proper targets CPU/GPU hybrid clusters
// and interactive jobs; this adaptation keeps its min-cost matching
// heart in the paper's GPU-only, gang-scheduled setting.
package allox

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/lp"
	"repro/internal/sched"
)

// Scheduler is the AlloX-like baseline; it implements sched.Scheduler.
type Scheduler struct{}

// New builds the scheduler.
func New() *Scheduler { return &Scheduler{} }

// Name implements sched.Scheduler.
func (*Scheduler) Name() string { return "allox" }

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	types := ctx.Cluster.Types()
	jobs := ctx.Jobs

	// Cost of assigning job j to type r: its estimated remaining
	// runtime there. The LP maximizes assigned value = 1/cost (shorter
	// jobs on faster types first — the completion-time heart of AlloX's
	// matching), subject to one type per job and per-type capacity.
	nv := len(jobs) * len(types)
	idx := func(j, r int) int { return j*len(types) + r }
	c := make([]float64, nv)
	for ji, st := range jobs {
		for ri, t := range types {
			x := st.Job.Speed(t)
			if x <= 0 || st.Remaining <= 0 {
				continue
			}
			runtime := st.Remaining / (float64(st.Job.Workers) * x)
			if runtime <= 0 {
				runtime = 1e-9
			}
			c[idx(ji, ri)] = 1 / runtime
		}
	}
	var A [][]float64
	var B []float64
	// One type per job.
	for ji := range jobs {
		row := make([]float64, nv)
		for ri := range types {
			row[idx(ji, ri)] = 1
		}
		A = append(A, row)
		B = append(B, 1)
	}
	// Capacity per type.
	for ri, t := range types {
		row := make([]float64, nv)
		for ji, st := range jobs {
			row[idx(ji, ri)] = float64(st.Job.Workers)
		}
		A = append(A, row)
		B = append(B, float64(ctx.Cluster.TotalOfType(t)))
	}
	sol, err := lp.Solve(lp.Problem{C: c, A: A, B: B})

	// Rank (job, type) pairs by the LP's fractional preference (value x
	// fraction), falling back to pure value order if the LP failed.
	type pair struct {
		ji, ri int
		score  float64
	}
	var pairs []pair
	for ji := range jobs {
		for ri := range types {
			v := c[idx(ji, ri)]
			if v <= 0 {
				continue
			}
			score := v
			if err == nil && sol.Status == lp.Optimal {
				score = v * sol.X[idx(ji, ri)]
			}
			if score > 0 {
				pairs = append(pairs, pair{ji: ji, ri: ri, score: score})
			}
		}
	}
	sort.SliceStable(pairs, func(a, b int) bool {
		if pairs[a].score > pairs[b].score {
			return true
		}
		if pairs[a].score < pairs[b].score {
			return false
		}
		if pairs[a].ji != pairs[b].ji {
			return jobs[pairs[a].ji].Job.ID < jobs[pairs[b].ji].Job.ID
		}
		return pairs[a].ri < pairs[b].ri
	})

	free := cluster.NewState(ctx.Cluster)
	assigned := make(map[int]bool, len(jobs))
	for _, p := range pairs {
		st := jobs[p.ji]
		if assigned[st.Job.ID] {
			continue
		}
		t := types[p.ri]
		a, ok := sched.AllocSingleType(free, t, st.Job.Workers)
		if !ok {
			continue
		}
		out[st.Job.ID] = a
		assigned[st.Job.ID] = true
	}
	return out
}
