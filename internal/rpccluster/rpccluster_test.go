package rpccluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/trace"
)

// startWorkers launches n single-node agents on loopback and returns
// their specs plus a cleanup function.
func startWorkers(t *testing.T, types []gpu.Type, devices int, timeScale float64) ([]NodeSpec, func()) {
	t.Helper()
	var handles []*Handle
	var specs []NodeSpec
	for i, typ := range types {
		w := NewWorker(i, devices, timeScale)
		h, err := Serve("127.0.0.1:0", w)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		specs = append(specs, NodeSpec{Addr: h.Addr, GPU: typ, Devices: devices, Speed: 1})
	}
	return specs, func() {
		for _, h := range handles {
			h.Close()
		}
	}
}

func TestWorkerLaunchProgressPreempt(t *testing.T) {
	w := NewWorker(0, 2, 1000) // 1000 sim-seconds per real second
	h, err := Serve("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var lr LaunchReply
	err = w.Launch(LaunchArgs{
		JobID: 1, Lead: true, Devices: 2,
		RateIterPerSec: 10, StartIter: 0, TargetIters: 1e9,
	}, &lr)
	if err != nil {
		t.Fatal(err)
	}
	if lr.FreeDevices != 0 {
		t.Errorf("free after launch = %d, want 0", lr.FreeDevices)
	}
	time.Sleep(50 * time.Millisecond) // 50 sim-seconds
	var pr ProgressReply
	if err := w.Progress(ProgressArgs{JobID: 1}, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Iter <= 0 || pr.Done {
		t.Errorf("progress = %+v, want positive and not done", pr)
	}
	var prr PreemptReply
	if err := w.Preempt(PreemptArgs{JobID: 1}, &prr); err != nil {
		t.Fatal(err)
	}
	if prr.Iter < pr.Iter {
		t.Errorf("checkpoint %v went backwards from %v", prr.Iter, pr.Iter)
	}
	var st StatusReply
	if err := w.Status(StatusArgs{}, &st); err != nil {
		t.Fatal(err)
	}
	if st.FreeDevices != 2 || len(st.Jobs) != 0 {
		t.Errorf("worker not drained: %+v", st)
	}
}

func TestWorkerCompletionTimeExact(t *testing.T) {
	w := NewWorker(0, 1, 1000)
	err := w.Launch(LaunchArgs{
		JobID: 1, Lead: true, Devices: 1,
		RateIterPerSec: 100, TargetIters: 1000, DelaySimSeconds: 5,
	}, &LaunchReply{})
	if err != nil {
		t.Fatal(err)
	}
	// Needs 5s delay + 10s work = 15 sim-seconds = 15 ms real.
	time.Sleep(40 * time.Millisecond)
	var pr ProgressReply
	if err := w.Progress(ProgressArgs{JobID: 1}, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Done {
		t.Fatalf("job not done: %+v", pr)
	}
	// Finish = launch sim time (~0) + 15.
	if math.Abs(pr.FinishSimTime-15) > 5 {
		t.Errorf("finish sim time = %v, want ~15", pr.FinishSimTime)
	}
}

func TestWorkerRejectsOverCapacity(t *testing.T) {
	w := NewWorker(0, 1, 1000)
	if err := w.Launch(LaunchArgs{JobID: 1, Lead: true, Devices: 2,
		RateIterPerSec: 1, TargetIters: 10}, &LaunchReply{}); err == nil {
		t.Error("over-capacity launch accepted")
	}
	if err := w.Launch(LaunchArgs{JobID: 1, Lead: true, Devices: 1,
		RateIterPerSec: 1, TargetIters: 10}, &LaunchReply{}); err != nil {
		t.Fatal(err)
	}
	// Identical re-delivery (a retried launch whose reply was lost) is
	// idempotent; a conflicting launch of the same job is rejected.
	if err := w.Launch(LaunchArgs{JobID: 1, Lead: true, Devices: 1,
		RateIterPerSec: 1, TargetIters: 10}, &LaunchReply{}); err != nil {
		t.Errorf("idempotent launch re-delivery rejected: %v", err)
	}
	if err := w.Launch(LaunchArgs{JobID: 1, Lead: false, Devices: 1,
		RateIterPerSec: 1, TargetIters: 10, StartIter: 5}, &LaunchReply{}); err == nil {
		t.Error("conflicting duplicate job launch accepted")
	}
}

func TestWorkerErrorsOnUnknownJob(t *testing.T) {
	w := NewWorker(0, 1, 1000)
	if err := w.Progress(ProgressArgs{JobID: 9}, &ProgressReply{}); err == nil {
		t.Error("progress of unknown job succeeded")
	}
	if err := w.Preempt(PreemptArgs{JobID: 9}, &PreemptReply{}); err == nil {
		t.Error("preempt of unknown job succeeded")
	}
}

func TestWorkerProgressNonLeadRejected(t *testing.T) {
	w := NewWorker(0, 2, 1000)
	if err := w.Launch(LaunchArgs{JobID: 1, Devices: 1}, &LaunchReply{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Progress(ProgressArgs{JobID: 1}, &ProgressReply{}); err == nil {
		t.Error("progress from non-lead succeeded")
	}
}

func TestNewWorkerPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorker(0 devices) did not panic")
		}
	}()
	NewWorker(0, 0, 1000)
}

// TestLiveClusterEndToEnd runs the paper's prototype architecture for
// real: worker agents over TCP, the Hadar scheduler as controller, a
// heterogeneous mini-cluster, and a mixed workload replayed at high time
// scale. It validates completion, metric sanity, and that the
// controller's view stayed consistent with the workers'.
func TestLiveClusterEndToEnd(t *testing.T) {
	const timeScale = 72000 // 1 real second = 20 simulated hours
	specs, cleanup := startWorkers(t,
		[]gpu.Type{gpu.V100, gpu.P100, gpu.K80}, 2, timeScale)
	defer cleanup()

	opts := DefaultOptions()
	opts.TimeScale = timeScale
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	var jobs []*job.Job
	catalog := trace.Catalog()
	for i := 0; i < 6; i++ {
		spec := catalog[i%len(catalog)]
		j, err := trace.FromDemand(i, spec, 1+i%2, 0.5+float64(i)*0.3, 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	report, err := ctl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Jobs) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(report.Jobs), len(jobs))
	}
	if report.Makespan <= 0 {
		t.Error("zero makespan")
	}
	for _, jr := range report.Jobs {
		if jr.Finish < jr.Start || jr.Start < jr.Arrival {
			t.Errorf("job %d has inconsistent timeline: %+v", jr.ID, jr)
		}
	}
	if !strings.Contains(report.Scheduler, "rpc") {
		t.Errorf("scheduler name = %q, want rpc suffix", report.Scheduler)
	}
	if report.Faults.Any() {
		t.Errorf("fault counters nonzero without injected faults: %+v", report.Faults)
	}
	// All workers drained.
	for i := range specs {
		var st StatusReply
		if err := ctl.call(i, "Status", StatusArgs{}, &st); err != nil {
			t.Fatal(err)
		}
		if len(st.Jobs) != 0 || st.FreeDevices != st.Capacity {
			t.Errorf("worker %d not drained: %+v", i, st)
		}
	}
}

func TestControllerRejectsBadOptions(t *testing.T) {
	specs := []NodeSpec{{Addr: "127.0.0.1:1", GPU: gpu.V100, Devices: 1}}
	if _, err := NewController(core.New(core.DefaultOptions()), specs, Options{}); err == nil {
		t.Error("zero options accepted")
	}
	bad := []NodeSpec{{Addr: "127.0.0.1:1", GPU: gpu.V100, Devices: 0}}
	if _, err := NewController(core.New(core.DefaultOptions()), bad, DefaultOptions()); err == nil {
		t.Error("zero-device node accepted")
	}
}

func TestControllerDialFailure(t *testing.T) {
	specs := []NodeSpec{{Addr: "127.0.0.1:1", GPU: gpu.V100, Devices: 1}}
	if _, err := NewController(core.New(core.DefaultOptions()), specs, DefaultOptions()); err == nil {
		t.Error("dial to dead address succeeded")
	}
}

// TestLiveClusterWithCheckpointStore drives the control plane with the
// bandwidth-modeled checkpoint store: restart delays come from real
// blob sizes, and finished jobs' checkpoints are garbage-collected.
func TestLiveClusterWithCheckpointStore(t *testing.T) {
	const timeScale = 72000
	specs, cleanup := startWorkers(t,
		[]gpu.Type{gpu.V100, gpu.P100}, 2, timeScale)
	defer cleanup()

	opts := DefaultOptions()
	opts.TimeScale = timeScale
	store := ckptstore.New(0)
	opts.Store = store
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	var jobs []*job.Job
	for i, spec := range trace.Catalog()[:4] {
		j, err := trace.FromDemand(i, spec, 1+i%2, 0.5+0.5*float64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	report, err := ctl.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Jobs) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(report.Jobs), len(jobs))
	}
	saves, _, blobs := store.Stats()
	if report.JobRoundReallocs > 0 && saves == 0 {
		t.Error("reallocations happened but no checkpoints were saved")
	}
	if blobs != 0 {
		t.Errorf("%d checkpoints leaked after completion", blobs)
	}
}
