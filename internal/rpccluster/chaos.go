package rpccluster

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ChaosOptions configures deterministic fault injection. All
// randomness comes from one seeded RNG, so a given seed always yields
// the same drop/latency decision sequence for the same call sequence.
type ChaosOptions struct {
	// Seed drives the injection RNG.
	Seed int64
	// DropProb is the probability a call is dropped: the worker never
	// sees it and the caller gets a transient connection error.
	DropProb float64
	// LatencyProb is the probability a call is delayed before being
	// forwarded; the delay is uniform in (0, MaxLatency].
	LatencyProb float64
	// MaxLatency bounds injected delays (0 disables latency injection).
	MaxLatency time.Duration
}

// errInjectedDrop is the transient failure surfaced for dropped calls
// and for calls to a crashed node.
var errInjectedDrop = errors.New("rpccluster: chaos: connection lost")

// Chaos is a fault-injecting Transport wrapper. It can drop calls, add
// latency, and simulate node crashes (every call and reconnect to a
// crashed node fails until Restore). It is safe for concurrent use.
type Chaos struct {
	inner Transport
	opts  ChaosOptions

	mu     sync.Mutex
	rng    *rand.Rand
	down   map[int]bool
	drops  int
	delays int
}

// NewChaos wraps a transport with seeded fault injection.
func NewChaos(inner Transport, opts ChaosOptions) *Chaos {
	return &Chaos{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		down:  make(map[int]bool),
	}
}

// Crash makes every call and reconnect to node fail until Restore; the
// test harness pairs it with tearing down the real worker.
func (c *Chaos) Crash(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[node] = true
}

// Restore lifts a Crash.
func (c *Chaos) Restore(node int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.down, node)
}

// Stats reports how many calls were dropped and delayed so far.
func (c *Chaos) Stats() (drops, delays int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drops, c.delays
}

// Call applies the injection decisions, then forwards to the inner
// transport. Injected latency happens before forwarding, so the
// controller's per-call deadline observes it.
func (c *Chaos) Call(node int, method string, args, reply interface{}) error {
	down, drop, delay := c.decide(node)
	if down {
		return errInjectedDrop
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		return errInjectedDrop
	}
	return c.inner.Call(node, method, args, reply)
}

// decide rolls the injection dice for one call under the lock: whether
// the node is crashed, whether to drop, and how much latency to add.
func (c *Chaos) decide(node int) (down, drop bool, delay time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down[node] {
		c.drops++
		return true, false, 0
	}
	drop = c.opts.DropProb > 0 && c.rng.Float64() < c.opts.DropProb
	if c.opts.MaxLatency > 0 && c.opts.LatencyProb > 0 && c.rng.Float64() < c.opts.LatencyProb {
		delay = time.Duration(c.rng.Int63n(int64(c.opts.MaxLatency))) + 1
	}
	if drop {
		c.drops++
	}
	if delay > 0 {
		c.delays++
	}
	return false, drop, delay
}

// isDown reads the crash flag under the lock.
func (c *Chaos) isDown(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[node]
}

// Reconnect fails while the node is crashed, otherwise forwards.
func (c *Chaos) Reconnect(node int) error {
	if c.isDown(node) {
		return errInjectedDrop
	}
	return c.inner.Reconnect(node)
}

// Close forwards to the inner transport.
func (c *Chaos) Close() error { return c.inner.Close() }
