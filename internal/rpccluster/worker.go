// Package rpccluster is the prototype control plane of the paper's
// physical-cluster experiment (Section IV.B): a scheduler process that
// exchanges control messages with worker agents over RPC to launch,
// preempt, checkpoint, and restart training tasks.
//
// The paper uses gRPC between the scheduler and GPU servers on AWS; this
// reproduction substitutes the Go standard library's net/rpc over TCP —
// the same request/response control messages (launch with a checkpoint
// iteration, preempt returning the checkpoint, progress polling) with an
// equivalent failure surface. Workers "train" in scaled real time: one
// wall-clock second represents TimeScale simulated seconds, so the
// 17-hour Table III workload replays in seconds while still exercising
// live preemption across processes.
package rpccluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"repro/internal/bug"
)

// LaunchArgs asks a worker to host (part of) a job's gang.
type LaunchArgs struct {
	JobID int
	// Lead marks the worker that tracks the job's global progress (the
	// first placement of the gang). Non-lead workers only reserve
	// devices.
	Lead bool
	// Devices is how many local accelerators the job occupies here.
	Devices int
	// RateIterPerSec is the gang's aggregate progress rate (bottleneck
	// throughput x gang size), in simulated iterations per simulated
	// second. Only meaningful on the lead.
	RateIterPerSec float64
	// StartIter is the checkpoint to resume from.
	StartIter float64
	// TargetIters is the job's total work E_j x N_j.
	TargetIters float64
	// DelaySimSeconds is the checkpoint-restore stall before progress
	// resumes, in simulated seconds.
	DelaySimSeconds float64
	// NowSimSeconds is the controller's simulated clock at launch time.
	// Completion times are reported on this clock, so they stay
	// consistent even when a worker process restarts mid-run (a fresh
	// epoch on the worker side must not skew finish times).
	NowSimSeconds float64
}

// LaunchReply acknowledges a launch.
type LaunchReply struct {
	// FreeDevices is the worker's remaining free device count.
	FreeDevices int
}

// PreemptArgs stops a job on this worker.
type PreemptArgs struct {
	JobID int
}

// PreemptReply carries the checkpointed progress (valid from the lead).
type PreemptReply struct {
	Iter float64
	Done bool
	// FinishSimTime is the exact simulated time of completion relative
	// to the worker's epoch, valid when Done.
	FinishSimTime float64
}

// ProgressArgs polls a job's progress.
type ProgressArgs struct {
	JobID int
}

// ProgressReply reports training progress from the lead worker.
type ProgressReply struct {
	Iter          float64
	Done          bool
	FinishSimTime float64
}

// PingArgs requests a liveness heartbeat.
type PingArgs struct{}

// PingReply answers a heartbeat probe.
type PingReply struct {
	NodeID int
	// Incarnation identifies this worker process instance. It changes
	// when the worker restarts, letting the controller detect that the
	// node lost its in-memory tasks even if it never observed the
	// outage itself.
	Incarnation int64
	FreeDevices int
}

// StatusArgs requests worker-level state.
type StatusArgs struct{}

// StatusReply summarizes a worker.
type StatusReply struct {
	NodeID      int
	Capacity    int
	FreeDevices int
	Jobs        []int
}

type task struct {
	devices    int
	lead       bool
	rate       float64
	startIter  float64
	target     float64
	delay      float64 // simulated seconds
	launchSim  float64 // controller sim clock at launch
	launchedAt time.Time
}

// Worker is the agent process running on one machine. It exposes the
// RPC surface the controller drives. One Worker instance serves one
// listener; all methods are safe for concurrent use.
type Worker struct {
	nodeID      int
	capacity    int
	timeScale   float64
	incarnation int64

	mu    sync.Mutex
	tasks map[int]*task
	free  int
}

// NewWorker creates an agent with the given device count. timeScale is
// how many simulated seconds pass per wall-clock second.
func NewWorker(nodeID, capacity int, timeScale float64) *Worker {
	if capacity <= 0 || timeScale <= 0 {
		bug.Failf("rpccluster: invalid worker config (capacity=%d, timeScale=%v)", capacity, timeScale)
	}
	return &Worker{
		nodeID:      nodeID,
		capacity:    capacity,
		timeScale:   timeScale,
		incarnation: time.Now().UnixNano(),
		tasks:       make(map[int]*task),
		free:        capacity,
	}
}

// progressLocked computes a task's current iteration and, if finished,
// the exact simulated finish time on the controller's clock.
func (w *Worker) progressLocked(t *task) (iter float64, done bool, finish float64) {
	elapsed := time.Since(t.launchedAt).Seconds()*w.timeScale - t.delay
	if elapsed < 0 {
		elapsed = 0
	}
	iter = t.startIter + t.rate*elapsed
	if iter >= t.target {
		finish = t.launchSim + t.delay + (t.target-t.startIter)/t.rate
		return t.target, true, finish
	}
	return iter, false, 0
}

// Launch implements the RPC method: reserve devices and, on the lead,
// begin advancing the job from its checkpoint after the restore delay.
func (w *Worker) Launch(args LaunchArgs, reply *LaunchReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if t, exists := w.tasks[args.JobID]; exists {
		// Idempotent re-delivery: a retried launch whose first attempt
		// executed but whose reply was lost must succeed, not error.
		// Anything that differs in placement terms is a real conflict.
		//lint:ignore floateq identity check on a value the controller sent verbatim; a retry of the same launch carries a bitwise-equal StartIter
		if t.devices == args.Devices && t.lead == args.Lead && t.startIter == args.StartIter {
			reply.FreeDevices = w.free
			return nil
		}
		return fmt.Errorf("rpccluster: node %d already hosts job %d", w.nodeID, args.JobID)
	}
	if args.Devices <= 0 || args.Devices > w.free {
		return fmt.Errorf("rpccluster: node %d has %d free devices, launch wants %d", w.nodeID, w.free, args.Devices)
	}
	if args.Lead && (args.RateIterPerSec <= 0 || args.TargetIters <= 0) {
		return errors.New("rpccluster: lead launch requires positive rate and target")
	}
	w.tasks[args.JobID] = &task{
		devices:    args.Devices,
		lead:       args.Lead,
		rate:       args.RateIterPerSec,
		startIter:  args.StartIter,
		target:     args.TargetIters,
		delay:      args.DelaySimSeconds,
		launchSim:  args.NowSimSeconds,
		launchedAt: time.Now(),
	}
	w.free -= args.Devices
	reply.FreeDevices = w.free
	return nil
}

// Preempt implements the RPC method: stop the job, release its devices,
// and return the checkpointed iteration (from the lead).
func (w *Worker) Preempt(args PreemptArgs, reply *PreemptReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[args.JobID]
	if !ok {
		return fmt.Errorf("rpccluster: node %d does not host job %d", w.nodeID, args.JobID)
	}
	if t.lead {
		reply.Iter, reply.Done, reply.FinishSimTime = w.progressLocked(t)
	}
	delete(w.tasks, args.JobID)
	w.free += t.devices
	return nil
}

// Progress implements the RPC method: poll the lead's view of a job.
func (w *Worker) Progress(args ProgressArgs, reply *ProgressReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.tasks[args.JobID]
	if !ok {
		return fmt.Errorf("rpccluster: node %d does not host job %d", w.nodeID, args.JobID)
	}
	if !t.lead {
		return fmt.Errorf("rpccluster: job %d is not led by node %d", args.JobID, w.nodeID)
	}
	reply.Iter, reply.Done, reply.FinishSimTime = w.progressLocked(t)
	return nil
}

// Ping implements the RPC heartbeat: cheap liveness plus the process
// incarnation so the controller can detect restarts.
func (w *Worker) Ping(_ PingArgs, reply *PingReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.NodeID = w.nodeID
	reply.Incarnation = w.incarnation
	reply.FreeDevices = w.free
	return nil
}

// Status implements the RPC method.
func (w *Worker) Status(_ StatusArgs, reply *StatusReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	reply.NodeID = w.nodeID
	reply.Capacity = w.capacity
	reply.FreeDevices = w.free
	for id := range w.tasks {
		reply.Jobs = append(reply.Jobs, id)
	}
	return nil
}

// Handle is a running worker agent bound to a TCP listener.
type Handle struct {
	Worker *Worker
	Addr   string

	ln   net.Listener
	done chan struct{}
}

// Serve starts a worker agent on addr ("127.0.0.1:0" picks a free
// port) and serves RPCs until Close.
func Serve(addr string, w *Worker) (*Handle, error) {
	srv := rpc.NewServer()
	// Register under a per-node name so multiple workers can share a
	// process in tests.
	name := fmt.Sprintf("Worker%d", w.nodeID)
	if err := srv.RegisterName(name, w); err != nil {
		return nil, fmt.Errorf("rpccluster: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpccluster: %w", err)
	}
	h := &Handle{Worker: w, Addr: ln.Addr().String(), ln: ln, done: make(chan struct{})}
	//lint:ignore gostop bounded by the listener: Close() closes ln, Accept returns, the loop exits and closes h.done
	go func() {
		defer close(h.done)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			//lint:ignore gostop bounded by the connection: ServeConn returns when the peer or Close tears the conn down
			go srv.ServeConn(conn)
		}
	}()
	return h, nil
}

// Close stops accepting connections.
func (h *Handle) Close() error {
	err := h.ln.Close()
	<-h.done
	return err
}
