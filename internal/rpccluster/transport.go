package rpccluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// Transport abstracts the control channel between the controller and
// its worker agents. The production implementation (NewDialTransport)
// speaks net/rpc over TCP; tests wrap it in a Chaos transport to inject
// drops, latency, and crashes without touching the controller logic.
//
// Call blocks until the worker replies or the channel fails; per-call
// deadlines, retries, and failure classification live in the
// controller, above this interface, so every transport gets them.
type Transport interface {
	// Call invokes the named method (e.g. "Progress") on one node.
	Call(node int, method string, args, reply interface{}) error
	// Reconnect re-establishes the channel to a node after a failure.
	Reconnect(node int) error
	// Close tears down every connection. It is idempotent.
	Close() error
}

// RetryPolicy bounds the controller's retries of transient call
// failures: exponential backoff from BaseDelay, capped at MaxDelay,
// with deterministic seeded jitter (the controller's fault RNG).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call (>= 1).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff.
	MaxDelay time.Duration
}

// DefaultRetryPolicy suits loopback and LAN control planes: three
// attempts a few milliseconds apart.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

func (p RetryPolicy) normalize() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	return p
}

// backoff returns the pause before retry #attempt (1-based), jittered
// to [50%, 100%] of the exponential step by the caller's RNG value
// jitter in [0, 1).
func (p RetryPolicy) backoff(attempt int, jitter float64) time.Duration {
	d := p.BaseDelay << uint(attempt-1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	return time.Duration(float64(d) * (0.5 + jitter/2))
}

// timeoutError marks a call abandoned at its deadline.
type timeoutError struct {
	node   int
	method string
	limit  time.Duration
}

func (e *timeoutError) Error() string {
	return fmt.Sprintf("rpccluster: call Worker%d.%s exceeded %v deadline", e.node, e.method, e.limit)
}

// Timeout implements net.Error-style classification.
func (e *timeoutError) Timeout() bool { return true }

// errNotConnected is returned for calls to a node whose channel is
// down; it is transient (a Reconnect may fix it).
var errNotConnected = errors.New("rpccluster: node not connected")

// Transient reports whether err is a communication failure worth
// retrying — timeouts, dropped or reset connections, closed clients —
// as opposed to an application-level error returned by the worker
// method itself (net/rpc surfaces those as rpc.ServerError). Worker
// errors are deterministic protocol replies: retrying them cannot
// help, while retrying channel errors often can.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var se rpc.ServerError
	return !errors.As(err, &se)
}

// IsTimeout reports whether err is a per-call deadline expiry.
func IsTimeout(err error) bool {
	var te *timeoutError
	return errors.As(err, &te)
}

// dialTransport is the production transport: one net/rpc client per
// worker over TCP. Safe for concurrent use; Reconnect swaps a node's
// client under the lock while in-flight calls on the old client fail
// with rpc.ErrShutdown (transient).
type dialTransport struct {
	addrs       []string
	dialTimeout time.Duration

	mu      sync.Mutex
	clients []*rpc.Client
}

// NewDialTransport connects to every worker address. On any dial
// failure the already-open connections are closed and the error
// returned. dialTimeout bounds each TCP connect (0 means 1 s).
func NewDialTransport(addrs []string, dialTimeout time.Duration) (Transport, error) {
	if dialTimeout <= 0 {
		dialTimeout = time.Second
	}
	t := &dialTransport{
		addrs:       append([]string(nil), addrs...),
		dialTimeout: dialTimeout,
		clients:     make([]*rpc.Client, len(addrs)),
	}
	for i := range addrs {
		if err := t.Reconnect(i); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

func (t *dialTransport) client(node int) (*rpc.Client, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if node < 0 || node >= len(t.clients) {
		return nil, fmt.Errorf("rpccluster: unknown node %d", node)
	}
	if t.clients[node] == nil {
		return nil, errNotConnected
	}
	return t.clients[node], nil
}

func (t *dialTransport) Call(node int, method string, args, reply interface{}) error {
	cl, err := t.client(node)
	if err != nil {
		return err
	}
	return cl.Call(fmt.Sprintf("Worker%d.%s", node, method), args, reply)
}

func (t *dialTransport) Reconnect(node int) error {
	if node < 0 || node >= len(t.addrs) {
		return fmt.Errorf("rpccluster: unknown node %d", node)
	}
	conn, err := net.DialTimeout("tcp", t.addrs[node], t.dialTimeout)
	if err != nil {
		return fmt.Errorf("rpccluster: dial %s: %w", t.addrs[node], err)
	}
	cl := rpc.NewClient(conn)
	old := t.swapClient(node, cl)
	if old != nil {
		old.Close()
	}
	return nil
}

// swapClient installs a fresh client for node under the lock and
// returns the displaced one so the caller can close it unlocked.
func (t *dialTransport) swapClient(node int, cl *rpc.Client) *rpc.Client {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.clients[node]
	t.clients[node] = cl
	return old
}

func (t *dialTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var first error
	for i, cl := range t.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil && !errors.Is(err, rpc.ErrShutdown) {
			first = err
		}
		t.clients[i] = nil
	}
	return first
}
