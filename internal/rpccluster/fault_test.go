package rpccluster

import (
	"flag"
	"fmt"
	"io"
	"net/rpc"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

// chaosSeeds enables the seed-matrix sweep (make chaos):
//
//	go test -race -run TestChaosMatrix ./internal/rpccluster -args -chaosseeds=5
var chaosSeeds = flag.Int("chaosseeds", 0, "run the chaos seed matrix over this many seeds")

func faultJob(id, workers int, iters, arrival float64) *job.Job {
	return &job.Job{
		ID: id, Name: "chaos", Model: "unit-test", Workers: workers,
		Epochs: int(iters), ItersPerEpoch: 1, Arrival: arrival,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.P100: 6, gpu.K80: 2},
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err       error
		transient bool
	}{
		{nil, false},
		{rpc.ServerError("rpccluster: node 1 does not host job 3"), false},
		{&timeoutError{node: 0, method: "Progress", limit: time.Second}, true},
		{io.EOF, true},
		{rpc.ErrShutdown, true},
		{errNotConnected, true},
		{errInjectedDrop, true},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.transient {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.transient)
		}
	}
	if !IsTimeout(&timeoutError{}) || IsTimeout(io.EOF) {
		t.Error("IsTimeout misclassifies")
	}
}

func TestRetryBackoffBounds(t *testing.T) {
	p := RetryPolicy{}.normalize()
	if p.MaxAttempts < 2 {
		t.Fatalf("default policy does not retry: %+v", p)
	}
	for attempt := 1; attempt <= 10; attempt++ {
		for _, jitter := range []float64{0, 0.5, 0.999} {
			d := p.backoff(attempt, jitter)
			if d < p.BaseDelay/2 || d > p.MaxDelay {
				t.Errorf("backoff(%d, %v) = %v outside [%v, %v]",
					attempt, jitter, d, p.BaseDelay/2, p.MaxDelay)
			}
		}
	}
}

func TestHealthTracker(t *testing.T) {
	h := newHealth(2, 2)
	if h.fail(0) {
		t.Error("single failure marked node down (threshold 2)")
	}
	if !h.fail(0) {
		t.Error("second consecutive failure did not mark node down")
	}
	if !h.isDown(0) || h.isDown(1) {
		t.Errorf("down set wrong: %v", h.downSet())
	}
	if set := h.downSet(); !set[0] || len(set) != 1 {
		t.Errorf("downSet = %v, want {0}", set)
	}
	cameUp, restarted, sync := h.ok(0, 42)
	if !cameUp || restarted || !sync {
		t.Errorf("recovery probe: cameUp=%v restarted=%v sync=%v", cameUp, restarted, sync)
	}
	// A one-off failure heals without a transition but requests a sync.
	h.fail(1)
	if _, _, sync := h.ok(1, 7); !sync {
		t.Error("post-failure probe did not request a state sync")
	}
	// Incarnation change while up = silent worker restart.
	if _, restarted, _ := h.ok(1, 8); !restarted {
		t.Error("incarnation change not detected as restart")
	}
	if _, restarted, _ := h.ok(1, 8); restarted {
		t.Error("stable incarnation reported as restart")
	}
}

// blockingTransport parks every call until released; for deadline tests.
type blockingTransport struct{ release chan struct{} }

func (b *blockingTransport) Call(int, string, interface{}, interface{}) error {
	<-b.release
	return nil
}
func (b *blockingTransport) Reconnect(int) error { return nil }
func (b *blockingTransport) Close() error        { return nil }

func TestCallDeadlineExpires(t *testing.T) {
	bt := &blockingTransport{release: make(chan struct{})}
	defer close(bt.release)
	specs := []NodeSpec{{Addr: "unused", GPU: gpu.V100, Devices: 1}}
	opts := DefaultOptions()
	opts.Transport = bt
	opts.CallTimeout = 20 * time.Millisecond
	opts.Retry = RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	errCall := ctl.call(0, "Ping", PingArgs{}, &PingReply{})
	if !IsTimeout(errCall) {
		t.Fatalf("blocked call returned %v, want timeout", errCall)
	}
	if ctl.faults.RPCTimeouts != 1 {
		t.Errorf("RPCTimeouts = %d, want 1", ctl.faults.RPCTimeouts)
	}
}

func TestCallRetriesDrops(t *testing.T) {
	specs, cleanupWorkers := startWorkers(t, []gpu.Type{gpu.V100}, 2, 1000)
	defer cleanupWorkers()
	inner, err := NewDialTransport([]string{specs[0].Addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(inner, ChaosOptions{Seed: 3, DropProb: 1})
	opts := DefaultOptions()
	opts.TimeScale = 1000
	opts.Transport = chaos
	opts.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if err := ctl.call(0, "Ping", PingArgs{}, &PingReply{}); err == nil || !Transient(err) {
		t.Fatalf("fully dropped call returned %v, want transient error", err)
	}
	if ctl.faults.RPCRetries != 2 {
		t.Errorf("RPCRetries = %d, want 2 (3 attempts)", ctl.faults.RPCRetries)
	}
	// With drops off, the same controller recovers on the same channel.
	chaos.opts.DropProb = 0
	var pr PingReply
	if err := ctl.call(0, "Ping", PingArgs{}, &pr); err != nil {
		t.Fatalf("clean call failed: %v", err)
	}
	if pr.Incarnation == 0 {
		t.Error("ping reply missing incarnation")
	}
}

// TestReleaseJobRemainingSemantics pins the remaining-update rule of
// releaseJob: the preempt reply carries *completed* iterations, so the
// job's new Remaining is total minus that — and it only ever shrinks
// (a stale reply can never resurrect finished work).
func TestReleaseJobRemainingSemantics(t *testing.T) {
	specs, cleanupWorkers := startWorkers(t, []gpu.Type{gpu.V100}, 2, 1000)
	defer cleanupWorkers()
	opts := DefaultOptions()
	opts.TimeScale = 1000
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	j := faultJob(1, 1, 1e9, 0)
	st := &sched.JobState{
		Job: j, Remaining: j.TotalIters(),
		Alloc:        cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 1}},
		RoundsByType: map[gpu.Type]float64{},
	}
	if err := ctl.launchJob(st, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // ~30 sim-seconds of progress
	if err := ctl.releaseJob(st, 30); err != nil {
		t.Fatal(err)
	}
	done := j.TotalIters() - st.Remaining
	if done <= 0 {
		t.Fatalf("release kept no progress: remaining %v of %v", st.Remaining, j.TotalIters())
	}
	if diff := ctl.lastCkpt[1] - done; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("checkpoint %v != completed iterations %v", ctl.lastCkpt[1], done)
	}
	// A second (stale, idempotent) release must not move Remaining back.
	before := st.Remaining
	if err := ctl.releaseJob(st, 31); err != nil {
		t.Fatal(err)
	}
	if st.Remaining > before {
		t.Errorf("remaining regressed: %v -> %v", before, st.Remaining)
	}
}

// failingSched places the job once, then violates the gang constraint
// to force a mid-run controller error.
type failingSched struct{ rounds int }

func (s *failingSched) Name() string { return "failing" }
func (s *failingSched) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	s.rounds++
	out := map[int]cluster.Alloc{}
	for _, st := range ctx.Jobs {
		if s.rounds == 1 {
			out[st.Job.ID] = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: st.Job.Workers}}
		} else {
			// Gang violation: nonzero but less than Workers.
			out[st.Job.ID] = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: st.Job.Workers - 1}}
		}
	}
	return out
}

// TestRunCleansUpOnError verifies the error-path leak fix: a mid-run
// failure must preempt the tasks already launched on workers instead
// of leaving them running forever.
func TestRunCleansUpOnError(t *testing.T) {
	const timeScale = 36000
	w := NewWorker(0, 2, timeScale)
	h, err := Serve("127.0.0.1:0", w)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	specs := []NodeSpec{{Addr: h.Addr, GPU: gpu.V100, Devices: 2, Speed: 1}}
	opts := DefaultOptions()
	opts.TimeScale = timeScale
	ctl, err := NewController(&failingSched{}, specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	if _, err := ctl.Run([]*job.Job{faultJob(1, 2, 1e9, 0)}); err == nil {
		t.Fatal("run with gang-violating scheduler succeeded")
	}
	// In-process check: the worker must be drained despite the error.
	var st StatusReply
	if err := w.Status(StatusArgs{}, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Jobs) != 0 || st.FreeDevices != st.Capacity {
		t.Errorf("worker leaked tasks after controller error: %+v", st)
	}
}

// chaosHarness runs the full control plane under injected RPC drops,
// latency, and one worker crash + restart, and returns the report plus
// the final worker set for drain checks.
func runChaos(t *testing.T, seed int64) {
	t.Helper()
	const timeScale = 36000 // 10 ms real per 6-minute round
	types := []gpu.Type{gpu.V100, gpu.P100, gpu.K80}

	var mu sync.Mutex
	workers := make([]*Worker, len(types))
	handles := make([]*Handle, len(types))
	var specs []NodeSpec
	for i, typ := range types {
		w := NewWorker(i, 2, timeScale)
		h, err := Serve("127.0.0.1:0", w)
		if err != nil {
			t.Fatal(err)
		}
		workers[i], handles[i] = w, h
		specs = append(specs, NodeSpec{Addr: h.Addr, GPU: typ, Devices: 2, Speed: 1})
	}
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, h := range handles {
			h.Close()
		}
	}()

	inner, err := NewDialTransport([]string{specs[0].Addr, specs[1].Addr, specs[2].Addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	chaos := NewChaos(inner, ChaosOptions{
		Seed:        seed,
		DropProb:    0.05,
		LatencyProb: 0.05,
		MaxLatency:  40 * time.Millisecond,
	})
	opts := DefaultOptions()
	opts.TimeScale = timeScale
	opts.Transport = chaos
	opts.CallTimeout = 25 * time.Millisecond
	opts.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
	opts.ProbeThreshold = 2
	opts.FaultSeed = seed
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	var jobs []*job.Job
	for i := 0; i < 5; i++ {
		// 2-4 simulated hours of work each, staggered arrivals.
		jobs = append(jobs, faultJob(i, 1+i%2, 80000+20000*float64(i), float64(i)*300))
	}

	// Crash worker 0 (the V100 node, always occupied) mid-run and
	// restart a fresh process on the same address: in-memory tasks are
	// lost, exactly like a real agent crash.
	crashDone := make(chan error, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		chaos.Crash(0)
		mu.Lock()
		addr := handles[0].Addr
		handles[0].Close()
		mu.Unlock()
		time.Sleep(150 * time.Millisecond)
		w := NewWorker(0, 2, timeScale)
		h, err := Serve(addr, w)
		if err != nil {
			chaos.Restore(0)
			crashDone <- err
			return
		}
		mu.Lock()
		workers[0], handles[0] = w, h
		mu.Unlock()
		chaos.Restore(0)
		crashDone <- nil
	}()

	report, err := ctl.Run(jobs)
	if herr := <-crashDone; herr != nil {
		t.Fatalf("worker restart failed: %v", herr)
	}
	if err != nil {
		t.Fatalf("chaos run did not complete: %v", err)
	}
	if len(report.Jobs) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(report.Jobs), len(jobs))
	}
	for i, jr := range report.Jobs {
		if jr.TotalIters != jobs[i].TotalIters() {
			t.Errorf("job %d finished %v of %v iterations", jr.ID, jr.TotalIters, jobs[i].TotalIters())
		}
		if jr.Finish < jr.Start || jr.Start < jr.Arrival {
			t.Errorf("job %d has inconsistent timeline: %+v", jr.ID, jr)
		}
	}
	f := report.Faults
	if f.RPCRetries == 0 {
		t.Error("no RPC retries recorded under drop injection")
	}
	if f.NodeDown == 0 || f.NodeUp == 0 {
		t.Errorf("node transitions = %d down / %d up, want both nonzero", f.NodeDown, f.NodeUp)
	}
	if f.Recoveries == 0 {
		t.Error("no job recoveries recorded despite a worker crash")
	}
	if f.LostIterations <= 0 {
		t.Errorf("lost iterations = %v, want > 0 (progress past checkpoint was discarded)", f.LostIterations)
	}
	drops, _ := chaos.Stats()
	if drops == 0 {
		t.Error("chaos transport dropped nothing")
	}
	// Every worker drained after the run.
	mu.Lock()
	defer mu.Unlock()
	for i, w := range workers {
		var st StatusReply
		if err := w.Status(StatusArgs{}, &st); err != nil {
			t.Fatal(err)
		}
		if len(st.Jobs) != 0 || st.FreeDevices != st.Capacity {
			t.Errorf("worker %d not drained: %+v", i, st)
		}
	}
}

// TestChaosRecovery is the always-on chaos gate (part of make check):
// one seed, full drop/latency/crash/restart treatment.
func TestChaosRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~2s of wall clock")
	}
	runChaos(t, 1)
}

// TestChaosMatrix sweeps a seed matrix (make chaos).
func TestChaosMatrix(t *testing.T) {
	if *chaosSeeds == 0 {
		t.Skip("enable with -args -chaosseeds=N (make chaos)")
	}
	for seed := int64(1); seed <= int64(*chaosSeeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runChaos(t, seed) })
	}
}

// TestChaosPassThroughIsFaultFree pins the zero-fault regression: a
// chaos transport with no injection behaves exactly like the plain
// transport and the report carries all-zero fault counters.
func TestChaosPassThroughIsFaultFree(t *testing.T) {
	specs, cleanupWorkers := startWorkers(t, []gpu.Type{gpu.V100, gpu.K80}, 2, 72000)
	defer cleanupWorkers()
	inner, err := NewDialTransport([]string{specs[0].Addr, specs[1].Addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.TimeScale = 72000
	opts.Transport = NewChaos(inner, ChaosOptions{Seed: 9})
	ctl, err := NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	report, err := ctl.Run([]*job.Job{faultJob(0, 2, 50000, 0), faultJob(1, 1, 30000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Jobs) != 2 {
		t.Fatalf("completed %d of 2 jobs", len(report.Jobs))
	}
	if report.Faults.Any() {
		t.Errorf("fault counters nonzero on a clean run: %+v", report.Faults)
	}
}
