package rpccluster

// health tracks per-worker liveness from the controller's round-clock
// heartbeat probes. A node is marked down after K consecutive failed
// probes (K = ProbeThreshold) and re-admitted by the first successful
// probe after a reconnect. Each worker reports an incarnation token
// (its process identity); a changed incarnation on an up node means
// the worker restarted — and lost its in-memory tasks — without the
// controller ever observing an outage.
//
// The tracker is driven synchronously from the controller's round loop
// rather than by a background goroutine: probe cadence then follows
// the scheduling clock, failure handling cannot race the scheduling
// decision, and fault-injection tests stay deterministic.
type health struct {
	threshold int
	nodes     []nodeHealth
}

type nodeHealth struct {
	consecFails int
	down        bool
	incarnation int64
	// needsSync marks a node whose state may have diverged from the
	// controller's (a call to it failed transiently): the next
	// successful probe triggers a Status reconciliation.
	needsSync bool
}

func newHealth(nodes, threshold int) *health {
	if threshold <= 0 {
		threshold = 2
	}
	return &health{threshold: threshold, nodes: make([]nodeHealth, nodes)}
}

// fail records a failed probe or call; it reports whether this failure
// transitioned the node to down.
func (h *health) fail(node int) (wentDown bool) {
	n := &h.nodes[node]
	n.needsSync = true
	if n.down {
		return false
	}
	n.consecFails++
	if n.consecFails >= h.threshold {
		n.down = true
		return true
	}
	return false
}

// ok records a successful probe carrying the worker's incarnation. It
// reports whether the node transitioned up, and whether the worker
// restarted (changed incarnation) since the last successful probe —
// callers must treat a restart like a failure of every task the node
// held. sync reports whether a Status reconciliation is due.
func (h *health) ok(node int, incarnation int64) (cameUp, restarted, sync bool) {
	n := &h.nodes[node]
	cameUp = n.down
	restarted = n.incarnation != 0 && n.incarnation != incarnation && !cameUp
	n.incarnation = incarnation
	n.down = false
	n.consecFails = 0
	sync = n.needsSync || cameUp || restarted
	n.needsSync = false
	return cameUp, restarted, sync
}

// isDown reports a node's current state.
func (h *health) isDown(node int) bool { return h.nodes[node].down }

// downSet returns the down nodes as the map cluster.Without consumes,
// or nil when everything is healthy.
func (h *health) downSet() map[int]bool {
	var set map[int]bool
	for i := range h.nodes {
		if h.nodes[i].down {
			if set == nil {
				set = make(map[int]bool)
			}
			set[i] = true
		}
	}
	return set
}
