package rpccluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/ckptstore"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/psmodel"
	"repro/internal/sched"
)

// NodeSpec describes one worker agent the controller drives.
type NodeSpec struct {
	Addr string
	// GPU is the accelerator type of the node's devices (prototype
	// machines are homogeneous per node, as on the paper's AWS fleet).
	GPU gpu.Type
	// Devices is the node's accelerator count.
	Devices int
	// Speed is the straggler factor (1.0 nominal).
	Speed float64
}

// Options configures the controller.
type Options struct {
	// RoundLength is the scheduling interval in simulated seconds.
	RoundLength float64
	// TimeScale is simulated seconds per wall-clock second. Workers must
	// be created with the same value.
	TimeScale float64
	// UseModelCosts selects Table IV checkpoint costs; otherwise the
	// flat 10 s delay applies to every (re)allocation.
	UseModelCosts bool
	// Store, when non-nil, persists checkpoints through a
	// bandwidth-modeled storage device: restart delays then come from
	// actual blob sizes (the model's parameter bytes) and device
	// queueing instead of the fixed cost table.
	Store *ckptstore.Store
	// MaxRounds bounds the run.
	MaxRounds int

	// CallTimeout is the per-call RPC deadline in wall-clock time;
	// 0 selects 2 s.
	CallTimeout time.Duration
	// Retry bounds transient-failure retries per call; the zero value
	// selects DefaultRetryPolicy.
	Retry RetryPolicy
	// ProbeThreshold is how many consecutive failed heartbeat probes
	// mark a worker down; 0 selects 2.
	ProbeThreshold int
	// FaultSeed seeds the retry-jitter RNG; 0 selects 1.
	FaultSeed int64
	// Transport overrides the TCP transport — fault-injection tests
	// wrap NewDialTransport in a Chaos transport here. When nil the
	// controller dials the node addresses itself.
	Transport Transport
}

// DefaultOptions replays at 3600x: a 6-minute round every 100 ms.
func DefaultOptions() Options {
	return Options{
		RoundLength: checkpoint.RoundSeconds,
		TimeScale:   3600,
		MaxRounds:   100000,
	}
}

// Controller drives a set of live worker agents with a scheduling
// policy, mirroring the paper's prototype scheduler process. Unlike
// the paper's fail-fast prototype, the controller tolerates worker
// failures: calls carry deadlines and bounded retries, a per-round
// heartbeat marks unresponsive workers down (hiding them from the
// scheduler exactly as the simulator's cluster.Without does), and jobs
// stranded on a dead worker are rolled back to their last checkpoint
// and requeued instead of aborting the run.
type Controller struct {
	opts      Options
	retry     RetryPolicy
	nodes     []NodeSpec
	transport Transport
	clus      *cluster.Cluster
	sched     sched.Scheduler
	health    *health
	rng       *rand.Rand

	// leads maps job ID -> node tracking the job's global progress.
	leads map[int]int
	// lastCkpt maps job ID -> iteration of its last durable checkpoint;
	// recovery rolls Remaining back to this, never to polled progress.
	lastCkpt map[int]float64
	faults   *metrics.FaultStats
}

// NewController connects to every worker agent. The cluster model used
// for scheduling decisions is derived from the node specs.
func NewController(s sched.Scheduler, nodes []NodeSpec, opts Options) (*Controller, error) {
	if opts.RoundLength <= 0 || opts.TimeScale <= 0 {
		return nil, fmt.Errorf("rpccluster: invalid options %+v", opts)
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultOptions().MaxRounds
	}
	if opts.CallTimeout <= 0 {
		opts.CallTimeout = 2 * time.Second
	}
	if opts.FaultSeed == 0 {
		opts.FaultSeed = 1
	}
	fleets := make([]gpu.Fleet, len(nodes))
	for i, n := range nodes {
		if n.Devices <= 0 {
			return nil, fmt.Errorf("rpccluster: node %d has no devices", i)
		}
		fleets[i] = gpu.Fleet{n.GPU: n.Devices}
	}
	clus := cluster.New(fleets...)
	for i, n := range nodes {
		if n.Speed > 0 {
			clus.SetSpeed(i, n.Speed)
		}
	}
	c := &Controller{
		opts:     opts,
		retry:    opts.Retry.normalize(),
		nodes:    nodes,
		clus:     clus,
		sched:    s,
		health:   newHealth(len(nodes), opts.ProbeThreshold),
		rng:      rand.New(rand.NewSource(opts.FaultSeed)),
		leads:    map[int]int{},
		lastCkpt: map[int]float64{},
		faults:   &metrics.FaultStats{},
	}
	if opts.Transport != nil {
		c.transport = opts.Transport
	} else {
		addrs := make([]string, len(nodes))
		for i, n := range nodes {
			addrs[i] = n.Addr
		}
		tr, err := NewDialTransport(addrs, opts.CallTimeout)
		if err != nil {
			return nil, err
		}
		c.transport = tr
	}
	return c, nil
}

// Close disconnects from the workers. It is idempotent.
func (c *Controller) Close() {
	c.transport.Close()
}

// callOnce makes a single attempt with the per-call deadline. A call
// abandoned at the deadline may still complete on the worker; it
// decodes into a private reply, so a late arrival can never race the
// caller's retry.
func (c *Controller) callOnce(node int, method string, args, reply interface{}) error {
	priv := reflect.New(reflect.TypeOf(reply).Elem())
	ch := make(chan error, 1)
	//lint:ignore gostop single bounded RPC attempt; the buffered channel lets it finish and exit even after the deadline abandons it
	go func() { ch <- c.transport.Call(node, method, args, priv.Interface()) }()
	timer := time.NewTimer(c.opts.CallTimeout)
	defer timer.Stop()
	select {
	case err := <-ch:
		if err == nil {
			reflect.ValueOf(reply).Elem().Set(priv.Elem())
		}
		return err
	case <-timer.C:
		c.faults.RPCTimeouts++
		return &timeoutError{node: node, method: method, limit: c.opts.CallTimeout}
	}
}

// call invokes a worker method with deadline, bounded retries on
// transient failures, and exponential backoff with seeded jitter.
// Application-level errors from the worker return immediately.
func (c *Controller) call(node int, method string, args, reply interface{}) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = c.callOnce(node, method, args, reply)
		if err == nil || !Transient(err) || attempt >= c.retry.MaxAttempts {
			return err
		}
		c.faults.RPCRetries++
		time.Sleep(c.retry.backoff(attempt, c.rng.Float64()))
	}
}

// isUnknownJob matches the worker's "does not host job" protocol
// reply: the worker is alive but no longer has the task — either it
// restarted and lost state, or a retried preempt's first attempt
// already executed. Both are recoverable, not fatal.
func isUnknownJob(err error) bool {
	return err != nil && strings.Contains(err.Error(), "does not host job")
}

// noteFailure records a failed call against a node's health and
// updates the outage counter on a down transition.
func (c *Controller) noteFailure(node int) {
	if c.health.fail(node) {
		c.faults.NodeDown++
	}
}

// Run schedules the jobs on the live workers until all complete,
// returning the same metrics report the simulator produces. Job arrival
// times are interpreted in simulated seconds from the start of the run.
func (c *Controller) Run(jobs []*job.Job) (rep *metrics.Report, retErr error) {
	states := make([]*sched.JobState, len(jobs))
	order := append([]*job.Job(nil), jobs...)
	sort.Slice(order, func(a, b int) bool {
		if order[a].Arrival < order[b].Arrival {
			return true
		}
		if order[a].Arrival > order[b].Arrival {
			return false
		}
		return order[a].ID < order[b].ID
	})
	for i, j := range order {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("rpccluster: %w", err)
		}
		states[i] = &sched.JobState{
			Job: j, Remaining: j.TotalIters(),
			RoundsByType: make(map[gpu.Type]float64),
		}
	}
	report := &metrics.Report{Scheduler: c.sched.Name() + "+rpc", TotalGPUs: c.clus.TotalGPUs()}
	c.faults = &report.Faults
	c.leads = map[int]int{}
	c.lastCkpt = map[int]float64{}
	start := time.Now()
	simNow := func() float64 { return time.Since(start).Seconds() * c.opts.TimeScale }

	// A mid-run error must not strand tasks on workers or leak client
	// connections: best-effort preempt everything still placed, then
	// close the transport.
	defer func() {
		if retErr != nil {
			c.stopAll(states)
			c.Close()
		}
	}()

	next := 0
	var active []*sched.JobState
	for round := 0; round < c.opts.MaxRounds; round++ {
		roundStart := simNow()
		for next < len(states) && states[next].Job.Arrival <= roundStart {
			active = append(active, states[next])
			next++
		}

		// Heartbeat probes: down/up transitions, reconnects, and state
		// reconciliation with workers that restarted.
		c.probeAll(active)
		// Any job with a task on a down node is preempted in absentia:
		// progress rolls back to its last checkpoint (iterations since
		// then are lost, and accounted), and the job requeues for this
		// round's scheduling decision.
		if down := c.health.downSet(); down != nil {
			for _, st := range active {
				for _, p := range st.Alloc.Canonical() {
					if down[p.Node] {
						c.recoverJob(st)
						break
					}
				}
			}
		}

		// Poll progress and collect completions.
		var still []*sched.JobState
		for _, st := range active {
			lead, running := c.leads[st.Job.ID]
			if !running {
				still = append(still, st)
				continue
			}
			var prog ProgressReply
			if err := c.call(lead, "Progress", ProgressArgs{JobID: st.Job.ID}, &prog); err != nil {
				switch {
				case Transient(err):
					// Channel trouble only: the task keeps running on
					// the worker, so keep the job as-is. Health decides
					// whether the node is down; the sweep above
					// reclaims the job next round if so.
					c.noteFailure(lead)
					still = append(still, st)
					continue
				case isUnknownJob(err):
					// Worker is alive but lost the task (restart
					// between probes): recover from the checkpoint.
					c.recoverJob(st)
					still = append(still, st)
					continue
				default:
					return nil, fmt.Errorf("rpccluster: progress job %d: %w", st.Job.ID, err)
				}
			}
			st.Remaining = st.Job.TotalIters() - prog.Iter
			if prog.Done {
				// Busy time approximated from the job's aggregate work at
				// its best rate (exact per-round rates live on workers).
				if _, best, ok := st.Job.BestType(); ok && best > 0 {
					report.BusyGPUSeconds += st.Job.TotalIters() / best
				}
				// Forget the lead first: the job's completion is already
				// confirmed, so a flaky preempt below must release
				// devices best-effort, not roll the job back.
				delete(c.leads, st.Job.ID)
				if err := c.releaseJob(st, prog.FinishSimTime); err != nil {
					return nil, err
				}
				if c.opts.Store != nil {
					c.opts.Store.Delete(st.Job.ID)
				}
				delete(c.lastCkpt, st.Job.ID)
				st.Alloc = nil
				report.Jobs = append(report.Jobs, c.result(st, prog.FinishSimTime, len(jobs)))
				if prog.FinishSimTime > report.Makespan {
					report.Makespan = prog.FinishSimTime
				}
				continue
			}
			still = append(still, st)
		}
		active = still
		if len(active) == 0 && next >= len(states) {
			break
		}

		// Scheduling decision on live state. Down nodes are hidden from
		// the scheduler with the same Without semantics the simulator
		// uses for injected outages.
		viewCluster := c.clus
		if down := c.health.downSet(); down != nil {
			viewCluster = c.clus.Without(down)
		}
		ctx := &sched.Context{
			Now: roundStart, Round: round, RoundLength: c.opts.RoundLength,
			Horizon: roundStart + horizonEstimate(active),
			Cluster: viewCluster, Jobs: append([]*sched.JobState(nil), active...),
		}
		t0 := time.Now()
		decisions := c.sched.Schedule(ctx)
		report.DecisionTime += time.Since(t0)
		report.Decisions++
		report.Rounds++

		// Apply in two phases so a job's new placement never races the
		// devices another job is about to release: first preempt every
		// changed job, then launch the new placements.
		type change struct {
			st         *sched.JobState
			wasRunning bool
		}
		var changes []change
		for _, st := range active {
			newAlloc := decisions[st.Job.ID].Canonical()
			if newAlloc.Equal(st.Alloc) {
				if w := newAlloc.Workers(); w > 0 {
					report.JobRoundAllocs++
					report.HeldGPUSeconds += float64(w) * c.opts.RoundLength
				}
				continue
			}
			if err := sched.Validate(st.Job, newAlloc); err != nil {
				return nil, fmt.Errorf("rpccluster: %w", err)
			}
			for _, p := range newAlloc {
				if c.health.isDown(p.Node) {
					return nil, fmt.Errorf("rpccluster: %s allocated job %d to down node %d",
						c.sched.Name(), st.Job.ID, p.Node)
				}
			}
			wasRunning := st.Alloc.Workers() > 0
			if wasRunning {
				if err := c.releaseJob(st, roundStart); err != nil {
					return nil, err
				}
				delete(c.leads, st.Job.ID)
			}
			st.Alloc = newAlloc
			changes = append(changes, change{st: st, wasRunning: wasRunning})
		}
		for _, ch := range changes {
			st := ch.st
			w := st.Alloc.Workers()
			if w == 0 {
				continue
			}
			if err := c.launchJob(st, roundStart); err != nil {
				// A node died between the decision and the launch: the
				// partial gang was rolled back inside launchJob. The
				// job requeues for the next round from its checkpoint.
				st.Alloc = nil
				c.faults.Recoveries++
				continue
			}
			if ch.wasRunning {
				report.JobRoundReallocs++
				st.Reallocations++
			}
			if !st.Started {
				st.Started = true
				st.StartTime = roundStart
			}
			report.JobRoundAllocs++
			report.HeldGPUSeconds += float64(w) * c.opts.RoundLength
			st.Rounds++
			for _, typ := range st.Alloc.Types() {
				st.RoundsByType[typ]++
			}
		}

		// Sleep until the next round boundary on the scaled clock.
		roundReal := time.Duration(c.opts.RoundLength / c.opts.TimeScale * float64(time.Second))
		target := time.Duration(round+1) * roundReal
		if rem := target - time.Since(start); rem > 0 {
			time.Sleep(rem)
		}
	}
	if len(active) > 0 || next < len(states) {
		return nil, fmt.Errorf("rpccluster: %d jobs unfinished after %d rounds", len(active)+len(states)-next, c.opts.MaxRounds)
	}
	// A preempt dropped during the final rounds can leave a finished
	// job's task holding devices on a worker; sweep so nothing outlives
	// the run.
	c.sweepZombies()
	report.SortJobsByID()
	return report, nil
}

// sweepZombies frees any task still held by a reachable worker. Called
// after every job has completed, so everything found is a zombie from a
// lost preempt. Best effort: an unreachable worker keeps its zombies.
func (c *Controller) sweepZombies() {
	for node := range c.nodes {
		if c.health.isDown(node) {
			continue
		}
		var status StatusReply
		if err := c.call(node, "Status", StatusArgs{}, &status); err != nil {
			continue
		}
		for _, id := range status.Jobs {
			c.call(node, "Preempt", PreemptArgs{JobID: id}, &PreemptReply{})
		}
	}
}

// probeAll heartbeats every worker once (single attempt — failures are
// the signal; the K-consecutive threshold provides the hysteresis).
// Down workers get a reconnect attempt first, so a restarted worker is
// re-admitted by the same probe that finds it alive again.
func (c *Controller) probeAll(active []*sched.JobState) {
	for node := range c.nodes {
		if c.health.isDown(node) {
			if err := c.transport.Reconnect(node); err != nil {
				continue // still unreachable
			}
		}
		var pr PingReply
		if err := c.callOnce(node, "Ping", PingArgs{}, &pr); err != nil {
			c.noteFailure(node)
			continue
		}
		cameUp, restarted, needSync := c.health.ok(node, pr.Incarnation)
		if cameUp {
			c.faults.NodeUp++
		}
		if restarted {
			// The worker bounced between probes without a visible
			// outage; account the transition pair it implies.
			c.faults.NodeDown++
			c.faults.NodeUp++
		}
		if needSync {
			c.syncNode(node, active)
		}
	}
}

// syncNode reconciles the controller's view with a worker whose state
// may have diverged (re-admitted after an outage, restarted, or an
// earlier call to it failed mid-flight): jobs the controller placed
// there that the worker lost are recovered from their checkpoints, and
// tasks the worker still hosts that the controller no longer tracks
// (zombies from a lost preempt) are freed.
func (c *Controller) syncNode(node int, active []*sched.JobState) {
	var status StatusReply
	if err := c.callOnce(node, "Status", StatusArgs{}, &status); err != nil {
		if Transient(err) {
			c.noteFailure(node)
		}
		return
	}
	onWorker := make(map[int]bool, len(status.Jobs))
	for _, id := range status.Jobs {
		onWorker[id] = true
	}
	tracked := make(map[int]bool)
	for _, st := range active {
		placedHere := false
		for _, p := range st.Alloc.Canonical() {
			if p.Node == node {
				placedHere = true
				break
			}
		}
		if !placedHere {
			continue
		}
		tracked[st.Job.ID] = true
		if !onWorker[st.Job.ID] {
			c.recoverJob(st)
		}
	}
	zombies := make([]int, 0, len(onWorker))
	for id := range onWorker {
		zombies = append(zombies, id)
	}
	sort.Ints(zombies)
	for _, id := range zombies {
		if !tracked[id] {
			// Zombie task: best-effort free its devices.
			c.callOnce(node, "Preempt", PreemptArgs{JobID: id}, &PreemptReply{})
		}
	}
}

// recoverJob preempts a job in absentia after part of its gang was
// lost: surviving placements are freed without keeping their progress
// (a dead gang member invalidates work past the last checkpoint),
// Remaining rolls back to the last durable checkpoint with the lost
// iterations accounted, and the job requeues for the next round.
func (c *Controller) recoverJob(st *sched.JobState) {
	for _, p := range st.Alloc.Canonical() {
		if c.health.isDown(p.Node) {
			continue
		}
		var rep PreemptReply
		if err := c.callOnce(p.Node, "Preempt", PreemptArgs{JobID: st.Job.ID}, &rep); err != nil && Transient(err) {
			c.noteFailure(p.Node)
		}
	}
	delete(c.leads, st.Job.ID)
	st.Alloc = nil
	c.rollbackToCheckpoint(st)
}

// rollbackToCheckpoint restores a job's progress to its last durable
// checkpoint, counting the discarded iterations.
func (c *Controller) rollbackToCheckpoint(st *sched.JobState) {
	ckpt := c.lastCkpt[st.Job.ID]
	if lost := (st.Job.TotalIters() - st.Remaining) - ckpt; lost > 0 {
		c.faults.LostIterations += lost
	}
	st.Remaining = st.Job.TotalIters() - ckpt
	c.faults.Recoveries++
}

// stopAll best-effort preempts every job still holding devices; the
// error-path cleanup of Run.
func (c *Controller) stopAll(states []*sched.JobState) {
	for _, st := range states {
		if st == nil || st.Alloc.Workers() == 0 {
			continue
		}
		for _, p := range st.Alloc.Canonical() {
			if c.health.isDown(p.Node) {
				continue
			}
			c.callOnce(p.Node, "Preempt", PreemptArgs{JobID: st.Job.ID}, &PreemptReply{})
		}
	}
}

// releaseJob preempts a job on every node it occupies and, when a
// checkpoint store is configured, persists the checkpointed progress.
// Placements on down nodes are skipped; a lead that cannot be reached
// means the checkpoint was not captured, so the job rolls back to its
// previous one instead of keeping unverified progress.
func (c *Controller) releaseJob(st *sched.JobState, nowSim float64) error {
	checkpointIter := -1.0
	leadNode, hasLead := c.leads[st.Job.ID]
	leadReached := !hasLead
	for _, p := range st.Alloc.Canonical() {
		if c.health.isDown(p.Node) {
			continue
		}
		var rep PreemptReply
		err := c.call(p.Node, "Preempt", PreemptArgs{JobID: st.Job.ID}, &rep)
		switch {
		case err == nil:
		case Transient(err):
			c.noteFailure(p.Node)
			continue
		case isUnknownJob(err):
			// Already gone worker-side (lost preempt retry, restart).
			continue
		default:
			return fmt.Errorf("rpccluster: preempt job %d on node %d: %w", st.Job.ID, p.Node, err)
		}
		if p.Node == leadNode {
			leadReached = true
		}
		if rep.Done || rep.Iter > 0 {
			// rep.Iter holds completed iterations, so the job's new
			// remaining work is total minus that; progress only ever
			// moves forward (never above the current Remaining).
			if remaining := st.Job.TotalIters() - rep.Iter; remaining < st.Remaining {
				st.Remaining = remaining
			}
			if rep.Iter > checkpointIter {
				checkpointIter = rep.Iter
			}
		}
	}
	if hasLead && !leadReached {
		// The lead (and its checkpoint) is unreachable: everything
		// since the previous durable checkpoint is lost.
		c.rollbackToCheckpoint(st)
		return nil
	}
	if checkpointIter >= 0 {
		c.lastCkpt[st.Job.ID] = checkpointIter
		if c.opts.Store != nil {
			_, err := c.opts.Store.Save(nowSim, ckptstore.Checkpoint{
				JobID: st.Job.ID, Iter: checkpointIter,
				SizeBytes: modelBytes(st.Job.Model),
			})
			if err != nil {
				return fmt.Errorf("rpccluster: %w", err)
			}
		}
	}
	return nil
}

// modelBytes returns the serialized parameter size for checkpoint
// transfers, from the PS training model; unknown models assume 100 MB.
func modelBytes(model string) float64 {
	if m, ok := psmodel.ModelByName(model); ok {
		return m.ParamBytes
	}
	return 100e6
}

// launchJob starts the gang across its placements; the first placement
// is the lead tracking progress. On any placement failure the already
// launched part of the gang is rolled back (best effort) and the error
// returned, leaving the job consistent at its checkpoint.
func (c *Controller) launchJob(st *sched.JobState, nowSim float64) error {
	placements := st.Alloc.Canonical()
	rate := sched.Rate(st.Job, c.clus, st.Alloc)
	delay := checkpoint.DefaultDelay
	if c.opts.UseModelCosts {
		delay = checkpoint.Delay(st.Job.Model, true)
	}
	if c.opts.Store != nil {
		// The restore delay is the real read time of the checkpoint blob
		// through the (possibly queued) storage device.
		if _, doneAt, ok := c.opts.Store.Load(nowSim, st.Job.ID); ok {
			delay = doneAt - nowSim
		} else {
			delay = 0 // fresh start: nothing to restore
		}
	}
	startIter := st.Job.TotalIters() - st.Remaining
	for i, p := range placements {
		args := LaunchArgs{
			JobID:           st.Job.ID,
			Lead:            i == 0,
			Devices:         p.Count,
			RateIterPerSec:  rate,
			StartIter:       startIter,
			TargetIters:     st.Job.TotalIters(),
			DelaySimSeconds: delay,
			NowSimSeconds:   nowSim,
		}
		var rep LaunchReply
		if err := c.call(p.Node, "Launch", args, &rep); err != nil {
			if Transient(err) {
				c.noteFailure(p.Node)
			}
			// Roll back the partial gang.
			for _, q := range placements[:i] {
				if c.health.isDown(q.Node) {
					continue
				}
				c.callOnce(q.Node, "Preempt", PreemptArgs{JobID: st.Job.ID}, &PreemptReply{})
			}
			delete(c.leads, st.Job.ID)
			return fmt.Errorf("rpccluster: launch job %d on node %d: %w", st.Job.ID, p.Node, err)
		}
		if i == 0 {
			c.leads[st.Job.ID] = p.Node
		}
	}
	c.lastCkpt[st.Job.ID] = startIter
	return nil
}

func (c *Controller) result(st *sched.JobState, finish float64, n int) metrics.JobResult {
	_, best, _ := st.Job.BestType()
	return metrics.JobResult{
		ID: st.Job.ID, Model: st.Job.Model, Workers: st.Job.Workers,
		Arrival: st.Job.Arrival, Start: st.StartTime, Finish: finish,
		TotalIters: st.Job.TotalIters(),
		IsolatedDuration: metrics.IsolatedDuration(
			st.Job.TotalIters(), st.Job.Workers, best, n, c.clus.TotalGPUs()),
		Reallocations: st.Reallocations,
	}
}

func horizonEstimate(active []*sched.JobState) float64 {
	h := 3600.0
	for _, st := range active {
		d := st.Job.MaxDuration()
		if d < 1e12 {
			h += d
		}
	}
	return h
}
