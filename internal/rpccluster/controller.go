package rpccluster

import (
	"fmt"
	"net/rpc"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/ckptstore"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/psmodel"
	"repro/internal/sched"
)

// NodeSpec describes one worker agent the controller drives.
type NodeSpec struct {
	Addr string
	// GPU is the accelerator type of the node's devices (prototype
	// machines are homogeneous per node, as on the paper's AWS fleet).
	GPU gpu.Type
	// Devices is the node's accelerator count.
	Devices int
	// Speed is the straggler factor (1.0 nominal).
	Speed float64
}

// Options configures the controller.
type Options struct {
	// RoundLength is the scheduling interval in simulated seconds.
	RoundLength float64
	// TimeScale is simulated seconds per wall-clock second. Workers must
	// be created with the same value.
	TimeScale float64
	// UseModelCosts selects Table IV checkpoint costs; otherwise the
	// flat 10 s delay applies to every (re)allocation.
	UseModelCosts bool
	// Store, when non-nil, persists checkpoints through a
	// bandwidth-modeled storage device: restart delays then come from
	// actual blob sizes (the model's parameter bytes) and device
	// queueing instead of the fixed cost table.
	Store *ckptstore.Store
	// MaxRounds bounds the run.
	MaxRounds int
}

// DefaultOptions replays at 3600x: a 6-minute round every 100 ms.
func DefaultOptions() Options {
	return Options{
		RoundLength: checkpoint.RoundSeconds,
		TimeScale:   3600,
		MaxRounds:   100000,
	}
}

// Controller drives a set of live worker agents with a scheduling
// policy, mirroring the paper's prototype scheduler process.
type Controller struct {
	opts    Options
	nodes   []NodeSpec
	clients []*rpc.Client
	clus    *cluster.Cluster
	sched   sched.Scheduler
}

// NewController connects to every worker agent. The cluster model used
// for scheduling decisions is derived from the node specs.
func NewController(s sched.Scheduler, nodes []NodeSpec, opts Options) (*Controller, error) {
	if opts.RoundLength <= 0 || opts.TimeScale <= 0 {
		return nil, fmt.Errorf("rpccluster: invalid options %+v", opts)
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = DefaultOptions().MaxRounds
	}
	fleets := make([]gpu.Fleet, len(nodes))
	for i, n := range nodes {
		if n.Devices <= 0 {
			return nil, fmt.Errorf("rpccluster: node %d has no devices", i)
		}
		fleets[i] = gpu.Fleet{n.GPU: n.Devices}
	}
	clus := cluster.New(fleets...)
	for i, n := range nodes {
		if n.Speed > 0 {
			clus.SetSpeed(i, n.Speed)
		}
	}
	c := &Controller{opts: opts, nodes: nodes, clus: clus, sched: s}
	for _, n := range nodes {
		client, err := rpc.Dial("tcp", n.Addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("rpccluster: dial %s: %w", n.Addr, err)
		}
		c.clients = append(c.clients, client)
	}
	return c, nil
}

// Close disconnects from the workers.
func (c *Controller) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

func (c *Controller) call(node int, method string, args, reply interface{}) error {
	return c.clients[node].Call(fmt.Sprintf("Worker%d.%s", node, method), args, reply)
}

// Run schedules the jobs on the live workers until all complete,
// returning the same metrics report the simulator produces. Job arrival
// times are interpreted in simulated seconds from the start of the run.
func (c *Controller) Run(jobs []*job.Job) (*metrics.Report, error) {
	states := make([]*sched.JobState, len(jobs))
	order := append([]*job.Job(nil), jobs...)
	sort.Slice(order, func(a, b int) bool {
		if order[a].Arrival != order[b].Arrival {
			return order[a].Arrival < order[b].Arrival
		}
		return order[a].ID < order[b].ID
	})
	for i, j := range order {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("rpccluster: %w", err)
		}
		states[i] = &sched.JobState{
			Job: j, Remaining: j.TotalIters(),
			RoundsByType: make(map[gpu.Type]float64),
		}
	}
	report := &metrics.Report{Scheduler: c.sched.Name() + "+rpc", TotalGPUs: c.clus.TotalGPUs()}
	leads := map[int]int{} // job ID -> lead node
	start := time.Now()
	simNow := func() float64 { return time.Since(start).Seconds() * c.opts.TimeScale }

	next := 0
	var active []*sched.JobState
	for round := 0; round < c.opts.MaxRounds; round++ {
		roundStart := simNow()
		for next < len(states) && states[next].Job.Arrival <= roundStart {
			active = append(active, states[next])
			next++
		}

		// Poll progress and collect completions.
		var still []*sched.JobState
		for _, st := range active {
			lead, running := leads[st.Job.ID]
			if !running {
				still = append(still, st)
				continue
			}
			var prog ProgressReply
			if err := c.call(lead, "Progress", ProgressArgs{JobID: st.Job.ID}, &prog); err != nil {
				return nil, fmt.Errorf("rpccluster: progress job %d: %w", st.Job.ID, err)
			}
			st.Remaining = st.Job.TotalIters() - prog.Iter
			if prog.Done {
				// Busy time approximated from the job's aggregate work at
				// its best rate (exact per-round rates live on workers).
				if _, best, ok := st.Job.BestType(); ok && best > 0 {
					report.BusyGPUSeconds += st.Job.TotalIters() / best
				}
				if err := c.releaseJob(st, prog.FinishSimTime); err != nil {
					return nil, err
				}
				if c.opts.Store != nil {
					c.opts.Store.Delete(st.Job.ID)
				}
				delete(leads, st.Job.ID)
				st.Alloc = nil
				report.Jobs = append(report.Jobs, c.result(st, prog.FinishSimTime, len(jobs)))
				if prog.FinishSimTime > report.Makespan {
					report.Makespan = prog.FinishSimTime
				}
				continue
			}
			still = append(still, st)
		}
		active = still
		if len(active) == 0 && next >= len(states) {
			break
		}

		// Scheduling decision on live state.
		ctx := &sched.Context{
			Now: roundStart, Round: round, RoundLength: c.opts.RoundLength,
			Horizon: roundStart + horizonEstimate(active),
			Cluster: c.clus, Jobs: append([]*sched.JobState(nil), active...),
		}
		t0 := time.Now()
		decisions := c.sched.Schedule(ctx)
		report.DecisionTime += time.Since(t0)
		report.Decisions++
		report.Rounds++

		// Apply in two phases so a job's new placement never races the
		// devices another job is about to release: first preempt every
		// changed job, then launch the new placements.
		type change struct {
			st         *sched.JobState
			wasRunning bool
		}
		var changes []change
		for _, st := range active {
			newAlloc := decisions[st.Job.ID].Canonical()
			if newAlloc.Equal(st.Alloc) {
				if w := newAlloc.Workers(); w > 0 {
					report.JobRoundAllocs++
					report.HeldGPUSeconds += float64(w) * c.opts.RoundLength
				}
				continue
			}
			if err := sched.Validate(st.Job, newAlloc); err != nil {
				return nil, fmt.Errorf("rpccluster: %w", err)
			}
			wasRunning := st.Alloc.Workers() > 0
			if wasRunning {
				if err := c.releaseJob(st, roundStart); err != nil {
					return nil, err
				}
				delete(leads, st.Job.ID)
			}
			st.Alloc = newAlloc
			changes = append(changes, change{st: st, wasRunning: wasRunning})
		}
		for _, ch := range changes {
			st := ch.st
			w := st.Alloc.Workers()
			if w == 0 {
				continue
			}
			if ch.wasRunning {
				report.JobRoundReallocs++
				st.Reallocations++
			}
			if !st.Started {
				st.Started = true
				st.StartTime = roundStart
			}
			report.JobRoundAllocs++
			report.HeldGPUSeconds += float64(w) * c.opts.RoundLength
			if err := c.launchJob(st, leads, roundStart); err != nil {
				return nil, err
			}
			st.Rounds++
			for _, typ := range st.Alloc.Types() {
				st.RoundsByType[typ]++
			}
		}

		// Sleep until the next round boundary on the scaled clock.
		roundReal := time.Duration(c.opts.RoundLength / c.opts.TimeScale * float64(time.Second))
		target := time.Duration(round+1) * roundReal
		if rem := target - time.Since(start); rem > 0 {
			time.Sleep(rem)
		}
	}
	if len(active) > 0 || next < len(states) {
		return nil, fmt.Errorf("rpccluster: %d jobs unfinished after %d rounds", len(active)+len(states)-next, c.opts.MaxRounds)
	}
	report.SortJobsByID()
	return report, nil
}

// releaseJob preempts a job on every node it occupies and, when a
// checkpoint store is configured, persists the checkpointed progress.
func (c *Controller) releaseJob(st *sched.JobState, nowSim float64) error {
	checkpointIter := -1.0
	for _, p := range st.Alloc.Canonical() {
		var rep PreemptReply
		if err := c.call(p.Node, "Preempt", PreemptArgs{JobID: st.Job.ID}, &rep); err != nil {
			return fmt.Errorf("rpccluster: preempt job %d on node %d: %w", st.Job.ID, p.Node, err)
		}
		if rep.Done || rep.Iter > 0 {
			if done := st.Job.TotalIters() - rep.Iter; done < st.Remaining {
				st.Remaining = done
			}
			if rep.Iter > checkpointIter {
				checkpointIter = rep.Iter
			}
		}
	}
	if c.opts.Store != nil && checkpointIter >= 0 {
		_, err := c.opts.Store.Save(nowSim, ckptstore.Checkpoint{
			JobID: st.Job.ID, Iter: checkpointIter,
			SizeBytes: modelBytes(st.Job.Model),
		})
		if err != nil {
			return fmt.Errorf("rpccluster: %w", err)
		}
	}
	return nil
}

// modelBytes returns the serialized parameter size for checkpoint
// transfers, from the PS training model; unknown models assume 100 MB.
func modelBytes(model string) float64 {
	if m, ok := psmodel.ModelByName(model); ok {
		return m.ParamBytes
	}
	return 100e6
}

// launchJob starts the gang across its placements; the first placement
// is the lead tracking progress.
func (c *Controller) launchJob(st *sched.JobState, leads map[int]int, nowSim float64) error {
	placements := st.Alloc.Canonical()
	rate := sched.Rate(st.Job, c.clus, st.Alloc)
	delay := checkpoint.DefaultDelay
	if c.opts.UseModelCosts {
		delay = checkpoint.Delay(st.Job.Model, true)
	}
	if c.opts.Store != nil {
		// The restore delay is the real read time of the checkpoint blob
		// through the (possibly queued) storage device.
		if _, doneAt, ok := c.opts.Store.Load(nowSim, st.Job.ID); ok {
			delay = doneAt - nowSim
		} else {
			delay = 0 // fresh start: nothing to restore
		}
	}
	for i, p := range placements {
		args := LaunchArgs{
			JobID:           st.Job.ID,
			Lead:            i == 0,
			Devices:         p.Count,
			RateIterPerSec:  rate,
			StartIter:       st.Job.TotalIters() - st.Remaining,
			TargetIters:     st.Job.TotalIters(),
			DelaySimSeconds: delay,
		}
		var rep LaunchReply
		if err := c.call(p.Node, "Launch", args, &rep); err != nil {
			return fmt.Errorf("rpccluster: launch job %d on node %d: %w", st.Job.ID, p.Node, err)
		}
		if i == 0 {
			leads[st.Job.ID] = p.Node
		}
	}
	return nil
}

func (c *Controller) result(st *sched.JobState, finish float64, n int) metrics.JobResult {
	_, best, _ := st.Job.BestType()
	return metrics.JobResult{
		ID: st.Job.ID, Model: st.Job.Model, Workers: st.Job.Workers,
		Arrival: st.Job.Arrival, Start: st.StartTime, Finish: finish,
		TotalIters: st.Job.TotalIters(),
		IsolatedDuration: metrics.IsolatedDuration(
			st.Job.TotalIters(), st.Job.Workers, best, n, c.clus.TotalGPUs()),
		Reallocations: st.Reallocations,
	}
}

func horizonEstimate(active []*sched.JobState) float64 {
	h := 3600.0
	for _, st := range active {
		d := st.Job.MaxDuration()
		if d < 1e12 {
			h += d
		}
	}
	return h
}
