package core

import (
	"math"
	"sort"

	"repro/internal/bug"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// PanicOnInconsistency, when true, turns internal allocation
// inconsistencies (a candidate that no longer fits the free state the
// scheduler itself maintains) into panics instead of silently skipped
// decisions. Tests enable it so placement bugs fail loudly; production
// keeps it off and reads Scheduler.Inconsistencies instead.
var PanicOnInconsistency bool

// Options configures the Hadar scheduler. The zero value is not valid;
// use DefaultOptions.
type Options struct {
	// Utility is the per-job utility U_j(.) the dual subroutine
	// maximizes. Swapping it expresses other scheduling policies
	// (Section III.A, "Expressing other scheduling policies").
	Utility Utility
	// Eta is the price scaling factor of Eq. 7; 0 derives the
	// theorem-compatible default from the workload.
	Eta float64
	// CommCost is the relative cost surcharge per additional server an
	// allocation spans (Algorithm 2 line 27 adds a communication cost to
	// non-consolidated allocations).
	CommCost float64
	// Stickiness is the cost discount applied to a job's existing
	// allocation, suppressing needless checkpoint-restart churn. The
	// paper observes only ~30% of rounds change an average job's
	// allocation.
	Stickiness float64
	// DPJobLimit bounds the queue size for the exact memoized DP
	// (Algorithm 2); larger queues fall back to the greedy
	// payoff-density pass, preserving Fig. 7's scalability.
	DPJobLimit int
	// DPWorkers caps the worker goroutines the DP fans its search out
	// across: the search tree is expanded sequentially to a small
	// frontier, each frontier subtree runs on its own cloned free state,
	// and the results fold back with the exact sequential comparison, so
	// the schedule is byte-identical at every worker count. 0 uses every
	// available CPU; 1 forces the sequential search.
	DPWorkers int
	// TaskLevel enables mixed-accelerator-type gangs (Hadar's core
	// feature). Disabling it yields a job-level heterogeneity-aware
	// scheduler for the DESIGN.md ablation.
	TaskLevel bool
	// ExponentialPrice selects Eq. 5's exponential price function; false
	// uses a linear price (ablation).
	ExponentialPrice bool
	// Backfill makes the scheduler work-conserving: after the
	// positive-payoff primal-dual pass, leftover devices are offered to
	// the remaining jobs in priority order even when their payoff is
	// non-positive. This matches the high GPU utilization the paper
	// reports for Hadar (Fig. 4) without affecting who wins the
	// contended devices.
	Backfill bool
	// Aging boosts a job's queue priority by (1 + age/Aging), in
	// seconds, so long-pending large jobs eventually claim fast devices.
	// This bounds the completion-time tail (the paper's Fig. 8 shows a
	// tight min-max JCT band for Hadar). 0 disables aging.
	Aging float64
	// NameSuffix distinguishes ablation variants in reports.
	NameSuffix string
}

// DefaultOptions returns the configuration used for the paper's JCT
// experiments.
func DefaultOptions() Options {
	return Options{
		Utility:          InverseJCT{},
		CommCost:         0.1,
		Stickiness:       0.3,
		DPJobLimit:       10,
		TaskLevel:        true,
		ExponentialPrice: true,
		Backfill:         true,
	}
}

// Scheduler is Hadar (Algorithm 1): at every round it recomputes dual
// prices from the live workload and runs the DP/greedy dual subroutine
// to admit and place jobs with positive payoff. It implements
// sched.Scheduler and is not safe for concurrent use.
type Scheduler struct {
	opts       Options
	lastAlpha  float64
	lastPrices *priceTable
	// inconsistencies counts internal allocation failures: decisions the
	// dual subroutine produced that did not fit the free state it was
	// itself tracking. Always 0 unless there is a placement bug.
	inconsistencies int
	// probe is the sequential passes' FIND_ALLOC working set, reused
	// across rounds (the scheduler is documented as not safe for
	// concurrent use). Parallel DP workers build their own probes.
	probe probe
	// Per-round scratch, all recycled between rounds: the
	// density-ordered queue and its sort entries, the per-job usable
	// type lists carved from one arena, and the payoff-prescreen flags.
	queueScratch []*sched.JobState
	entScratch   []queueEntry
	typesArena   []gpu.Type
	typesScratch [][]gpu.Type
	skipScratch  []bool
}

// New builds a Hadar scheduler. It panics on invalid options so
// misconfiguration fails fast at construction.
func New(opts Options) *Scheduler {
	if err := validateUtility(opts.Utility); err != nil {
		bug.Failf("core: %v", err)
	}
	if opts.CommCost < 0 || opts.Stickiness < 0 || opts.Stickiness >= 1 {
		bug.Failf("core: invalid CommCost %v / Stickiness %v", opts.CommCost, opts.Stickiness)
	}
	if opts.DPJobLimit < 0 {
		bug.Failf("core: negative DPJobLimit %d", opts.DPJobLimit)
	}
	if opts.DPWorkers < 0 {
		bug.Failf("core: negative DPWorkers %d", opts.DPWorkers)
	}
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "hadar" + s.opts.NameSuffix }

// LastAlpha returns the competitive-ratio factor alpha (Theorem 2) of
// the most recent round's price bounds; Hadar is 2*alpha competitive.
func (s *Scheduler) LastAlpha() float64 { return s.lastAlpha }

// PriceBounds returns the most recent round's per-type utility bounds
// U_min^r / U_max^r (Eq. 6-7), indexed by gpu.Type. Types no active job
// can use report U_max = 0. It implements invariant.PriceReporter so
// the correctness oracle can audit the dual price state every round.
func (s *Scheduler) PriceBounds() (umin, umax []float64) {
	if s.lastPrices == nil {
		return nil, nil
	}
	return s.lastPrices.umin[:], s.lastPrices.umax[:]
}

// PriceAt evaluates the most recent round's marginal price function k^r
// (Eq. 5) for type t at the given utilization fraction in [0, 1]. It
// implements invariant.PriceReporter.
func (s *Scheduler) PriceAt(t gpu.Type, utilization float64) float64 {
	if s.lastPrices == nil || !t.Valid() {
		return 0
	}
	return s.lastPrices.at(t, utilization)
}

// Inconsistencies returns how many internal allocation failures the
// scheduler has swallowed across its lifetime. Nonzero values indicate
// a placement bug: a candidate won the dual subroutine but no longer
// fit the very free state the subroutine priced it against.
func (s *Scheduler) Inconsistencies() int { return s.inconsistencies }

// noteInconsistency records (or, under PanicOnInconsistency, raises) an
// internal allocation failure.
func (s *Scheduler) noteInconsistency(err error) {
	s.inconsistencies++
	if PanicOnInconsistency {
		bug.Failf("core: inconsistent allocation decision: %v", err)
	}
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	pt := newPriceTable(ctx, s.opts.Utility, s.opts.Eta, s.opts.ExponentialPrice)
	s.lastAlpha = pt.alpha()
	s.lastPrices = pt

	queue := s.orderQueue(ctx)
	// Usable-type lists are a function of the immutable job alone;
	// compute them once per round instead of once per FIND_ALLOC call.
	jobTypes := s.usableTypes(queue)
	skip := s.payoffPrescreen(ctx, queue, jobTypes, pt)
	if len(queue) <= s.opts.DPJobLimit {
		s.dpAllocate(ctx, queue, jobTypes, skip, pt, out)
	} else {
		s.greedyAllocate(ctx, queue, jobTypes, skip, pt, out)
	}
	if s.opts.Backfill {
		s.backfill(ctx, queue, jobTypes, pt, out)
	}
	return out
}

// usableTypes fills the per-job usable-type lists for the round,
// carving every list from one reused arena so the whole round costs at
// most one allocation here.
func (s *Scheduler) usableTypes(queue []*sched.JobState) [][]gpu.Type {
	if want := len(queue) * int(gpu.NumTypes); cap(s.typesArena) < want {
		s.typesArena = make([]gpu.Type, 0, want)
	}
	arena := s.typesArena[:0]
	lists := s.typesScratch[:0]
	for _, st := range queue {
		mark := len(arena)
		arena = sched.AppendUsableTypes(arena, st.Job)
		lists = append(lists, arena[mark:len(arena):len(arena)])
	}
	s.typesArena, s.typesScratch = arena, lists
	return lists
}

// payoffPrescreen flags, once per round, the queued jobs whose payoff
// upper bound is safely non-positive: the admission filter mu_j > 0
// would reject every candidate FIND_ALLOC could produce, so the DP and
// greedy passes skip the probe outright. The bound pairs the highest
// utility any allocation can reach — the full gang on the job's fastest
// usable type at the cluster's best straggler factor, i.e. the minimum
// completion duration; Utility is positive and non-increasing in
// duration by contract — with the lowest cost any candidate can be
// charged: every device costs at least U_min of some usable type (Eq.
// 5's curve never dips below U_min) and the only discount ever applied
// is the stickiness factor. A small relative margin absorbs
// floating-point rounding in the bound itself, so near-zero payoffs
// still fall through to the exact probe and the schedule is
// bit-identical with and without the screen. The backfill pass ignores
// the payoff filter and therefore never consults these flags.
func (s *Scheduler) payoffPrescreen(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, pt *priceTable) []bool {
	if cap(s.skipScratch) < len(queue) {
		s.skipScratch = make([]bool, len(queue))
	}
	skip := s.skipScratch[:len(queue)]
	maxSpeed := 0.0
	for _, n := range ctx.Cluster.Nodes() {
		if n.Speed > maxSpeed {
			maxSpeed = n.Speed
		}
	}
	for i, st := range queue {
		skip[i] = false
		j := st.Job
		if st.Remaining <= 0 {
			continue // the passes skip these before probing anyway
		}
		_, best, ok := j.BestType()
		if !ok || best*maxSpeed <= 0 {
			continue
		}
		minU := math.Inf(1)
		for _, t := range jobTypes[i] {
			if pt.umax[t] > 0 && pt.umin[t] < minU {
				minU = pt.umin[t]
			}
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		durMin := age + st.Remaining/(float64(j.Workers)*best*maxSpeed)
		uMax := s.opts.Utility.Value(j, st.Remaining, durMin)
		costLB := (1 - s.opts.Stickiness) * float64(j.Workers) * minU
		ub := uMax - costLB
		margin := costLB
		if math.IsInf(margin, 1) {
			margin = 0
		}
		if ub < -1e-9*(math.Abs(uMax)+margin+1) {
			skip[i] = true
		}
	}
	return skip
}

// backfill offers leftover devices to jobs the payoff filter rejected,
// in the same priority order, making the schedule work-conserving.
func (s *Scheduler) backfill(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, pt *priceTable, out map[int]cluster.Alloc) {
	free := cluster.NewState(ctx.Cluster)
	// Replay prior decisions in job-ID order so that, if the pass below
	// ever produced jointly infeasible decisions, the same one is blamed
	// on every run.
	ids := make([]int, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := free.Allocate(out[id]); err != nil {
			// The primal-dual pass produced jointly infeasible decisions;
			// surface the bug and leave the decisions as-is.
			s.noteInconsistency(err)
			return
		}
	}
	s.probe.bind(&s.opts, pt, free)
	for i, st := range queue {
		if free.TotalFree() == 0 {
			break // nothing left to offer anyone
		}
		if st.Remaining <= 0 {
			continue
		}
		if _, ok := out[st.Job.ID]; ok {
			continue
		}
		if free.TotalFree() < st.Job.Workers {
			continue
		}
		cand, ok := s.probe.findAlloc(st, ctx, jobTypes[i])
		if !ok {
			continue
		}
		if err := free.Allocate(cand.alloc); err != nil {
			s.noteInconsistency(err)
			continue
		}
		out[st.Job.ID] = cand.alloc
	}
}

// queueEntry pairs a job with its queue-ordering density for the
// closure-free sort.
type queueEntry struct {
	st      *sched.JobState
	density float64
}

// queueByDensity orders entries by descending density, ties by
// ascending job ID. Job IDs are unique, so the order is total and
// sort.Sort (unstable) produces the same permutation a stable sort
// would.
type queueByDensity []queueEntry

func (q queueByDensity) Len() int      { return len(q) }
func (q queueByDensity) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q queueByDensity) Less(i, j int) bool {
	if q[i].density > q[j].density {
		return true
	}
	if q[i].density < q[j].density {
		return false
	}
	return q[i].st.Job.ID < q[j].st.Job.ID
}

// orderQueue sorts jobs by descending payoff density: the utility of an
// immediate full-speed completion per requested worker. This is the
// order both the greedy pass and the DP consider jobs in. The entry and
// queue slices are reused across rounds; callers must not retain the
// returned slice past the round.
func (s *Scheduler) orderQueue(ctx *sched.Context) []*sched.JobState {
	ents := s.entScratch[:0]
	for _, st := range ctx.Jobs {
		j := st.Job
		_, best, ok := j.BestType()
		if !ok || st.Remaining <= 0 {
			ents = append(ents, queueEntry{st: st})
			continue
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		dur := age + st.Remaining/(float64(j.Workers)*best)
		d := s.opts.Utility.Value(j, st.Remaining, dur) / float64(j.Workers)
		if s.opts.Aging > 0 {
			d *= 1 + age/s.opts.Aging
		}
		ents = append(ents, queueEntry{st: st, density: d})
	}
	sort.Sort(queueByDensity(ents))
	queue := s.queueScratch[:0]
	for _, e := range ents {
		queue = append(queue, e.st)
	}
	s.entScratch, s.queueScratch = ents, queue
	return queue
}

// greedyAllocate is the large-queue path: one pass in payoff-density
// order, allocating each positive-payoff job at its best candidate and
// repricing as capacity fills.
func (s *Scheduler) greedyAllocate(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, skip []bool, pt *priceTable, out map[int]cluster.Alloc) {
	free := cluster.NewState(ctx.Cluster)
	s.probe.bind(&s.opts, pt, free)
	for i, st := range queue {
		if free.TotalFree() == 0 {
			break // every further probe would come back empty-handed
		}
		if st.Remaining <= 0 || skip[i] {
			continue // skip: the payoff bound already failed mu_j > 0
		}
		cand, ok := s.probe.findAlloc(st, ctx, jobTypes[i])
		if !ok || cand.payoff <= 0 {
			continue // admission filter mu_j > 0
		}
		if err := free.Allocate(cand.alloc); err != nil {
			s.noteInconsistency(err)
			continue
		}
		out[st.Job.ID] = cand.alloc
	}
}
