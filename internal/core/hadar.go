package core

import (
	"sort"

	"repro/internal/bug"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// PanicOnInconsistency, when true, turns internal allocation
// inconsistencies (a candidate that no longer fits the free state the
// scheduler itself maintains) into panics instead of silently skipped
// decisions. Tests enable it so placement bugs fail loudly; production
// keeps it off and reads Scheduler.Inconsistencies instead.
var PanicOnInconsistency bool

// Options configures the Hadar scheduler. The zero value is not valid;
// use DefaultOptions.
type Options struct {
	// Utility is the per-job utility U_j(.) the dual subroutine
	// maximizes. Swapping it expresses other scheduling policies
	// (Section III.A, "Expressing other scheduling policies").
	Utility Utility
	// Eta is the price scaling factor of Eq. 7; 0 derives the
	// theorem-compatible default from the workload.
	Eta float64
	// CommCost is the relative cost surcharge per additional server an
	// allocation spans (Algorithm 2 line 27 adds a communication cost to
	// non-consolidated allocations).
	CommCost float64
	// Stickiness is the cost discount applied to a job's existing
	// allocation, suppressing needless checkpoint-restart churn. The
	// paper observes only ~30% of rounds change an average job's
	// allocation.
	Stickiness float64
	// DPJobLimit bounds the queue size for the exact memoized DP
	// (Algorithm 2); larger queues fall back to the greedy
	// payoff-density pass, preserving Fig. 7's scalability.
	DPJobLimit int
	// TaskLevel enables mixed-accelerator-type gangs (Hadar's core
	// feature). Disabling it yields a job-level heterogeneity-aware
	// scheduler for the DESIGN.md ablation.
	TaskLevel bool
	// ExponentialPrice selects Eq. 5's exponential price function; false
	// uses a linear price (ablation).
	ExponentialPrice bool
	// Backfill makes the scheduler work-conserving: after the
	// positive-payoff primal-dual pass, leftover devices are offered to
	// the remaining jobs in priority order even when their payoff is
	// non-positive. This matches the high GPU utilization the paper
	// reports for Hadar (Fig. 4) without affecting who wins the
	// contended devices.
	Backfill bool
	// Aging boosts a job's queue priority by (1 + age/Aging), in
	// seconds, so long-pending large jobs eventually claim fast devices.
	// This bounds the completion-time tail (the paper's Fig. 8 shows a
	// tight min-max JCT band for Hadar). 0 disables aging.
	Aging float64
	// NameSuffix distinguishes ablation variants in reports.
	NameSuffix string
}

// DefaultOptions returns the configuration used for the paper's JCT
// experiments.
func DefaultOptions() Options {
	return Options{
		Utility:          InverseJCT{},
		CommCost:         0.1,
		Stickiness:       0.3,
		DPJobLimit:       10,
		TaskLevel:        true,
		ExponentialPrice: true,
		Backfill:         true,
	}
}

// Scheduler is Hadar (Algorithm 1): at every round it recomputes dual
// prices from the live workload and runs the DP/greedy dual subroutine
// to admit and place jobs with positive payoff. It implements
// sched.Scheduler and is not safe for concurrent use.
type Scheduler struct {
	opts       Options
	lastAlpha  float64
	lastPrices *priceTable
	// inconsistencies counts internal allocation failures: decisions the
	// dual subroutine produced that did not fit the free state it was
	// itself tracking. Always 0 unless there is a placement bug.
	inconsistencies int
	// Reusable FIND_ALLOC working storage (the scheduler is documented
	// as not safe for concurrent use): fillScratch is the node-scan
	// buffer fillTypes sorts candidate nodes in, arena is the backing
	// store candidate placements are carved from, and candScratch is the
	// candidate list itself. All are recycled on every findAlloc call.
	fillScratch []fillOption
	arena       []cluster.Placement
	candScratch []cluster.Alloc
}

// New builds a Hadar scheduler. It panics on invalid options so
// misconfiguration fails fast at construction.
func New(opts Options) *Scheduler {
	if err := validateUtility(opts.Utility); err != nil {
		bug.Failf("core: %v", err)
	}
	if opts.CommCost < 0 || opts.Stickiness < 0 || opts.Stickiness >= 1 {
		bug.Failf("core: invalid CommCost %v / Stickiness %v", opts.CommCost, opts.Stickiness)
	}
	if opts.DPJobLimit < 0 {
		bug.Failf("core: negative DPJobLimit %d", opts.DPJobLimit)
	}
	return &Scheduler{opts: opts}
}

// Name implements sched.Scheduler.
func (s *Scheduler) Name() string { return "hadar" + s.opts.NameSuffix }

// LastAlpha returns the competitive-ratio factor alpha (Theorem 2) of
// the most recent round's price bounds; Hadar is 2*alpha competitive.
func (s *Scheduler) LastAlpha() float64 { return s.lastAlpha }

// PriceBounds returns the most recent round's per-type utility bounds
// U_min^r / U_max^r (Eq. 6-7), indexed by gpu.Type. Types no active job
// can use report U_max = 0. It implements invariant.PriceReporter so
// the correctness oracle can audit the dual price state every round.
func (s *Scheduler) PriceBounds() (umin, umax []float64) {
	if s.lastPrices == nil {
		return nil, nil
	}
	return s.lastPrices.umin[:], s.lastPrices.umax[:]
}

// PriceAt evaluates the most recent round's marginal price function k^r
// (Eq. 5) for type t at the given utilization fraction in [0, 1]. It
// implements invariant.PriceReporter.
func (s *Scheduler) PriceAt(t gpu.Type, utilization float64) float64 {
	if s.lastPrices == nil || !t.Valid() {
		return 0
	}
	return s.lastPrices.at(t, utilization)
}

// Inconsistencies returns how many internal allocation failures the
// scheduler has swallowed across its lifetime. Nonzero values indicate
// a placement bug: a candidate won the dual subroutine but no longer
// fit the very free state the subroutine priced it against.
func (s *Scheduler) Inconsistencies() int { return s.inconsistencies }

// noteInconsistency records (or, under PanicOnInconsistency, raises) an
// internal allocation failure.
func (s *Scheduler) noteInconsistency(err error) {
	s.inconsistencies++
	if PanicOnInconsistency {
		bug.Failf("core: inconsistent allocation decision: %v", err)
	}
}

// Schedule implements sched.Scheduler.
func (s *Scheduler) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	pt := newPriceTable(ctx, s.opts.Utility, s.opts.Eta, s.opts.ExponentialPrice)
	s.lastAlpha = pt.alpha()
	s.lastPrices = pt

	queue := s.orderQueue(ctx)
	// Usable-type lists are a function of the immutable job alone;
	// compute them once per round instead of once per FIND_ALLOC call.
	jobTypes := make([][]gpu.Type, len(queue))
	for i, st := range queue {
		jobTypes[i] = sched.UsableTypes(st.Job)
	}
	if len(queue) <= s.opts.DPJobLimit {
		s.dpAllocate(ctx, queue, jobTypes, pt, out)
	} else {
		s.greedyAllocate(ctx, queue, jobTypes, pt, out)
	}
	if s.opts.Backfill {
		s.backfill(ctx, queue, jobTypes, pt, out)
	}
	return out
}

// backfill offers leftover devices to jobs the payoff filter rejected,
// in the same priority order, making the schedule work-conserving.
func (s *Scheduler) backfill(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, pt *priceTable, out map[int]cluster.Alloc) {
	free := cluster.NewState(ctx.Cluster)
	// Replay prior decisions in job-ID order so that, if the pass below
	// ever produced jointly infeasible decisions, the same one is blamed
	// on every run.
	ids := make([]int, 0, len(out))
	for id := range out {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := free.Allocate(out[id]); err != nil {
			// The primal-dual pass produced jointly infeasible decisions;
			// surface the bug and leave the decisions as-is.
			s.noteInconsistency(err)
			return
		}
	}
	for i, st := range queue {
		if st.Remaining <= 0 {
			continue
		}
		if _, ok := out[st.Job.ID]; ok {
			continue
		}
		if free.TotalFree() < st.Job.Workers {
			continue
		}
		cand, ok := s.findAlloc(st, ctx, free, pt, jobTypes[i])
		if !ok {
			continue
		}
		if err := free.Allocate(cand.alloc); err != nil {
			s.noteInconsistency(err)
			continue
		}
		out[st.Job.ID] = cand.alloc
	}
}

// orderQueue sorts jobs by descending payoff density: the utility of an
// immediate full-speed completion per requested worker. This is the
// order both the greedy pass and the DP consider jobs in.
func (s *Scheduler) orderQueue(ctx *sched.Context) []*sched.JobState {
	queue := append([]*sched.JobState(nil), ctx.Jobs...)
	density := make(map[int]float64, len(queue))
	for _, st := range queue {
		j := st.Job
		_, best, ok := j.BestType()
		if !ok || st.Remaining <= 0 {
			density[j.ID] = 0
			continue
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		dur := age + st.Remaining/(float64(j.Workers)*best)
		d := s.opts.Utility.Value(j, st.Remaining, dur) / float64(j.Workers)
		if s.opts.Aging > 0 {
			d *= 1 + age/s.opts.Aging
		}
		density[j.ID] = d
	}
	sort.SliceStable(queue, func(a, b int) bool {
		da, db := density[queue[a].Job.ID], density[queue[b].Job.ID]
		if da > db {
			return true
		}
		if da < db {
			return false
		}
		return queue[a].Job.ID < queue[b].Job.ID
	})
	return queue
}

// greedyAllocate is the large-queue path: one pass in payoff-density
// order, allocating each positive-payoff job at its best candidate and
// repricing as capacity fills.
func (s *Scheduler) greedyAllocate(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, pt *priceTable, out map[int]cluster.Alloc) {
	free := cluster.NewState(ctx.Cluster)
	for i, st := range queue {
		if st.Remaining <= 0 {
			continue
		}
		cand, ok := s.findAlloc(st, ctx, free, pt, jobTypes[i])
		if !ok || cand.payoff <= 0 {
			continue // admission filter mu_j > 0
		}
		if err := free.Allocate(cand.alloc); err != nil {
			s.noteInconsistency(err)
			continue
		}
		out[st.Job.ID] = cand.alloc
	}
}

// dpAllocate is Algorithm 2's dynamic program: for each job in order,
// branch on "allocate its best candidate" vs "skip", memoizing on
// (queue index, free-state hash), and keep the branch with the larger
// total payoff (equivalently, minimum cost for the chosen utility).
// Branches mutate one shared State under a savepoint and roll it back,
// so the search allocates nothing per visited node beyond the memo
// entries themselves.
func (s *Scheduler) dpAllocate(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, pt *priceTable, out map[int]cluster.Alloc) {
	type result struct {
		payoff float64
		picks  []pick
	}
	type memoKey struct {
		idx  int
		hash uint64
	}
	memo := make(map[memoKey]result)
	var rec func(idx int, free *cluster.State) result
	rec = func(idx int, free *cluster.State) result {
		if idx >= len(queue) || free.TotalFree() == 0 {
			return result{}
		}
		key := memoKey{idx: idx, hash: free.Hash()}
		if r, ok := memo[key]; ok {
			return r
		}
		// Branch 1: skip this job.
		best := rec(idx+1, free)
		// Branch 2: allocate this job at its best candidate.
		st := queue[idx]
		if st.Remaining > 0 {
			if cand, ok := s.findAlloc(st, ctx, free, pt, jobTypes[idx]); ok && cand.payoff > 0 {
				sp := free.Savepoint()
				if err := free.Allocate(cand.alloc); err != nil {
					s.noteInconsistency(err)
				} else {
					sub := rec(idx+1, free)
					total := cand.payoff + sub.payoff
					if total > best.payoff {
						picks := make([]pick, 0, len(sub.picks)+1)
						picks = append(picks, pick{st.Job.ID, cand.alloc})
						picks = append(picks, sub.picks...)
						best = result{payoff: total, picks: picks}
					}
				}
				free.Rollback(sp)
			}
		}
		memo[key] = best
		return best
	}
	final := rec(0, cluster.NewState(ctx.Cluster))
	for _, p := range final.picks {
		out[p.id] = p.alloc
	}
}

type pick struct {
	id    int
	alloc cluster.Alloc
}
