package core

import (
	"runtime"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/parallel"
	"repro/internal/sched"
)

// dpCluster is large enough that a 12-job DP tree has real contention:
// not every job fits, so allocate-vs-skip branching matters.
func dpCluster() *cluster.Cluster {
	return cluster.New(
		gpu.Fleet{gpu.V100: 4},
		gpu.Fleet{gpu.V100: 2, gpu.P100: 2},
		gpu.Fleet{gpu.P100: 4},
		gpu.Fleet{gpu.K80: 4},
		gpu.Fleet{gpu.T4: 2, gpu.K80: 2},
	)
}

// dpQueue builds a deterministic 12-job queue with varied worker counts,
// throughput profiles, and partial progress, so the DP sees heterogeneous
// payoffs, mixed-type candidates, and ties.
func dpQueue() []*sched.JobState {
	var states []*sched.JobState
	for i := 0; i < 12; i++ {
		w := 1 + i%4
		j := &job.Job{
			ID: i, Model: "dp-test", Workers: w,
			Epochs: 4000 + 700*i, ItersPerEpoch: 1,
			Throughput: map[gpu.Type]float64{
				gpu.V100: 8 + float64(i%5),
				gpu.P100: 4 + float64(i%3),
				gpu.K80:  1 + float64(i%2),
				gpu.T4:   3,
			},
		}
		st := newState(j)
		// Stagger progress so remaining work (and hence prices) differ.
		st.Remaining -= float64(200 * i)
		states = append(states, st)
	}
	return states
}

func scheduleWithWorkers(workers int) map[int]cluster.Alloc {
	opts := DefaultOptions()
	opts.DPJobLimit = 12 // whole queue goes through the DP
	opts.DPWorkers = workers
	s := New(opts)
	return s.Schedule(mkCtx(dpCluster(), dpQueue()...))
}

// TestDPWorkerCountInvariance asserts the parallel DP produces the exact
// allocation map the sequential search does, placement for placement, at
// every worker count. This is the core guarantee behind the golden
// schedule digests: DPWorkers is a throughput knob, never a behaviour
// knob.
func TestDPWorkerCountInvariance(t *testing.T) {
	PanicOnInconsistency = true
	want := scheduleWithWorkers(1)
	if len(want) == 0 {
		t.Fatal("sequential DP scheduled nothing; test queue is broken")
	}
	counts := []int{2, 3, 8, runtime.GOMAXPROCS(0)}
	for _, w := range counts {
		if w <= 1 {
			continue
		}
		got := scheduleWithWorkers(w)
		if len(got) != len(want) {
			t.Fatalf("workers=%d scheduled %d jobs, sequential scheduled %d", w, len(got), len(want))
		}
		for id, a := range want {
			b, ok := got[id]
			if !ok {
				t.Fatalf("workers=%d dropped job %d", w, id)
			}
			if !allocEqual(a, b) {
				t.Errorf("workers=%d job %d alloc differs:\nseq: %v\npar: %v", w, id, a, b)
			}
		}
	}
}

func allocEqual(a, b cluster.Alloc) bool {
	ca, cb := a.Canonical(), b.Canonical()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// TestDPWorkerCountResolution pins the DPWorkers resolution rules: an
// explicit count is honoured, and tiny queues always run sequentially
// because the split cannot amortize its clones.
func TestDPWorkerCountResolution(t *testing.T) {
	s := New(DefaultOptions())
	if got := s.dpWorkerCount(12); got != parallel.DefaultWorkers() {
		t.Errorf("auto workers for 12 jobs = %d, want %d", got, parallel.DefaultWorkers())
	}
	opts := DefaultOptions()
	opts.DPWorkers = 4
	s = New(opts)
	if got := s.dpWorkerCount(12); got != 4 {
		t.Errorf("explicit workers = %d, want 4", got)
	}
	if got := s.dpWorkerCount(3); got != 1 {
		t.Errorf("tiny queue workers = %d, want 1", got)
	}
}
