// Package core implements Hadar, the paper's task-level
// heterogeneity-aware online scheduler: an online primal-dual framework
// with a dual resource price per (server, accelerator type) that rises
// exponentially with utilization (Eq. 5-8), a payoff-based admission
// test, and a DP/greedy dual subroutine (Algorithm 2) that chooses
// min-cost task-level allocations, including allocations that mix
// accelerator types within one job.
package core

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/metrics"
)

// Utility is U_j(.), the value a job contributes when it completes with
// the given total duration (f_j - a_j). It must be positive and
// non-increasing in duration. remaining is the job's outstanding work in
// iterations, which lets utilities weight partially-done jobs.
type Utility interface {
	Name() string
	Value(j *job.Job, remaining, duration float64) float64
}

// EffectiveThroughput is the paper's named special case: the average
// number of iterations completed per second over the job's lifetime,
// U_j = E_j N_j / (f_j - a_j). Maximizing its sum maximizes aggregate
// cluster work throughput, which also serves the makespan objective.
type EffectiveThroughput struct{}

// Name implements Utility.
func (EffectiveThroughput) Name() string { return "effective-throughput" }

// Value implements Utility.
func (EffectiveThroughput) Value(j *job.Job, remaining, duration float64) float64 {
	if duration <= 0 {
		duration = 1e-9
	}
	return j.TotalIters() / duration
}

// InverseJCT rewards every job equally for completing quickly:
// U_j = Scale / (f_j - a_j). Under payoff-density scheduling this yields
// SRPT-like behaviour with built-in aging (an old short job's utility
// decays fastest), which is the configuration used for the paper's
// average-JCT experiments ("minimizing the average job completion time
// is denoted as min sum (f_j - a_j)/J").
type InverseJCT struct {
	// Scale calibrates utility magnitude; 0 means a default chosen so
	// utilities are comparable to effective throughput on typical jobs.
	Scale float64
}

// Name implements Utility.
func (InverseJCT) Name() string { return "inverse-jct" }

// Value implements Utility.
func (u InverseJCT) Value(j *job.Job, remaining, duration float64) float64 {
	if duration <= 0 {
		duration = 1e-9
	}
	scale := u.Scale
	if scale <= 0 {
		scale = 3600 * float64(j.Workers)
	}
	return scale / duration
}

// Balanced interpolates between InverseJCT (size-independent reward,
// SRPT-like) and EffectiveThroughput (size-proportional reward,
// LPT-like): U_j = sqrt(E_j N_j) / (f_j - a_j). Short jobs still finish
// first, but large jobs claim fast devices once the short-job backlog
// drains, which bounds the completion tail and keeps the makespan
// competitive while retaining most of the average-JCT win.
type Balanced struct{}

// Name implements Utility.
func (Balanced) Name() string { return "balanced" }

// Value implements Utility.
func (Balanced) Value(j *job.Job, remaining, duration float64) float64 {
	if duration <= 0 {
		duration = 1e-9
	}
	return math.Sqrt(j.TotalIters()) * float64(j.Workers) / duration
}

// FinishTimeFairness expresses the Themis FTF objective: the utility is
// the ratio of the job's isolated (1/n cluster share) runtime to its
// actual duration, so jobs running far behind their fair share gain the
// most from being scheduled.
type FinishTimeFairness struct {
	// Jobs is n, the number of jobs sharing the cluster; TotalGPUs the
	// cluster size. Both must be positive.
	Jobs      int
	TotalGPUs int
}

// Name implements Utility.
func (FinishTimeFairness) Name() string { return "finish-time-fairness" }

// Value implements Utility.
func (u FinishTimeFairness) Value(j *job.Job, remaining, duration float64) float64 {
	if duration <= 0 {
		duration = 1e-9
	}
	_, best, ok := j.BestType()
	if !ok {
		return 0
	}
	iso := metrics.IsolatedDuration(j.TotalIters(), j.Workers, best, u.Jobs, u.TotalGPUs)
	return iso / duration
}

func validateUtility(u Utility) error {
	if u == nil {
		return fmt.Errorf("core: nil utility")
	}
	if f, ok := u.(FinishTimeFairness); ok {
		if f.Jobs <= 0 || f.TotalGPUs <= 0 {
			return fmt.Errorf("core: FinishTimeFairness requires positive Jobs and TotalGPUs")
		}
	}
	return nil
}
