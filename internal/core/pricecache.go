package core

import (
	"repro/internal/cluster"
	"repro/internal/gpu"
)

// priceCache memoizes per-(node, type) dual prices against one bound
// free state. The FIND_ALLOC cost loop prices the same handful of
// (node, type) cells over and over while the DP probes allocate-vs-skip
// branches; only the cells an Allocate/Release actually touched can
// change price between probes.
//
// Invalidation is by dirty bit, not by explicit notification: every
// cached value is stamped with the state's per-cell version counter at
// fill time, and a lookup recomputes whenever the stamp no longer
// matches. The counter advances on every mutation in either direction —
// including each undo a Rollback replays — so a rollback that restores
// the exact free count the cache saw still moves the version past the
// stamp, and a stale read after rollback is impossible (the recompute
// then just reproduces the same price from the restored count).
//
// A cache is bound to one (priceTable, State) pair per scheduling pass
// and is not safe for concurrent use; parallel DP workers each own one.
type priceCache struct {
	pt *priceTable
	st *cluster.State
	// stamp[cell] is VersionAt+1 when val[cell] was filled; 0 marks a
	// never-filled cell, so the zero value of a rebound cache is empty.
	stamp []uint32
	val   []float64
	// fills counts recomputes, for the invalidation tests.
	fills int
}

// bind points the cache at a pass's price table and free state,
// dropping every cached value.
func (pc *priceCache) bind(pt *priceTable, st *cluster.State) {
	pc.pt, pc.st = pt, st
	n := st.Cluster().NumNodes() * int(gpu.NumTypes)
	if cap(pc.stamp) < n {
		pc.stamp = make([]uint32, n)
		pc.val = make([]float64, n)
	} else {
		pc.stamp = pc.stamp[:n]
		pc.val = pc.val[:n]
		for i := range pc.stamp {
			pc.stamp[i] = 0
		}
	}
}

// price returns the dual price of (node, t) against the bound state,
// recomputing only when the cell changed since the cached fill.
func (pc *priceCache) price(node int, t gpu.Type) float64 {
	cell := node*int(gpu.NumTypes) + int(t)
	want := pc.st.VersionAt(node, t) + 1
	if pc.stamp[cell] == want {
		return pc.val[cell]
	}
	v := pc.pt.price(pc.st, node, t)
	pc.stamp[cell] = want
	pc.val[cell] = v
	pc.fills++
	return v
}
