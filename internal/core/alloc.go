package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// candidate is one allocation option produced by FIND_ALLOC together
// with its primal-dual economics.
type candidate struct {
	alloc  cluster.Alloc
	rate   float64 // iterations/second under this allocation
	cost   float64 // sum of dual prices (+ communication surcharge)
	payoff float64 // mu_j = utility - cost
}

// findAlloc is the paper's FIND_ALLOC subroutine (Algorithm 2, lines
// 22-34): generate consolidated ("packed") and consolidation-independent
// allocations over the GPU types sorted by the job's throughput, price
// each against the current dual prices (adding a communication surcharge
// for multi-server allocations), and return the highest-payoff option.
// ok is false only when no feasible allocation exists at all; the
// admission filter mu_j > 0 is applied by the caller (the backfill pass
// deliberately ignores it).
func (s *Scheduler) findAlloc(st *sched.JobState, ctx *sched.Context, free *cluster.State, pt *priceTable) (candidate, bool) {
	j := st.Job
	types := sched.UsableTypes(j)
	var cands []cluster.Alloc

	// Single-type allocations: one candidate per usable type, on the
	// cheapest nodes; plus the maximally consolidated variant.
	for _, t := range types {
		if a, ok := s.fillTypes(free, pt, j.Workers, []gpu.Type{t}); ok {
			cands = append(cands, a)
		}
		if a, ok := sched.PlaceSingleType(free, t, j.Workers); ok {
			cands = append(cands, a)
		}
	}
	// Task-level mixed allocations: growing prefixes of the
	// descending-throughput type list. This is the capability Gavel
	// lacks: a gang can straddle accelerator types when no single type
	// has enough free devices (or when mixing is simply cheaper).
	if s.opts.TaskLevel {
		for k := 2; k <= len(types); k++ {
			if a, ok := s.fillTypes(free, pt, j.Workers, types[:k]); ok {
				cands = append(cands, a)
			}
		}
	}
	// Stickiness: re-offer the job's current allocation (it is feasible
	// by construction: the simulator freed nothing mid-round, and this
	// round's state starts fully free) at a discounted cost, so
	// unchanged allocations win ties and checkpoint churn stays low.
	current := -1
	if st.Running() {
		if err := free.Clone().Allocate(st.Alloc); err == nil {
			current = len(cands)
			cands = append(cands, st.Alloc)
		}
	}

	var best candidate
	found := false
	for i, a := range cands {
		rate := sched.Rate(j, ctx.Cluster, a)
		if rate <= 0 {
			continue
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		duration := age + st.Remaining/rate
		utility := s.opts.Utility.Value(j, st.Remaining, duration)
		cost := 0.0
		for _, p := range a.Canonical() {
			cost += pt.price(free, p.Node, p.Type) * float64(p.Count)
		}
		if n := a.NumNodes(); n > 1 {
			cost *= 1 + s.opts.CommCost*float64(n-1)
		}
		if i == current {
			cost *= 1 - s.opts.Stickiness
		}
		payoff := utility - cost
		if !found || payoff > best.payoff {
			best = candidate{alloc: a.Canonical(), rate: rate, cost: cost, payoff: payoff}
			found = true
		}
	}
	return best, found
}

// fillTypes builds an allocation of exactly workers devices drawn from
// the given types (earlier types preferred), choosing nodes by ascending
// dual price, then descending node speed, then descending free count.
// ok is false if the types jointly lack free capacity.
func (s *Scheduler) fillTypes(free *cluster.State, pt *priceTable, workers int, types []gpu.Type) (cluster.Alloc, bool) {
	var out cluster.Alloc
	need := workers
	for _, t := range types {
		if need == 0 {
			break
		}
		type option struct {
			node  int
			price float64
			speed float64
			avail int
		}
		var opts []option
		for id := 0; id < free.Cluster().NumNodes(); id++ {
			if f := free.Free(id, t); f > 0 {
				opts = append(opts, option{
					node:  id,
					price: pt.price(free, id, t),
					speed: free.Cluster().Speed(id),
					avail: f,
				})
			}
		}
		sort.Slice(opts, func(a, b int) bool {
			if opts[a].price != opts[b].price {
				return opts[a].price < opts[b].price
			}
			if opts[a].speed != opts[b].speed {
				return opts[a].speed > opts[b].speed
			}
			if opts[a].avail != opts[b].avail {
				return opts[a].avail > opts[b].avail
			}
			return opts[a].node < opts[b].node
		})
		for _, o := range opts {
			if need == 0 {
				break
			}
			take := o.avail
			if take > need {
				take = need
			}
			out = append(out, cluster.Placement{Node: o.node, Type: t, Count: take})
			need -= take
		}
	}
	if need > 0 {
		return nil, false
	}
	return out, true
}
