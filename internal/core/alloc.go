package core

import (
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// candidate is one allocation option produced by FIND_ALLOC together
// with its primal-dual economics.
type candidate struct {
	alloc  cluster.Alloc
	rate   float64 // iterations/second under this allocation
	cost   float64 // sum of dual prices (+ communication surcharge)
	payoff float64 // mu_j = utility - cost
}

// findAlloc is the paper's FIND_ALLOC subroutine (Algorithm 2, lines
// 22-34): generate consolidated ("packed") and consolidation-independent
// allocations over the GPU types sorted by the job's throughput (the
// caller passes sched.UsableTypes(j), precomputed once per round), price
// each against the current dual prices (adding a communication surcharge
// for multi-server allocations), and return the highest-payoff option.
// ok is false only when no feasible allocation exists at all; the
// admission filter mu_j > 0 is applied by the caller (the backfill pass
// deliberately ignores it).
//
// This is the per-round hot path: Hadar's DP calls it once per visited
// search node. Candidate placements are built in the scheduler's
// placement arena and candidate list, both reused across calls, so a
// call performs no heap allocation beyond the one canonical copy of the
// winning allocation it returns.
func (s *Scheduler) findAlloc(st *sched.JobState, ctx *sched.Context, free *cluster.State, pt *priceTable, types []gpu.Type) (candidate, bool) {
	j := st.Job
	cands := s.candScratch[:0]
	arena := s.arena[:0]

	// Single-type allocations: one candidate per usable type, on the
	// cheapest nodes; plus the maximally consolidated variant.
	for _, t := range types {
		if a, ok := s.fillOneType(&arena, free, pt, j.Workers, t); ok {
			cands = append(cands, a)
		}
		if a, ok := appendSingleType(&arena, free, t, j.Workers); ok {
			cands = append(cands, a)
		}
	}
	// Task-level mixed allocations: growing prefixes of the
	// descending-throughput type list. This is the capability Gavel
	// lacks: a gang can straddle accelerator types when no single type
	// has enough free devices (or when mixing is simply cheaper).
	if s.opts.TaskLevel {
		for k := 2; k <= len(types); k++ {
			if a, ok := s.fillTypes(&arena, free, pt, j.Workers, types[:k]); ok {
				cands = append(cands, a)
			}
		}
	}
	// Stickiness: re-offer the job's current allocation (it is feasible
	// by construction: the simulator freed nothing mid-round, and this
	// round's state starts fully free) at a discounted cost, so
	// unchanged allocations win ties and checkpoint churn stays low.
	current := -1
	if st.Running() && free.CanAllocate(st.Alloc) {
		current = len(cands)
		cands = append(cands, st.Alloc)
	}
	s.candScratch = cands
	s.arena = arena

	bestIdx := -1
	var best candidate
	for i, a := range cands {
		rate := sched.Rate(j, ctx.Cluster, a)
		if rate <= 0 {
			continue
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		duration := age + st.Remaining/rate
		utility := s.opts.Utility.Value(j, st.Remaining, duration)
		// Cost and node count read the raw placement list: candidate
		// generators emit at most one placement per (node, type) and no
		// zero counts, and both quantities are additive over duplicates
		// anyway, so skipping Canonical here cannot change them.
		cost := 0.0
		for _, p := range a {
			cost += pt.price(free, p.Node, p.Type) * float64(p.Count)
		}
		if n := distinctNodes(a); n > 1 {
			cost *= 1 + s.opts.CommCost*float64(n-1)
		}
		if i == current {
			cost *= 1 - s.opts.Stickiness
		}
		payoff := utility - cost
		if bestIdx < 0 || payoff > best.payoff {
			best = candidate{rate: rate, cost: cost, payoff: payoff}
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return candidate{}, false
	}
	// The winner leaves the arena as an independent canonical copy; the
	// arena itself is recycled by the next call.
	best.alloc = canonicalize(cands[bestIdx])
	return best, true
}

// distinctNodes counts the distinct nodes of a placement list without
// allocating (allocations span few placements, so the quadratic scan is
// cheaper than a map).
func distinctNodes(a cluster.Alloc) int {
	n := 0
	for i, p := range a {
		if p.Count == 0 {
			continue
		}
		seen := false
		for _, q := range a[:i] {
			if q.Count > 0 && q.Node == p.Node {
				seen = true
				break
			}
		}
		if !seen {
			n++
		}
	}
	return n
}

// canonicalize returns an independent canonical copy of a: zero counts
// dropped, same-(node,type) entries merged, sorted by (node, type). It
// matches Alloc.Canonical for the non-negative placement lists the
// candidate generators emit, without the intermediate map.
func canonicalize(a cluster.Alloc) cluster.Alloc {
	out := make(cluster.Alloc, 0, len(a))
	for _, p := range a {
		if p.Count > 0 {
			out = append(out, p)
		}
	}
	// Insertion sort by (node, type): placement lists are short.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && (out[k].Node < out[k-1].Node ||
			(out[k].Node == out[k-1].Node && out[k].Type < out[k-1].Type)); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	// Merge adjacent duplicates in place.
	w := 0
	for _, p := range out {
		if w > 0 && out[w-1].Node == p.Node && out[w-1].Type == p.Type {
			out[w-1].Count += p.Count
			continue
		}
		out[w] = p
		w++
	}
	return out[:w]
}

// fillOption is one candidate node in fillTypes's price-ordered scan.
type fillOption struct {
	node  int
	price float64
	speed float64
	avail int
}

// appendSingleType is sched.PlaceSingleType building its placements in
// the shared arena: the returned Alloc aliases arena storage and is
// only valid until the arena is recycled.
func appendSingleType(arena *[]cluster.Placement, free *cluster.State, t gpu.Type, w int) (cluster.Alloc, bool) {
	if free.FreeOfType(t) < w {
		return nil, false
	}
	mark := len(*arena)
	nodes := free.FreeNodes(t, free.Scratch())
	sortMostFree(nodes)
	need := w
	for _, n := range nodes {
		take := n.Free
		if take > need {
			take = need
		}
		*arena = append(*arena, cluster.Placement{Node: n.Node, Type: t, Count: take})
		if need -= take; need == 0 {
			break
		}
	}
	return carve(arena, mark), true
}

// sortMostFree orders a node scan by descending free count, ties by
// ascending node ID — PlaceSingleType's consolidation order — with an
// allocation-free insertion sort (scans are at most one entry per
// node).
func sortMostFree(nodes []cluster.NodeFree) {
	for i := 1; i < len(nodes); i++ {
		for k := i; k > 0 && (nodes[k].Free > nodes[k-1].Free ||
			(nodes[k].Free == nodes[k-1].Free && nodes[k].Node < nodes[k-1].Node)); k-- {
			nodes[k], nodes[k-1] = nodes[k-1], nodes[k]
		}
	}
}

// carve returns the arena's tail beyond mark as an independent-length
// allocation. The full slice expression caps it so later arena appends
// can never write through it.
func carve(arena *[]cluster.Placement, mark int) cluster.Alloc {
	a := *arena
	return cluster.Alloc(a[mark:len(a):len(a)])
}

// fillOneType is fillTypes for a single type, avoiding the one-element
// slice the multi-type signature would need.
func (s *Scheduler) fillOneType(arena *[]cluster.Placement, free *cluster.State, pt *priceTable, workers int, t gpu.Type) (cluster.Alloc, bool) {
	mark := len(*arena)
	if need := s.fillType(arena, free, pt, workers, t); need > 0 {
		*arena = (*arena)[:mark]
		return nil, false
	}
	return carve(arena, mark), true
}

// fillTypes builds an allocation of exactly workers devices drawn from
// the given types (earlier types preferred), choosing nodes by ascending
// dual price, then descending node speed, then descending free count.
// ok is false if the types jointly lack free capacity. Placements land
// in the shared arena; the node scan sorts in the scheduler's scratch
// buffer, reused across all FIND_ALLOC calls of a round.
func (s *Scheduler) fillTypes(arena *[]cluster.Placement, free *cluster.State, pt *priceTable, workers int, types []gpu.Type) (cluster.Alloc, bool) {
	mark := len(*arena)
	need := workers
	for _, t := range types {
		if need = s.fillType(arena, free, pt, need, t); need == 0 {
			break
		}
	}
	if need > 0 {
		*arena = (*arena)[:mark]
		return nil, false
	}
	return carve(arena, mark), true
}

// fillType appends up to need devices of type t in price order and
// returns the unmet need.
func (s *Scheduler) fillType(arena *[]cluster.Placement, free *cluster.State, pt *priceTable, need int, t gpu.Type) int {
	if need == 0 || free.FreeOfType(t) == 0 {
		return need
	}
	opts := s.fillScratch[:0]
	for id := 0; id < free.Cluster().NumNodes(); id++ {
		if f := free.Free(id, t); f > 0 {
			opts = append(opts, fillOption{
				node:  id,
				price: pt.price(free, id, t),
				speed: free.Cluster().Speed(id),
				avail: f,
			})
		}
	}
	s.fillScratch = opts
	sortByPrice(opts)
	for _, o := range opts {
		if need == 0 {
			break
		}
		take := o.avail
		if take > need {
			take = need
		}
		*arena = append(*arena, cluster.Placement{Node: o.node, Type: t, Count: take})
		need -= take
	}
	return need
}

// sortByPrice orders fill options by ascending dual price, then
// descending node speed, then descending free count, then ascending
// node ID, with an allocation-free insertion sort.
func sortByPrice(opts []fillOption) {
	less := func(a, b fillOption) bool {
		if a.price < b.price {
			return true
		}
		if a.price > b.price {
			return false
		}
		if a.speed > b.speed {
			return true
		}
		if a.speed < b.speed {
			return false
		}
		if a.avail != b.avail {
			return a.avail > b.avail
		}
		return a.node < b.node
	}
	for i := 1; i < len(opts); i++ {
		for k := i; k > 0 && less(opts[k], opts[k-1]); k-- {
			opts[k], opts[k-1] = opts[k-1], opts[k]
		}
	}
}
