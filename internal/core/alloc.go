package core

import (
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// candidate is one allocation option produced by FIND_ALLOC together
// with its primal-dual economics.
type candidate struct {
	alloc  cluster.Alloc
	rate   float64 // iterations/second under this allocation
	cost   float64 // sum of dual prices (+ communication surcharge)
	payoff float64 // mu_j = utility - cost
}

// probe is the free-state-bound working set of one allocation pass (the
// greedy sweep, one DP search, or the backfill sweep): the state it
// prices against, the per-cell price cache, and every scratch buffer
// FIND_ALLOC recycles between calls. The sequential scheduler reuses
// one probe across rounds; each parallel DP worker owns its own, so
// workers share nothing mutable.
type probe struct {
	opts *Options
	pt   *priceTable
	free *cluster.State
	pc   priceCache
	// uniformSpeed caches Cluster.UniformSpeed for the pass: combined
	// with a uniform per-node capacity it licenses fillType's price-free
	// scan order.
	uniformSpeed bool

	// FIND_ALLOC working storage: fillScratch is the node-scan buffer
	// fillType's fallback path selects candidate nodes in, candArena is
	// the backing store candidate placements are carved from, and
	// candScratch is the candidate list itself. All are recycled on
	// every findAlloc call. retain backs the winning allocations the
	// pass hands out: it only grows within a pass (so carved winners
	// stay valid for the whole round) and is re-based by bind, keeping a
	// pass at O(log n) heap allocations instead of one per probe.
	fillScratch []fillOption
	candArena   []cluster.Placement
	candScratch []cluster.Alloc
	retain      []cluster.Placement
}

// bind points the probe at a pass's options, price table, and free
// state. The retain arena is re-based (not truncated): allocations
// carved during the previous pass may have escaped into that round's
// decision map, so their backing array must never be overwritten.
func (p *probe) bind(opts *Options, pt *priceTable, free *cluster.State) {
	p.opts, p.pt, p.free = opts, pt, free
	p.uniformSpeed = free.Cluster().UniformSpeed()
	p.pc.bind(pt, free)
	p.retain = nil
}

// findAlloc is the paper's FIND_ALLOC subroutine (Algorithm 2, lines
// 22-34): generate consolidated ("packed") and consolidation-independent
// allocations over the GPU types sorted by the job's throughput (the
// caller passes sched.UsableTypes(j), precomputed once per round), price
// each against the current dual prices (adding a communication surcharge
// for multi-server allocations), and return the highest-payoff option.
// ok is false only when no feasible allocation exists at all; the
// admission filter mu_j > 0 is applied by the caller (the backfill pass
// deliberately ignores it).
//
// This is the per-round hot path: Hadar's DP calls it once per visited
// search node. Candidate placements are built in the probe's arena and
// candidate list, duplicate candidates are pruned before pricing (on
// uniform clusters the cheapest-node and most-consolidated scans often
// coincide, and a duplicate can never win: the winner is the first
// index attaining the best payoff), and the winner is carved from the
// grow-only retain arena, so a call performs no steady-state heap
// allocation at all.
func (p *probe) findAlloc(st *sched.JobState, ctx *sched.Context, types []gpu.Type) (candidate, bool) {
	j := st.Job
	cands := p.candScratch[:0]
	arena := p.candArena[:0]

	// Single-type allocations: one candidate per usable type, on the
	// cheapest nodes; plus the maximally consolidated variant.
	for _, t := range types {
		if a, ok := p.fillOneType(&arena, j.Workers, t); ok {
			cands = appendCand(cands, a)
		}
		if a, ok := appendSingleType(&arena, p.free, t, j.Workers); ok {
			cands = appendCand(cands, a)
		}
	}
	// Task-level mixed allocations: growing prefixes of the
	// descending-throughput type list. This is the capability Gavel
	// lacks: a gang can straddle accelerator types when no single type
	// has enough free devices (or when mixing is simply cheaper).
	if p.opts.TaskLevel {
		for k := 2; k <= len(types); k++ {
			if a, ok := p.fillTypes(&arena, j.Workers, types[:k]); ok {
				cands = appendCand(cands, a)
			}
		}
	}
	// Stickiness: re-offer the job's current allocation (it is feasible
	// by construction: the simulator freed nothing mid-round, and this
	// round's state starts fully free) at a discounted cost, so
	// unchanged allocations win ties and checkpoint churn stays low.
	current := -1
	if st.Running() && p.free.CanAllocate(st.Alloc) {
		current = len(cands)
		cands = append(cands, st.Alloc)
	}
	p.candScratch = cands
	p.candArena = arena

	bestIdx := -1
	var best candidate
	for i, a := range cands {
		rate := sched.Rate(j, ctx.Cluster, a)
		if rate <= 0 {
			continue
		}
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		duration := age + st.Remaining/rate
		utility := p.opts.Utility.Value(j, st.Remaining, duration)
		// Cost and node count read the raw placement list: candidate
		// generators emit at most one placement per (node, type) and no
		// zero counts, and both quantities are additive over duplicates
		// anyway, so skipping Canonical here cannot change them.
		cost := 0.0
		for _, pl := range a {
			cost += p.pc.price(pl.Node, pl.Type) * float64(pl.Count)
		}
		if n := distinctNodes(a); n > 1 {
			cost *= 1 + p.opts.CommCost*float64(n-1)
		}
		if i == current {
			cost *= 1 - p.opts.Stickiness
		}
		payoff := utility - cost
		if bestIdx < 0 || payoff > best.payoff {
			best = candidate{rate: rate, cost: cost, payoff: payoff}
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return candidate{}, false
	}
	// The winner leaves the candidate arena as a canonical copy carved
	// from the retain arena; the candidate arena itself is recycled by
	// the next call.
	best.alloc = p.retainCanonical(cands[bestIdx])
	return best, true
}

// appendCand adds a to the candidate list unless an identical placement
// list is already present. Dropping payoff-equal duplicates before the
// pricing loop cannot change the winner: identical placements price
// identically, and the first index attaining the best payoff wins.
func appendCand(cands []cluster.Alloc, a cluster.Alloc) []cluster.Alloc {
	for _, b := range cands {
		if rawEqual(b, a) {
			return cands
		}
	}
	return append(cands, a)
}

// rawEqual reports whether two placement lists are identical entry by
// entry (no canonicalization: candidate generators emit deterministic
// orders, so duplicates really are elementwise equal).
func rawEqual(a, b cluster.Alloc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// distinctNodes counts the distinct nodes of a placement list without
// allocating (allocations span few placements, so the quadratic scan is
// cheaper than a map).
func distinctNodes(a cluster.Alloc) int {
	n := 0
	for i, p := range a {
		if p.Count == 0 {
			continue
		}
		seen := false
		for _, q := range a[:i] {
			if q.Count > 0 && q.Node == p.Node {
				seen = true
				break
			}
		}
		if !seen {
			n++
		}
	}
	return n
}

// retainCanonical copies a into the pass's retain arena in canonical
// form — zero counts dropped, same-(node,type) entries merged, sorted
// by (node, type) — and returns the carved copy. It matches
// Alloc.Canonical for the non-negative placement lists the candidate
// generators emit, without the intermediate map or the per-call heap
// allocation: the arena grows geometrically, and earlier carves stay
// valid because the arena is never truncated below them within a pass.
func (p *probe) retainCanonical(a cluster.Alloc) cluster.Alloc {
	mark := len(p.retain)
	for _, pl := range a {
		if pl.Count > 0 {
			p.retain = append(p.retain, pl)
		}
	}
	out := p.retain[mark:]
	// Insertion sort by (node, type): placement lists are short.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && (out[k].Node < out[k-1].Node ||
			(out[k].Node == out[k-1].Node && out[k].Type < out[k-1].Type)); k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	// Merge adjacent duplicates in place, then give the freed tail back
	// to the arena.
	w := 0
	for _, pl := range out {
		if w > 0 && out[w-1].Node == pl.Node && out[w-1].Type == pl.Type {
			out[w-1].Count += pl.Count
			continue
		}
		out[w] = pl
		w++
	}
	p.retain = p.retain[:mark+w]
	return cluster.Alloc(p.retain[mark : mark+w : mark+w])
}

// fillOption is one candidate node in fillType's price-ordered fallback
// scan.
type fillOption struct {
	node  int
	price float64
	speed float64
	avail int
}

// appendSingleType is sched.PlaceSingleType building its placements in
// the shared arena: the returned Alloc aliases arena storage and is
// only valid until the arena is recycled. The state's bucket index
// already maintains the consolidation order (free descending, node
// ascending), so the scan touches at most w nodes and never sorts.
func appendSingleType(arena *[]cluster.Placement, free *cluster.State, t gpu.Type, w int) (cluster.Alloc, bool) {
	if free.FreeOfType(t) < w {
		return nil, false
	}
	mark := len(*arena)
	nodes := free.AppendFreeNodesByFreeDesc(t, w, free.Scratch())
	need := w
	for _, n := range nodes {
		take := n.Free
		if take > need {
			take = need
		}
		*arena = append(*arena, cluster.Placement{Node: n.Node, Type: t, Count: take})
		if need -= take; need == 0 {
			break
		}
	}
	return carve(arena, mark), true
}

// carve returns the arena's tail beyond mark as an independent-length
// allocation. The full slice expression caps it so later arena appends
// can never write through it.
func carve(arena *[]cluster.Placement, mark int) cluster.Alloc {
	a := *arena
	return cluster.Alloc(a[mark:len(a):len(a)])
}

// fillOneType is fillTypes for a single type, avoiding the one-element
// slice the multi-type signature would need.
func (p *probe) fillOneType(arena *[]cluster.Placement, workers int, t gpu.Type) (cluster.Alloc, bool) {
	mark := len(*arena)
	if need := p.fillType(arena, workers, t); need > 0 {
		*arena = (*arena)[:mark]
		return nil, false
	}
	return carve(arena, mark), true
}

// fillTypes builds an allocation of exactly workers devices drawn from
// the given types (earlier types preferred), choosing nodes by ascending
// dual price, then descending node speed, then descending free count.
// ok is false if the types jointly lack free capacity. Placements land
// in the shared arena; the fallback node scan sorts in the probe's
// scratch buffer, reused across all FIND_ALLOC calls of a round.
func (p *probe) fillTypes(arena *[]cluster.Placement, workers int, types []gpu.Type) (cluster.Alloc, bool) {
	mark := len(*arena)
	need := workers
	for _, t := range types {
		if need = p.fillType(arena, need, t); need == 0 {
			break
		}
	}
	if need > 0 {
		*arena = (*arena)[:mark]
		return nil, false
	}
	return carve(arena, mark), true
}

// fillType appends up to need devices of type t in price order and
// returns the unmet need.
//
// When every node holding t has the same capacity and every node runs
// at the same speed, the price order needs no prices at all: Eq. 5's
// curve is monotone non-decreasing in utilization, so "cheapest first"
// is "most free first", and every tiebreak the full comparator would
// consult (price ties -> equal speed -> descending free -> ascending
// node ID) collapses to the bucket index's native order (free
// descending, node ascending). That equivalence holds even where the
// curve plateaus (rounded-equal prices, or the +Inf price of a type no
// job uses), because the free-count tiebreak takes over exactly there.
// Heterogeneous capacities or straggler speeds fall back to the exact
// priced scan, now a top-k selection: consuming need devices touches at
// most need nodes, so only the first need entries of the sorted order
// are ever read, and the comparator's ascending-node-ID tail makes that
// prefix unique.
func (p *probe) fillType(arena *[]cluster.Placement, need int, t gpu.Type) int {
	if need == 0 || p.free.FreeOfType(t) == 0 {
		return need
	}
	if p.uniformSpeed && p.free.UniformCap(t) > 0 {
		nodes := p.free.AppendFreeNodesByFreeDesc(t, need, p.free.Scratch())
		for _, n := range nodes {
			take := n.Free
			if take > need {
				take = need
			}
			*arena = append(*arena, cluster.Placement{Node: n.Node, Type: t, Count: take})
			if need -= take; need == 0 {
				break
			}
		}
		return need
	}
	opts := p.fillScratch[:0]
	c := p.free.Cluster()
	for _, n := range p.free.FreeNodes(t, p.free.Scratch()) {
		opts = append(opts, fillOption{
			node:  n.Node,
			price: p.pc.price(n.Node, t),
			speed: c.Speed(n.Node),
			avail: n.Free,
		})
	}
	p.fillScratch = opts
	k := need
	if k > len(opts) {
		k = len(opts)
	}
	selectCheapest(opts, k)
	for _, o := range opts[:k] {
		if need == 0 {
			break
		}
		take := o.avail
		if take > need {
			take = need
		}
		*arena = append(*arena, cluster.Placement{Node: o.node, Type: t, Count: take})
		need -= take
	}
	return need
}

// fillLess is fillType's fallback ordering: ascending dual price, then
// descending node speed, then descending free count, then ascending
// node ID. The node-ID tail makes it a strict total order, so every
// sorted prefix is unique. It is a package-level function, not a
// closure, so sorting allocates nothing.
func fillLess(a, b fillOption) bool {
	if a.price < b.price {
		return true
	}
	if a.price > b.price {
		return false
	}
	if a.speed > b.speed {
		return true
	}
	if a.speed < b.speed {
		return false
	}
	if a.avail != b.avail {
		return a.avail > b.avail
	}
	return a.node < b.node
}

// selectCheapest moves the k smallest options (by fillLess) to opts[:k]
// in sorted order: a partial selection sort, O(k*n) instead of a full
// sort's O(n log n) — and k (the device need) is tiny next to n (nodes
// holding the type) at warehouse scale.
func selectCheapest(opts []fillOption, k int) {
	for i := 0; i < k && i < len(opts); i++ {
		minIdx := i
		for j := i + 1; j < len(opts); j++ {
			if fillLess(opts[j], opts[minIdx]) {
				minIdx = j
			}
		}
		opts[i], opts[minIdx] = opts[minIdx], opts[i]
	}
}
