package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// TestBackfillWorkConservation: with enough pending gangs to cover the
// cluster, no device stays free after Schedule.
func TestBackfillWorkConservation(t *testing.T) {
	c := heteroCluster() // 6 GPUs
	var states []*sched.JobState
	for i := 0; i < 8; i++ {
		states = append(states, newState(mkJob(i, 1, 1e6, 10, 5, 2)))
	}
	s := New(DefaultOptions())
	out := s.Schedule(mkCtx(c, states...))
	used := 0
	for _, a := range out {
		used += a.Workers()
	}
	if used != 6 {
		t.Errorf("allocated %d of 6 devices with 8 pending 1-worker jobs", used)
	}
}

// TestBackfillDisabledLeavesLowPayoffJobsWaiting: disabling backfill
// must never allocate more than the backfilled schedule, and the
// payoff filter alone may leave devices idle.
func TestBackfillDisabledSubset(t *testing.T) {
	c := heteroCluster()
	var states []*sched.JobState
	for i := 0; i < 8; i++ {
		states = append(states, newState(mkJob(i, 1, 1e6, 10, 5, 2)))
	}
	withOpts := DefaultOptions()
	withoutOpts := DefaultOptions()
	withoutOpts.Backfill = false
	withoutOpts.NameSuffix = "-nobackfill"
	with := New(withOpts).Schedule(mkCtx(c, states...))
	without := New(withoutOpts).Schedule(mkCtx(c, states...))
	usedWith, usedWithout := 0, 0
	for _, a := range with {
		usedWith += a.Workers()
	}
	for _, a := range without {
		usedWithout += a.Workers()
	}
	if usedWithout > usedWith {
		t.Errorf("no-backfill allocated more (%d) than backfill (%d)", usedWithout, usedWith)
	}
}

// TestBackfillRespectsGangOfLeftovers: leftover capacity smaller than a
// job's gang must not be force-fed to it.
func TestBackfillRespectsGang(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 3})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 1e6, 10, 0, 0)),
		newState(mkJob(1, 2, 1e6, 10, 0, 0)), // only 1 GPU left: must wait
	}
	out := New(DefaultOptions()).Schedule(mkCtx(c, states...))
	validateDecision(t, c, states, out)
	total := 0
	for _, a := range out {
		total += a.Workers()
	}
	if total != 2 {
		t.Errorf("allocated %d workers on 3 GPUs with 2-worker gangs", total)
	}
}

// TestAgingPromotesOldJobs: under continuous arrivals, aging must
// eventually rank a long-waiting large job above a fresh small job.
func TestAgingPromotesOldJobs(t *testing.T) {
	c := heteroCluster()
	oldBig := newState(mkJob(0, 2, 1e7, 10, 5, 2)) // huge job, arrived long ago
	oldBig.Job.Arrival = 0
	freshSmall := newState(mkJob(1, 2, 1e6, 10, 5, 2)) // 10x smaller, fresh
	freshSmall.Job.Arrival = 100000

	opts := DefaultOptions()
	opts.Aging = 3600 // strong aging
	s := New(opts)
	ctx := mkCtx(c, oldBig, freshSmall)
	ctx.Now = 100000 // oldBig has waited ~28 hours
	queue := s.orderQueue(ctx)
	if queue[0].Job.ID != 0 {
		t.Errorf("aging did not promote the old job: order = [%d, %d]",
			queue[0].Job.ID, queue[1].Job.ID)
	}

	// Without aging, the fresh small job ranks first (SRPT).
	s2 := New(DefaultOptions())
	queue2 := s2.orderQueue(ctx)
	if queue2[0].Job.ID != 1 {
		t.Errorf("without aging, SRPT order expected: order = [%d, %d]",
			queue2[0].Job.ID, queue2[1].Job.ID)
	}
}

// TestDPMatchesGreedyOnIndependentJobs: when jobs do not contend (plenty
// of capacity), DP and greedy must produce identical allocations.
func TestDPMatchesGreedyWithoutContention(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 16})
	states := []*sched.JobState{
		newState(mkJob(0, 2, 1e5, 10, 0, 0)),
		newState(mkJob(1, 2, 2e5, 10, 0, 0)),
		newState(mkJob(2, 2, 3e5, 10, 0, 0)),
	}
	dpOpts := DefaultOptions()
	greedyOpts := DefaultOptions()
	greedyOpts.DPJobLimit = 0
	outDP := New(dpOpts).Schedule(mkCtx(c, states...))
	outG := New(greedyOpts).Schedule(mkCtx(c, states...))
	for _, st := range states {
		a, b := outDP[st.Job.ID], outG[st.Job.ID]
		if a.Workers() != b.Workers() {
			t.Errorf("job %d: DP %v vs greedy %v", st.Job.ID, a, b)
		}
	}
}

// TestCompletedJobsGetNothing: jobs with zero remaining work must not
// receive allocations.
func TestCompletedJobsGetNothing(t *testing.T) {
	c := heteroCluster()
	done := newState(mkJob(0, 2, 1e5, 10, 5, 2))
	done.Remaining = 0
	pending := newState(mkJob(1, 2, 1e5, 10, 5, 2))
	out := New(DefaultOptions()).Schedule(mkCtx(c, done, pending))
	if a, ok := out[0]; ok && a.Workers() > 0 {
		t.Errorf("completed job received %v", a)
	}
	if out[1].Workers() != 2 {
		t.Error("pending job starved by completed job")
	}
}

// TestStragglerAvoidance: with a slow node, Hadar should prefer the
// fast node when both offer the same type.
func TestStragglerAvoidance(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.V100: 2})
	c.SetSpeed(0, 0.3)
	st := newState(mkJob(0, 2, 1e6, 10, 0, 0))
	out := New(DefaultOptions()).Schedule(mkCtx(c, st))
	a := out[0].Canonical()
	if len(a) != 1 || a[0].Node != 1 {
		t.Errorf("Hadar placed on the straggler: %v", a)
	}
}
