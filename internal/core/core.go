package core
