package core_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

// Example schedules the paper's motivating job on a fragmented cluster:
// three workers, but only two free V100s — Hadar's task-level gang
// straddles V100 and K80 instead of waiting.
func Example() {
	clus := cluster.New(
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.K80: 2},
	)
	j := &job.Job{
		ID: 1, Model: "toy", Workers: 3, Epochs: 80, ItersPerEpoch: 3600,
		Throughput: map[gpu.Type]float64{gpu.V100: 13.34, gpu.K80: 10},
	}
	state := &sched.JobState{
		Job: j, Remaining: j.TotalIters(),
		RoundsByType: make(map[gpu.Type]float64),
	}
	scheduler := core.New(core.DefaultOptions())
	decisions := scheduler.Schedule(&sched.Context{
		Now: 0, RoundLength: 360, Horizon: 1e6,
		Cluster: clus, Jobs: []*sched.JobState{state},
	})
	fmt.Println(decisions[1])
	// Output: [n0:V100x2 n1:K80x1]
}

// ExampleUtility shows how swapping the utility function re-targets the
// same scheduler at a different objective.
func ExampleUtility() {
	opts := core.DefaultOptions()
	opts.Utility = core.EffectiveThroughput{} // makespan-oriented
	opts.NameSuffix = "-makespan"
	s := core.New(opts)
	fmt.Println(s.Name())
	// Output: hadar-makespan
}
