package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

func heteroCluster() *cluster.Cluster {
	// 2 V100, 3 P100, 1 K80 — the paper's motivation cluster.
	return cluster.New(
		gpu.Fleet{gpu.V100: 2},
		gpu.Fleet{gpu.P100: 3},
		gpu.Fleet{gpu.K80: 1},
	)
}

func mkJob(id, workers int, iters float64, v100, p100, k80 float64) *job.Job {
	return &job.Job{
		ID: id, Model: "test", Workers: workers,
		Epochs: int(iters), ItersPerEpoch: 1,
		Throughput: map[gpu.Type]float64{gpu.V100: v100, gpu.P100: p100, gpu.K80: k80},
	}
}

func mkCtx(c *cluster.Cluster, states ...*sched.JobState) *sched.Context {
	horizon := 360.0
	for _, st := range states {
		horizon += st.Job.MaxDuration()
	}
	return &sched.Context{
		Now: 0, Round: 0, RoundLength: 360, Horizon: horizon,
		Cluster: c, Jobs: states,
	}
}

func newState(j *job.Job) *sched.JobState {
	return &sched.JobState{
		Job: j, Remaining: j.TotalIters(),
		RoundsByType: map[gpu.Type]float64{},
	}
}

func validateDecision(t *testing.T, c *cluster.Cluster, states []*sched.JobState, out map[int]cluster.Alloc) {
	t.Helper()
	free := cluster.NewState(c)
	byID := map[int]*sched.JobState{}
	for _, st := range states {
		byID[st.Job.ID] = st
	}
	for id, a := range out {
		st, ok := byID[id]
		if !ok {
			t.Fatalf("allocation for unknown job %d", id)
		}
		if err := sched.Validate(st.Job, a); err != nil {
			t.Fatalf("invalid allocation: %v", err)
		}
		if a.Workers() > 0 {
			if err := free.Allocate(a); err != nil {
				t.Fatalf("joint capacity violation: %v", err)
			}
		}
	}
}

func TestSchedulesSingleJobOnBestType(t *testing.T) {
	c := heteroCluster()
	j := mkJob(0, 2, 10000, 10, 5, 1)
	states := []*sched.JobState{newState(j)}
	s := New(DefaultOptions())
	out := s.Schedule(mkCtx(c, states...))
	validateDecision(t, c, states, out)
	a, ok := out[0]
	if !ok {
		t.Fatal("job not scheduled on an empty cluster")
	}
	types := a.Types()
	if len(types) != 1 || types[0] != gpu.V100 {
		t.Errorf("expected pure V100 allocation, got %v", a)
	}
}

func TestTaskLevelMixingWhenNoSingleTypeFits(t *testing.T) {
	// The paper's headline scenario: a 3-worker job on a cluster with
	// only 2 V100 free and K80/P100 stragglers; Gavel-style job-level
	// allocation would pick 3 P100s, Hadar may also mix. Remove P100s to
	// force mixing.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	j := mkJob(0, 3, 10000, 10, 5, 4)
	states := []*sched.JobState{newState(j)}
	s := New(DefaultOptions())
	out := s.Schedule(mkCtx(c, states...))
	validateDecision(t, c, states, out)
	a, ok := out[0]
	if !ok {
		t.Fatal("mixable job not scheduled")
	}
	if len(a.Types()) < 2 {
		t.Errorf("expected mixed-type allocation, got %v", a)
	}
}

func TestJobLevelAblationRefusesMixing(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2})
	j := mkJob(0, 3, 10000, 10, 5, 4)
	states := []*sched.JobState{newState(j)}
	opts := DefaultOptions()
	opts.TaskLevel = false
	opts.NameSuffix = "-joblevel"
	s := New(opts)
	out := s.Schedule(mkCtx(c, states...))
	validateDecision(t, c, states, out)
	if a, ok := out[0]; ok && len(a.Types()) > 1 {
		t.Errorf("job-level ablation produced mixed allocation %v", a)
	}
}

func TestGangRespectedUnderContention(t *testing.T) {
	c := heteroCluster() // 6 GPUs total
	jobs := []*sched.JobState{
		newState(mkJob(0, 3, 50000, 10, 5, 2)),
		newState(mkJob(1, 2, 20000, 8, 6, 2)),
		newState(mkJob(2, 2, 30000, 6, 6, 3)),
	}
	s := New(DefaultOptions())
	out := s.Schedule(mkCtx(c, jobs...))
	validateDecision(t, c, jobs, out)
	// 3+2+2 = 7 > 6 GPUs: at most two of the three jobs can run.
	if len(out) > 2 {
		total := 0
		for _, a := range out {
			total += a.Workers()
		}
		if total > 6 {
			t.Errorf("scheduled %d workers on 6 GPUs", total)
		}
	}
}

func TestStickinessKeepsAllocation(t *testing.T) {
	c := heteroCluster()
	j := mkJob(0, 2, 1e6, 10, 5, 1)
	st := newState(j)
	s := New(DefaultOptions())
	ctx := mkCtx(c, st)
	first := s.Schedule(ctx)[0]
	if first.Workers() == 0 {
		t.Fatal("job not scheduled")
	}
	// Simulate the next round: job holds `first`, nothing else changed.
	st.Alloc = first
	st.Remaining -= 1000
	ctx2 := mkCtx(c, st)
	ctx2.Now = 360
	ctx2.Round = 1
	second := s.Schedule(ctx2)[0]
	if !second.Equal(first) {
		t.Errorf("allocation churned without cause: %v -> %v", first, second)
	}
}

func TestDPAndGreedyAgreeOnCapacityRespect(t *testing.T) {
	c := heteroCluster()
	jobs := []*sched.JobState{
		newState(mkJob(0, 2, 40000, 10, 6, 2)),
		newState(mkJob(1, 2, 30000, 9, 7, 3)),
		newState(mkJob(2, 1, 10000, 8, 4, 2)),
		newState(mkJob(3, 1, 5000, 12, 6, 2)),
	}
	dpOpts := DefaultOptions()
	dpOpts.DPJobLimit = 10 // force DP
	greedyOpts := DefaultOptions()
	greedyOpts.DPJobLimit = 0 // force greedy
	outDP := New(dpOpts).Schedule(mkCtx(c, jobs...))
	outG := New(greedyOpts).Schedule(mkCtx(c, jobs...))
	validateDecision(t, c, jobs, outDP)
	validateDecision(t, c, jobs, outG)
	if len(outDP) == 0 || len(outG) == 0 {
		t.Error("nothing scheduled on an empty cluster with eager jobs")
	}
}

func TestDPNotWorseThanGreedy(t *testing.T) {
	// Total scheduled payoff of the DP must be >= the greedy pass on the
	// same instance (DP explores a superset of greedy's choices).
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.P100: 2})
	jobs := []*sched.JobState{
		newState(mkJob(0, 4, 50000, 10, 5, 0)), // big gang wants everything
		newState(mkJob(1, 2, 10000, 10, 9, 0)),
		newState(mkJob(2, 2, 10000, 10, 9, 0)),
	}
	dpOpts := DefaultOptions()
	greedyOpts := DefaultOptions()
	greedyOpts.DPJobLimit = 0
	outDP := New(dpOpts).Schedule(mkCtx(c, jobs...))
	outG := New(greedyOpts).Schedule(mkCtx(c, jobs...))
	workers := func(m map[int]cluster.Alloc) int {
		n := 0
		for _, a := range m {
			n += a.Workers()
		}
		return n
	}
	if workers(outDP) < workers(outG) {
		t.Errorf("DP scheduled %d workers, greedy %d", workers(outDP), workers(outG))
	}
}

func TestEmptyQueue(t *testing.T) {
	s := New(DefaultOptions())
	out := s.Schedule(mkCtx(heteroCluster()))
	if len(out) != 0 {
		t.Errorf("schedule of empty queue returned %v", out)
	}
}

func TestAlphaReported(t *testing.T) {
	c := heteroCluster()
	s := New(DefaultOptions())
	st := newState(mkJob(0, 2, 10000, 10, 5, 1))
	s.Schedule(mkCtx(c, st))
	if a := s.LastAlpha(); a < 1 || math.IsInf(a, 0) || math.IsNaN(a) {
		t.Errorf("alpha = %v, want finite >= 1", a)
	}
}

func TestLinearPriceVariant(t *testing.T) {
	c := heteroCluster()
	opts := DefaultOptions()
	opts.ExponentialPrice = false
	opts.NameSuffix = "-linear"
	s := New(opts)
	states := []*sched.JobState{
		newState(mkJob(0, 2, 10000, 10, 5, 1)),
		newState(mkJob(1, 2, 10000, 9, 6, 2)),
	}
	out := s.Schedule(mkCtx(c, states...))
	validateDecision(t, c, states, out)
	if s.Name() != "hadar-linear" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestNewPanicsOnBadOptions(t *testing.T) {
	cases := []Options{
		{}, // nil utility
		{Utility: InverseJCT{}, CommCost: -1},
		{Utility: InverseJCT{}, Stickiness: 1.5},
		{Utility: InverseJCT{}, DPJobLimit: -1},
		{Utility: FinishTimeFairness{}}, // missing Jobs/TotalGPUs
	}
	for i, o := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(o)
		}()
	}
}

func TestUtilitiesDecreasing(t *testing.T) {
	j := mkJob(0, 2, 10000, 10, 5, 1)
	utils := []Utility{
		EffectiveThroughput{},
		InverseJCT{},
		FinishTimeFairness{Jobs: 4, TotalGPUs: 8},
	}
	for _, u := range utils {
		v1 := u.Value(j, 5000, 100)
		v2 := u.Value(j, 5000, 200)
		if !(v1 > v2) || v2 <= 0 {
			t.Errorf("%s not positive-decreasing: U(100)=%v U(200)=%v", u.Name(), v1, v2)
		}
		if u.Name() == "" {
			t.Error("empty utility name")
		}
	}
}

func TestEffectiveThroughputValue(t *testing.T) {
	j := mkJob(0, 2, 10000, 10, 5, 1)
	if got := (EffectiveThroughput{}).Value(j, 1, 100); got != 100 {
		t.Errorf("EffectiveThroughput = %v, want 100", got)
	}
}

func TestUtilityDegenerateDuration(t *testing.T) {
	j := mkJob(0, 1, 100, 10, 5, 1)
	for _, u := range []Utility{EffectiveThroughput{}, InverseJCT{}, FinishTimeFairness{Jobs: 1, TotalGPUs: 1}} {
		if v := u.Value(j, 100, 0); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Errorf("%s at zero duration = %v", u.Name(), v)
		}
	}
}

func TestPriceIncreasesWithUtilization(t *testing.T) {
	c := heteroCluster()
	st := newState(mkJob(0, 2, 10000, 10, 5, 1))
	ctx := mkCtx(c, st)
	pt := newPriceTable(ctx, InverseJCT{}, 0, true)
	free := cluster.NewState(c)
	p0 := pt.price(free, 0, gpu.V100)
	if err := free.Allocate(cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	p1 := pt.price(free, 0, gpu.V100)
	if err := free.Allocate(cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	p2 := pt.price(free, 0, gpu.V100)
	if !(p0 < p1 && p1 < p2) {
		t.Errorf("price not increasing: %v %v %v", p0, p1, p2)
	}
	// Exponential form: empty price = Umin, full price = Umax.
	if math.Abs(p0-pt.umin[gpu.V100]) > 1e-9*p0 {
		t.Errorf("empty price %v != Umin %v", p0, pt.umin[gpu.V100])
	}
	if math.Abs(p2-pt.umax[gpu.V100]) > 1e-9*p2 {
		t.Errorf("full price %v != Umax %v", p2, pt.umax[gpu.V100])
	}
}

func TestPriceInfiniteForAbsentType(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 1})
	st := newState(mkJob(0, 1, 100, 10, 5, 1))
	ctx := mkCtx(c, st)
	pt := newPriceTable(ctx, InverseJCT{}, 0, true)
	if p := pt.price(cluster.NewState(c), 0, gpu.K80); !math.IsInf(p, 1) {
		t.Errorf("price of absent type = %v, want +Inf", p)
	}
}

func TestPriceBoundsOrdered(t *testing.T) {
	c := heteroCluster()
	states := []*sched.JobState{
		newState(mkJob(0, 2, 10000, 10, 5, 1)),
		newState(mkJob(1, 1, 500, 3, 2, 1)),
	}
	pt := newPriceTable(mkCtx(c, states...), EffectiveThroughput{}, 0, true)
	for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		if pt.umax[typ] <= 0 {
			t.Errorf("Umax[%v] = %v, want > 0", typ, pt.umax[typ])
		}
		if !(pt.umin[typ] > 0 && pt.umin[typ] < pt.umax[typ]) {
			t.Errorf("bounds unordered for %v: Umin=%v Umax=%v", typ, pt.umin[typ], pt.umax[typ])
		}
	}
}

// Property: for random job mixes, every Schedule decision respects gang
// and joint capacity constraints.
func TestScheduleAlwaysValidProperty(t *testing.T) {
	c := heteroCluster()
	prop := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 8 {
			seeds = seeds[:8]
		}
		var states []*sched.JobState
		for i, b := range seeds {
			w := int(b%4) + 1
			iters := float64(int(b)*100 + 500)
			j := mkJob(i, w, iters, float64(b%7)+4, float64(b%5)+2, float64(b%3)+1)
			states = append(states, newState(j))
		}
		s := New(DefaultOptions())
		out := s.Schedule(mkCtx(c, states...))
		free := cluster.NewState(c)
		for id, a := range out {
			if a.Workers() == 0 {
				continue
			}
			if a.Workers() != states[id].Job.Workers {
				return false
			}
			if err := free.Allocate(a); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a fuller cluster never has a cheaper price (monotonicity of
// Eq. 5 in gamma), for both price shapes.
func TestPriceMonotoneProperty(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 8})
	st := newState(mkJob(0, 2, 10000, 10, 5, 1))
	ctx := mkCtx(c, st)
	for _, exp := range []bool{true, false} {
		pt := newPriceTable(ctx, InverseJCT{}, 0, exp)
		prop := func(a, b uint8) bool {
			ga, gb := int(a%9), int(b%9)
			if ga > gb {
				ga, gb = gb, ga
			}
			fa := cluster.NewState(c)
			fb := cluster.NewState(c)
			if ga > 0 {
				if err := fa.Allocate(cluster.Alloc{{Node: 0, Type: gpu.V100, Count: ga}}); err != nil {
					return false
				}
			}
			if gb > 0 {
				if err := fb.Allocate(cluster.Alloc{{Node: 0, Type: gpu.V100, Count: gb}}); err != nil {
					return false
				}
			}
			return pt.price(fa, 0, gpu.V100) <= pt.price(fb, 0, gpu.V100)+1e-12
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("exponential=%v: %v", exp, err)
		}
	}
}
