package core

import (
	"math/bits"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/parallel"
	"repro/internal/sched"
)

// pick is one (job, allocation) decision of the DP.
type pick struct {
	id    int
	alloc cluster.Alloc
}

// dpResult is the best total payoff achievable from a DP position plus
// the picks realizing it.
type dpResult struct {
	payoff float64
	picks  []pick
}

// dpMemoKey memoizes on (queue index, free-state hash): the DP's value
// is a deterministic function of the position, which is also why the
// parallel split below cannot change any result — more or fewer memo
// hits only change how often the same value is recomputed.
type dpMemoKey struct {
	idx  int
	hash uint64
}

// dpSearch is one sequential memoized search over a suffix of the
// queue: its own probe (bound to the state it mutates), its own memo,
// and its own inconsistency list, so searches running on different
// goroutines share nothing mutable. Errors are collected rather than
// reported inline and flushed by the caller in deterministic task
// order.
type dpSearch struct {
	p        *probe
	ctx      *sched.Context
	queue    []*sched.JobState
	jobTypes [][]gpu.Type
	skip     []bool
	memo     map[dpMemoKey]dpResult
	errs     []error
}

// rec is Algorithm 2's recursion: branch on "allocate the best
// candidate" vs "skip", memoized on (idx, state hash). Branches mutate
// the probe's shared State under a savepoint and roll it back, so the
// search allocates nothing per visited node beyond the memo entries
// themselves. The skip branch is computed first and the allocate branch
// wins only on strictly greater total payoff; the parallel fold
// replays this exact comparison.
func (d *dpSearch) rec(idx int, free *cluster.State) dpResult {
	if idx >= len(d.queue) || free.TotalFree() == 0 {
		return dpResult{}
	}
	key := dpMemoKey{idx: idx, hash: free.Hash()}
	if r, ok := d.memo[key]; ok {
		return r
	}
	// Branch 1: skip this job.
	best := d.rec(idx+1, free)
	// Branch 2: allocate this job at its best candidate. The prescreen
	// flag only suppresses probes whose payoff bound already failed the
	// mu_j > 0 filter below.
	st := d.queue[idx]
	if st.Remaining > 0 && !d.skip[idx] {
		if cand, ok := d.p.findAlloc(st, d.ctx, d.jobTypes[idx]); ok && cand.payoff > 0 {
			sp := free.Savepoint()
			if err := free.Allocate(cand.alloc); err != nil {
				d.errs = append(d.errs, err)
			} else {
				sub := d.rec(idx+1, free)
				total := cand.payoff + sub.payoff
				if total > best.payoff {
					picks := make([]pick, 0, len(sub.picks)+1)
					picks = append(picks, pick{st.Job.ID, cand.alloc})
					picks = append(picks, sub.picks...)
					best = dpResult{payoff: total, picks: picks}
				}
			}
			free.Rollback(sp)
		}
	}
	d.memo[key] = best
	return best
}

// dpAllocate is Algorithm 2's dynamic program: for each job in order,
// branch on "allocate its best candidate" vs "skip", memoizing on
// (queue index, free-state hash), and keep the branch with the larger
// total payoff (equivalently, minimum cost for the chosen utility).
// With more than one worker the search fans out across goroutines; the
// schedule stays byte-identical to the sequential search at every
// worker count (see dpParallel).
func (s *Scheduler) dpAllocate(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, skip []bool, pt *priceTable, out map[int]cluster.Alloc) {
	root := cluster.NewState(ctx.Cluster)
	s.probe.bind(&s.opts, pt, root)
	var final dpResult
	if s.dpWorkerCount(len(queue)) <= 1 {
		d := &dpSearch{
			p: &s.probe, ctx: ctx, queue: queue, jobTypes: jobTypes, skip: skip,
			memo: make(map[dpMemoKey]dpResult, 64),
		}
		final = d.rec(0, root)
		for _, err := range d.errs {
			s.noteInconsistency(err)
		}
	} else {
		final = s.dpParallel(ctx, queue, jobTypes, skip, pt, root)
	}
	for _, p := range final.picks {
		out[p.id] = p.alloc
	}
}

// dpWorkerCount resolves Options.DPWorkers for a queue of n jobs.
func (s *Scheduler) dpWorkerCount(n int) int {
	w := s.opts.DPWorkers
	if w == 0 {
		w = parallel.DefaultWorkers()
	}
	if w > 1 && n < 4 {
		return 1 // a tiny tree cannot amortize clones and goroutines
	}
	return w
}

// dpNode is one node of the sequentially expanded search-tree prefix.
type dpNode struct {
	idx      int
	terminal bool
	task     int // leaf: index into the task list; -1 otherwise
	cand     candidate
	// skipChild is the position after skipping queue[idx]; allocChild
	// the position after allocating cand (nil when no candidate passes
	// the payoff filter at this position).
	skipChild, allocChild *dpNode
}

// dpExpander unrolls the top of the DP tree to a fixed depth, cloning
// the free state at each frontier leaf.
type dpExpander struct {
	s        *Scheduler
	ctx      *sched.Context
	queue    []*sched.JobState
	jobTypes [][]gpu.Type
	skip     []bool
	depthCut int
	leaves   []*cluster.State
	leafIdx  []int
}

// expand mirrors dpSearch.rec node for node down to depthCut,
// evaluating findAlloc against the same states the sequential search
// would see (the probe is bound to the same root state, mutated under
// the same savepoint discipline). findAlloc is deterministic given the
// state, so the candidates recorded here are the sequential search's
// candidates; only the sub-results below the frontier are deferred to
// the worker tasks.
func (e *dpExpander) expand(idx, depth int, free *cluster.State) *dpNode {
	n := &dpNode{idx: idx, task: -1}
	if idx >= len(e.queue) || free.TotalFree() == 0 {
		n.terminal = true
		return n
	}
	if depth >= e.depthCut {
		n.task = len(e.leaves)
		e.leaves = append(e.leaves, free.Clone())
		e.leafIdx = append(e.leafIdx, idx)
		return n
	}
	// Skip child first — the sequential visit order — so the fold below
	// replays the exact comparison sequence.
	n.skipChild = e.expand(idx+1, depth+1, free)
	st := e.queue[idx]
	if st.Remaining > 0 && !e.skip[idx] {
		if cand, ok := e.s.probe.findAlloc(st, e.ctx, e.jobTypes[idx]); ok && cand.payoff > 0 {
			sp := free.Savepoint()
			if err := free.Allocate(cand.alloc); err != nil {
				e.s.noteInconsistency(err)
			} else {
				n.cand = cand
				n.allocChild = e.expand(idx+1, depth+1, free)
			}
			free.Rollback(sp)
		}
	}
	return n
}

// dpTask is one frontier subtree's outcome.
type dpTask struct {
	res  dpResult
	errs []error
}

// dpParallel runs the DP across worker goroutines without changing a
// single decision. The tree is expanded sequentially to a frontier
// deep enough for ~2x workers leaves, each leaf gets an independent
// clone of the free state, every frontier subtree runs the plain
// sequential search on its own goroutine (own probe, own memo — the
// memo caches a deterministic function of the position, so private
// memos return exactly what a shared memo would), and the frontier
// folds back bottom-up with the sequential comparison: skip branch
// first, allocate branch wins only on strictly greater total payoff.
// parallel.Map preserves task order, and collected inconsistencies are
// flushed in that order, so the outcome is byte-identical to the
// sequential search at any worker count and GOMAXPROCS.
func (s *Scheduler) dpParallel(ctx *sched.Context, queue []*sched.JobState, jobTypes [][]gpu.Type, skip []bool, pt *priceTable, root *cluster.State) dpResult {
	workers := s.dpWorkerCount(len(queue))
	cut := bits.Len(uint(2*workers - 1)) // smallest cut with 2^cut >= 2*workers
	if cut > 6 {
		cut = 6
	}
	if cut > len(queue) {
		cut = len(queue)
	}
	e := &dpExpander{
		s: s, ctx: ctx, queue: queue, jobTypes: jobTypes, skip: skip,
		depthCut: cut,
	}
	tree := e.expand(0, 0, root)
	tasks := make([]int, len(e.leaves))
	for i := range tasks {
		tasks[i] = i
	}
	results, err := parallel.Map(workers, tasks, func(i int) (dpTask, error) {
		leaf := e.leaves[i]
		d := &dpSearch{
			p: &probe{}, ctx: ctx, queue: queue, jobTypes: jobTypes, skip: skip,
			memo: make(map[dpMemoKey]dpResult, 64),
		}
		d.p.bind(&s.opts, pt, leaf)
		res := d.rec(e.leafIdx[i], leaf)
		return dpTask{res: res, errs: d.errs}, nil
	})
	if err != nil {
		// Unreachable: the task function never errors. Fall back to a
		// fresh sequential search rather than dropping the round.
		d := &dpSearch{
			p: &s.probe, ctx: ctx, queue: queue, jobTypes: jobTypes, skip: skip,
			memo: make(map[dpMemoKey]dpResult, 64),
		}
		return d.rec(0, root)
	}
	for _, tr := range results {
		for _, e := range tr.errs {
			s.noteInconsistency(e)
		}
	}
	return foldDP(tree, queue, results)
}

// foldDP combines the frontier results bottom-up with the sequential
// comparison.
func foldDP(n *dpNode, queue []*sched.JobState, results []dpTask) dpResult {
	if n.terminal {
		return dpResult{}
	}
	if n.task >= 0 {
		return results[n.task].res
	}
	best := foldDP(n.skipChild, queue, results)
	if n.allocChild != nil {
		sub := foldDP(n.allocChild, queue, results)
		total := n.cand.payoff + sub.payoff
		if total > best.payoff {
			picks := make([]pick, 0, len(sub.picks)+1)
			picks = append(picks, pick{queue[n.idx].Job.ID, n.cand.alloc})
			picks = append(picks, sub.picks...)
			best = dpResult{payoff: total, picks: picks}
		}
	}
	return best
}
