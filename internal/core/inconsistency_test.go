package core

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// TestMain turns swallowed allocation inconsistencies into panics for
// the whole package's tests: every Schedule call exercised anywhere in
// these tests doubles as an assertion that the dual subroutine never
// produces a decision that does not fit its own free state.
func TestMain(m *testing.M) {
	PanicOnInconsistency = true
	os.Exit(m.Run())
}

// TestNoteInconsistencyCounts pins the production behavior: with the
// panic hook off, inconsistencies increment the counter and scheduling
// carries on.
func TestNoteInconsistencyCounts(t *testing.T) {
	PanicOnInconsistency = false
	defer func() { PanicOnInconsistency = true }()
	s := New(DefaultOptions())
	if got := s.Inconsistencies(); got != 0 {
		t.Fatalf("fresh scheduler reports %d inconsistencies", got)
	}
	s.noteInconsistency(errors.New("synthetic failure"))
	s.noteInconsistency(errors.New("another"))
	if got := s.Inconsistencies(); got != 2 {
		t.Fatalf("Inconsistencies() = %d, want 2", got)
	}
}

// TestNoteInconsistencyPanicHook pins the test-mode behavior: with the
// hook on, the first inconsistency panics with the underlying error.
func TestNoteInconsistencyPanicHook(t *testing.T) {
	s := New(DefaultOptions())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("noteInconsistency did not panic under PanicOnInconsistency")
		}
		err, ok := r.(error)
		if !ok || !strings.Contains(err.Error(), "synthetic failure") {
			t.Fatalf("panic value %v does not wrap the allocation error", r)
		}
		if got := s.Inconsistencies(); got != 1 {
			t.Fatalf("Inconsistencies() = %d after panic, want 1", got)
		}
	}()
	s.noteInconsistency(errors.New("synthetic failure"))
}
