package core

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// priceTable holds the per-round dual price state: the per-type utility
// bounds U_max^r / U_min^r (Eq. 6-7) and the marginal price function
// k_h^r(gamma) (Eq. 5), evaluated against the current free state.
type priceTable struct {
	c           *cluster.Cluster
	umax, umin  [gpu.NumTypes]float64
	exponential bool
	// curve[t][cap][used] caches at(t, used/cap) for every distinct
	// per-node capacity of type t present in the cluster, evaluated once
	// per round in newPriceTable with the exact same expression price
	// would use, so the per-probe hot path indexes two slices instead of
	// calling math.Pow. Immutable after construction — parallel DP
	// workers read it concurrently.
	curve [gpu.NumTypes][][]float64
}

// newPriceTable computes the round's utility bounds from the active job
// set, following Eq. 6-8 with remaining work substituted for total work
// (the online algorithm recomputes the bounds "based on the current
// workload of the cluster").
func newPriceTable(ctx *sched.Context, u Utility, eta float64, exponential bool) *priceTable {
	pt := &priceTable{c: ctx.Cluster, exponential: exponential}
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		pt.umax[t] = 0
		pt.umin[t] = math.Inf(1)
	}
	if eta <= 0 {
		eta = defaultEta(ctx)
	}
	for _, st := range ctx.Jobs {
		j := st.Job
		w := float64(j.Workers)
		_, best, ok := j.BestType()
		if !ok {
			continue
		}
		_, worst, _ := j.WorstType()
		rem := st.Remaining
		if rem <= 0 {
			continue
		}
		tmin := rem / (w * best)
		tmax := rem / (w * worst)
		age := ctx.Now - j.Arrival
		if age < 0 {
			age = 0
		}
		// Highest utility: finish as fast as possible from now.
		uBest := u.Value(j, rem, age+tmin) / w
		// Lowest utility: finish only at the horizon T.
		horizonDur := ctx.Horizon - j.Arrival
		if horizonDur < age+tmax {
			horizonDur = age + tmax
		}
		uWorst := u.Value(j, rem, horizonDur) / (4 * eta * tmax * w)
		for _, t := range sched.UsableTypes(j) {
			if uBest > pt.umax[t] {
				pt.umax[t] = uBest
			}
			if uWorst < pt.umin[t] {
				pt.umin[t] = uWorst
			}
		}
	}
	// Normalize degenerate bounds: the price function needs
	// 0 < umin < umax on every type any job can use.
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if pt.umax[t] <= 0 {
			continue // no job uses this type this round
		}
		if math.IsInf(pt.umin[t], 1) || pt.umin[t] <= 0 {
			pt.umin[t] = pt.umax[t] / (4 * eta)
		}
		if pt.umin[t] >= pt.umax[t] {
			pt.umin[t] = pt.umax[t] / math.E
		}
	}
	pt.fillCurves()
	return pt
}

// fillCurves evaluates the marginal price function once per (type,
// distinct node capacity, used count): the per-probe price lookup then
// reduces to two slice indexes. Each entry is computed with exactly the
// expression price would evaluate lazily, so cached and direct values
// are bit-identical.
func (pt *priceTable) fillCurves() {
	for node := 0; node < pt.c.NumNodes(); node++ {
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			cap := pt.c.Capacity(node, t)
			if cap == 0 {
				continue
			}
			if len(pt.curve[t]) <= cap {
				grown := make([][]float64, cap+1)
				copy(grown, pt.curve[t])
				pt.curve[t] = grown
			}
			if pt.curve[t][cap] != nil {
				continue
			}
			row := make([]float64, cap+1)
			for used := 0; used <= cap; used++ {
				row[used] = pt.at(t, float64(used)/float64(cap))
			}
			pt.curve[t][cap] = row
		}
	}
}

// defaultEta returns the scaling factor eta keeping the initial dual
// objective bounded (Theorem 2's proof requires
// 1/eta <= t_max_j * W_j / total capacity for all jobs).
func defaultEta(ctx *sched.Context) float64 {
	total := float64(ctx.Cluster.TotalGPUs())
	eta := 1.0
	for _, st := range ctx.Jobs {
		j := st.Job
		_, worst, ok := j.WorstType()
		if !ok || st.Remaining <= 0 {
			continue
		}
		tmax := st.Remaining / (float64(j.Workers) * worst)
		if need := total / (tmax * float64(j.Workers)); need > eta {
			eta = need
		}
	}
	return eta
}

// price returns k_h^r evaluated at the node's current utilization, read
// from the free state: gamma = capacity - free (Eq. 5). Nodes without
// the type price at +Inf so they are never selected. The value comes
// from the precomputed curve, indexed by the node's capacity and used
// count.
func (pt *priceTable) price(free *cluster.State, node int, t gpu.Type) float64 {
	cap := pt.c.Capacity(node, t)
	if cap == 0 {
		return math.Inf(1)
	}
	return pt.curve[t][cap][cap-free.Free(node, t)]
}

// at evaluates the marginal price function k^r for type t at the given
// utilization fraction in [0, 1] (Eq. 5). Because Umin <= Umax after
// normalization, the curve is monotone non-decreasing in utilization —
// the property Theorem 2's charging argument needs and the invariant
// checker verifies each round.
func (pt *priceTable) at(t gpu.Type, frac float64) float64 {
	if pt.umax[t] <= 0 {
		return math.Inf(1)
	}
	if pt.exponential {
		return pt.umin[t] * math.Pow(pt.umax[t]/pt.umin[t], frac)
	}
	return pt.umin[t] + (pt.umax[t]-pt.umin[t])*frac
}

// alpha returns the competitive-ratio factor
// alpha = max_r max(1, ln(Umax^r/Umin^r)) of Theorem 2 for the current
// bounds.
func (pt *priceTable) alpha() float64 {
	a := 1.0
	for t := gpu.Type(0); t < gpu.NumTypes; t++ {
		if pt.umax[t] <= 0 || pt.umin[t] <= 0 {
			continue
		}
		if l := math.Log(pt.umax[t] / pt.umin[t]); l > a {
			a = l
		}
	}
	return a
}
