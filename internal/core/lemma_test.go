package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/invariant"
)

// TestLemma3AllocationCostRelationship empirically validates the
// discrete allocation-cost relationship behind Theorem 2 (Definition 1):
// for the exponential price function, allocating one more device at the
// current price must cover at least c/alpha times the price increase,
//
//	k(gamma) * (gamma' - gamma) >= (c/alpha) * (k(gamma') - k(gamma))
//
// with alpha = ln(Umax/Umin), for every single-device step gamma' =
// gamma + 1.
func TestLemma3AllocationCostRelationship(t *testing.T) {
	capTotal := 8
	c := cluster.New(gpu.Fleet{gpu.V100: capTotal})
	st := newState(mkJob(0, 2, 10000, 10, 5, 1))
	ctx := mkCtx(c, st)
	pt := newPriceTable(ctx, InverseJCT{}, 0, true)
	alpha := math.Log(pt.umax[gpu.V100] / pt.umin[gpu.V100])
	if alpha <= 0 {
		t.Fatalf("degenerate bounds: umin=%v umax=%v", pt.umin[gpu.V100], pt.umax[gpu.V100])
	}

	free := cluster.NewState(c)
	for gamma := 0; gamma < capTotal; gamma++ {
		kBefore := pt.price(free, 0, gpu.V100)
		if err := free.Allocate(cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 1}}); err != nil {
			t.Fatal(err)
		}
		kAfter := pt.price(free, 0, gpu.V100)
		lhs := kBefore * 1.0
		rhs := float64(capTotal) / alpha * (kAfter - kBefore)
		// The differential relationship holds with equality in the
		// continuum; the discrete step satisfies it within the convexity
		// slack of the exponential (kAfter - kBefore >= k'(gamma)).
		// Definition 1 requires lhs >= rhs evaluated with the *pre-step*
		// derivative; verify against the exact derivative instead:
		// k'(gamma) = k(gamma) * ln(Umax/Umin) / c.
		deriv := kBefore * alpha / float64(capTotal)
		if lhs < float64(capTotal)/alpha*deriv-1e-9 {
			t.Errorf("gamma=%d: differential relationship violated: %v < %v", gamma, lhs, float64(capTotal)/alpha*deriv)
		}
		// And the discrete version must hold within the documented
		// discretization factor e^(alpha/c) (one-step convexity gap).
		slack := math.Exp(alpha / float64(capTotal))
		if lhs*slack < rhs-1e-9 {
			t.Errorf("gamma=%d: discrete relationship violated beyond convexity slack: %v vs %v", gamma, lhs, rhs)
		}
	}
}

// TestPriceBoundsScaleWithUtilityProperty: scaling every job's utility
// by a constant scales Umin and Umax by the same constant, leaving
// alpha (and hence the competitive ratio) unchanged.
func TestPriceBoundsScaleWithUtilityProperty(t *testing.T) {
	c := heteroCluster()
	prop := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%20) + 1
		st1 := newState(mkJob(0, 2, 10000, 10, 5, 1))
		ctx := mkCtx(c, st1)
		base := newPriceTable(ctx, InverseJCT{Scale: 3600}, 0, true)
		scaled := newPriceTable(ctx, InverseJCT{Scale: 3600 * scale}, 0, true)
		for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
			if base.umax[typ] <= 0 {
				continue
			}
			if math.Abs(scaled.umax[typ]-scale*base.umax[typ]) > invariant.Tol*scaled.umax[typ] {
				return false
			}
			aBase := math.Log(base.umax[typ] / base.umin[typ])
			aScaled := math.Log(scaled.umax[typ] / scaled.umin[typ])
			if math.Abs(aBase-aScaled) > invariant.Tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestAlphaBoundsCompetitiveRatio: alpha must upper-bound the log price
// dynamic range on every type.
func TestAlphaBoundsCompetitiveRatio(t *testing.T) {
	c := heteroCluster()
	st1 := newState(mkJob(0, 2, 10000, 10, 5, 1))
	st2 := newState(mkJob(1, 1, 777, 3, 2, 1))
	ctx := mkCtx(c, st1, st2)
	pt := newPriceTable(ctx, EffectiveThroughput{}, 0, true)
	alpha := pt.alpha()
	for _, typ := range []gpu.Type{gpu.V100, gpu.P100, gpu.K80} {
		if pt.umax[typ] <= 0 || pt.umin[typ] <= 0 {
			continue
		}
		if l := math.Log(pt.umax[typ] / pt.umin[typ]); l > alpha+1e-9 {
			t.Errorf("type %v: log range %v exceeds alpha %v", typ, l, alpha)
		}
	}
}
