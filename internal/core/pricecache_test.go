package core

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/sched"
)

// cacheFixture builds a price table and bound cache over the standard
// heterogeneous test cluster with one active job per type family.
func cacheFixture(t *testing.T) (*priceTable, *cluster.State, *priceCache) {
	t.Helper()
	c := heteroCluster()
	states := []*sched.JobState{
		newState(mkJob(0, 2, 10000, 10, 5, 1)),
		newState(mkJob(1, 1, 8000, 8, 6, 2)),
	}
	ctx := mkCtx(c, states...)
	pt := newPriceTable(ctx, DefaultOptions().Utility, 0, true)
	st := cluster.NewState(c)
	pc := &priceCache{}
	pc.bind(pt, st)
	return pt, st, pc
}

// TestPriceCacheHitsUntouchedCells verifies repeated lookups of an
// unchanged cell cost exactly one fill, and that the cached value is the
// direct price, bit for bit.
func TestPriceCacheHitsUntouchedCells(t *testing.T) {
	pt, st, pc := cacheFixture(t)
	direct := pt.price(st, 0, gpu.V100)
	for i := 0; i < 5; i++ {
		if got := pc.price(0, gpu.V100); got != direct {
			t.Fatalf("cached price %v != direct %v", got, direct)
		}
	}
	if pc.fills != 1 {
		t.Errorf("5 lookups of an untouched cell cost %d fills, want 1", pc.fills)
	}
}

// TestPriceCacheDirtyOnAllocateRelease verifies mutations in both
// directions invalidate exactly the touched cells.
func TestPriceCacheDirtyOnAllocateRelease(t *testing.T) {
	pt, st, pc := cacheFixture(t)
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 1}}
	before := pc.price(0, gpu.V100)
	other := pc.price(1, gpu.P100)
	if err := st.Allocate(a); err != nil {
		t.Fatal(err)
	}
	afterAlloc := pc.price(0, gpu.V100)
	if want := pt.price(st, 0, gpu.V100); afterAlloc != want {
		t.Fatalf("price after allocate = %v, direct = %v", afterAlloc, want)
	}
	if afterAlloc < before {
		t.Errorf("marginal price decreased after allocate: %v -> %v", before, afterAlloc)
	}
	if err := st.Release(a); err != nil {
		t.Fatal(err)
	}
	if got := pc.price(0, gpu.V100); got != before {
		t.Errorf("price after release = %v, want the pre-allocate price %v", got, before)
	}
	// The untouched (node 1, P100) cell must still be served from cache:
	// 3 fills for the mutated cell's three states plus 1 for the other.
	if got := pc.price(1, gpu.P100); got != other {
		t.Errorf("untouched cell changed: %v -> %v", other, got)
	}
	if pc.fills != 4 {
		t.Errorf("fills = %d, want 4 (3 for the mutated cell, 1 for the untouched one)", pc.fills)
	}
}

// TestPriceCacheNoStaleReadAfterRollback is the invalidation protocol's
// key property: a rollback that restores the exact free count the cache
// last saw still advances the per-cell version (undo bumps it too), so
// the next lookup recomputes instead of serving the value cached for the
// transient mid-savepoint state.
func TestPriceCacheNoStaleReadAfterRollback(t *testing.T) {
	pt, st, pc := cacheFixture(t)
	a := cluster.Alloc{{Node: 0, Type: gpu.V100, Count: 2}}
	clean := pc.price(0, gpu.V100)
	sp := st.Savepoint()
	if err := st.Allocate(a); err != nil {
		t.Fatal(err)
	}
	dirty := pc.price(0, gpu.V100) // cache now holds the fully-utilized price
	if dirty <= clean {
		t.Fatalf("fully-utilized price %v not above clean price %v", dirty, clean)
	}
	st.Rollback(sp)
	fillsBefore := pc.fills
	got := pc.price(0, gpu.V100)
	if got != clean {
		t.Errorf("post-rollback price = %v, want clean price %v (stale read of %v?)", got, clean, dirty)
	}
	if pc.fills != fillsBefore+1 {
		t.Errorf("post-rollback lookup did %d fills, want exactly 1: the rollback must dirty the cell",
			pc.fills-fillsBefore)
	}
	if want := pt.price(st, 0, gpu.V100); got != want {
		t.Errorf("post-rollback cached price %v != direct %v", got, want)
	}
}

// TestPriceCacheBindResets verifies rebinding drops every cached value,
// including when the new state is a different object with identical
// contents (a fresh scheduling pass must never see the old pass's
// prices).
func TestPriceCacheBindResets(t *testing.T) {
	pt, st, pc := cacheFixture(t)
	_ = pc.price(0, gpu.V100)
	_ = pc.price(1, gpu.P100)
	if pc.fills != 2 {
		t.Fatalf("fills = %d, want 2", pc.fills)
	}
	pc.bind(pt, cluster.NewState(st.Cluster()))
	if got := pc.price(0, gpu.V100); got != pt.price(st, 0, gpu.V100) {
		t.Errorf("rebound cache returned %v, want fresh price", got)
	}
	if pc.fills != 3 {
		t.Errorf("lookup after rebind did not refill (fills = %d, want 3)", pc.fills)
	}
}

// TestPriceCacheInfiniteForAbsentType pins the +Inf convention for
// (node, type) cells with zero capacity flowing through the cache.
func TestPriceCacheInfiniteForAbsentType(t *testing.T) {
	_, _, pc := cacheFixture(t)
	// Node 0 of heteroCluster has only V100s.
	if got := pc.price(0, gpu.K80); !math.IsInf(got, 1) {
		t.Errorf("price of absent type = %v, want +Inf", got)
	}
}
